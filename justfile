# Development recipes. `just check` is the full gate CI runs.

# Build, test, and lint — the merge gate.
check: build test clippy lint

# Release build of every crate, bench and example target.
build:
    cargo build --release --all-targets

# The full test suite (unit + integration + property tests).
test:
    cargo build --release && cargo test -q --release

# Lint with warnings promoted to errors.
clippy:
    cargo clippy --release --all-targets -- -D warnings

# Workspace invariant linter (ratcheting baseline in lint-baseline.txt).
lint:
    cargo run --release --bin repro -- lint

# Grandfather the current findings / strike fixed ones from the baseline.
lint-update:
    cargo run --release --bin repro -- lint --update-baseline

# Print the invariant a lint rule protects and how to fix violations.
lint-explain rule="L7":
    cargo run --release --bin repro -- lint --explain {{ rule }}

# SARIF-shaped lint report on stdout (what CI uploads as an artifact).
lint-json:
    cargo run --release --bin repro -- lint --format json

# Regenerate every paper artifact at quick scale.
repro:
    cargo run --release --bin repro -- all

# Regenerate at paper scale (slow) with the worker pool pinned.
repro-full threads="0":
    cargo run --release --bin repro -- all --full {{ if threads == "0" { "" } else { "--threads " + threads } }}

# Run the Criterion benchmark suite.
criterion:
    cargo bench

# Time the end-to-end pipeline stages (quick scale) and write a JSON
# report; guard against regressions with the committed baseline.
bench json="BENCH_PR10.local.json":
    cargo run --release --bin repro -- bench --json {{ json }} --baseline BENCH_PR10.json --max-ratio 2.0

# Re-measure at paper scale and refresh the committed baseline.
bench-full:
    cargo run --release --bin repro -- bench --full --json BENCH_PR10.json

# Serve the simulated registry over HTTP + WHOIS on fixed local ports.
serve:
    cargo run --release --bin repro -- serve --port 8080 --whois-port 4343

# Serve with the /debug/flight, /debug/requests and /debug/pool
# introspection routes enabled.
serve-debug:
    cargo run --release --bin repro -- serve --debug --port 8080 --whois-port 4343

# Drive a running `just serve` with the seeded load generator.
loadgen addr="127.0.0.1:8080":
    cargo run --release --bin repro -- loadgen --addr {{ addr }}

# Run an artifact and dump the always-on flight recorder ring as
# trace-check-compatible JSONL.
flight-dump artifact="fig6":
    cargo run --release --bin repro -- flight-dump {{ artifact }}

# Write the quick-scale MRT archive to disk and run a query over it.
query filter="kind=announce|withdraw" dir="archive.quick":
    cargo run --release --bin repro -- archive --out {{ dir }}
    cargo run --release --bin repro -- query {{ dir }} --filter "{{ filter }}" --limit 20

# Compare sequential vs parallel wall-clock for the archive pipeline.
scaling:
    DRYWELLS_THREADS=1 cargo run --release --bin repro -- fig6 > /dev/null
    cargo run --release --bin repro -- fig6 > /dev/null

# Per-stage wall-time / throughput tree for one artifact.
profile artifact="fig6":
    cargo run --release --bin repro -- profile {{ artifact }}

# Write a JSONL trace of a run and validate its schema + nesting.
trace artifact="fig6":
    cargo run --release --bin repro -- {{ artifact }} --trace=jsonl:trace.jsonl > /dev/null
    cargo run --release --bin repro -- trace-check trace.jsonl
