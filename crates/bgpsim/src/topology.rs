//! AS-level topology generation and valley-free path computation.
//!
//! The model is the classic three-tier hierarchy:
//!
//! * **Tier 1** — a small transit-free clique, fully peered,
//! * **Tier 2** — regional transit providers, each buying transit from
//!   2–3 tier-1s and peering with a few other tier-2s,
//! * **Stubs** — edge networks buying transit from 1–3 tier-2s.
//!
//! Organizations own 1–4 ASes each (multi-AS organizations are what
//! makes the paper's extension (iv) — intra-org delegation filtering —
//! necessary). Paths follow Gao-Rexford valley-free routing: an AS
//! path is a sequence of customer→provider hops, at most one peer
//! hop, then provider→customer hops.

use nettypes::asn::Asn;
use rand::prelude::*;
use rand_pcg::Pcg64Mcg;
use registry::org::OrgId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The role of an AS in the hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Tier {
    /// Transit-free clique member.
    Tier1,
    /// Regional transit provider.
    Tier2,
    /// Edge network.
    Stub,
}

/// One AS in the topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AsNode {
    /// The AS number.
    pub asn: Asn,
    /// Hierarchy role.
    pub tier: Tier,
    /// Owning organization.
    pub org: OrgId,
}

/// Configuration for topology generation.
#[derive(Clone, Debug)]
pub struct TopologyConfig {
    /// RNG seed.
    pub seed: u64,
    /// Tier-1 clique size.
    pub num_tier1: usize,
    /// Number of tier-2 transits.
    pub num_tier2: usize,
    /// Number of stub ASes.
    pub num_stubs: usize,
    /// Fraction of organizations owning more than one AS.
    pub multi_as_org_fraction: f64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            seed: 1,
            num_tier1: 8,
            num_tier2: 60,
            num_stubs: 600,
            multi_as_org_fraction: 0.12,
        }
    }
}

/// An AS-level topology with inter-AS relationships.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<AsNode>,
    /// asn → index into `nodes`.
    #[serde(skip)]
    index: BTreeMap<Asn, usize>,
    /// Customer → providers.
    providers: BTreeMap<Asn, Vec<Asn>>,
    /// Provider → customers.
    customers: BTreeMap<Asn, Vec<Asn>>,
    /// Symmetric peering.
    peers: BTreeMap<Asn, Vec<Asn>>,
    /// org → ASes (ordered so iteration is deterministic).
    org_ases: BTreeMap<OrgId, Vec<Asn>>,
    /// Dense adjacency: node index → provider node indices, in the
    /// same order as `providers` — so the BFS expansion order (and
    /// therefore every computed path) is identical to the `Asn`-keyed
    /// view.
    #[serde(skip)]
    dense_providers: Vec<Vec<usize>>,
    /// Node index → peer node indices (order-preserving).
    #[serde(skip)]
    dense_peers: Vec<Vec<usize>>,
    /// Node index → customer node indices (order-preserving).
    #[serde(skip)]
    dense_customers: Vec<Vec<usize>>,
}

/// Build the index-space adjacency for one relationship map,
/// preserving the per-AS neighbor order.
fn dense_adjacency(
    nodes: &[AsNode],
    index: &BTreeMap<Asn, usize>,
    map: &BTreeMap<Asn, Vec<Asn>>,
) -> Vec<Vec<usize>> {
    nodes
        .iter()
        .map(|n| {
            map.get(&n.asn)
                .map(|neighbors| neighbors.iter().filter_map(|a| index.get(a).copied()).collect())
                .unwrap_or_default()
        })
        .collect()
}

impl Topology {
    /// Generate a topology from a config. ASNs are assigned densely
    /// starting at 1000 (well clear of reserved ranges).
    pub fn generate(config: &TopologyConfig) -> Topology {
        let span = obs::span!(
            "topology_build",
            ases = config.num_tier1 + config.num_tier2 + config.num_stubs,
            unit = "ases",
        );
        span.add_items((config.num_tier1 + config.num_tier2 + config.num_stubs) as u64);
        // Salted so other substrates given the same user seed do not
        // share this RNG stream.
        let mut rng = Pcg64Mcg::seed_from_u64(config.seed ^ 0x7090_10D1_0000_0001);
        let mut nodes = Vec::new();
        let mut providers: BTreeMap<Asn, Vec<Asn>> = BTreeMap::new();
        let mut customers: BTreeMap<Asn, Vec<Asn>> = BTreeMap::new();
        let mut peers: BTreeMap<Asn, Vec<Asn>> = BTreeMap::new();
        let mut org_ases: BTreeMap<OrgId, Vec<Asn>> = BTreeMap::new();

        let total = config.num_tier1 + config.num_tier2 + config.num_stubs;
        // Organization assignment: some orgs own several ASes.
        let mut org_of_as: Vec<OrgId> = Vec::with_capacity(total);
        let mut next_org = 0u32;
        let mut i = 0usize;
        while i < total {
            let org = OrgId(next_org);
            next_org += 1;
            let extra = if rng.gen::<f64>() < config.multi_as_org_fraction {
                rng.gen_range(1..=3usize)
            } else {
                0
            };
            for _ in 0..=extra {
                if i >= total {
                    break;
                }
                org_of_as.push(org);
                i += 1;
            }
        }

        let asn_at = |i: usize| Asn(1000 + i as u32);

        for (i, &org) in org_of_as.iter().enumerate().take(total) {
            let tier = if i < config.num_tier1 {
                Tier::Tier1
            } else if i < config.num_tier1 + config.num_tier2 {
                Tier::Tier2
            } else {
                Tier::Stub
            };
            let asn = asn_at(i);
            nodes.push(AsNode { asn, tier, org });
            org_ases.entry(org).or_default().push(asn);
        }

        let tier1: Vec<Asn> = (0..config.num_tier1).map(asn_at).collect();
        let tier2: Vec<Asn> = (config.num_tier1..config.num_tier1 + config.num_tier2)
            .map(asn_at)
            .collect();

        // Tier-1 full mesh peering.
        for (i, &a) in tier1.iter().enumerate() {
            for &b in &tier1[i + 1..] {
                peers.entry(a).or_default().push(b);
                peers.entry(b).or_default().push(a);
            }
        }

        // Tier-2: 2–3 tier-1 providers, a few tier-2 peers.
        for &t2 in &tier2 {
            let n_prov = rng.gen_range(2..=3usize).min(tier1.len());
            let provs: Vec<Asn> = tier1.choose_multiple(&mut rng, n_prov).copied().collect();
            for p in provs {
                providers.entry(t2).or_default().push(p);
                customers.entry(p).or_default().push(t2);
            }
        }
        for (i, &a) in tier2.iter().enumerate() {
            for &b in &tier2[i + 1..] {
                if rng.gen::<f64>() < 0.06 {
                    peers.entry(a).or_default().push(b);
                    peers.entry(b).or_default().push(a);
                }
            }
        }

        // Stubs: 1–3 tier-2 providers.
        for i in config.num_tier1 + config.num_tier2..total {
            let stub = asn_at(i);
            let n_prov = rng.gen_range(1..=3usize).min(tier2.len());
            let provs: Vec<Asn> = tier2.choose_multiple(&mut rng, n_prov).copied().collect();
            for p in provs {
                providers.entry(stub).or_default().push(p);
                customers.entry(p).or_default().push(stub);
            }
        }

        let index: BTreeMap<Asn, usize> = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.asn, i))
            .collect();

        let dense_providers = dense_adjacency(&nodes, &index, &providers);
        let dense_peers = dense_adjacency(&nodes, &index, &peers);
        let dense_customers = dense_adjacency(&nodes, &index, &customers);

        Topology {
            nodes,
            index,
            providers,
            customers,
            peers,
            org_ases,
            dense_providers,
            dense_peers,
            dense_customers,
        }
    }

    /// All ASes.
    pub fn nodes(&self) -> &[AsNode] {
        &self.nodes
    }

    /// Look up a node.
    pub fn node(&self, asn: Asn) -> Option<&AsNode> {
        self.index.get(&asn).map(|&i| &self.nodes[i])
    }

    /// The owning organization of an AS, if known.
    pub fn org_of(&self, asn: Asn) -> Option<OrgId> {
        self.node(asn).map(|n| n.org)
    }

    /// All ASes of an organization.
    pub fn ases_of_org(&self, org: OrgId) -> &[Asn] {
        self.org_ases.get(&org).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Organizations owning more than one AS.
    pub fn multi_as_orgs(&self) -> impl Iterator<Item = (OrgId, &[Asn])> {
        self.org_ases
            .iter()
            .filter(|(_, v)| v.len() > 1)
            .map(|(o, v)| (*o, v.as_slice()))
    }

    /// ASes of a given tier.
    pub fn ases_of_tier(&self, tier: Tier) -> impl Iterator<Item = Asn> + '_ {
        self.nodes
            .iter()
            .filter(move |n| n.tier == tier)
            .map(|n| n.asn)
    }

    /// Providers of an AS.
    pub fn providers_of(&self, asn: Asn) -> &[Asn] {
        self.providers.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Peers of an AS.
    pub fn peers_of(&self, asn: Asn) -> &[Asn] {
        self.peers.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Customers of an AS.
    pub fn customers_of(&self, asn: Asn) -> &[Asn] {
        self.customers.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Compute a valley-free AS path from `from` (the observing /
    /// monitor AS) to `to` (the origin AS), inclusive on both ends.
    ///
    /// Search is a BFS over states (AS, phase) where phase encodes the
    /// Gao-Rexford export restrictions. From the monitor's point of
    /// view the path to the origin must be the *reverse* of a valid
    /// propagation path from the origin, which is itself valley-free;
    /// valley-freeness is symmetric, so we search forward from `from`
    /// with phases: Up (customer→provider hops), then at most one Peer
    /// hop, then Down (provider→customer hops).
    ///
    /// Returns `None` when no valley-free path exists.
    ///
    /// The search runs over dense states `node_idx * 3 + phase` with
    /// flat seen/parent vectors — no hashing — but expands neighbors
    /// in exactly the order of the `Asn`-keyed adjacency, so the
    /// returned path is identical to the historical `(Asn, Phase)`
    /// hash-set BFS.
    pub fn path(&self, from: Asn, to: Asn) -> Option<Vec<Asn>> {
        if from == to {
            return Some(vec![from]);
        }
        let fi = *self.index.get(&from)?;
        let ti = *self.index.get(&to)?;

        const UP: usize = 0;
        const PEERED: usize = 1;
        const DOWN: usize = 2;

        let n = self.nodes.len();
        let mut seen = vec![false; n * 3];
        // Packed predecessor state per state; `usize::MAX` = unvisited.
        let mut parent = vec![usize::MAX; n * 3];
        // FIFO queue of packed states, drained by cursor.
        let mut queue: Vec<usize> = Vec::with_capacity(256);
        let start = fi * 3 + UP;
        seen[start] = true;
        queue.push(start);
        let mut head = 0usize;

        let mut found = usize::MAX;
        'bfs: while head < queue.len() {
            let state = queue[head];
            head += 1;
            let (ni, phase) = (state / 3, state % 3);
            let mut push = |next_state: usize| -> bool {
                if !seen[next_state] {
                    seen[next_state] = true;
                    parent[next_state] = state;
                    if next_state / 3 == ti {
                        return true;
                    }
                    queue.push(next_state);
                }
                false
            };

            if phase == UP {
                for &p in &self.dense_providers[ni] {
                    if push(p * 3 + UP) {
                        found = p * 3 + UP;
                        break 'bfs;
                    }
                }
                for &p in &self.dense_peers[ni] {
                    if push(p * 3 + PEERED) {
                        found = p * 3 + PEERED;
                        break 'bfs;
                    }
                }
            }
            for &c in &self.dense_customers[ni] {
                if push(c * 3 + DOWN) {
                    found = c * 3 + DOWN;
                    break 'bfs;
                }
            }
        }

        if found == usize::MAX {
            return None;
        }
        let mut state = found;
        let mut path = vec![self.nodes[state / 3].asn];
        while state != start {
            state = parent[state];
            path.push(self.nodes[state / 3].asn);
        }
        path.reverse();
        Some(path)
    }

    /// Valley-free paths from `from` to *every* topology node in one
    /// BFS: `paths_from(a)?[i]` equals `path(a, nodes()[i].asn)` for
    /// each dense index `i` (`None` where no valley-free path exists).
    ///
    /// Identical by construction: this is [`Topology::path`] without
    /// the early exit. The exit only skips queueing the found state,
    /// which cannot change the discovery order — and therefore the
    /// parent chain — of any state discovered before it; recording the
    /// *first* state at which each node is discovered captures exactly
    /// the state `path` would have stopped at for that target.
    ///
    /// One BFS instead of one per `(from, to)` pair is what makes a
    /// shared cross-day attribute table affordable for MRT encoding.
    ///
    /// Returns `None` when `from` is not in the topology.
    pub fn paths_from(&self, from: Asn) -> Option<Vec<Option<Vec<Asn>>>> {
        let fi = *self.index.get(&from)?;

        const UP: usize = 0;
        const PEERED: usize = 1;
        const DOWN: usize = 2;

        let n = self.nodes.len();
        let mut seen = vec![false; n * 3];
        let mut parent = vec![usize::MAX; n * 3];
        // The first state at which each node was discovered.
        let mut first = vec![usize::MAX; n];
        let mut queue: Vec<usize> = Vec::with_capacity(n);
        let start = fi * 3 + UP;
        seen[start] = true;
        first[fi] = start;
        queue.push(start);
        let mut head = 0usize;
        while head < queue.len() {
            let state = queue[head];
            head += 1;
            let (ni, phase) = (state / 3, state % 3);
            let mut push = |next_state: usize| {
                if !seen[next_state] {
                    seen[next_state] = true;
                    parent[next_state] = state;
                    if first[next_state / 3] == usize::MAX {
                        first[next_state / 3] = next_state;
                    }
                    queue.push(next_state);
                }
            };
            if phase == UP {
                for &p in &self.dense_providers[ni] {
                    push(p * 3 + UP);
                }
                for &p in &self.dense_peers[ni] {
                    push(p * 3 + PEERED);
                }
            }
            for &c in &self.dense_customers[ni] {
                push(c * 3 + DOWN);
            }
        }

        let mut out: Vec<Option<Vec<Asn>>> = Vec::with_capacity(n);
        for ti in 0..n {
            if ti == fi {
                out.push(Some(vec![from]));
                continue;
            }
            if first[ti] == usize::MAX {
                out.push(None);
                continue;
            }
            let mut state = first[ti];
            let mut path = vec![self.nodes[state / 3].asn];
            while state != start {
                state = parent[state];
                path.push(self.nodes[state / 3].asn);
            }
            path.reverse();
            out.push(Some(path));
        }
        Some(out)
    }

    /// The dense node index of an AS — the key space for flat
    /// per-node caches (e.g. the render engine's path cache).
    pub fn index_of(&self, asn: Asn) -> Option<usize> {
        self.index.get(&asn).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small() -> Topology {
        Topology::generate(&TopologyConfig {
            seed: 3,
            num_tier1: 4,
            num_tier2: 12,
            num_stubs: 80,
            multi_as_org_fraction: 0.2,
        })
    }

    #[test]
    fn generation_counts() {
        let t = small();
        assert_eq!(t.nodes().len(), 96);
        assert_eq!(t.ases_of_tier(Tier::Tier1).count(), 4);
        assert_eq!(t.ases_of_tier(Tier::Tier2).count(), 12);
        assert_eq!(t.ases_of_tier(Tier::Stub).count(), 80);
    }

    #[test]
    fn deterministic() {
        let cfg = TopologyConfig::default();
        let a = Topology::generate(&cfg);
        let b = Topology::generate(&cfg);
        assert_eq!(
            a.nodes().iter().map(|n| (n.asn, n.org)).collect::<Vec<_>>(),
            b.nodes().iter().map(|n| (n.asn, n.org)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn asns_are_routable() {
        let t = small();
        for n in t.nodes() {
            assert!(n.asn.is_routable(), "{} reserved", n.asn);
        }
    }

    #[test]
    fn every_non_tier1_has_provider() {
        let t = small();
        for n in t.nodes() {
            match n.tier {
                Tier::Tier1 => assert!(t.providers_of(n.asn).is_empty()),
                _ => assert!(!t.providers_of(n.asn).is_empty(), "{} lacks providers", n.asn),
            }
        }
    }

    #[test]
    fn multi_as_orgs_exist() {
        let t = small();
        let multi: Vec<_> = t.multi_as_orgs().collect();
        assert!(!multi.is_empty());
        for (org, ases) in multi {
            assert!(ases.len() >= 2);
            for &a in ases {
                assert_eq!(t.org_of(a), Some(org));
            }
        }
    }

    /// Validate a path is valley-free w.r.t. the topology.
    fn assert_valley_free(t: &Topology, path: &[Asn]) {
        #[derive(PartialEq, PartialOrd)]
        enum Dir {
            Up,
            Peer,
            Down,
        }
        let mut max_phase = Dir::Up;
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            let dir = if t.providers_of(a).contains(&b) {
                Dir::Up
            } else if t.peers_of(a).contains(&b) {
                Dir::Peer
            } else if t.customers_of(a).contains(&b) {
                Dir::Down
            } else {
                panic!("{a} and {b} are not adjacent");
            };
            assert!(
                dir >= max_phase,
                "valley: {:?} after {:?}",
                path.iter().map(|a| a.0).collect::<Vec<_>>(),
                a
            );
            if dir == Dir::Peer {
                assert!(max_phase < Dir::Peer, "two peer hops");
            }
            max_phase = dir;
        }
    }

    #[test]
    fn paths_exist_and_are_valley_free() {
        let t = small();
        let stubs: Vec<Asn> = t.ases_of_tier(Tier::Stub).collect();
        let mut found = 0;
        for i in (0..stubs.len()).step_by(7) {
            for j in (1..stubs.len()).step_by(11) {
                if i == j {
                    continue;
                }
                if let Some(p) = t.path(stubs[i], stubs[j]) {
                    assert_eq!(p.first(), Some(&stubs[i]));
                    assert_eq!(p.last(), Some(&stubs[j]));
                    // No duplicate ASes (loop-free).
                    let set: HashSet<_> = p.iter().collect();
                    assert_eq!(set.len(), p.len(), "loop in {p:?}");
                    assert_valley_free(&t, &p);
                    found += 1;
                }
            }
        }
        assert!(found > 10, "expected many stub-stub paths, got {found}");
    }

    #[test]
    fn path_to_self_and_unknown() {
        let t = small();
        let a = t.nodes()[0].asn;
        assert_eq!(t.path(a, a), Some(vec![a]));
        assert_eq!(t.path(a, Asn(9)), None);
        assert_eq!(t.path(Asn(9), a), None);
    }

    #[test]
    fn tier1_pair_path_is_short() {
        let t = small();
        let t1: Vec<Asn> = t.ases_of_tier(Tier::Tier1).collect();
        let p = t.path(t1[0], t1[1]).unwrap();
        assert_eq!(p.len(), 2, "tier-1s peer directly: {p:?}");
    }

    #[test]
    fn paths_from_matches_pairwise_path_exactly() {
        let t = small();
        // Sources across all tiers, targets = every node: the single
        // full BFS must reproduce the early-exit BFS verbatim (the MRT
        // attribute table relies on this equality for byte-identity).
        for (si, src) in t.nodes().iter().enumerate() {
            if !si.is_multiple_of(9) {
                continue;
            }
            let all = t.paths_from(src.asn).expect("source in topology");
            assert_eq!(all.len(), t.nodes().len());
            for (ti, node) in t.nodes().iter().enumerate() {
                assert_eq!(
                    all[ti],
                    t.path(src.asn, node.asn),
                    "paths_from({}) differs from path({}, {})",
                    src.asn,
                    src.asn,
                    node.asn
                );
            }
        }
        assert_eq!(t.paths_from(Asn(9)), None);
    }
}
