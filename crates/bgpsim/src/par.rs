//! Bounded worker pool for per-day fan-out.
//!
//! The archive pipeline is embarrassingly parallel in the date
//! dimension: rendering, encoding and inference each map an
//! independent function over day indices. This module provides that
//! map with a *deterministic merge* — results land in index order no
//! matter how the OS schedules the workers — so parallel runs are
//! byte-identical to sequential ones.
//!
//! Workers pull indices from a shared atomic counter (work stealing
//! beats static chunking when day costs are skewed, e.g. RIB days vs
//! update days). Thread count defaults to the machine's parallelism
//! and can be pinned with the `DRYWELLS_THREADS` environment variable
//! (`1` forces the sequential path).

use obs::metrics::{Counter, Gauge};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Fan-outs executed (parallel path only; the inline path is the
/// sequential baseline and stays unobserved).
fn fanouts_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| obs::metrics::counter("par_fanouts_total"))
}

/// Items pulled off the shared counter across all fan-outs.
fn items_pulled_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| obs::metrics::counter("par_items_pulled_total"))
}

/// Indices not yet claimed by any worker in the current fan-out.
/// Per-pull updates are gated on [`obs::enabled`] so the work-stealing
/// loop stays two atomic ops when nobody is tracing.
fn queue_depth() -> &'static Arc<Gauge> {
    static G: OnceLock<Arc<Gauge>> = OnceLock::new();
    G.get_or_init(|| obs::metrics::gauge("par_queue_depth"))
}

/// Fan-out bookkeeping shared by both pool variants: span + counters
/// up front, per-worker pull accounting (as debug events) after the
/// deterministic merge — workers themselves emit nothing, so traces
/// stay single-threaded and strictly nested.
struct FanoutObs {
    span: obs::Span,
}

impl FanoutObs {
    fn start(n: usize, threads: usize) -> FanoutObs {
        let span = obs::span!("par_fanout", threads = threads);
        span.add_items(n as u64);
        fanouts_total().inc();
        items_pulled_total().add(n as u64);
        if obs::enabled() {
            queue_depth().set(n as i64);
        }
        FanoutObs { span }
    }

    fn pulled(n: usize, next: usize) {
        if obs::enabled() {
            queue_depth().set(n.saturating_sub(next) as i64);
        }
    }

    fn finish(self, worker_pulls: &[usize]) {
        if self.span.is_enabled() {
            for (worker, &pulled) in worker_pulls.iter().enumerate() {
                obs::event!(obs::Level::Debug, "par_worker", worker = worker, pulled = pulled);
            }
        }
        if obs::enabled() {
            queue_depth().set(0);
        }
    }
}

/// Worker count: `DRYWELLS_THREADS` if set, else the machine's
/// available parallelism, else 1.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("DRYWELLS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Map `f` over `0..n` on `threads` workers, returning results in
/// index order. `threads <= 1` (or tiny `n`) runs inline with no
/// thread machinery, so the sequential baseline stays measurable.
///
/// Panics in `f` propagate (the pool does not swallow worker panics).
pub fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }

    let fanout = FanoutObs::start(n, threads);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut worker_pulls = vec![0usize; threads];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        FanoutObs::pulled(n, i + 1);
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        // Deterministic merge: scatter every worker's results by index.
        for (w, h) in handles.into_iter().enumerate() {
            let local = h.join().expect("pool worker panicked");
            worker_pulls[w] = local.len();
            for (i, v) in local {
                slots[i] = Some(v);
            }
        }
    });
    fanout.finish(&worker_pulls);
    slots
        .into_iter()
        .map(|o| o.expect("every index produced a result"))
        .collect()
}

/// Convenience: [`map_indexed`] at the default thread count.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_indexed(n, num_threads(), f)
}

/// Split `0..n` into at most `chunks` contiguous, near-equal ranges
/// (the first `n % chunks` ranges get one extra item). The split is a
/// pure function of `(n, chunks)`, so the chunk boundaries — and with
/// them the seed days of incremental sweeps — are reproducible.
pub fn chunk_ranges(n: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    let chunks = chunks.max(1).min(n.max(1));
    let base = n / chunks;
    let extra = n % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        if len == 0 {
            continue;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Run `f` once per contiguous range, one worker per range, and
/// concatenate the per-range outputs in range order.
///
/// This is the fan-out primitive for *incremental* day sweeps: each
/// worker seeds full state at its range start and patches forward, so
/// unlike [`map_indexed`] the items inside a range are processed in
/// order by one worker. Determinism contract: `f(range)` must be a
/// pure function of the range (each item's output independent of which
/// range contains it), which makes the concatenation byte-identical
/// for any chunking — including the single-range sequential path.
///
/// Panics if `f` returns the wrong number of items for a range, or if
/// a worker panics.
pub fn map_chunked_with<T, F>(ranges: &[std::ops::Range<usize>], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
{
    let total: usize = ranges.iter().map(ExactSizeIterator::len).sum();
    if ranges.len() <= 1 {
        let mut out = Vec::with_capacity(total);
        for r in ranges {
            let part = f(r.clone());
            assert_eq!(part.len(), r.len(), "chunk produced a wrong item count");
            out.extend(part);
        }
        return out;
    }
    let fanout = FanoutObs::start(total, ranges.len());
    let mut worker_pulls = vec![0usize; ranges.len()];
    let mut out = Vec::with_capacity(total);
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|r| {
                let r = r.clone();
                let f = &f;
                s.spawn(move || {
                    let part = f(r.clone());
                    assert_eq!(part.len(), r.len(), "chunk produced a wrong item count");
                    part
                })
            })
            .collect();
        // Deterministic merge: ranges are contiguous and ordered, so
        // concatenating per-range outputs in range order is the
        // index-ordered merge.
        for (w, h) in handles.into_iter().enumerate() {
            // Re-raise worker panics with their original payload so a
            // failed chunk invariant reads the same at any thread
            // count.
            let part = match h.join() {
                Ok(p) => p,
                Err(e) => std::panic::resume_unwind(e),
            };
            worker_pulls[w] = part.len();
            out.extend(part);
        }
    });
    fanout.finish(&worker_pulls);
    out
}

/// Convenience: [`map_chunked_with`] over the default balanced split.
pub fn map_chunked<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
{
    map_chunked_with(&chunk_ranges(n, threads), f)
}

/// Like [`map_indexed`], but each worker carries private mutable state
/// built by `init` — e.g. a memoization cache that is expensive to
/// rebuild per item but cannot be shared across threads.
///
/// Correctness requirement: `f`'s *output* must not depend on the
/// state's history (the state may only be used as a pure cache),
/// otherwise results would depend on which worker picked which index.
pub fn map_indexed_local<T, S, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }

    let fanout = FanoutObs::start(n, threads);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut worker_pulls = vec![0usize; threads];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut state = init();
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        FanoutObs::pulled(n, i + 1);
                        local.push((i, f(&mut state, i)));
                    }
                    local
                })
            })
            .collect();
        for (w, h) in handles.into_iter().enumerate() {
            let local = h.join().expect("pool worker panicked");
            worker_pulls[w] = local.len();
            for (i, v) in local {
                slots[i] = Some(v);
            }
        }
    });
    fanout.finish(&worker_pulls);
    slots
        .into_iter()
        .map(|o| o.expect("every index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        for threads in [1, 2, 3, 8] {
            let out = map_indexed(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_sequential_with_skewed_costs() {
        let work = |i: usize| {
            // Skew: every 7th item is much heavier.
            let reps = if i.is_multiple_of(7) { 5000 } else { 50 };
            let mut acc = i as u64;
            for _ in 0..reps {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            }
            acc
        };
        let seq = map_indexed(64, 1, work);
        let par = map_indexed(64, 4, work);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn local_state_variant_matches_stateless() {
        // A memoizing worker-local cache must not change results.
        use std::collections::HashMap;
        let work = |cache: &mut HashMap<usize, u64>, i: usize| -> u64 {
            let base = *cache
                .entry(i % 5)
                .or_insert_with(|| (i % 5) as u64 * 1000);
            base + i as u64
        };
        let seq = map_indexed_local(50, 1, HashMap::new, work);
        for threads in [2, 4, 8] {
            assert_eq!(map_indexed_local(50, threads, HashMap::new, work), seq);
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 2, 7, 64, 100] {
            for chunks in [1usize, 2, 3, 4, 13] {
                let ranges = chunk_ranges(n, chunks);
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next, "ranges must be contiguous");
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, n, "ranges must cover 0..{n}");
                assert!(ranges.len() <= chunks.max(1));
                // Near-equal: sizes differ by at most one.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(ExactSizeIterator::len).min(),
                    ranges.iter().map(ExactSizeIterator::len).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn chunked_matches_sequential_for_any_split() {
        let work = |r: std::ops::Range<usize>| r.map(|i| i * 31 + 7).collect::<Vec<_>>();
        let seq = map_chunked(40, 1, work);
        assert_eq!(seq, (0..40).map(|i| i * 31 + 7).collect::<Vec<_>>());
        for threads in [2, 3, 4, 8] {
            assert_eq!(map_chunked(40, threads, work), seq);
        }
        // Arbitrary (non-balanced) boundaries are also fine.
        let ranges = vec![0..1, 1..17, 17..18, 18..40];
        assert_eq!(map_chunked_with(&ranges, work), seq);
    }

    #[test]
    #[should_panic(expected = "wrong item count")]
    fn chunked_rejects_short_output() {
        let _ = map_chunked(10, 2, |_r| vec![0usize]);
    }

    #[test]
    #[should_panic(expected = "pool worker panicked")]
    fn worker_panic_propagates() {
        let _ = map_indexed(8, 2, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
