//! The archive query engine: a flattened per-prefix element stream
//! over both MRT codecs, a composable filter language, and a
//! deterministic parallel scan.
//!
//! Real-world analogues (`bgpkit-parser`, `bgpdump`) flatten MRT's
//! nested records — peer tables, per-peer RIB entries, multi-NLRI
//! UPDATEs — into one element per `(prefix, peer)`: the shape every
//! downstream analysis wants. [`BgpElem`] is that flattening for both
//! archive formats here:
//!
//! * RFC 6396 RIB files ([`crate::mrt2`]): each `RIB_IPV4_UNICAST`
//!   entry becomes one [`ElemKind::Rib`] element, with the peer
//!   resolved through the file's `PEER_INDEX_TABLE` and origin/path
//!   pulled from the entry's BGP attributes,
//! * RFC 6396 update files: each announced NLRI becomes an
//!   [`ElemKind::Announce`], each withdrawn prefix an
//!   [`ElemKind::Withdraw`],
//! * compact day files ([`crate::mrt`]): each route observation
//!   becomes an [`ElemKind::Observation`] (no peer — the compact
//!   format aggregates monitors).
//!
//! Scans run in one of two parse modes. *Strict* fails the query on
//! the first structural error. *Lossy* skips damaged records and
//! accounts for every byte and record through
//! [`crate::mrt2::LossyStats`] — per-reason skip counters plus the
//! abandoned-tail bytes when a corrupt length field aborts a file's
//! scan. Multi-file scans fan out through [`crate::par`] and merge in
//! file-index order, so output is byte-identical at any worker count.

use crate::collector::CollectorArchive;
use crate::mrt::{DayReader, MrtError};
use crate::mrt2::{self, LossyStats, MrtRecord, RecordReader};
use crate::updates::CollectorArchiveV2;
use crate::{bgp, par};
use bytes::Bytes;
use nettypes::asn::{Asn, Origin};
use nettypes::date::Date;
use nettypes::prefix::Prefix;
use std::fmt::{self, Write as _};

// --- elements ---------------------------------------------------------

/// What kind of archive record an element came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ElemKind {
    /// A RIB snapshot entry (`RIB_IPV4_UNICAST`).
    Rib,
    /// An announced NLRI from a BGP UPDATE.
    Announce,
    /// A withdrawn prefix from a BGP UPDATE.
    Withdraw,
    /// A route observation from a compact day file.
    Observation,
}

impl ElemKind {
    const ALL: [ElemKind; 4] = [
        ElemKind::Rib,
        ElemKind::Announce,
        ElemKind::Withdraw,
        ElemKind::Observation,
    ];

    /// The lowercase wire name used in filters and output rows.
    pub fn name(&self) -> &'static str {
        match self {
            ElemKind::Rib => "rib",
            ElemKind::Announce => "announce",
            ElemKind::Withdraw => "withdraw",
            ElemKind::Observation => "obs",
        }
    }
}

impl fmt::Display for ElemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ElemKind {
    type Err = FilterError;

    fn from_str(s: &str) -> Result<ElemKind, FilterError> {
        ElemKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| FilterError(format!("unknown element kind {s:?}")))
    }
}

/// One flattened per-prefix element: the unit every filter and output
/// row operates on.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BgpElem {
    /// The archive day the element came from.
    pub day: Date,
    /// Record timestamp (Unix seconds; midnight for compact files).
    pub timestamp: u32,
    /// Record kind.
    pub kind: ElemKind,
    /// The prefix.
    pub prefix: Prefix,
    /// Origin AS (or AS_SET); absent for withdrawals.
    pub origin: Option<Origin>,
    /// The collector peer that contributed the element; absent for
    /// compact observations (monitor-aggregated).
    pub peer: Option<Asn>,
    /// The AS path, flattened (empty for withdrawals).
    pub path: Vec<Asn>,
}

// --- filter language --------------------------------------------------

/// A filter string failed to parse.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FilterError(pub String);

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad filter: {}", self.0)
    }
}

impl std::error::Error for FilterError {}

/// How a prefix clause matches an element's prefix.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrefixMatch {
    /// Exactly this prefix.
    Exact(Prefix),
    /// The element's prefix is contained in (or equals) this one.
    SubnetOf(Prefix),
    /// The element's prefix contains (or equals) this one.
    SupernetOf(Prefix),
}

impl PrefixMatch {
    fn matches(&self, p: &Prefix) -> bool {
        match self {
            PrefixMatch::Exact(q) => p == q,
            PrefixMatch::SubnetOf(q) => q.covers(p),
            PrefixMatch::SupernetOf(q) => p.covers(q),
        }
    }
}

/// One token of an AS-path pattern.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PathToken {
    /// A literal ASN.
    Literal(Asn),
    /// Any single ASN (`?`).
    One,
    /// Any (possibly empty) run of ASNs (`*`).
    Star,
}

/// An anchored AS-path pattern: comma-separated tokens where `*`
/// matches any run of ASNs, `?` matches exactly one, and a number
/// matches that ASN. `64500,*` is "originated-or-transited first by
/// 64500"; `*,3333` is "origin 3333"; `*` alone matches everything.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PathPattern {
    tokens: Vec<PathToken>,
}

impl PathPattern {
    /// Parse a comma-separated pattern; empty strings are rejected.
    pub fn parse(s: &str) -> Result<PathPattern, FilterError> {
        if s.is_empty() {
            return Err(FilterError("empty path pattern".into()));
        }
        let tokens = s
            .split(',')
            .map(|t| match t {
                "*" => Ok(PathToken::Star),
                "?" => Ok(PathToken::One),
                n => n
                    .parse::<Asn>()
                    .map(PathToken::Literal)
                    .map_err(|_| FilterError(format!("bad path token {t:?}"))),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PathPattern { tokens })
    }

    /// Anchored match over the whole path (greedy two-pointer glob).
    pub fn matches(&self, path: &[Asn]) -> bool {
        let toks = &self.tokens;
        let (mut p, mut s) = (0usize, 0usize);
        let mut star: Option<(usize, usize)> = None;
        while s < path.len() {
            let tok = toks.get(p);
            match tok {
                Some(PathToken::Literal(a)) if *a == path[s] => {
                    p += 1;
                    s += 1;
                }
                Some(PathToken::One) => {
                    p += 1;
                    s += 1;
                }
                Some(PathToken::Star) => {
                    star = Some((p, s));
                    p += 1;
                }
                _ => match star {
                    Some((sp, ss)) => {
                        p = sp + 1;
                        s = ss + 1;
                        star = Some((sp, ss + 1));
                    }
                    None => return false,
                },
            }
        }
        while toks.get(p) == Some(&PathToken::Star) {
            p += 1;
        }
        p == toks.len()
    }
}

impl fmt::Display for PathPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.tokens.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            match t {
                PathToken::Literal(a) => write!(f, "{}", a.0)?,
                PathToken::One => f.write_str("?")?,
                PathToken::Star => f.write_str("*")?,
            }
        }
        Ok(())
    }
}

/// A composable element filter. Parsed from whitespace-separated
/// `key=value` clauses; [`fmt::Display`] renders the canonical form,
/// and `parse(display(f)) == f` (round-trip) always holds.
///
/// | clause | meaning |
/// |---|---|
/// | `prefix=P` | exact prefix |
/// | `subnet-of=P` | element prefix inside `P` (inclusive) |
/// | `supernet-of=P` | element prefix covering `P` (inclusive) |
/// | `origin=A\|B\|…` | origin AS intersects the set |
/// | `peer=A` | collector peer AS |
/// | `days=D`, `days=D1..D2`, `days=D1..`, `days=..D2` | day range (inclusive) |
/// | `path=64500,*,3333` | anchored AS-path glob (`*` any run, `?` one hop) |
/// | `kind=rib\|announce\|withdraw\|obs` | record kinds |
///
/// An empty string parses to the match-everything filter.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Filter {
    /// Prefix clause.
    pub prefix: Option<PrefixMatch>,
    /// Origin ASNs (an element matches when its origin intersects).
    pub origins: Option<Vec<Asn>>,
    /// Collector peer ASN.
    pub peer: Option<Asn>,
    /// Inclusive day range; open ends allowed.
    pub days: Option<(Option<Date>, Option<Date>)>,
    /// AS-path pattern.
    pub path: Option<PathPattern>,
    /// Record kinds to keep.
    pub kinds: Option<Vec<ElemKind>>,
}

fn parse_prefix(v: &str) -> Result<Prefix, FilterError> {
    v.parse::<Prefix>()
        .map_err(|e| FilterError(format!("bad prefix {v:?}: {e}")))
}

fn parse_asn(v: &str) -> Result<Asn, FilterError> {
    v.parse::<Asn>()
        .map_err(|_| FilterError(format!("bad ASN {v:?}")))
}

fn parse_date(v: &str) -> Result<Date, FilterError> {
    v.parse::<Date>()
        .map_err(|_| FilterError(format!("bad date {v:?} (want YYYY-MM-DD)")))
}

fn parse_days(v: &str) -> Result<(Option<Date>, Option<Date>), FilterError> {
    match v.split_once("..") {
        None => {
            let d = parse_date(v)?;
            Ok((Some(d), Some(d)))
        }
        Some(("", "")) => Err(FilterError("empty day range \"..\"".into())),
        Some((a, "")) => Ok((Some(parse_date(a)?), None)),
        Some(("", b)) => Ok((None, Some(parse_date(b)?))),
        Some((a, b)) => {
            let (start, end) = (parse_date(a)?, parse_date(b)?);
            if start > end {
                return Err(FilterError(format!("day range {v:?} runs backwards")));
            }
            Ok((Some(start), Some(end)))
        }
    }
}

impl Filter {
    /// Parse a filter string. Unknown or duplicate keys are errors
    /// (silently ignoring a typoed clause would silently widen the
    /// result set).
    pub fn parse(s: &str) -> Result<Filter, FilterError> {
        let mut f = Filter::default();
        for clause in s.split_whitespace() {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| FilterError(format!("clause {clause:?} is not key=value")))?;
            let dup = match key {
                "prefix" | "subnet-of" | "supernet-of" => {
                    let p = parse_prefix(value)?;
                    let m = match key {
                        "prefix" => PrefixMatch::Exact(p),
                        "subnet-of" => PrefixMatch::SubnetOf(p),
                        _ => PrefixMatch::SupernetOf(p),
                    };
                    f.prefix.replace(m).is_some()
                }
                "origin" => {
                    let asns = value
                        .split('|')
                        .map(parse_asn)
                        .collect::<Result<Vec<_>, _>>()?;
                    if asns.is_empty() {
                        return Err(FilterError("empty origin set".into()));
                    }
                    f.origins.replace(asns).is_some()
                }
                "peer" => f.peer.replace(parse_asn(value)?).is_some(),
                "days" => f.days.replace(parse_days(value)?).is_some(),
                "path" => f.path.replace(PathPattern::parse(value)?).is_some(),
                "kind" => {
                    let kinds = value
                        .split('|')
                        .map(str::parse::<ElemKind>)
                        .collect::<Result<Vec<_>, _>>()?;
                    f.kinds.replace(kinds).is_some()
                }
                _ => return Err(FilterError(format!("unknown filter key {key:?}"))),
            };
            if dup {
                return Err(FilterError(format!(
                    "duplicate or conflicting clause for {key:?}"
                )));
            }
        }
        Ok(f)
    }

    /// True when `elem` passes every clause.
    pub fn matches(&self, elem: &BgpElem) -> bool {
        if let Some(pm) = &self.prefix {
            if !pm.matches(&elem.prefix) {
                return false;
            }
        }
        if let Some(origins) = &self.origins {
            let hit = match &elem.origin {
                Some(Origin::Single(a)) => origins.contains(a),
                Some(Origin::Set(set)) => set.iter().any(|a| origins.contains(a)),
                None => false,
            };
            if !hit {
                return false;
            }
        }
        if let Some(peer) = self.peer {
            if elem.peer != Some(peer) {
                return false;
            }
        }
        if !self.day_in_range(elem.day) {
            return false;
        }
        if let Some(pat) = &self.path {
            if !pat.matches(&elem.path) {
                return false;
            }
        }
        if let Some(kinds) = &self.kinds {
            if !kinds.contains(&elem.kind) {
                return false;
            }
        }
        true
    }

    /// True when `d` passes the day clause (used to prune whole files
    /// before decoding a byte of them).
    pub fn day_in_range(&self, d: Date) -> bool {
        match self.days {
            None => true,
            Some((start, end)) => {
                start.is_none_or(|s| d >= s) && end.is_none_or(|e| d <= e)
            }
        }
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        let mut clause = |f: &mut fmt::Formatter<'_>, text: String| {
            let r = write!(f, "{sep}{text}");
            sep = " ";
            r
        };
        match &self.prefix {
            Some(PrefixMatch::Exact(p)) => clause(f, format!("prefix={p}"))?,
            Some(PrefixMatch::SubnetOf(p)) => clause(f, format!("subnet-of={p}"))?,
            Some(PrefixMatch::SupernetOf(p)) => clause(f, format!("supernet-of={p}"))?,
            None => {}
        }
        if let Some(origins) = &self.origins {
            let joined = origins
                .iter()
                .map(|a| a.0.to_string())
                .collect::<Vec<_>>()
                .join("|");
            clause(f, format!("origin={joined}"))?;
        }
        if let Some(peer) = self.peer {
            clause(f, format!("peer={}", peer.0))?;
        }
        match self.days {
            Some((Some(a), Some(b))) if a == b => clause(f, format!("days={a}"))?,
            Some((Some(a), Some(b))) => clause(f, format!("days={a}..{b}"))?,
            Some((Some(a), None)) => clause(f, format!("days={a}.."))?,
            Some((None, Some(b))) => clause(f, format!("days=..{b}"))?,
            Some((None, None)) | None => {}
        }
        if let Some(pat) = &self.path {
            clause(f, format!("path={pat}"))?;
        }
        if let Some(kinds) = &self.kinds {
            let joined = kinds
                .iter()
                .map(|k| k.name())
                .collect::<Vec<_>>()
                .join("|");
            clause(f, format!("kind={joined}"))?;
        }
        Ok(())
    }
}

// --- scanning ---------------------------------------------------------

/// Which codec a query input file speaks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FileKind {
    /// RFC 6396 `TABLE_DUMP_V2` RIB file.
    Rib,
    /// RFC 6396 `BGP4MP` update file.
    Updates,
    /// Compact day file ([`crate::mrt`]).
    CompactDay,
}

/// One input file for a query: a day's worth of archive bytes.
#[derive(Clone, Debug)]
pub struct QueryFile {
    /// The day the file covers.
    pub day: Date,
    /// Which codec to decode it with.
    pub kind: FileKind,
    /// The file's bytes (refcounted; cloning is cheap).
    pub bytes: Bytes,
}

/// Output encoding for query rows.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OutputFormat {
    /// Comma-separated values, with a header row.
    Csv,
    /// One JSON object per line.
    Jsonl,
}

impl OutputFormat {
    /// The HTTP content type for this format.
    pub fn content_type(&self) -> &'static str {
        match self {
            OutputFormat::Csv => "text/csv",
            OutputFormat::Jsonl => "application/x-ndjson",
        }
    }
}

impl std::str::FromStr for OutputFormat {
    type Err = FilterError;

    fn from_str(s: &str) -> Result<OutputFormat, FilterError> {
        match s {
            "csv" => Ok(OutputFormat::Csv),
            "jsonl" => Ok(OutputFormat::Jsonl),
            _ => Err(FilterError(format!(
                "unknown format {s:?} (want csv or jsonl)"
            ))),
        }
    }
}

/// How a query scan went wrong.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QueryError {
    /// A file failed to decode in strict mode.
    Decode {
        /// The file's day.
        day: Date,
        /// Human-readable decode error.
        detail: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Decode { day, detail } => {
                write!(f, "archive file for {day} failed to decode: {detail}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Query knobs: what to keep, how to print it, how to parse, how wide
/// to fan out.
#[derive(Clone, Debug)]
pub struct QueryOptions {
    /// The element filter.
    pub filter: Filter,
    /// Output encoding.
    pub format: OutputFormat,
    /// Skip damaged records (with accounting) instead of failing.
    pub lossy: bool,
    /// Keep at most this many rows (applied after the deterministic
    /// merge, so the same rows survive at any worker count).
    pub limit: Option<usize>,
    /// Worker threads for the multi-file fan-out.
    pub threads: usize,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            filter: Filter::default(),
            format: OutputFormat::Csv,
            lossy: false,
            limit: None,
            threads: par::num_threads(),
        }
    }
}

/// Scan accounting, aggregated across all files of a query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Files actually decoded.
    pub files_scanned: usize,
    /// Files pruned by the day clause without decoding.
    pub files_pruned: usize,
    /// Elements decoded and offered to the filter.
    pub elems_scanned: usize,
    /// Rows that passed the filter (before the row limit).
    pub rows_matched: usize,
    /// Rows actually emitted (after the row limit).
    pub rows_emitted: usize,
    /// Lossy-parse accounting (all zeros in strict mode).
    pub lossy: LossyStats,
}

/// A finished query: the formatted body plus its accounting.
#[derive(Clone, Debug)]
pub struct QueryOutput {
    /// The full response body (header line included for CSV).
    pub body: String,
    /// Scan accounting.
    pub stats: QueryStats,
}

/// The CSV header row.
pub const CSV_HEADER: &str = "day,kind,prefix,origin,peer,path\n";

fn write_origin_csv(out: &mut String, origin: &Option<Origin>) {
    match origin {
        None => {}
        Some(Origin::Single(a)) => {
            let _ = write!(out, "{}", a.0);
        }
        Some(Origin::Set(set)) => {
            for (i, a) in set.iter().enumerate() {
                if i > 0 {
                    out.push('|');
                }
                let _ = write!(out, "{}", a.0);
            }
        }
    }
}

fn write_row(out: &mut String, format: OutputFormat, e: &BgpElem) {
    match format {
        OutputFormat::Csv => {
            let _ = write!(out, "{},{},{},", e.day, e.kind, e.prefix);
            write_origin_csv(out, &e.origin);
            out.push(',');
            if let Some(p) = e.peer {
                let _ = write!(out, "{}", p.0);
            }
            out.push(',');
            for (i, a) in e.path.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{}", a.0);
            }
            out.push('\n');
        }
        OutputFormat::Jsonl => {
            // Every value is a date, a keyword, or numeric — nothing
            // needs JSON string escaping.
            let _ = write!(
                out,
                "{{\"day\":\"{}\",\"kind\":\"{}\",\"prefix\":\"{}\",\"origin\":",
                e.day, e.kind, e.prefix
            );
            match &e.origin {
                None => out.push_str("null"),
                Some(Origin::Single(a)) => {
                    let _ = write!(out, "[{}]", a.0);
                }
                Some(Origin::Set(set)) => {
                    out.push('[');
                    for (i, a) in set.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{}", a.0);
                    }
                    out.push(']');
                }
            }
            out.push_str(",\"peer\":");
            match e.peer {
                None => out.push_str("null"),
                Some(p) => {
                    let _ = write!(out, "{}", p.0);
                }
            }
            out.push_str(",\"path\":[");
            for (i, a) in e.path.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", a.0);
            }
            out.push_str("]}\n");
        }
    }
}

/// Origin and flattened path from raw BGP attribute bytes.
fn origin_and_path(attrs: &[bgp::PathAttribute]) -> (Option<Origin>, Vec<Asn>) {
    use bgp::AsPathSegment;
    for a in attrs {
        if let bgp::PathAttribute::AsPath(segs) = a {
            let mut path = Vec::new();
            for s in segs {
                match s {
                    AsPathSegment::Sequence(v) | AsPathSegment::Set(v) => {
                        path.extend_from_slice(v)
                    }
                }
            }
            let origin = match segs.last() {
                Some(AsPathSegment::Sequence(v)) => v.last().copied().map(Origin::Single),
                Some(AsPathSegment::Set(v)) => Some(Origin::Set(v.clone())),
                None => None,
            };
            return (origin, path);
        }
    }
    (None, Vec::new())
}

/// Per-file scan result (rows already formatted so the merge is a
/// cheap string concatenation).
struct FileScan {
    rows: String,
    nrows: usize,
    elems: usize,
    lossy: LossyStats,
}

fn decode_error(day: Date, detail: impl fmt::Display) -> QueryError {
    QueryError::Decode {
        day,
        detail: detail.to_string(),
    }
}

/// Feed one mrt2 record's elements through the filter.
#[allow(clippy::too_many_arguments)]
fn mrt2_record_elems(
    file: &QueryFile,
    rec: &mrt2::TimestampedRecord,
    peers: &mut Vec<Asn>,
    lossy: bool,
    scan: &mut FileScan,
    filter: &Filter,
    format: OutputFormat,
) -> Result<(), QueryError> {
    let emit = |scan: &mut FileScan, elem: &BgpElem| {
        scan.elems += 1;
        if filter.matches(elem) {
            write_row(&mut scan.rows, format, elem);
            scan.nrows += 1;
        }
    };
    match &rec.record {
        MrtRecord::PeerIndexTable(t) => {
            *peers = t.peers.iter().map(|p| p.asn).collect();
        }
        MrtRecord::RibIpv4Unicast(r) => {
            for entry in &r.entries {
                let attrs = match bgp::decode_attributes(&entry.attributes) {
                    Ok(a) => a,
                    Err(e) if lossy => {
                        scan.lossy.skipped_bgp += 1;
                        let _ = e;
                        continue;
                    }
                    Err(e) => return Err(decode_error(file.day, e)),
                };
                let (origin, path) = origin_and_path(&attrs);
                let elem = BgpElem {
                    day: file.day,
                    timestamp: entry.originated_time,
                    kind: ElemKind::Rib,
                    prefix: r.prefix,
                    origin,
                    peer: peers.get(entry.peer_index as usize).copied(),
                    path,
                };
                emit(scan, &elem);
            }
        }
        MrtRecord::Bgp4mpMessage(m) => {
            if let bgp::BgpMessage::Update(u) = &m.message {
                let (origin, path) = origin_and_path(&u.attributes);
                for prefix in &u.withdrawn {
                    let elem = BgpElem {
                        day: file.day,
                        timestamp: rec.timestamp,
                        kind: ElemKind::Withdraw,
                        prefix: *prefix,
                        origin: None,
                        peer: Some(m.peer_as),
                        path: Vec::new(),
                    };
                    emit(scan, &elem);
                }
                for prefix in &u.nlri {
                    let elem = BgpElem {
                        day: file.day,
                        timestamp: rec.timestamp,
                        kind: ElemKind::Announce,
                        prefix: *prefix,
                        origin: origin.clone(),
                        peer: Some(m.peer_as),
                        path: path.clone(),
                    };
                    emit(scan, &elem);
                }
            }
        }
        MrtRecord::Unknown { .. } => {}
    }
    Ok(())
}

fn scan_mrt2_file(
    file: &QueryFile,
    filter: &Filter,
    format: OutputFormat,
    lossy: bool,
) -> Result<FileScan, QueryError> {
    let mut scan = FileScan {
        rows: String::new(),
        nrows: 0,
        elems: 0,
        lossy: LossyStats::default(),
    };
    // Peer table state carries across records within one file.
    let mut peers: Vec<Asn> = Vec::new();
    if lossy {
        let mut reader = RecordReader::new(&file.bytes);
        for rec in reader.by_ref() {
            mrt2_record_elems(file, &rec, &mut peers, true, &mut scan, filter, format)?;
        }
        scan.lossy.merge(&reader.stats());
        scan.lossy.emit();
    } else {
        let records =
            mrt2::decode_file(&file.bytes).map_err(|e| decode_error(file.day, e))?;
        for rec in &records {
            mrt2_record_elems(file, rec, &mut peers, false, &mut scan, filter, format)?;
        }
    }
    Ok(scan)
}

fn scan_compact_file(
    file: &QueryFile,
    filter: &Filter,
    format: OutputFormat,
    lossy: bool,
) -> Result<FileScan, QueryError> {
    let mut scan = FileScan {
        rows: String::new(),
        nrows: 0,
        elems: 0,
        lossy: LossyStats::default(),
    };
    let mut reader = match DayReader::new(&file.bytes) {
        Ok(r) => r,
        Err(e) if lossy => {
            // An unreadable header leaves the whole file unexamined.
            scan.lossy.aborted = true;
            scan.lossy.bytes_unscanned = file.bytes.len();
            let _ = e;
            scan.lossy.emit();
            return Ok(scan);
        }
        Err(e) => return Err(decode_error(file.day, e)),
    };
    let day = reader.date();
    let midnight = u32::try_from(day.days_since_epoch().max(0) as u64 * 86_400)
        .unwrap_or(u32::MAX);
    for item in reader.by_ref() {
        match item {
            Ok(r) => {
                scan.elems += 1;
                scan.lossy.decoded += usize::from(lossy);
                let elem = BgpElem {
                    day: file.day,
                    timestamp: midnight,
                    kind: ElemKind::Observation,
                    prefix: r.prefix,
                    origin: Some(r.origin),
                    peer: None,
                    path: r.path.to_vec(),
                };
                if filter.matches(&elem) {
                    write_row(&mut scan.rows, format, &elem);
                    scan.nrows += 1;
                }
            }
            Err(e) if lossy => {
                // The compact format has no per-record framing to
                // resync on, so the first damaged record abandons the
                // rest of the file — but with full accounting.
                match e {
                    MrtError::Truncated => scan.lossy.skipped_truncated += 1,
                    _ => scan.lossy.skipped_malformed += 1,
                }
                scan.lossy.aborted = true;
                scan.lossy.bytes_unscanned = reader.remaining();
                break;
            }
            Err(e) => return Err(decode_error(file.day, e)),
        }
    }
    if lossy {
        scan.lossy.bytes_scanned = file.bytes.len() - scan.lossy.bytes_unscanned;
        scan.lossy.emit();
    }
    Ok(scan)
}

fn scan_file(
    file: &QueryFile,
    filter: &Filter,
    format: OutputFormat,
    lossy: bool,
) -> Result<FileScan, QueryError> {
    match file.kind {
        FileKind::Rib | FileKind::Updates => scan_mrt2_file(file, filter, format, lossy),
        FileKind::CompactDay => scan_compact_file(file, filter, format, lossy),
    }
}

/// Run a query over `files`: prune by day, fan the survivors out over
/// [`par::map_indexed`], merge per-file row blocks in file-index order
/// (byte-identical at any worker count), then apply the row limit.
pub fn run_query(files: &[QueryFile], opts: &QueryOptions) -> Result<QueryOutput, QueryError> {
    let kept: Vec<&QueryFile> = files
        .iter()
        .filter(|f| opts.filter.day_in_range(f.day))
        .collect();
    let span = obs::span!(
        "query_scan",
        files = kept.len(),
        threads = opts.threads,
        unit = "files"
    );
    let scans = par::map_indexed(kept.len(), opts.threads, |i| {
        scan_file(kept[i], &opts.filter, opts.format, opts.lossy)
    });

    let mut stats = QueryStats {
        files_pruned: files.len() - kept.len(),
        ..QueryStats::default()
    };
    let mut body = String::new();
    if opts.format == OutputFormat::Csv {
        body.push_str(CSV_HEADER);
    }
    let budget = opts.limit.unwrap_or(usize::MAX);
    for scan in scans {
        let scan = scan?;
        stats.files_scanned += 1;
        stats.elems_scanned += scan.elems;
        stats.rows_matched += scan.nrows;
        stats.lossy.merge(&scan.lossy);
        let room = budget - stats.rows_emitted;
        if room == 0 {
            continue; // keep aggregating stats; the body is full
        }
        if scan.nrows <= room {
            body.push_str(&scan.rows);
            stats.rows_emitted += scan.nrows;
        } else {
            // The limit lands inside this file's block: take whole
            // lines up to the budget.
            for line in scan.rows.split_inclusive('\n').take(room) {
                body.push_str(line);
            }
            stats.rows_emitted += room;
        }
    }
    span.add_items(stats.files_scanned as u64);
    obs::metrics::counter("query_rows_total").add(stats.rows_emitted as u64);
    obs::metrics::counter("query_files_scanned_total").add(stats.files_scanned as u64);
    Ok(QueryOutput { body, stats })
}

/// The RFC 6396 archive as query input files (RIBs then updates, in
/// date order — the deterministic scan order the merge relies on).
pub fn files_from_archive_v2(archive: &CollectorArchiveV2) -> Vec<QueryFile> {
    let mut files = Vec::new();
    for d in archive.rib_dates() {
        if let Some(bytes) = archive.rib_bytes(d) {
            files.push(QueryFile {
                day: d,
                kind: FileKind::Rib,
                bytes: bytes.clone(),
            });
        }
    }
    for d in archive.update_dates() {
        if let Some(bytes) = archive.update_bytes(d) {
            files.push(QueryFile {
                day: d,
                kind: FileKind::Updates,
                bytes: bytes.clone(),
            });
        }
    }
    files
}

/// Read an on-disk archive directory written by
/// [`CollectorArchiveV2::write_dir`] (plus optional compact
/// `day-YYYY-MM-DD.mrtd` files) into query input files. Unrecognized
/// file names are ignored; the result is ordered RIBs → updates →
/// compact days, each by date, independent of directory iteration
/// order.
pub fn files_from_dir(dir: &std::path::Path) -> std::io::Result<Vec<QueryFile>> {
    let mut ribs: Vec<(Date, std::path::PathBuf)> = Vec::new();
    let mut updates: Vec<(Date, std::path::PathBuf)> = Vec::new();
    let mut compact: Vec<(Date, std::path::PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let parsed = name
            .strip_prefix("rib-")
            .and_then(|r| r.strip_suffix(".mrt"))
            .map(|d| (&mut ribs, d))
            .or_else(|| {
                name.strip_prefix("updates-")
                    .and_then(|r| r.strip_suffix(".mrt"))
                    .map(|d| (&mut updates, d))
            })
            .or_else(|| {
                name.strip_prefix("day-")
                    .and_then(|r| r.strip_suffix(".mrtd"))
                    .map(|d| (&mut compact, d))
            });
        if let Some((bucket, datestr)) = parsed {
            if let Ok(d) = datestr.parse::<Date>() {
                bucket.push((d, entry.path()));
            }
        }
    }
    let mut files = Vec::new();
    for (bucket, kind) in [
        (&mut ribs, FileKind::Rib),
        (&mut updates, FileKind::Updates),
        (&mut compact, FileKind::CompactDay),
    ] {
        bucket.sort_by_key(|(d, _)| *d);
        for (day, path) in bucket.iter() {
            files.push(QueryFile {
                day: *day,
                kind,
                bytes: Bytes::from(std::fs::read(path)?),
            });
        }
    }
    Ok(files)
}

/// A compact collector archive as query input files, in date order.
pub fn files_from_compact(archive: &CollectorArchive) -> Vec<QueryFile> {
    archive
        .dates()
        .filter_map(|d| {
            archive.raw(d).map(|bytes| QueryFile {
                day: d,
                kind: FileKind::CompactDay,
                bytes: bytes.clone(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrt2::{encode_file, Bgp4mpMessage, PeerEntry, PeerIndexTable, TimestampedRecord};
    use nettypes::date::date;
    use nettypes::prefix::pfx;

    fn asn(n: u32) -> Asn {
        Asn(n)
    }

    fn sample_update_file() -> Bytes {
        let records = vec![
            TimestampedRecord {
                timestamp: 1_514_764_800,
                record: MrtRecord::Bgp4mpMessage(Bgp4mpMessage {
                    peer_as: asn(12654),
                    local_as: asn(12654),
                    interface: 0,
                    peer_ip: 0x0A00_0001,
                    local_ip: 0x0A00_00FE,
                    message: bgp::BgpMessage::Update(bgp::UpdateMessage::announce(
                        vec![pfx("193.0.0.0/21"), pfx("10.1.0.0/16")],
                        vec![asn(12654), asn(3333), asn(64500)],
                        0x0A00_0001,
                    )),
                }),
            },
            TimestampedRecord {
                timestamp: 1_514_764_900,
                record: MrtRecord::Bgp4mpMessage(Bgp4mpMessage {
                    peer_as: asn(3333),
                    local_as: asn(12654),
                    interface: 0,
                    peer_ip: 0x0A00_0002,
                    local_ip: 0x0A00_00FE,
                    message: bgp::BgpMessage::Update(bgp::UpdateMessage::withdraw(vec![
                        pfx("193.0.0.0/21"),
                    ])),
                }),
            },
        ];
        encode_file(&records).expect("encodes")
    }

    fn sample_rib_file() -> Bytes {
        let attrs = bgp::encode_attributes(&[
            bgp::PathAttribute::Origin(bgp::OriginType::Igp),
            bgp::PathAttribute::AsPath(vec![bgp::AsPathSegment::Sequence(vec![
                asn(12654),
                asn(64500),
            ])]),
            bgp::PathAttribute::NextHop(0x0A00_0001),
        ]);
        let records = vec![
            TimestampedRecord {
                timestamp: 1_514_764_800,
                record: MrtRecord::PeerIndexTable(PeerIndexTable {
                    collector_bgp_id: 1,
                    view_name: "drywells".into(),
                    peers: vec![PeerEntry {
                        bgp_id: 1,
                        ip: 0x0A00_0001,
                        asn: asn(12654),
                    }],
                }),
            },
            TimestampedRecord {
                timestamp: 1_514_764_800,
                record: MrtRecord::RibIpv4Unicast(mrt2::RibIpv4Unicast {
                    sequence: 0,
                    prefix: pfx("193.0.0.0/21"),
                    entries: vec![mrt2::RibEntry {
                        peer_index: 0,
                        originated_time: 1_514_000_000,
                        attributes: attrs,
                    }],
                }),
            },
        ];
        encode_file(&records).expect("encodes")
    }

    fn query_files() -> Vec<QueryFile> {
        vec![
            QueryFile {
                day: date("2018-01-01"),
                kind: FileKind::Rib,
                bytes: sample_rib_file(),
            },
            QueryFile {
                day: date("2018-01-01"),
                kind: FileKind::Updates,
                bytes: sample_update_file(),
            },
        ]
    }

    #[test]
    fn filter_round_trips_through_display() {
        let cases = [
            "",
            "prefix=193.0.0.0/21",
            "subnet-of=10.0.0.0/8",
            "supernet-of=10.1.2.0/24",
            "origin=64500",
            "origin=64500|64501|3333",
            "peer=12654",
            "days=2018-01-01",
            "days=2018-01-01..2018-02-01",
            "days=2018-01-01..",
            "days=..2018-02-01",
            "path=64500,*,3333",
            "path=*,?,64500",
            "kind=rib",
            "kind=announce|withdraw",
            "prefix=10.0.0.0/16 origin=64500 peer=12654 days=2018-01-01..2018-02-01 path=*,64500 kind=announce",
        ];
        for s in cases {
            let f = Filter::parse(s).unwrap_or_else(|e| panic!("{s:?}: {e}"));
            let shown = f.to_string();
            assert_eq!(shown, s, "canonical form differs");
            let back = Filter::parse(&shown).expect("canonical form reparses");
            assert_eq!(back, f, "round-trip changed the filter for {s:?}");
        }
    }

    #[test]
    fn filter_rejects_bad_syntax() {
        for s in [
            "nonsense",
            "key=val",
            "prefix=banana",
            "origin=",
            "origin=x",
            "peer=12654 peer=3333",
            "prefix=10.0.0.0/8 subnet-of=10.0.0.0/8",
            "days=2018-02-01..2018-01-01",
            "days=..",
            "path=",
            "path=a,b",
            "kind=bogus",
        ] {
            assert!(Filter::parse(s).is_err(), "{s:?} unexpectedly parsed");
        }
    }

    #[test]
    fn path_pattern_glob_semantics() {
        let pat = |s: &str| PathPattern::parse(s).expect("parses");
        let path: Vec<Asn> = [12654, 3333, 64500].into_iter().map(Asn).collect();
        assert!(pat("*").matches(&path));
        assert!(pat("*").matches(&[]));
        assert!(pat("12654,3333,64500").matches(&path));
        assert!(pat("12654,*").matches(&path));
        assert!(pat("*,64500").matches(&path));
        assert!(pat("*,3333,*").matches(&path));
        assert!(pat("?,?,?").matches(&path));
        assert!(pat("12654,?,64500").matches(&path));
        assert!(!pat("12654").matches(&path));
        assert!(!pat("*,3333").matches(&path));
        assert!(!pat("?,?").matches(&path));
        assert!(!pat("9999,*").matches(&path));
        assert!(!pat("?").matches(&[]));
    }

    #[test]
    fn query_flattens_rib_and_update_elements() {
        let out = run_query(&query_files(), &QueryOptions::default()).expect("query runs");
        // 1 RIB entry + 2 announces + 1 withdraw.
        assert_eq!(out.stats.elems_scanned, 4);
        assert_eq!(out.stats.rows_emitted, 4);
        assert!(out.body.starts_with(CSV_HEADER));
        assert!(out
            .body
            .contains("2018-01-01,rib,193.0.0.0/21,64500,12654,12654 64500"));
        assert!(out
            .body
            .contains("2018-01-01,announce,10.1.0.0/16,64500,12654,12654 3333 64500"));
        assert!(out.body.contains("2018-01-01,withdraw,193.0.0.0/21,,3333,"));
        assert!(out.stats.lossy.is_clean());
    }

    #[test]
    fn filters_select_expected_rows() {
        let files = query_files();
        let run = |filter: &str| {
            let opts = QueryOptions {
                filter: Filter::parse(filter).expect("filter parses"),
                ..QueryOptions::default()
            };
            run_query(&files, &opts).expect("query runs")
        };
        assert_eq!(run("kind=withdraw").stats.rows_emitted, 1);
        assert_eq!(run("kind=rib|announce").stats.rows_emitted, 3);
        assert_eq!(run("origin=64500").stats.rows_emitted, 3);
        assert_eq!(run("peer=3333").stats.rows_emitted, 1);
        assert_eq!(run("prefix=10.1.0.0/16").stats.rows_emitted, 1);
        assert_eq!(run("subnet-of=10.0.0.0/8").stats.rows_emitted, 1);
        assert_eq!(run("supernet-of=193.0.1.0/24").stats.rows_emitted, 3);
        assert_eq!(run("path=*,3333,64500").stats.rows_emitted, 2);
        assert_eq!(run("days=2018-01-02..").stats.rows_emitted, 0);
        assert_eq!(run("days=2018-01-01").stats.rows_emitted, 4);
    }

    #[test]
    fn day_pruning_skips_files_without_decoding() {
        let files = query_files();
        let opts = QueryOptions {
            filter: Filter::parse("days=2019-01-01..").expect("parses"),
            ..QueryOptions::default()
        };
        let out = run_query(&files, &opts).expect("query runs");
        assert_eq!(out.stats.files_pruned, 2);
        assert_eq!(out.stats.files_scanned, 0);
    }

    #[test]
    fn row_limit_is_applied_after_the_merge() {
        let files = query_files();
        let opts = QueryOptions {
            limit: Some(2),
            ..QueryOptions::default()
        };
        let out = run_query(&files, &opts).expect("query runs");
        assert_eq!(out.stats.rows_emitted, 2);
        assert_eq!(out.stats.rows_matched, 4);
        assert_eq!(out.body.lines().count(), 3); // header + 2 rows
    }

    #[test]
    fn jsonl_rows_parse_as_json() {
        let opts = QueryOptions {
            format: OutputFormat::Jsonl,
            ..QueryOptions::default()
        };
        let out = run_query(&query_files(), &opts).expect("query runs");
        assert_eq!(out.body.lines().count(), 4);
        for line in out.body.lines() {
            let v = serde_json::parse(line).expect("JSONL line parses");
            assert!(v.get("day").is_some());
            assert!(v.get("kind").is_some());
            assert!(v.get("prefix").is_some());
        }
    }

    #[test]
    fn strict_mode_fails_on_damage_lossy_mode_accounts_for_it() {
        let mut files = query_files();
        let mut damaged = files[1].bytes.to_vec();
        // Corrupt the first update record's AFI field (body offset 10).
        damaged[12 + 10] = 0xFF;
        // And truncate the file mid-record to abandon a tail.
        let cut = damaged.len() - 4;
        files[1].bytes = Bytes::from(damaged[..cut].to_vec());

        let strict = run_query(&files, &QueryOptions::default());
        assert!(matches!(strict, Err(QueryError::Decode { .. })));

        let opts = QueryOptions {
            lossy: true,
            ..QueryOptions::default()
        };
        let out = run_query(&files, &opts).expect("lossy query runs");
        assert!(out.stats.lossy.aborted);
        assert!(out.stats.lossy.bytes_unscanned > 0);
        assert_eq!(out.stats.rows_emitted, 1); // the RIB row survives
    }

    #[test]
    fn lossy_compact_scan_accounts_for_abandoned_tail() {
        use crate::mrt::encode_day;
        use crate::observe::ObservationDay;
        use crate::observe::RouteObservation;
        let day = ObservationDay {
            date: date("2018-01-01"),
            num_monitors: 3,
            routes: vec![
                RouteObservation {
                    prefix: pfx("10.0.0.0/16"),
                    origin: Origin::Single(asn(64500)),
                    monitors_seen: 3,
                    path: vec![asn(3333), asn(64500)].into(),
                    class: None,
                },
                RouteObservation {
                    prefix: pfx("10.1.0.0/16"),
                    origin: Origin::Single(asn(64501)),
                    monitors_seen: 2,
                    path: vec![].into(),
                    class: None,
                },
            ],
        };
        let bytes = encode_day(&day).expect("encodes");
        let cut = bytes.len() - 3;
        let files = vec![QueryFile {
            day: day.date,
            kind: FileKind::CompactDay,
            bytes: Bytes::from(bytes[..cut].to_vec()),
        }];
        let opts = QueryOptions {
            lossy: true,
            ..QueryOptions::default()
        };
        let out = run_query(&files, &opts).expect("lossy query runs");
        assert_eq!(out.stats.rows_emitted, 1);
        assert!(out.stats.lossy.aborted);
        assert_eq!(out.stats.lossy.skipped_truncated, 1);
        assert_eq!(
            out.stats.lossy.bytes_scanned + out.stats.lossy.bytes_unscanned,
            cut
        );
        // Strict mode refuses the same file.
        let strict = run_query(&files, &QueryOptions::default());
        assert!(matches!(strict, Err(QueryError::Decode { .. })));
    }

    #[test]
    fn dir_round_trip_preserves_query_output() {
        let files = query_files();
        let dir = std::env::temp_dir().join(format!("drywells-query-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("rib-2018-01-01.mrt"), &files[0].bytes).expect("write");
        std::fs::write(dir.join("updates-2018-01-01.mrt"), &files[1].bytes).expect("write");
        std::fs::write(dir.join("README.txt"), b"ignored").expect("write");
        let from_disk = files_from_dir(&dir).expect("read dir");
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(from_disk.len(), 2);
        assert_eq!(from_disk[0].kind, FileKind::Rib);
        assert_eq!(from_disk[1].kind, FileKind::Updates);
        let a = run_query(&files, &QueryOptions::default()).expect("query runs");
        let b = run_query(&from_disk, &QueryOptions::default()).expect("query runs");
        assert_eq!(a.body, b.body);
    }

    #[test]
    fn output_is_identical_across_worker_counts() {
        let files = query_files();
        let mut bodies = Vec::new();
        for threads in [1usize, 2, 4] {
            let opts = QueryOptions {
                threads,
                ..QueryOptions::default()
            };
            bodies.push(run_query(&files, &opts).expect("query runs").body);
        }
        assert_eq!(bodies[0], bodies[1]);
        assert_eq!(bodies[1], bodies[2]);
    }
}
