//! A compact MRT-like binary codec for daily observation dumps.
//!
//! Real collectors archive RIBs and updates as MRT (RFC 6396). We use
//! the same architectural split — fixed header, typed records,
//! length-prefixed variable sections — in a simplified framing so the
//! collector archive can store observation days as bytes and the
//! pipeline can stream them back, including handling of truncated or
//! corrupted files (the paper's pipeline must survive missing/broken
//! archive files).
//!
//! ## Wire format
//!
//! ```text
//! file   := header record*
//! header := magic(u32 = 0x4D525444 "MRTD") version(u16) num_monitors(u16)
//!           date_days(i64) record_count(u32)
//! record := prefix_net(u32) prefix_len(u8) origin_kind(u8)
//!           origin_count(u16) origin_asn(u32)*
//!           monitors_seen(u16) path_len(u16) path_asn(u32)*
//!           class_tag(u8) class_arg(u32)
//! ```
//!
//! All integers are big-endian (network order), matching MRT practice.

use crate::observe::{ObservationDay, RouteObservation};
use crate::scenario::RouteClass;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use nettypes::asn::{Asn, Origin};
use nettypes::date::Date;
use nettypes::prefix::Prefix;

/// File magic: `MRTD`.
pub const MAGIC: u32 = 0x4D52_5444;
/// Current format version.
pub const VERSION: u16 = 1;

/// Decoding and encoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrtError {
    /// The magic number did not match.
    BadMagic(u32),
    /// Unsupported version.
    BadVersion(u16),
    /// The buffer ended before the structure was complete.
    Truncated,
    /// A structurally invalid field (bad prefix length, class tag…).
    Malformed(&'static str),
    /// A variable-length section does not fit its u16 length field;
    /// the encoder rejects the record instead of silently truncating.
    TooLong {
        /// Which section overflowed (`"origin set"`, `"AS path"`).
        field: &'static str,
        /// The offending length.
        len: usize,
    },
}

impl std::fmt::Display for MrtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MrtError::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            MrtError::BadVersion(v) => write!(f, "unsupported version {v}"),
            MrtError::Truncated => write!(f, "truncated MRT-like file"),
            MrtError::Malformed(what) => write!(f, "malformed field: {what}"),
            MrtError::TooLong { field, len } => {
                write!(f, "{field} with {len} entries exceeds the u16 length field")
            }
        }
    }
}

impl std::error::Error for MrtError {}

fn class_tag(class: &Option<RouteClass>) -> (u8, u32) {
    match class {
        None => (0, 0),
        Some(RouteClass::Allocation) => (1, 0),
        Some(RouteClass::Lease(id)) => (2, *id),
        Some(RouteClass::IntraOrg) => (3, 0),
        Some(RouteClass::Hijack) => (4, 0),
        Some(RouteClass::Scrubbing) => (5, 0),
    }
}

fn class_from_tag(tag: u8, arg: u32) -> Result<Option<RouteClass>, MrtError> {
    Ok(match tag {
        0 => None,
        1 => Some(RouteClass::Allocation),
        2 => Some(RouteClass::Lease(arg)),
        3 => Some(RouteClass::IntraOrg),
        4 => Some(RouteClass::Hijack),
        5 => Some(RouteClass::Scrubbing),
        _ => return Err(MrtError::Malformed("class tag")),
    })
}

/// Encode one route record. Lengths that do not fit their u16 wire
/// fields are rejected, never truncated.
fn encode_record(buf: &mut BytesMut, r: &RouteObservation) -> Result<(), MrtError> {
    buf.put_u32(r.prefix.network());
    buf.put_u8(r.prefix.len());
    match &r.origin {
        Origin::Single(a) => {
            buf.put_u8(0);
            buf.put_u16(1);
            buf.put_u32(a.0);
        }
        Origin::Set(v) => {
            let count = u16::try_from(v.len()).map_err(|_| MrtError::TooLong {
                field: "origin set",
                len: v.len(),
            })?;
            buf.put_u8(1);
            buf.put_u16(count);
            for a in v {
                buf.put_u32(a.0);
            }
        }
    }
    buf.put_u16(r.monitors_seen);
    let path_len = u16::try_from(r.path.len()).map_err(|_| MrtError::TooLong {
        field: "AS path",
        len: r.path.len(),
    })?;
    buf.put_u16(path_len);
    for a in r.path.iter() {
        buf.put_u32(a.0);
    }
    let (tag, arg) = class_tag(&r.class);
    buf.put_u8(tag);
    buf.put_u32(arg);
    Ok(())
}

/// Encode an observation day.
///
/// Fails with [`MrtError::TooLong`] if any origin set or AS path has
/// more than `u16::MAX` entries (the wire format's length fields are
/// u16; truncating them silently would corrupt the archive).
pub fn encode_day(day: &ObservationDay) -> Result<Bytes, MrtError> {
    let mut buf = BytesMut::with_capacity(32 + day.routes.len() * 48);
    buf.put_u32(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u16(day.num_monitors);
    buf.put_i64(day.date.days_since_epoch());
    let count = u32::try_from(day.routes.len()).map_err(|_| MrtError::TooLong {
        field: "route count",
        len: day.routes.len(),
    })?;
    buf.put_u32(count);
    for r in &day.routes {
        encode_record(&mut buf, r)?;
    }
    Ok(buf.freeze())
}

macro_rules! need {
    ($buf:expr, $n:expr) => {
        if $buf.remaining() < $n {
            return Err(MrtError::Truncated);
        }
    };
}

/// Decode one route record, advancing `buf` past it.
fn decode_record(buf: &mut &[u8]) -> Result<RouteObservation, MrtError> {
    need!(buf, 4 + 1 + 1 + 2);
    let net = buf.get_u32();
    let len = buf.get_u8();
    if len > 32 {
        return Err(MrtError::Malformed("prefix length"));
    }
    let prefix = Prefix::new(net, len).map_err(|_| MrtError::Malformed("prefix host bits"))?;
    let origin_kind = buf.get_u8();
    let origin_count = buf.get_u16() as usize;
    need!(buf, origin_count * 4);
    let mut asns = Vec::with_capacity(origin_count);
    for _ in 0..origin_count {
        asns.push(Asn(buf.get_u32()));
    }
    // Consistency checks mirroring the encode-side contract: a single
    // origin carries exactly one ASN, a set carries at least one.
    let origin = match origin_kind {
        0 => {
            if asns.len() != 1 {
                return Err(MrtError::Malformed("single origin count"));
            }
            Origin::Single(asns[0])
        }
        1 => Origin::Set(asns),
        _ => return Err(MrtError::Malformed("origin kind")),
    };
    need!(buf, 2 + 2);
    let monitors_seen = buf.get_u16();
    let path_len = buf.get_u16() as usize;
    need!(buf, path_len * 4 + 1 + 4);
    let mut path = Vec::with_capacity(path_len);
    for _ in 0..path_len {
        path.push(Asn(buf.get_u32()));
    }
    let tag = buf.get_u8();
    let arg = buf.get_u32();
    Ok(RouteObservation {
        prefix,
        origin,
        monitors_seen,
        path: path.into(),
        class: class_from_tag(tag, arg)?,
    })
}

/// Streaming decoder: validates the header eagerly, then yields one
/// [`RouteObservation`] at a time without materializing the whole day.
///
/// The iterator yields `Err` at most once — after the first decode
/// error it fuses (a corrupt record makes every later offset
/// meaningless) but keeps the error available through
/// [`DayReader::error`], so a caller that iterated to `None` can still
/// tell a truncated file from a clean end-of-archive. Consumers that
/// only need a prefix of the records (counting, filtering, probing)
/// stop paying for the rest of the file.
pub struct DayReader<'a> {
    buf: &'a [u8],
    date: Date,
    num_monitors: u16,
    records_total: usize,
    yielded: usize,
    error: Option<MrtError>,
}

impl<'a> DayReader<'a> {
    /// Parse and validate the file header; records stream lazily.
    pub fn new(mut buf: &'a [u8]) -> Result<DayReader<'a>, MrtError> {
        need!(buf, 4 + 2 + 2 + 8 + 4);
        let magic = buf.get_u32();
        if magic != MAGIC {
            return Err(MrtError::BadMagic(magic));
        }
        let version = buf.get_u16();
        if version != VERSION {
            return Err(MrtError::BadVersion(version));
        }
        let num_monitors = buf.get_u16();
        let date = Date::from_days(buf.get_i64());
        let records_total = buf.get_u32() as usize;
        // Sanity bound so a corrupted count cannot OOM the decoder.
        if records_total > 50_000_000 {
            return Err(MrtError::Malformed("record count"));
        }
        Ok(DayReader {
            buf,
            date,
            num_monitors,
            records_total,
            yielded: 0,
            error: None,
        })
    }

    /// The day this file covers.
    pub fn date(&self) -> Date {
        self.date
    }

    /// Monitor count from the header.
    pub fn num_monitors(&self) -> u16 {
        self.num_monitors
    }

    /// Number of records the header declares.
    pub fn records_total(&self) -> usize {
        self.records_total
    }

    /// Number of records successfully yielded so far.
    pub fn records_yielded(&self) -> usize {
        self.yielded
    }

    /// The first decode error, if the reader hit one. Stays set after
    /// the iterator fuses, so `None` from `next()` plus `error() ==
    /// None` means a genuinely clean end of the record stream.
    pub fn error(&self) -> Option<&MrtError> {
        self.error.as_ref()
    }

    /// Bytes left in the buffer past the last decoded record. For a
    /// well-formed file this is 0 after the final record; a nonzero
    /// value after a clean iteration means trailing garbage.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }
}

impl Iterator for DayReader<'_> {
    type Item = Result<RouteObservation, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.error.is_some() || self.yielded >= self.records_total {
            return None;
        }
        match decode_record(&mut self.buf) {
            Ok(r) => {
                self.yielded += 1;
                Some(Ok(r))
            }
            Err(e) => {
                self.error = Some(e.clone());
                Some(Err(e))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.error.is_some() {
            (0, Some(0))
        } else {
            let left = self.records_total - self.yielded;
            // Worst case all remaining records decode; a truncated
            // buffer may yield fewer (plus one final Err).
            (0, Some(left + 1))
        }
    }
}

/// Decode an observation day encoded with [`encode_day`].
///
/// A mid-record truncation surfaces as [`MrtError::Truncated`] (not a
/// short-but-"successful" day), and bytes left over after the declared
/// record count are rejected as malformed — both cases where an
/// end-of-archive would otherwise be indistinguishable from damage.
pub fn decode_day(buf: &[u8]) -> Result<ObservationDay, MrtError> {
    let mut reader = DayReader::new(buf)?;
    let date = reader.date();
    let num_monitors = reader.num_monitors();
    let mut routes = Vec::with_capacity(reader.records_total().min(1 << 20));
    for record in reader.by_ref() {
        routes.push(record?);
    }
    if reader.remaining() != 0 {
        return Err(MrtError::Malformed("trailing bytes after final record"));
    }
    Ok(ObservationDay {
        date,
        num_monitors,
        routes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_day() -> ObservationDay {
        ObservationDay {
            date: Date::from_days(17532),
            num_monitors: 40,
            routes: vec![
                RouteObservation {
                    prefix: "64.0.0.0/16".parse().unwrap(),
                    origin: Origin::Single(Asn(1001)),
                    monitors_seen: 39,
                    path: vec![Asn(1050), Asn(1002), Asn(1001)].into(),
                    class: Some(RouteClass::Allocation),
                },
                RouteObservation {
                    prefix: "64.0.1.0/24".parse().unwrap(),
                    origin: Origin::Single(Asn(1100)),
                    monitors_seen: 38,
                    path: vec![].into(),
                    class: Some(RouteClass::Lease(7)),
                },
                RouteObservation {
                    prefix: "64.1.0.0/24".parse().unwrap(),
                    origin: Origin::Set(vec![Asn(1200), Asn(1300)]),
                    monitors_seen: 12,
                    path: vec![].into(),
                    class: None,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let day = sample_day();
        let bytes = encode_day(&day).unwrap();
        let back = decode_day(&bytes).unwrap();
        assert_eq!(back, day);
    }

    #[test]
    fn rejects_bad_magic() {
        let day = sample_day();
        let mut bytes = encode_day(&day).unwrap().to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(decode_day(&bytes), Err(MrtError::BadMagic(_))));
    }

    #[test]
    fn rejects_bad_version() {
        let day = sample_day();
        let mut bytes = encode_day(&day).unwrap().to_vec();
        bytes[5] = 99;
        assert!(matches!(decode_day(&bytes), Err(MrtError::BadVersion(99))));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let day = sample_day();
        let bytes = encode_day(&day).unwrap();
        for cut in 0..bytes.len() {
            let r = decode_day(&bytes[..cut]);
            assert!(r.is_err(), "decode succeeded on {cut}-byte truncation");
        }
    }

    #[test]
    fn rejects_invalid_prefix_len() {
        let day = ObservationDay {
            date: Date::from_days(0),
            num_monitors: 1,
            routes: vec![RouteObservation {
                prefix: "1.0.0.0/24".parse().unwrap(),
                origin: Origin::Single(Asn(1)),
                monitors_seen: 1,
                path: vec![].into(),
                class: None,
            }],
        };
        let mut bytes = encode_day(&day).unwrap().to_vec();
        // Prefix length byte is at offset header(20) + net(4).
        bytes[24] = 60;
        assert!(matches!(
            decode_day(&bytes),
            Err(MrtError::Malformed("prefix length"))
        ));
    }

    #[test]
    fn empty_day_roundtrips() {
        let day = ObservationDay {
            date: Date::from_days(1),
            num_monitors: 0,
            routes: vec![],
        };
        assert_eq!(decode_day(&encode_day(&day).unwrap()).unwrap(), day);
    }

    #[test]
    fn oversized_origin_set_is_rejected_not_truncated() {
        let day = ObservationDay {
            date: Date::from_days(0),
            num_monitors: 1,
            routes: vec![RouteObservation {
                prefix: "1.0.0.0/24".parse().unwrap(),
                origin: Origin::Set((0..=u16::MAX as u32).map(Asn).collect()),
                monitors_seen: 1,
                path: vec![].into(),
                class: None,
            }],
        };
        assert_eq!(
            encode_day(&day),
            Err(MrtError::TooLong {
                field: "origin set",
                len: u16::MAX as usize + 1,
            })
        );
    }

    #[test]
    fn oversized_as_path_is_rejected_not_truncated() {
        let day = ObservationDay {
            date: Date::from_days(0),
            num_monitors: 1,
            routes: vec![RouteObservation {
                prefix: "1.0.0.0/24".parse().unwrap(),
                origin: Origin::Single(Asn(1)),
                monitors_seen: 1,
                path: (0..=u16::MAX as u32).map(Asn).collect(),
                class: None,
            }],
        };
        assert_eq!(
            encode_day(&day),
            Err(MrtError::TooLong {
                field: "AS path",
                len: u16::MAX as usize + 1,
            })
        );
    }

    #[test]
    fn max_length_fields_still_roundtrip() {
        // Exactly u16::MAX entries is the largest legal size.
        let day = ObservationDay {
            date: Date::from_days(0),
            num_monitors: 1,
            routes: vec![RouteObservation {
                prefix: "1.0.0.0/24".parse().unwrap(),
                origin: Origin::Single(Asn(1)),
                monitors_seen: 1,
                path: (0..u16::MAX as u32).map(Asn).collect(),
                class: None,
            }],
        };
        assert_eq!(decode_day(&encode_day(&day).unwrap()).unwrap(), day);
    }

    #[test]
    fn streaming_reader_matches_decode_day() {
        let day = sample_day();
        let bytes = encode_day(&day).unwrap();
        let reader = DayReader::new(&bytes).unwrap();
        assert_eq!(reader.date(), day.date);
        assert_eq!(reader.num_monitors(), day.num_monitors);
        assert_eq!(reader.records_total(), day.routes.len());
        let streamed: Vec<RouteObservation> =
            reader.map(|r| r.unwrap()).collect();
        assert_eq!(streamed, day.routes);
    }

    #[test]
    fn streaming_reader_fuses_after_first_error() {
        let day = sample_day();
        let bytes = encode_day(&day).unwrap();
        // Cut mid-way through the record section so the header parses
        // but some record is truncated.
        let cut = 20 + (bytes.len() - 20) / 2;
        let mut reader = DayReader::new(&bytes[..cut]).unwrap();
        let mut errors = 0;
        for item in &mut reader {
            if item.is_err() {
                errors += 1;
            }
        }
        assert_eq!(errors, 1, "exactly one Err before fusing");
        assert_eq!(reader.next(), None, "reader stays fused");
    }

    #[test]
    fn reader_error_distinguishes_truncation_from_end_of_archive() {
        let day = sample_day();
        let bytes = encode_day(&day).unwrap();

        // Clean end of archive: all records out, no stored error.
        let mut clean = DayReader::new(&bytes).unwrap();
        let ok = clean.by_ref().filter(|r| r.is_ok()).count();
        assert_eq!(ok, day.routes.len());
        assert!(clean.error().is_none());
        assert_eq!(clean.remaining(), 0);

        // Mid-record truncation: iterating to None leaves the error
        // observable (the old reader swallowed it after fusing).
        let cut = bytes.len() - 3;
        let mut truncated = DayReader::new(&bytes[..cut]).unwrap();
        for item in truncated.by_ref() {
            let _ = item;
        }
        assert_eq!(truncated.error(), Some(&MrtError::Truncated));
        assert!(truncated.records_yielded() < day.routes.len());
    }

    #[test]
    fn decode_day_rejects_mid_record_truncation_and_trailing_bytes() {
        let day = sample_day();
        let bytes = encode_day(&day).unwrap();

        // Mid-record truncation is Truncated, not a short success.
        let cut = bytes.len() - 3;
        assert_eq!(decode_day(&bytes[..cut]), Err(MrtError::Truncated));

        // Bytes past the declared record count are not silently
        // ignored: that is exactly how a corrupted count under-reads.
        let mut padded = bytes.to_vec();
        padded.extend_from_slice(&[0xAB; 7]);
        assert_eq!(
            decode_day(&padded),
            Err(MrtError::Malformed("trailing bytes after final record"))
        );
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            date_days in -100_000i64..100_000,
            num_monitors in 0u16..500,
            routes in proptest::collection::vec(
                (any::<u32>(), 0u8..=32, any::<u32>(), 0u16..200,
                 proptest::collection::vec(any::<u32>(), 0..6), any::<bool>())
                    .prop_map(|(net, len, origin, seen, path, is_set)| {
                        RouteObservation {
                            prefix: Prefix::new_unchecked_masked(net, len),
                            origin: if is_set {
                                Origin::Set(vec![Asn(origin), Asn(origin ^ 1)])
                            } else {
                                Origin::Single(Asn(origin))
                            },
                            monitors_seen: seen,
                            path: path.into_iter().map(Asn).collect(),
                            class: None,
                        }
                    }),
                0..20
            ),
        ) {
            let day = ObservationDay {
                date: Date::from_days(date_days),
                num_monitors,
                routes,
            };
            let bytes = encode_day(&day).unwrap();
            prop_assert_eq!(decode_day(&bytes).unwrap(), day);
        }

        #[test]
        fn prop_corruption_never_panics(
            flip_at in 0usize..2000,
            flip_val in 1u8..=255,
        ) {
            let day = sample_day();
            let mut bytes = encode_day(&day).unwrap().to_vec();
            if flip_at < bytes.len() {
                bytes[flip_at] ^= flip_val;
            }
            // Must either decode to something or error — never panic.
            let _ = decode_day(&bytes);
        }
    }
}
