//! Rendering a lease world into daily route observations.
//!
//! The paper's pipeline consumes "the set of all prefix-origin pairs"
//! seen at the BGP monitors of RIPE RIS, Route Views and Isolario,
//! aggregated daily. [`render_day`] produces exactly that surface: for
//! every route announced in the world on a day, how many (and which)
//! monitors observed it, together with a representative AS path.
//!
//! Monitor visibility is deterministic per `(prefix, origin, monitor)`
//! with a small daily flicker term, so routes have stable-but-imperfect
//! visibility like real vantage points: a route's monitor count hovers
//! around `visibility × num_monitors` without being constant.
//!
//! The heavy lifting lives in [`crate::engine`]: day-invariant work
//! (event interval index, stable-visibility bitsets, path interning,
//! monitor fleet selection) is hoisted into a [`RenderEngine`] built
//! once per render run. The free functions here are thin wrappers that
//! construct a single-use engine; batch callers go through
//! [`render_days_with_threads`], which shares one engine across the
//! worker pool.

use crate::engine::RenderEngine;
use crate::scenario::{LeaseWorld, RouteClass};
use crate::topology::Tier;
use nettypes::asn::{Asn, Origin};
use nettypes::date::Date;
use nettypes::prefix::Prefix;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Visibility parameters for the monitor fleet.
#[derive(Clone, Debug)]
pub struct VisibilityModel {
    /// Number of BGP monitors (vantage points).
    pub num_monitors: u16,
    /// Probability a monitor that usually sees a route misses it on a
    /// given day (session resets, collector gaps).
    pub daily_flicker: f64,
    /// Seed folded into the deterministic visibility hash.
    pub seed: u64,
}

impl Default for VisibilityModel {
    fn default() -> Self {
        VisibilityModel {
            num_monitors: 40,
            daily_flicker: 0.01,
            seed: 77,
        }
    }
}

/// One observed route on one day.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteObservation {
    /// The announced prefix.
    pub prefix: Prefix,
    /// The origin (may be an AS_SET).
    pub origin: Origin,
    /// How many monitors saw the route this day.
    pub monitors_seen: u16,
    /// A representative AS path from one monitor to the origin
    /// (monitor first, origin last). Empty for AS_SET origins.
    /// Interned: identical paths share one allocation.
    pub path: Arc<[Asn]>,
    /// Ground-truth class (not available to inference; carried for
    /// evaluation).
    pub class: Option<RouteClass>,
}

/// All observations of one day.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservationDay {
    /// The observation date.
    pub date: Date,
    /// Total monitors in the fleet that day.
    pub num_monitors: u16,
    /// The observed routes.
    pub routes: Vec<RouteObservation>,
}

/// SplitMix64 — cheap deterministic hashing for visibility draws.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

pub(crate) fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The per-monitor view of one day: each monitor holds at most one
/// route per prefix (BGP best-path semantics), so MOAS conflicts
/// manifest *across* monitors, as they do at real collectors.
///
/// This is the input surface for the MRT archive layer
/// ([`crate::updates`]): RIB dumps and update diffs are derived from
/// these per-peer sets, and they use the same deterministic
/// visibility draws as [`render_day`].
///
/// One-shot convenience wrapper; batch callers should build a
/// [`RenderEngine`] once and reuse it (as [`crate::updates`] does).
pub fn per_monitor_routes(
    world: &LeaseWorld,
    model: &VisibilityModel,
    day: Date,
) -> Vec<Vec<(Prefix, Origin)>> {
    let engine = RenderEngine::new(world, model);
    let mut scratch = engine.scratch();
    engine.per_monitor_routes(&mut scratch, day)
}

/// The visibility-hash key for an origin (AS_SET origins get a
/// distinct key space).
pub(crate) fn origin_key(origin: &Origin) -> u32 {
    match origin {
        Origin::Single(a) => a.0,
        Origin::Set(v) => v.first().map(|a| a.0).unwrap_or(0) ^ 0x8000_0000,
    }
}

/// The monitor fleet: one AS per monitor, chosen deterministically
/// from tier-2 and stub ASes (collectors peer with networks of all
/// sizes).
pub fn monitor_ases(world: &LeaseWorld, model: &VisibilityModel) -> Vec<Asn> {
    let tier2: Vec<Asn> = world.topology.ases_of_tier(Tier::Tier2).collect();
    let stubs: Vec<Asn> = world.topology.ases_of_tier(Tier::Stub).collect();
    let mut out = Vec::with_capacity(model.num_monitors as usize);
    for m in 0..model.num_monitors {
        let h = splitmix64(model.seed.wrapping_add(0xBEEF).wrapping_add(m as u64));
        let pick = if m % 3 == 0 && !tier2.is_empty() {
            tier2[(h % tier2.len() as u64) as usize]
        } else {
            stubs[(h % stubs.len() as u64) as usize]
        };
        out.push(pick);
    }
    out
}

/// Render one day of the world into monitor observations.
///
/// One-shot convenience wrapper: builds a single-use [`RenderEngine`].
/// Rendering many days? Use [`render_days_with_threads`] (or an
/// explicit engine) so the day-invariant precomputation is paid once.
pub fn render_day(world: &LeaseWorld, model: &VisibilityModel, day: Date) -> ObservationDay {
    let engine = RenderEngine::new(world, model);
    let mut scratch = engine.scratch();
    engine.render_day(&mut scratch, day)
}

/// Render every day of `span` on `threads` workers.
///
/// One [`RenderEngine`] is shared by all workers; each worker carries
/// its own scratch (sweep cursor + path arena). The scratch is pure
/// memoization of deterministic computation, so the output is
/// identical for any thread count — `threads == 1` is the sequential
/// baseline.
pub fn render_days_with_threads(
    world: &LeaseWorld,
    model: &VisibilityModel,
    span: nettypes::date::DateRange,
    threads: usize,
) -> Vec<ObservationDay> {
    let days: Vec<Date> = span.iter().collect();
    let span_obs = obs::span!("render_days", days = days.len(), threads = threads, unit = "days");
    span_obs.add_items(days.len() as u64);
    let engine = RenderEngine::new(world, model);
    crate::par::map_indexed_local(
        days.len(),
        threads,
        || engine.scratch(),
        |scratch, i| engine.render_day(scratch, days[i]),
    )
}

/// [`render_days_with_threads`] at the default thread count
/// (`DRYWELLS_THREADS` or the machine's parallelism).
pub fn render_days(
    world: &LeaseWorld,
    model: &VisibilityModel,
    span: nettypes::date::DateRange,
) -> Vec<ObservationDay> {
    render_days_with_threads(world, model, span, crate::par::num_threads())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{LeaseWorld, WorldConfig};
    use crate::topology::TopologyConfig;
    use nettypes::date::{date, DateRange};

    fn world() -> LeaseWorld {
        LeaseWorld::generate(&WorldConfig {
            seed: 9,
            span: DateRange::new(date("2018-01-01"), date("2018-03-31")),
            topology: TopologyConfig {
                seed: 9,
                num_tier1: 4,
                num_tier2: 12,
                num_stubs: 100,
                multi_as_org_fraction: 0.15,
            },
            num_allocations: 40,
            initial_active_leases: 120,
            bgp_visible_fraction: 0.3, // plenty of visible leases for tests
            num_hijacks: 5,
            num_moas: 4,
            num_as_sets: 3,
            num_scrubbing: 2,
            ..Default::default()
        })
    }

    #[test]
    fn renders_routes_with_high_visibility() {
        let w = world();
        let model = VisibilityModel::default();
        let day = render_day(&w, &model, date("2018-02-01"));
        assert_eq!(day.num_monitors, 40);
        assert!(!day.routes.is_empty());
        // Allocations should be near-universally visible.
        let alloc_routes: Vec<_> = day
            .routes
            .iter()
            .filter(|r| r.class == Some(RouteClass::Allocation))
            .collect();
        assert_eq!(alloc_routes.len(), w.allocations.len());
        for r in alloc_routes {
            assert!(
                r.monitors_seen as f64 >= 0.8 * model.num_monitors as f64,
                "allocation {} seen by only {}",
                r.prefix,
                r.monitors_seen
            );
        }
    }

    #[test]
    fn hijacks_mostly_below_half_visibility() {
        let w = world();
        let model = VisibilityModel::default();
        let engine = RenderEngine::new(&w, &model);
        let mut scratch = engine.scratch();
        let mut low = 0;
        let mut total = 0;
        for d in w.span.iter() {
            let day = engine.render_day(&mut scratch, d);
            for r in &day.routes {
                if r.class == Some(RouteClass::Hijack) {
                    total += 1;
                    if (r.monitors_seen as f64) < 0.5 * model.num_monitors as f64 {
                        low += 1;
                    }
                }
            }
        }
        assert!(total > 0, "no hijack observations rendered");
        assert!(
            low * 10 >= total * 6,
            "expected most hijacks below the visibility threshold ({low}/{total})"
        );
    }

    #[test]
    fn determinism_across_renders() {
        let w = world();
        let model = VisibilityModel::default();
        let a = render_day(&w, &model, date("2018-02-05"));
        let b = render_day(&w, &model, date("2018-02-05"));
        assert_eq!(a, b);
    }

    #[test]
    fn visibility_stable_across_days() {
        // The same route keeps a similar monitor count on consecutive
        // days (flicker is small).
        let w = world();
        let model = VisibilityModel::default();
        let engine = RenderEngine::new(&w, &model);
        let mut scratch = engine.scratch();
        let d1 = engine.render_day(&mut scratch, date("2018-02-01"));
        let d2 = engine.render_day(&mut scratch, date("2018-02-02"));
        let find = |day: &ObservationDay, p: Prefix| {
            day.routes
                .iter()
                .find(|r| r.prefix == p && matches!(r.class, Some(RouteClass::Allocation)))
                .map(|r| r.monitors_seen)
        };
        let mut compared = 0;
        for a in &w.allocations {
            if let (Some(x), Some(y)) = (find(&d1, a.prefix), find(&d2, a.prefix)) {
                assert!((x as i32 - y as i32).abs() <= 4, "{}: {x} vs {y}", a.prefix);
                compared += 1;
            }
        }
        assert!(compared > 10);
    }

    #[test]
    fn paths_end_at_origin() {
        let w = world();
        let model = VisibilityModel::default();
        let day = render_day(&w, &model, date("2018-02-01"));
        let mut checked = 0;
        for r in &day.routes {
            if let Origin::Single(o) = &r.origin {
                if !r.path.is_empty() {
                    assert_eq!(r.path.last(), Some(o), "path {:?} for {}", r.path, r.prefix);
                    checked += 1;
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn render_days_parallel_matches_sequential() {
        let w = world();
        let model = VisibilityModel::default();
        let span = DateRange::new(date("2018-01-01"), date("2018-01-21"));
        let seq = render_days_with_threads(&w, &model, span, 1);
        for threads in [2, 4] {
            assert_eq!(render_days_with_threads(&w, &model, span, threads), seq);
        }
        // And the per-day path agrees with render_day itself.
        for (i, d) in span.iter().enumerate() {
            assert_eq!(seq[i], render_day(&w, &model, d));
        }
    }

    #[test]
    fn as_set_routes_rendered_with_set_origin() {
        let w = world();
        let model = VisibilityModel::default();
        let engine = RenderEngine::new(&w, &model);
        let mut scratch = engine.scratch();
        let mut saw_set = false;
        for d in w.span.iter() {
            let day = engine.render_day(&mut scratch, d);
            if day.routes.iter().any(|r| r.origin.is_set()) {
                saw_set = true;
                break;
            }
        }
        assert!(saw_set, "no AS_SET observation rendered in the window");
    }
}
