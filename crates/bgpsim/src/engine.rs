//! The cross-day render engine: day-invariant work hoisted out of the
//! per-day loop.
//!
//! Rendering a [`LeaseWorld`] day by day repeats four expensive
//! computations that do not actually depend on the day:
//!
//! 1. **event scanning** — `announced_routes_on` walks every lease,
//!    hijack, intra-org, scrubbing, MOAS and AS_SET record per day.
//!    The engine builds an *interval index* once (start/end deltas per
//!    day, CSR layout) and sweeps it forward, applying only each day's
//!    deltas to a sorted active set;
//! 2. **stable visibility** — the structural component of the monitor
//!    visibility draw is a pure hash of `(prefix, origin, monitor)`.
//!    The engine precomputes a per-route monitor bitmask (one `u64`
//!    word per 64 monitors) plus the per-monitor hash keys, leaving
//!    only one flicker hash per *set bit* per day;
//! 3. **paths** — monitor→origin valley-free paths are interned in a
//!    per-worker arena as `Arc<[Asn]>`, handed out by reference-count
//!    bump instead of a `Vec` clone per observation; `monitor_ases`
//!    is computed once at engine construction;
//! 4. **MOAS tiebreaks** — the per-`(monitor, prefix, origin)` rank is
//!    also day-independent and precomputed.
//!
//! Determinism contract: the engine is a pure evaluation-order rewrite
//! of the same deterministic draws. [`RenderEngine`] is immutable and
//! `Sync`; all mutable state lives in a per-worker [`RenderScratch`],
//! so fan-out over the worker pool ([`crate::par`]) yields bytes
//! identical to the sequential path — at any thread count. The sweep
//! cursor only moves forward within a worker (day indices are claimed
//! in increasing order); a backward query resets and re-sweeps, so
//! arbitrary query order is still correct, just slower.

use crate::observe::{
    monitor_ases, origin_key, splitmix64, unit_f64, ObservationDay, RouteObservation,
    VisibilityModel,
};
use crate::scenario::{flap_hash, LeaseWorld, RouteClass};
use nettypes::asn::{Asn, Origin};
use nettypes::date::{Date, DateRange};
use nettypes::prefix::Prefix;
use std::sync::Arc;

/// On-off / flap parameters for lease entities; evaluated per day at
/// emit time (they are the only genuinely day-dependent inputs).
struct LeaseCycle {
    active_start: Date,
    onoff: Option<(u16, u16)>,
    flap_rate: f64,
    flap_key: u64,
}

/// One route the world can announce: the day-invariant description.
struct RouteEntity {
    prefix: Prefix,
    origin: Origin,
    vis: f64,
    class: Option<RouteClass>,
    /// `None` for always-active entities (allocations).
    active: Option<DateRange>,
    /// Lease announcement cycle, when one applies.
    cycle: Option<LeaseCycle>,
    /// Dense topology index of a `Single` origin, when it is in the
    /// topology — the key for the per-worker path arena.
    origin_node: Option<usize>,
}

/// One interval-index delta: activate or deactivate an entity.
struct EventDelta {
    entity: usize,
    add: bool,
}

/// A path-arena slot: not yet computed, computed-absent, or interned.
enum PathSlot {
    Unknown,
    Absent,
    Interned(Arc<[Asn]>),
}

/// The immutable, `Sync` engine: share one per render run, give each
/// worker its own [`RenderScratch`].
pub struct RenderEngine<'w> {
    world: &'w LeaseWorld,
    model: VisibilityModel,
    /// Hoisted monitor fleet (one AS per monitor slot).
    monitors: Vec<Asn>,
    /// Entities in the legacy emit order: allocations, announced
    /// leases, intra-org, hijacks, scrubbing, MOAS, AS_SETs.
    entities: Vec<RouteEntity>,
    /// Entities `0..num_static` are active every day.
    num_static: usize,
    /// Per-entity per-monitor stable visibility keys (stride
    /// `monitors.len()`), reused by the daily flicker hash.
    keys: Vec<u64>,
    /// Per-entity per-monitor MOAS tiebreak ranks (same stride).
    ranks: Vec<u64>,
    /// Per-entity monitor bitmask (stride `mask_words`).
    masks: Vec<u64>,
    mask_words: usize,
    span: DateRange,
    /// CSR interval index: day offset → delta slice.
    event_starts: Vec<usize>,
    events: Vec<EventDelta>,
    /// The shared empty path (AS_SET origins, unreachable origins).
    empty_path: Arc<[Asn]>,
    n_nodes: usize,
}

/// Per-worker mutable state: the sweep position, the active set, the
/// path arena, and reusable per-monitor candidate buffers.
pub struct RenderScratch {
    /// Number of day event-sets applied; `active` reflects day
    /// `cursor - 1`.
    cursor: usize,
    /// Active non-static entities, sorted by entity index (= emit
    /// order).
    active: Vec<usize>,
    /// Flat path arena: `monitor_slot * n_nodes + origin_node`.
    paths: Vec<PathSlot>,
    /// Per-monitor `(prefix, rank, entity)` candidate buffers for
    /// [`RenderEngine::per_monitor_routes`].
    pm_bufs: Vec<Vec<(Prefix, u64, usize)>>,
}

/// One selected-route change at one monitor, produced by
/// [`RenderEngine::advance_state`]: the best route for `prefix`
/// changed between day D and day D+1. Entity ids resolve to origins
/// through [`RenderEngine::entity_origin`]. Changes are emitted only
/// when the selected *origin* differs (a winner swap between entities
/// with equal origins is byte-invisible downstream), sorted by prefix
/// within each monitor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SelChange {
    /// The touched prefix.
    pub prefix: Prefix,
    /// Previously selected entity (`None`: the prefix was absent).
    pub old: Option<usize>,
    /// Newly selected entity (`None`: the prefix is withdrawn).
    pub new: Option<usize>,
}

/// Persistent per-monitor route state for an incremental day sweep:
/// day D+1 is rendered as a patch of day D instead of a full
/// recompute. Seeded by one full render ([`RenderEngine::seed_state`])
/// and advanced one day at a time ([`RenderEngine::advance_state`]);
/// any out-of-sequence day falls back to the full
/// [`RenderEngine::per_monitor_routes`] path (or a fresh seed).
///
/// Invariant: `cand[m]` is sorted by `(prefix, rank, entity)`. The
/// full path pushes candidates in entity order and stable-sorts by
/// `(prefix, rank)`; entity indices are unique per candidate set, so
/// that stable sort *is* the total order `(prefix, rank, entity)` —
/// which is what makes patched state bit-equal to recomputed state.
pub struct MonitorState {
    /// The day this state reflects.
    day: Date,
    /// `day - span.start`.
    day_off: usize,
    /// This state's own interval sweep (independent of any scratch).
    cursor: usize,
    active: Vec<usize>,
    /// Per-monitor candidates, sorted by `(prefix, rank, entity)`.
    cand: Vec<Vec<(Prefix, u64, usize)>>,
    /// Per-entity visibility bits on `day` (stable mask ∧ announced ∧
    /// flicker pass), stride `mask_words`; zero when inactive or
    /// unannounced. XOR against the next day's bits is the
    /// touched-prefix derivation.
    vis: Vec<u64>,
    /// Per-monitor patch scratch: `(prefix, rank, entity, add)`.
    patch: Vec<Vec<(Prefix, u64, usize, bool)>>,
    /// Merge spare buffer (ping-pong with each `cand[m]`).
    spare: Vec<(Prefix, u64, usize)>,
}

impl MonitorState {
    /// The day this state currently reflects.
    pub fn day(&self) -> Date {
        self.day
    }
}

/// First entry of the prefix group = the `(rank, entity)`-minimal
/// candidate, i.e. the selected route for `p` (if announced at all).
fn winner_of(cand: &[(Prefix, u64, usize)], p: Prefix) -> Option<usize> {
    let i = cand.partition_point(|e| e.0 < p);
    if i < cand.len() && cand[i].0 == p {
        Some(cand[i].2)
    } else {
        None
    }
}

impl<'w> RenderEngine<'w> {
    /// Build the engine: hoist the monitor fleet, flatten the world
    /// into entities, precompute stable keys/masks/ranks, and index
    /// the activation intervals.
    pub fn new(world: &'w LeaseWorld, model: &VisibilityModel) -> RenderEngine<'w> {
        let monitors = monitor_ases(world, model);
        let span = world.span;
        let num_days = span.num_days().max(0) as usize;
        let topo = &world.topology;

        let mut entities: Vec<RouteEntity> = Vec::with_capacity(
            world.allocations.len()
                + world.leases.len()
                + world.intra_org.len()
                + world.hijacks.len()
                + world.scrubbing.len()
                + world.moas.len()
                + world.as_sets.len(),
        );
        let push = |entities: &mut Vec<RouteEntity>,
                        prefix: Prefix,
                        origin: Origin,
                        vis: f64,
                        class: Option<RouteClass>,
                        active: Option<DateRange>,
                        cycle: Option<LeaseCycle>| {
            let origin_node = match &origin {
                Origin::Single(o) => topo.index_of(*o),
                Origin::Set(_) => None,
            };
            entities.push(RouteEntity {
                prefix,
                origin,
                vis,
                class,
                active,
                cycle,
                origin_node,
            });
        };

        for a in &world.allocations {
            push(
                &mut entities,
                a.prefix,
                Origin::Single(a.asn),
                0.992,
                Some(RouteClass::Allocation),
                None,
                None,
            );
        }
        let num_static = entities.len();
        for l in &world.leases {
            // Unannounced leases never produce a route; skip them
            // entirely instead of re-checking every day.
            if !l.announced {
                continue;
            }
            let cycle = (l.onoff.is_some() || l.flap_rate > 0.0).then_some(LeaseCycle {
                active_start: l.active.start,
                onoff: l.onoff,
                flap_rate: l.flap_rate,
                flap_key: l.flap_key,
            });
            push(
                &mut entities,
                l.prefix,
                Origin::Single(l.delegatee_asn),
                if l.aggregated { 0.06 } else { 0.99 },
                Some(RouteClass::Lease(l.id)),
                Some(l.active),
                cycle,
            );
        }
        for i in &world.intra_org {
            push(
                &mut entities,
                i.prefix,
                Origin::Single(i.child_asn),
                0.99,
                Some(RouteClass::IntraOrg),
                Some(i.active),
                None,
            );
        }
        for h in &world.hijacks {
            push(
                &mut entities,
                h.prefix,
                Origin::Single(h.attacker_asn),
                h.visibility,
                Some(RouteClass::Hijack),
                Some(h.active),
                None,
            );
        }
        for s in &world.scrubbing {
            push(
                &mut entities,
                s.prefix,
                Origin::Single(s.scrubber_asn),
                0.99,
                Some(RouteClass::Scrubbing),
                Some(s.active),
                None,
            );
        }
        for m in &world.moas {
            push(
                &mut entities,
                m.prefix,
                Origin::Single(m.second_origin),
                0.9,
                None,
                Some(m.active),
                None,
            );
        }
        for e in &world.as_sets {
            push(
                &mut entities,
                e.prefix,
                Origin::Set(e.set.clone()),
                0.9,
                None,
                Some(e.active),
                None,
            );
        }

        // Stable keys, visibility masks, tiebreak ranks.
        let nm = monitors.len();
        let mask_words = nm.div_ceil(64);
        let mut keys = Vec::with_capacity(entities.len() * nm);
        let mut ranks = Vec::with_capacity(entities.len() * nm);
        let mut masks = vec![0u64; entities.len() * mask_words];
        for (ei, e) in entities.iter().enumerate() {
            let okey = origin_key(&e.origin);
            let net = e.prefix.network() as u64;
            let len = e.prefix.len() as u64;
            for m in 0..nm {
                let key = splitmix64(
                    model
                        .seed
                        .wrapping_mul(0x517C_C1B7_2722_0A95)
                        .wrapping_add(net << 16)
                        .wrapping_add(len)
                        .wrapping_add((okey as u64) << 32)
                        .wrapping_add(m as u64),
                );
                keys.push(key);
                ranks.push(splitmix64(
                    model.seed ^ (net << 8) ^ ((okey as u64) << 40) ^ m as u64,
                ));
                if unit_f64(key) < e.vis {
                    masks[ei * mask_words + m / 64] |= 1u64 << (m % 64);
                }
            }
        }

        // Interval index over non-static entities.
        let mut per_day: Vec<Vec<EventDelta>> = Vec::new();
        per_day.resize_with(num_days, Vec::new);
        for (ei, e) in entities.iter().enumerate().skip(num_static) {
            let Some(range) = e.active else { continue };
            let s_off = (range.start - span.start).max(0);
            let e_off = range.end - span.start;
            if e_off < 0 || s_off >= num_days as i64 {
                continue;
            }
            per_day[s_off as usize].push(EventDelta { entity: ei, add: true });
            let rem = e_off + 1;
            if rem < num_days as i64 {
                per_day[rem as usize].push(EventDelta { entity: ei, add: false });
            }
        }
        let mut event_starts = Vec::with_capacity(num_days + 1);
        let mut events = Vec::new();
        for day in per_day {
            event_starts.push(events.len());
            events.extend(day);
        }
        event_starts.push(events.len());

        RenderEngine {
            world,
            model: model.clone(),
            monitors,
            entities,
            num_static,
            keys,
            ranks,
            masks,
            mask_words,
            span,
            event_starts,
            events,
            empty_path: Arc::from(Vec::new()),
            n_nodes: topo.nodes().len(),
        }
    }

    /// A fresh per-worker scratch for this engine.
    pub fn scratch(&self) -> RenderScratch {
        let mut paths = Vec::new();
        paths.resize_with(self.monitors.len() * self.n_nodes, || PathSlot::Unknown);
        let mut pm_bufs = Vec::new();
        pm_bufs.resize_with(self.monitors.len(), Vec::new);
        RenderScratch {
            cursor: 0,
            active: Vec::new(),
            paths,
            pm_bufs,
        }
    }

    /// Advance an interval sweep (a cursor + sorted active set) so the
    /// active set reflects `day_off`. Shared by the per-worker scratch
    /// and the incremental [`MonitorState`], which owns its own sweep.
    fn sweep_active(&self, cursor: &mut usize, active: &mut Vec<usize>, day_off: usize) {
        if day_off + 1 < *cursor {
            // Backward query (rare: only under cross-worker stealing
            // patterns that never happen with the index-ordered pool,
            // or direct out-of-order use). Re-sweep from the start.
            *cursor = 0;
            active.clear();
        }
        while *cursor <= day_off {
            let deltas = &self.events[self.event_starts[*cursor]..self.event_starts[*cursor + 1]];
            for d in deltas {
                if d.add {
                    if let Err(pos) = active.binary_search(&d.entity) {
                        active.insert(pos, d.entity);
                    }
                } else if let Ok(pos) = active.binary_search(&d.entity) {
                    active.remove(pos);
                }
            }
            *cursor += 1;
        }
    }

    /// Advance the sweep so `scratch.active` reflects `day_off`.
    fn sweep_to(&self, scratch: &mut RenderScratch, day_off: usize) {
        self.sweep_active(&mut scratch.cursor, &mut scratch.active, day_off);
    }

    /// The per-day hash multiplier feeding every flicker draw.
    #[inline]
    fn day_mul(day: Date) -> u64 {
        (day.days_since_epoch() as u64).wrapping_mul(0xA24B_AED4_963E_E407)
    }

    /// Does the daily flicker draw pass for this precomputed key?
    /// Same arithmetic as the historical `monitor_sees`, with the
    /// stable component already folded into the mask.
    #[inline]
    fn flicker_passes(&self, key: u64, day_mul: u64) -> bool {
        unit_f64(splitmix64(key ^ day_mul)) >= self.model.daily_flicker
    }

    /// Is a (swept-active) entity actually announced on `day`? Only
    /// leases carry a cycle; everything else is announced while
    /// active.
    fn entity_announced(&self, ei: usize, day: Date) -> bool {
        let Some(c) = &self.entities[ei].cycle else {
            return true;
        };
        if let Some((on, off)) = c.onoff {
            let cycle = (on + off) as i64;
            let pos = (day - c.active_start).rem_euclid(cycle);
            if pos >= on as i64 {
                return false;
            }
        }
        if c.flap_rate > 0.0 && unit_f64(flap_hash(c.flap_key, day)) < c.flap_rate {
            return false;
        }
        true
    }

    /// The interned monitor→origin path (empty when no valley-free
    /// path exists).
    fn interned_path(&self, paths: &mut [PathSlot], m: usize, origin: Asn, oi: usize) -> Arc<[Asn]> {
        let slot = m * self.n_nodes + oi;
        match &paths[slot] {
            PathSlot::Interned(p) => Arc::clone(p),
            PathSlot::Absent => Arc::clone(&self.empty_path),
            PathSlot::Unknown => match self.world.topology.path(self.monitors[m], origin) {
                Some(v) => {
                    let arc: Arc<[Asn]> = v.into();
                    paths[slot] = PathSlot::Interned(Arc::clone(&arc));
                    arc
                }
                None => {
                    paths[slot] = PathSlot::Absent;
                    Arc::clone(&self.empty_path)
                }
            },
        }
    }

    /// Evaluate one entity's monitor visibility for the day and append
    /// its observation (if any monitor sees it).
    fn emit(
        &self,
        paths: &mut [PathSlot],
        ei: usize,
        day_mul: u64,
        routes: &mut Vec<RouteObservation>,
    ) {
        let e = &self.entities[ei];
        let nm = self.monitors.len();
        let base = ei * nm;
        let mut seen = 0u16;
        let mut first: Option<usize> = None;
        for w in 0..self.mask_words {
            let mut bits = self.masks[ei * self.mask_words + w];
            while bits != 0 {
                let m = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if self.flicker_passes(self.keys[base + m], day_mul) {
                    seen += 1;
                    if first.is_none() {
                        first = Some(m);
                    }
                }
            }
        }
        if seen == 0 {
            return;
        }
        let path = match (&e.origin, first, e.origin_node) {
            (Origin::Single(o), Some(m), Some(oi)) => self.interned_path(paths, m, *o, oi),
            _ => Arc::clone(&self.empty_path),
        };
        routes.push(RouteObservation {
            prefix: e.prefix,
            origin: e.origin.clone(),
            monitors_seen: seen,
            path,
            class: e.class,
        });
    }

    /// Render one day: the same observation surface as the historical
    /// `render_day`, byte for byte.
    pub fn render_day(&self, scratch: &mut RenderScratch, day: Date) -> ObservationDay {
        let day_mul = Self::day_mul(day);
        let mut routes = Vec::new();
        if self.span.contains(day) {
            self.sweep_to(scratch, (day - self.span.start) as usize);
            for ei in 0..self.num_static {
                self.emit(&mut scratch.paths, ei, day_mul, &mut routes);
            }
            for i in 0..scratch.active.len() {
                let ei = scratch.active[i];
                if self.entity_announced(ei, day) {
                    self.emit(&mut scratch.paths, ei, day_mul, &mut routes);
                }
            }
        } else {
            // Out-of-span day: the precomputed keys/masks are still
            // valid (they are day-independent); only the sweep cannot
            // serve the active set, so scan the intervals directly.
            for ei in 0..self.entities.len() {
                if self.entity_active_on(ei, day) && self.entity_announced(ei, day) {
                    self.emit(&mut scratch.paths, ei, day_mul, &mut routes);
                }
            }
        }
        ObservationDay {
            date: day,
            num_monitors: self.model.num_monitors,
            routes,
        }
    }

    /// Interval check for the out-of-span slow path.
    fn entity_active_on(&self, ei: usize, day: Date) -> bool {
        match self.entities[ei].active {
            None => true,
            Some(range) => range.contains(day),
        }
    }

    /// The per-monitor best-route view of one day — same semantics as
    /// the historical `per_monitor_routes` (minimum tiebreak rank
    /// wins, first candidate wins ties, output sorted by prefix), with
    /// no per-monitor hash maps: candidates are bucketed per monitor,
    /// sorted once, and deduplicated by prefix.
    pub fn per_monitor_routes(
        &self,
        scratch: &mut RenderScratch,
        day: Date,
    ) -> Vec<Vec<(Prefix, Origin)>> {
        let day_mul = Self::day_mul(day);
        for buf in scratch.pm_bufs.iter_mut() {
            buf.clear();
        }
        let in_span = self.span.contains(day);
        if in_span {
            self.sweep_to(scratch, (day - self.span.start) as usize);
        }
        // Candidate pass: bucket (prefix, rank, entity) per monitor in
        // the legacy candidate order (statics, then active by entity
        // index).
        let nm = self.monitors.len();
        {
            let RenderScratch { active, pm_bufs, .. } = scratch;
            let mut consider = |ei: usize| {
                let base = ei * nm;
                let prefix = self.entities[ei].prefix;
                for w in 0..self.mask_words {
                    let mut bits = self.masks[ei * self.mask_words + w];
                    while bits != 0 {
                        let m = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        if self.flicker_passes(self.keys[base + m], day_mul) {
                            pm_bufs[m].push((prefix, self.ranks[base + m], ei));
                        }
                    }
                }
            };
            if in_span {
                for ei in 0..self.num_static {
                    consider(ei);
                }
                for &ei in active.iter() {
                    if self.entity_announced(ei, day) {
                        consider(ei);
                    }
                }
            } else {
                for ei in 0..self.entities.len() {
                    if self.entity_active_on(ei, day) && self.entity_announced(ei, day) {
                        consider(ei);
                    }
                }
            }
        }
        // Selection pass: per monitor, stable-sort by (prefix, rank) —
        // the first row of each prefix group is the minimum-rank,
        // earliest-candidate winner, exactly the legacy tiebreak.
        let mut out: Vec<Vec<(Prefix, Origin)>> = Vec::with_capacity(nm);
        for buf in scratch.pm_bufs.iter_mut() {
            buf.sort_by_key(|e| (e.0, e.1));
            let mut routes: Vec<(Prefix, Origin)> = Vec::with_capacity(buf.len());
            let mut last: Option<Prefix> = None;
            for &(p, _, ei) in buf.iter() {
                if last == Some(p) {
                    continue;
                }
                last = Some(p);
                routes.push((p, self.entities[ei].origin.clone()));
            }
            out.push(routes);
        }
        out
    }

    /// The hoisted monitor fleet (one AS per slot, index-aligned with
    /// peer tables).
    pub fn monitors(&self) -> &[Asn] {
        &self.monitors
    }

    /// The origin of an entity id carried by a [`SelChange`].
    pub fn entity_origin(&self, ei: usize) -> &Origin {
        &self.entities[ei].origin
    }

    /// Seed incremental state with one full render of `day`. Returns
    /// `None` for out-of-span days (the interval sweep cannot serve
    /// them; use [`RenderEngine::per_monitor_routes`] instead).
    pub fn seed_state(&self, day: Date) -> Option<MonitorState> {
        if !self.span.contains(day) {
            return None;
        }
        let day_off = (day - self.span.start) as usize;
        let nm = self.monitors.len();
        let mut state = MonitorState {
            day,
            day_off,
            cursor: 0,
            active: Vec::new(),
            cand: vec![Vec::new(); nm],
            vis: vec![0u64; self.entities.len() * self.mask_words],
            patch: vec![Vec::new(); nm],
            spare: Vec::new(),
        };
        self.sweep_active(&mut state.cursor, &mut state.active, day_off);
        let day_mul = Self::day_mul(day);
        for ei in 0..self.num_static {
            self.seed_entity(&mut state, ei, day, day_mul);
        }
        let actives = std::mem::take(&mut state.active);
        for &ei in &actives {
            self.seed_entity(&mut state, ei, day, day_mul);
        }
        state.active = actives;
        for buf in state.cand.iter_mut() {
            buf.sort_unstable_by_key(|e| (e.0, e.1, e.2));
        }
        Some(state)
    }

    /// Record one entity's day visibility into a fresh state: set the
    /// vis bits and push its candidates (unsorted; the seed sorts).
    fn seed_entity(&self, state: &mut MonitorState, ei: usize, day: Date, day_mul: u64) {
        if !self.entity_announced(ei, day) {
            return;
        }
        let nm = self.monitors.len();
        let base_k = ei * nm;
        let prefix = self.entities[ei].prefix;
        for w in 0..self.mask_words {
            let mut bits = self.masks[ei * self.mask_words + w];
            let mut vis_word = 0u64;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let m = w * 64 + b;
                if self.flicker_passes(self.keys[base_k + m], day_mul) {
                    vis_word |= 1u64 << b;
                    state.cand[m].push((prefix, self.ranks[base_k + m], ei));
                }
            }
            state.vis[ei * self.mask_words + w] = vis_word;
        }
    }

    /// Advance incremental state by exactly one day and report every
    /// selected-route change per monitor (`changes[m]`, sorted by
    /// prefix). Returns the new day, or `None` when the successor day
    /// leaves the span (state is then unchanged).
    ///
    /// The touched set per transition is the union of three sources:
    /// interval starts/ends from the CSR event index, announcement
    /// cycles (on-off / flap leases re-evaluated on both days), and
    /// flicker bit changes (old-vs-new visibility mask XOR). Only
    /// candidates at touched `(entity, monitor)` bits move; each
    /// monitor's sorted candidate vector is patched by a linear merge
    /// and winners are re-read only at touched prefixes.
    pub fn advance_state(
        &self,
        state: &mut MonitorState,
        changes: &mut Vec<Vec<SelChange>>,
    ) -> Option<Date> {
        let new_day = state.day.succ();
        if !self.span.contains(new_day) {
            return None;
        }
        let new_off = state.day_off + 1;
        let day_mul = Self::day_mul(new_day);
        let nm = self.monitors.len();
        changes.resize_with(nm, Vec::new);
        for c in changes.iter_mut() {
            c.clear();
        }
        for p in state.patch.iter_mut() {
            p.clear();
        }

        // Interval deltas scheduled at the new day: deactivations drop
        // every live bit, activations join the refresh pass below
        // (their old mask is zero, so the XOR emits pure adds).
        let deltas = &self.events[self.event_starts[new_off]..self.event_starts[new_off + 1]];
        for d in deltas {
            if !d.add {
                if let Ok(pos) = state.active.binary_search(&d.entity) {
                    state.active.remove(pos);
                    self.retire_entity(state, d.entity);
                }
            }
        }
        for d in deltas {
            if d.add {
                if let Err(pos) = state.active.binary_search(&d.entity) {
                    state.active.insert(pos, d.entity);
                }
            }
        }
        for ei in 0..self.num_static {
            self.refresh_entity(state, ei, new_day, day_mul);
        }
        let actives = std::mem::take(&mut state.active);
        for &ei in &actives {
            self.refresh_entity(state, ei, new_day, day_mul);
        }
        state.active = actives;

        // Patch each monitor's candidate vector and re-read winners at
        // touched prefixes only.
        for m in 0..nm {
            if state.patch[m].is_empty() {
                continue;
            }
            state.patch[m].sort_unstable_by_key(|e| (e.0, e.1, e.2));
            let MonitorState { cand, patch, spare, .. } = state;
            self.apply_patch(&mut cand[m], &patch[m], spare, &mut changes[m]);
        }
        state.day = new_day;
        state.day_off = new_off;
        state.cursor = new_off + 1;
        Some(new_day)
    }

    /// Drop a deactivated entity's visibility bits into the patch.
    fn retire_entity(&self, state: &mut MonitorState, ei: usize) {
        let base_k = ei * self.monitors.len();
        let prefix = self.entities[ei].prefix;
        for w in 0..self.mask_words {
            let mut diff = state.vis[ei * self.mask_words + w];
            state.vis[ei * self.mask_words + w] = 0;
            while diff != 0 {
                let b = diff.trailing_zeros() as usize;
                diff &= diff - 1;
                let m = w * 64 + b;
                state.patch[m].push((prefix, self.ranks[base_k + m], ei, false));
            }
        }
    }

    /// Recompute one surviving entity's visibility bits for the new
    /// day and push the XOR against the stored bits into the patch.
    fn refresh_entity(&self, state: &mut MonitorState, ei: usize, day: Date, day_mul: u64) {
        let announced = self.entity_announced(ei, day);
        let base_k = ei * self.monitors.len();
        let prefix = self.entities[ei].prefix;
        for w in 0..self.mask_words {
            let old = state.vis[ei * self.mask_words + w];
            let new = if announced {
                let mut bits = self.masks[ei * self.mask_words + w];
                let mut vis_word = 0u64;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if self.flicker_passes(self.keys[base_k + w * 64 + b], day_mul) {
                        vis_word |= 1u64 << b;
                    }
                }
                vis_word
            } else {
                0
            };
            if old == new {
                continue;
            }
            state.vis[ei * self.mask_words + w] = new;
            let mut diff = old ^ new;
            while diff != 0 {
                let b = diff.trailing_zeros() as usize;
                diff &= diff - 1;
                let m = w * 64 + b;
                let add = new & (1u64 << b) != 0;
                state.patch[m].push((prefix, self.ranks[base_k + m], ei, add));
            }
        }
    }

    /// Merge one monitor's sorted patch into its sorted candidate
    /// vector (linear, via the spare buffer) and emit a [`SelChange`]
    /// for every touched prefix whose selected origin differs.
    fn apply_patch(
        &self,
        cand: &mut Vec<(Prefix, u64, usize)>,
        patch: &[(Prefix, u64, usize, bool)],
        spare: &mut Vec<(Prefix, u64, usize)>,
        out: &mut Vec<SelChange>,
    ) {
        // Old winners per touched prefix, read before mutation. Patch
        // entries are prefix-grouped (sorted), so this walks groups.
        let mut old_winners: Vec<(Prefix, Option<usize>)> = Vec::new();
        let mut i = 0;
        while i < patch.len() {
            let p = patch[i].0;
            while i < patch.len() && patch[i].0 == p {
                i += 1;
            }
            old_winners.push((p, winner_of(cand, p)));
        }

        spare.clear();
        spare.reserve(cand.len() + patch.len());
        let (mut a, mut b) = (0, 0);
        while a < cand.len() && b < patch.len() {
            let ce = cand[a];
            let pe = patch[b];
            let pkey = (pe.0, pe.1, pe.2);
            if pkey < (ce.0, ce.1, ce.2) {
                // An add of a candidate not present (removals always
                // match an existing entry by construction: a cleared
                // bit was set, so its candidate is in the vector).
                debug_assert!(pe.3, "removal of a missing candidate");
                spare.push((pe.0, pe.1, pe.2));
                b += 1;
            } else if pkey == (ce.0, ce.1, ce.2) {
                debug_assert!(!pe.3, "add of an existing candidate");
                // Removal: skip the matching entry.
                a += 1;
                b += 1;
            } else {
                spare.push(ce);
                a += 1;
            }
        }
        spare.extend_from_slice(&cand[a..]);
        for pe in &patch[b..] {
            debug_assert!(pe.3, "removal of a missing candidate");
            spare.push((pe.0, pe.1, pe.2));
        }
        std::mem::swap(cand, spare);

        for (p, old) in old_winners {
            let new = winner_of(cand, p);
            if old == new {
                continue;
            }
            let origin_changed = match (old, new) {
                (Some(o), Some(n)) => {
                    self.entities[o as usize].origin != self.entities[n as usize].origin
                }
                _ => true,
            };
            if origin_changed {
                out.push(SelChange { prefix: p, old, new });
            }
        }
    }

    /// Materialize the full per-monitor best-route view from
    /// incremental state — identical to
    /// [`RenderEngine::per_monitor_routes`] on the same day.
    pub fn state_routes(&self, state: &MonitorState) -> Vec<Vec<(Prefix, Origin)>> {
        state
            .cand
            .iter()
            .map(|buf| {
                let mut routes: Vec<(Prefix, Origin)> = Vec::with_capacity(buf.len());
                let mut last: Option<Prefix> = None;
                for &(p, _, ei) in buf.iter() {
                    if last == Some(p) {
                        continue;
                    }
                    last = Some(p);
                    routes.push((p, self.entities[ei as usize].origin.clone()));
                }
                routes
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::WorldConfig;
    use crate::topology::TopologyConfig;
    use nettypes::date::date;

    fn world() -> LeaseWorld {
        LeaseWorld::generate(&WorldConfig {
            seed: 21,
            span: DateRange::new(date("2018-01-01"), date("2018-03-31")),
            topology: TopologyConfig {
                seed: 21,
                num_tier1: 4,
                num_tier2: 12,
                num_stubs: 100,
                multi_as_org_fraction: 0.15,
            },
            num_allocations: 40,
            initial_active_leases: 120,
            bgp_visible_fraction: 0.3,
            num_hijacks: 5,
            num_moas: 4,
            num_as_sets: 3,
            num_scrubbing: 2,
            ..Default::default()
        })
    }

    #[test]
    fn sweep_is_order_independent() {
        let w = world();
        let model = VisibilityModel::default();
        let engine = RenderEngine::new(&w, &model);
        // Forward order…
        let mut forward = engine.scratch();
        let days: Vec<Date> = w.span.iter().collect();
        let f: Vec<ObservationDay> = days.iter().map(|&d| engine.render_day(&mut forward, d)).collect();
        // …vs a scratch queried backwards (forces resets).
        let mut backward = engine.scratch();
        let b: Vec<ObservationDay> = days
            .iter()
            .rev()
            .map(|&d| engine.render_day(&mut backward, d))
            .collect();
        for (i, day) in f.iter().enumerate() {
            assert_eq!(*day, b[days.len() - 1 - i], "day {} differs", day.date);
        }
    }

    #[test]
    fn out_of_span_day_falls_back_to_interval_scan() {
        let w = world();
        let model = VisibilityModel::default();
        let engine = RenderEngine::new(&w, &model);
        let mut scratch = engine.scratch();
        // A day before the span: the sweep cannot serve it, but the
        // interval scan still renders every statically-announced
        // allocation, and nothing outside its active window.
        let day = engine.render_day(&mut scratch, date("2017-06-01"));
        let allocs = day
            .routes
            .iter()
            .filter(|r| r.class == Some(RouteClass::Allocation))
            .count();
        assert_eq!(allocs, w.allocations.len());
        assert!(day.routes.iter().all(|r| match r.class {
            Some(RouteClass::Hijack) | None => false, // events start in-span
            _ => true,
        }));
    }

    #[test]
    fn incremental_state_matches_full_render_every_day() {
        let w = world();
        let model = VisibilityModel::default();
        let engine = RenderEngine::new(&w, &model);
        let mut scratch = engine.scratch();
        let days: Vec<Date> = w.span.iter().collect();
        let mut state = engine.seed_state(days[0]).expect("day 0 is in span");
        assert_eq!(
            engine.state_routes(&state),
            engine.per_monitor_routes(&mut scratch, days[0])
        );
        let mut changes: Vec<Vec<SelChange>> = Vec::new();
        let mut prev = engine.per_monitor_routes(&mut scratch, days[0]).clone();
        for &d in &days[1..] {
            let advanced = engine.advance_state(&mut state, &mut changes);
            assert_eq!(advanced, Some(d));
            let full = engine.per_monitor_routes(&mut scratch, d);
            assert_eq!(engine.state_routes(&state), full, "routes differ on {d}");
            // Every reported SelChange is a real origin change, and
            // the change lists fully account for the day-over-day
            // difference in selected origins.
            for (m, ch) in changes.iter().enumerate() {
                let old_map: std::collections::BTreeMap<Prefix, &Origin> =
                    prev[m].iter().map(|(p, o)| (*p, o)).collect();
                let new_map: std::collections::BTreeMap<Prefix, &Origin> =
                    full[m].iter().map(|(p, o)| (*p, o)).collect();
                let mut touched: Vec<Prefix> = ch.iter().map(|c| c.prefix).collect();
                assert!(touched.windows(2).all(|w| w[0] < w[1]), "unsorted changes");
                for c in ch {
                    assert_eq!(
                        c.old.map(|e| engine.entity_origin(e)),
                        old_map.get(&c.prefix).copied(),
                        "stale old origin for {} on {d}",
                        c.prefix
                    );
                    assert_eq!(
                        c.new.map(|e| engine.entity_origin(e)),
                        new_map.get(&c.prefix).copied(),
                        "wrong new origin for {} on {d}",
                        c.prefix
                    );
                }
                // Prefixes absent from the change list kept their
                // selected origin.
                touched.dedup();
                for (p, o) in old_map.iter() {
                    if touched.binary_search(p).is_err() {
                        assert_eq!(new_map.get(p), Some(o), "silent change at {p} on {d}");
                    }
                }
                for (p, o) in new_map.iter() {
                    if touched.binary_search(p).is_err() {
                        assert_eq!(old_map.get(p), Some(o), "silent appearance at {p} on {d}");
                    }
                }
            }
            prev = full;
        }
        // Advancing past the span end is a clean refusal.
        assert_eq!(engine.advance_state(&mut state, &mut changes), None);
        assert_eq!(state.day(), *days.last().unwrap());
    }

    #[test]
    fn seed_state_matches_full_render_mid_span() {
        let w = world();
        let model = VisibilityModel::default();
        let engine = RenderEngine::new(&w, &model);
        let mut scratch = engine.scratch();
        for d in [date("2018-01-15"), date("2018-02-28"), date("2018-03-31")] {
            let state = engine.seed_state(d).expect("in span");
            assert_eq!(
                engine.state_routes(&state),
                engine.per_monitor_routes(&mut scratch, d),
                "seeded routes differ on {d}"
            );
        }
        assert!(engine.seed_state(date("2017-12-31")).is_none());
        assert!(engine.seed_state(date("2018-04-01")).is_none());
    }

    #[test]
    fn scratches_are_independent() {
        let w = world();
        let model = VisibilityModel::default();
        let engine = RenderEngine::new(&w, &model);
        let d = date("2018-02-10");
        let mut a = engine.scratch();
        let mut b = engine.scratch();
        // Warm `a` with other days first; `b` goes straight there.
        let _ = engine.render_day(&mut a, date("2018-01-05"));
        let _ = engine.render_day(&mut a, date("2018-01-20"));
        assert_eq!(engine.render_day(&mut a, d), engine.render_day(&mut b, d));
        assert_eq!(
            engine.per_monitor_routes(&mut a, d),
            engine.per_monitor_routes(&mut b, d)
        );
    }
}
