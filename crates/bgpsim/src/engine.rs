//! The cross-day render engine: day-invariant work hoisted out of the
//! per-day loop.
//!
//! Rendering a [`LeaseWorld`] day by day repeats four expensive
//! computations that do not actually depend on the day:
//!
//! 1. **event scanning** — `announced_routes_on` walks every lease,
//!    hijack, intra-org, scrubbing, MOAS and AS_SET record per day.
//!    The engine builds an *interval index* once (start/end deltas per
//!    day, CSR layout) and sweeps it forward, applying only each day's
//!    deltas to a sorted active set;
//! 2. **stable visibility** — the structural component of the monitor
//!    visibility draw is a pure hash of `(prefix, origin, monitor)`.
//!    The engine precomputes a per-route monitor bitmask (one `u64`
//!    word per 64 monitors) plus the per-monitor hash keys, leaving
//!    only one flicker hash per *set bit* per day;
//! 3. **paths** — monitor→origin valley-free paths are interned in a
//!    per-worker arena as `Arc<[Asn]>`, handed out by reference-count
//!    bump instead of a `Vec` clone per observation; `monitor_ases`
//!    is computed once at engine construction;
//! 4. **MOAS tiebreaks** — the per-`(monitor, prefix, origin)` rank is
//!    also day-independent and precomputed.
//!
//! Determinism contract: the engine is a pure evaluation-order rewrite
//! of the same deterministic draws. [`RenderEngine`] is immutable and
//! `Sync`; all mutable state lives in a per-worker [`RenderScratch`],
//! so fan-out over the worker pool ([`crate::par`]) yields bytes
//! identical to the sequential path — at any thread count. The sweep
//! cursor only moves forward within a worker (day indices are claimed
//! in increasing order); a backward query resets and re-sweeps, so
//! arbitrary query order is still correct, just slower.

use crate::observe::{
    monitor_ases, origin_key, splitmix64, unit_f64, ObservationDay, RouteObservation,
    VisibilityModel,
};
use crate::scenario::{flap_hash, LeaseWorld, RouteClass};
use nettypes::asn::{Asn, Origin};
use nettypes::date::{Date, DateRange};
use nettypes::prefix::Prefix;
use std::sync::Arc;

/// On-off / flap parameters for lease entities; evaluated per day at
/// emit time (they are the only genuinely day-dependent inputs).
struct LeaseCycle {
    active_start: Date,
    onoff: Option<(u16, u16)>,
    flap_rate: f64,
    flap_key: u64,
}

/// One route the world can announce: the day-invariant description.
struct RouteEntity {
    prefix: Prefix,
    origin: Origin,
    vis: f64,
    class: Option<RouteClass>,
    /// `None` for always-active entities (allocations).
    active: Option<DateRange>,
    /// Lease announcement cycle, when one applies.
    cycle: Option<LeaseCycle>,
    /// Dense topology index of a `Single` origin, when it is in the
    /// topology — the key for the per-worker path arena.
    origin_node: Option<usize>,
}

/// One interval-index delta: activate or deactivate an entity.
struct EventDelta {
    entity: usize,
    add: bool,
}

/// A path-arena slot: not yet computed, computed-absent, or interned.
enum PathSlot {
    Unknown,
    Absent,
    Interned(Arc<[Asn]>),
}

/// The immutable, `Sync` engine: share one per render run, give each
/// worker its own [`RenderScratch`].
pub struct RenderEngine<'w> {
    world: &'w LeaseWorld,
    model: VisibilityModel,
    /// Hoisted monitor fleet (one AS per monitor slot).
    monitors: Vec<Asn>,
    /// Entities in the legacy emit order: allocations, announced
    /// leases, intra-org, hijacks, scrubbing, MOAS, AS_SETs.
    entities: Vec<RouteEntity>,
    /// Entities `0..num_static` are active every day.
    num_static: usize,
    /// Per-entity per-monitor stable visibility keys (stride
    /// `monitors.len()`), reused by the daily flicker hash.
    keys: Vec<u64>,
    /// Per-entity per-monitor MOAS tiebreak ranks (same stride).
    ranks: Vec<u64>,
    /// Per-entity monitor bitmask (stride `mask_words`).
    masks: Vec<u64>,
    mask_words: usize,
    span: DateRange,
    /// CSR interval index: day offset → delta slice.
    event_starts: Vec<usize>,
    events: Vec<EventDelta>,
    /// The shared empty path (AS_SET origins, unreachable origins).
    empty_path: Arc<[Asn]>,
    n_nodes: usize,
}

/// Per-worker mutable state: the sweep position, the active set, the
/// path arena, and reusable per-monitor candidate buffers.
pub struct RenderScratch {
    /// Number of day event-sets applied; `active` reflects day
    /// `cursor - 1`.
    cursor: usize,
    /// Active non-static entities, sorted by entity index (= emit
    /// order).
    active: Vec<usize>,
    /// Flat path arena: `monitor_slot * n_nodes + origin_node`.
    paths: Vec<PathSlot>,
    /// Per-monitor `(prefix, rank, entity)` candidate buffers for
    /// [`RenderEngine::per_monitor_routes`].
    pm_bufs: Vec<Vec<(Prefix, u64, usize)>>,
}

impl<'w> RenderEngine<'w> {
    /// Build the engine: hoist the monitor fleet, flatten the world
    /// into entities, precompute stable keys/masks/ranks, and index
    /// the activation intervals.
    pub fn new(world: &'w LeaseWorld, model: &VisibilityModel) -> RenderEngine<'w> {
        let monitors = monitor_ases(world, model);
        let span = world.span;
        let num_days = span.num_days().max(0) as usize;
        let topo = &world.topology;

        let mut entities: Vec<RouteEntity> = Vec::with_capacity(
            world.allocations.len()
                + world.leases.len()
                + world.intra_org.len()
                + world.hijacks.len()
                + world.scrubbing.len()
                + world.moas.len()
                + world.as_sets.len(),
        );
        let push = |entities: &mut Vec<RouteEntity>,
                        prefix: Prefix,
                        origin: Origin,
                        vis: f64,
                        class: Option<RouteClass>,
                        active: Option<DateRange>,
                        cycle: Option<LeaseCycle>| {
            let origin_node = match &origin {
                Origin::Single(o) => topo.index_of(*o),
                Origin::Set(_) => None,
            };
            entities.push(RouteEntity {
                prefix,
                origin,
                vis,
                class,
                active,
                cycle,
                origin_node,
            });
        };

        for a in &world.allocations {
            push(
                &mut entities,
                a.prefix,
                Origin::Single(a.asn),
                0.992,
                Some(RouteClass::Allocation),
                None,
                None,
            );
        }
        let num_static = entities.len();
        for l in &world.leases {
            // Unannounced leases never produce a route; skip them
            // entirely instead of re-checking every day.
            if !l.announced {
                continue;
            }
            let cycle = (l.onoff.is_some() || l.flap_rate > 0.0).then_some(LeaseCycle {
                active_start: l.active.start,
                onoff: l.onoff,
                flap_rate: l.flap_rate,
                flap_key: l.flap_key,
            });
            push(
                &mut entities,
                l.prefix,
                Origin::Single(l.delegatee_asn),
                if l.aggregated { 0.06 } else { 0.99 },
                Some(RouteClass::Lease(l.id)),
                Some(l.active),
                cycle,
            );
        }
        for i in &world.intra_org {
            push(
                &mut entities,
                i.prefix,
                Origin::Single(i.child_asn),
                0.99,
                Some(RouteClass::IntraOrg),
                Some(i.active),
                None,
            );
        }
        for h in &world.hijacks {
            push(
                &mut entities,
                h.prefix,
                Origin::Single(h.attacker_asn),
                h.visibility,
                Some(RouteClass::Hijack),
                Some(h.active),
                None,
            );
        }
        for s in &world.scrubbing {
            push(
                &mut entities,
                s.prefix,
                Origin::Single(s.scrubber_asn),
                0.99,
                Some(RouteClass::Scrubbing),
                Some(s.active),
                None,
            );
        }
        for m in &world.moas {
            push(
                &mut entities,
                m.prefix,
                Origin::Single(m.second_origin),
                0.9,
                None,
                Some(m.active),
                None,
            );
        }
        for e in &world.as_sets {
            push(
                &mut entities,
                e.prefix,
                Origin::Set(e.set.clone()),
                0.9,
                None,
                Some(e.active),
                None,
            );
        }

        // Stable keys, visibility masks, tiebreak ranks.
        let nm = monitors.len();
        let mask_words = nm.div_ceil(64);
        let mut keys = Vec::with_capacity(entities.len() * nm);
        let mut ranks = Vec::with_capacity(entities.len() * nm);
        let mut masks = vec![0u64; entities.len() * mask_words];
        for (ei, e) in entities.iter().enumerate() {
            let okey = origin_key(&e.origin);
            let net = e.prefix.network() as u64;
            let len = e.prefix.len() as u64;
            for m in 0..nm {
                let key = splitmix64(
                    model
                        .seed
                        .wrapping_mul(0x517C_C1B7_2722_0A95)
                        .wrapping_add(net << 16)
                        .wrapping_add(len)
                        .wrapping_add((okey as u64) << 32)
                        .wrapping_add(m as u64),
                );
                keys.push(key);
                ranks.push(splitmix64(
                    model.seed ^ (net << 8) ^ ((okey as u64) << 40) ^ m as u64,
                ));
                if unit_f64(key) < e.vis {
                    masks[ei * mask_words + m / 64] |= 1u64 << (m % 64);
                }
            }
        }

        // Interval index over non-static entities.
        let mut per_day: Vec<Vec<EventDelta>> = Vec::new();
        per_day.resize_with(num_days, Vec::new);
        for (ei, e) in entities.iter().enumerate().skip(num_static) {
            let Some(range) = e.active else { continue };
            let s_off = (range.start - span.start).max(0);
            let e_off = range.end - span.start;
            if e_off < 0 || s_off >= num_days as i64 {
                continue;
            }
            per_day[s_off as usize].push(EventDelta { entity: ei, add: true });
            let rem = e_off + 1;
            if rem < num_days as i64 {
                per_day[rem as usize].push(EventDelta { entity: ei, add: false });
            }
        }
        let mut event_starts = Vec::with_capacity(num_days + 1);
        let mut events = Vec::new();
        for day in per_day {
            event_starts.push(events.len());
            events.extend(day);
        }
        event_starts.push(events.len());

        RenderEngine {
            world,
            model: model.clone(),
            monitors,
            entities,
            num_static,
            keys,
            ranks,
            masks,
            mask_words,
            span,
            event_starts,
            events,
            empty_path: Arc::from(Vec::new()),
            n_nodes: topo.nodes().len(),
        }
    }

    /// A fresh per-worker scratch for this engine.
    pub fn scratch(&self) -> RenderScratch {
        let mut paths = Vec::new();
        paths.resize_with(self.monitors.len() * self.n_nodes, || PathSlot::Unknown);
        let mut pm_bufs = Vec::new();
        pm_bufs.resize_with(self.monitors.len(), Vec::new);
        RenderScratch {
            cursor: 0,
            active: Vec::new(),
            paths,
            pm_bufs,
        }
    }

    /// Advance the sweep so `scratch.active` reflects `day_off`.
    fn sweep_to(&self, scratch: &mut RenderScratch, day_off: usize) {
        if day_off + 1 < scratch.cursor {
            // Backward query (rare: only under cross-worker stealing
            // patterns that never happen with the index-ordered pool,
            // or direct out-of-order use). Re-sweep from the start.
            scratch.cursor = 0;
            scratch.active.clear();
        }
        while scratch.cursor <= day_off {
            let deltas = &self.events[self.event_starts[scratch.cursor]..self.event_starts[scratch.cursor + 1]];
            for d in deltas {
                if d.add {
                    if let Err(pos) = scratch.active.binary_search(&d.entity) {
                        scratch.active.insert(pos, d.entity);
                    }
                } else if let Ok(pos) = scratch.active.binary_search(&d.entity) {
                    scratch.active.remove(pos);
                }
            }
            scratch.cursor += 1;
        }
    }

    /// Does the daily flicker draw pass for this precomputed key?
    /// Same arithmetic as the historical `monitor_sees`, with the
    /// stable component already folded into the mask.
    #[inline]
    fn flicker_passes(&self, key: u64, day_mul: u64) -> bool {
        unit_f64(splitmix64(key ^ day_mul)) >= self.model.daily_flicker
    }

    /// Is a (swept-active) entity actually announced on `day`? Only
    /// leases carry a cycle; everything else is announced while
    /// active.
    fn entity_announced(&self, ei: usize, day: Date) -> bool {
        let Some(c) = &self.entities[ei].cycle else {
            return true;
        };
        if let Some((on, off)) = c.onoff {
            let cycle = (on + off) as i64;
            let pos = (day - c.active_start).rem_euclid(cycle);
            if pos >= on as i64 {
                return false;
            }
        }
        if c.flap_rate > 0.0 && unit_f64(flap_hash(c.flap_key, day)) < c.flap_rate {
            return false;
        }
        true
    }

    /// The interned monitor→origin path (empty when no valley-free
    /// path exists).
    fn interned_path(&self, paths: &mut [PathSlot], m: usize, origin: Asn, oi: usize) -> Arc<[Asn]> {
        let slot = m * self.n_nodes + oi;
        match &paths[slot] {
            PathSlot::Interned(p) => Arc::clone(p),
            PathSlot::Absent => Arc::clone(&self.empty_path),
            PathSlot::Unknown => match self.world.topology.path(self.monitors[m], origin) {
                Some(v) => {
                    let arc: Arc<[Asn]> = v.into();
                    paths[slot] = PathSlot::Interned(Arc::clone(&arc));
                    arc
                }
                None => {
                    paths[slot] = PathSlot::Absent;
                    Arc::clone(&self.empty_path)
                }
            },
        }
    }

    /// Evaluate one entity's monitor visibility for the day and append
    /// its observation (if any monitor sees it).
    fn emit(
        &self,
        paths: &mut [PathSlot],
        ei: usize,
        day_mul: u64,
        routes: &mut Vec<RouteObservation>,
    ) {
        let e = &self.entities[ei];
        let nm = self.monitors.len();
        let base = ei * nm;
        let mut seen = 0u16;
        let mut first: Option<usize> = None;
        for w in 0..self.mask_words {
            let mut bits = self.masks[ei * self.mask_words + w];
            while bits != 0 {
                let m = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if self.flicker_passes(self.keys[base + m], day_mul) {
                    seen += 1;
                    if first.is_none() {
                        first = Some(m);
                    }
                }
            }
        }
        if seen == 0 {
            return;
        }
        let path = match (&e.origin, first, e.origin_node) {
            (Origin::Single(o), Some(m), Some(oi)) => self.interned_path(paths, m, *o, oi),
            _ => Arc::clone(&self.empty_path),
        };
        routes.push(RouteObservation {
            prefix: e.prefix,
            origin: e.origin.clone(),
            monitors_seen: seen,
            path,
            class: e.class,
        });
    }

    /// Render one day: the same observation surface as the historical
    /// `render_day`, byte for byte.
    pub fn render_day(&self, scratch: &mut RenderScratch, day: Date) -> ObservationDay {
        let day_mul = (day.days_since_epoch() as u64).wrapping_mul(0xA24B_AED4_963E_E407);
        let mut routes = Vec::new();
        if self.span.contains(day) {
            self.sweep_to(scratch, (day - self.span.start) as usize);
            for ei in 0..self.num_static {
                self.emit(&mut scratch.paths, ei, day_mul, &mut routes);
            }
            for i in 0..scratch.active.len() {
                let ei = scratch.active[i];
                if self.entity_announced(ei, day) {
                    self.emit(&mut scratch.paths, ei, day_mul, &mut routes);
                }
            }
        } else {
            // Out-of-span day: the precomputed keys/masks are still
            // valid (they are day-independent); only the sweep cannot
            // serve the active set, so scan the intervals directly.
            for ei in 0..self.entities.len() {
                if self.entity_active_on(ei, day) && self.entity_announced(ei, day) {
                    self.emit(&mut scratch.paths, ei, day_mul, &mut routes);
                }
            }
        }
        ObservationDay {
            date: day,
            num_monitors: self.model.num_monitors,
            routes,
        }
    }

    /// Interval check for the out-of-span slow path.
    fn entity_active_on(&self, ei: usize, day: Date) -> bool {
        match self.entities[ei].active {
            None => true,
            Some(range) => range.contains(day),
        }
    }

    /// The per-monitor best-route view of one day — same semantics as
    /// the historical `per_monitor_routes` (minimum tiebreak rank
    /// wins, first candidate wins ties, output sorted by prefix), with
    /// no per-monitor hash maps: candidates are bucketed per monitor,
    /// sorted once, and deduplicated by prefix.
    pub fn per_monitor_routes(
        &self,
        scratch: &mut RenderScratch,
        day: Date,
    ) -> Vec<Vec<(Prefix, Origin)>> {
        let day_mul = (day.days_since_epoch() as u64).wrapping_mul(0xA24B_AED4_963E_E407);
        for buf in scratch.pm_bufs.iter_mut() {
            buf.clear();
        }
        let in_span = self.span.contains(day);
        if in_span {
            self.sweep_to(scratch, (day - self.span.start) as usize);
        }
        // Candidate pass: bucket (prefix, rank, entity) per monitor in
        // the legacy candidate order (statics, then active by entity
        // index).
        let nm = self.monitors.len();
        {
            let RenderScratch { active, pm_bufs, .. } = scratch;
            let mut consider = |ei: usize| {
                let base = ei * nm;
                let prefix = self.entities[ei].prefix;
                for w in 0..self.mask_words {
                    let mut bits = self.masks[ei * self.mask_words + w];
                    while bits != 0 {
                        let m = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        if self.flicker_passes(self.keys[base + m], day_mul) {
                            pm_bufs[m].push((prefix, self.ranks[base + m], ei));
                        }
                    }
                }
            };
            if in_span {
                for ei in 0..self.num_static {
                    consider(ei);
                }
                for &ei in active.iter() {
                    if self.entity_announced(ei, day) {
                        consider(ei);
                    }
                }
            } else {
                for ei in 0..self.entities.len() {
                    if self.entity_active_on(ei, day) && self.entity_announced(ei, day) {
                        consider(ei);
                    }
                }
            }
        }
        // Selection pass: per monitor, stable-sort by (prefix, rank) —
        // the first row of each prefix group is the minimum-rank,
        // earliest-candidate winner, exactly the legacy tiebreak.
        let mut out: Vec<Vec<(Prefix, Origin)>> = Vec::with_capacity(nm);
        for buf in scratch.pm_bufs.iter_mut() {
            buf.sort_by_key(|e| (e.0, e.1));
            let mut routes: Vec<(Prefix, Origin)> = Vec::with_capacity(buf.len());
            let mut last: Option<Prefix> = None;
            for &(p, _, ei) in buf.iter() {
                if last == Some(p) {
                    continue;
                }
                last = Some(p);
                routes.push((p, self.entities[ei].origin.clone()));
            }
            out.push(routes);
        }
        out
    }

    /// The hoisted monitor fleet (one AS per slot, index-aligned with
    /// peer tables).
    pub fn monitors(&self) -> &[Asn] {
        &self.monitors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::WorldConfig;
    use crate::topology::TopologyConfig;
    use nettypes::date::date;

    fn world() -> LeaseWorld {
        LeaseWorld::generate(&WorldConfig {
            seed: 21,
            span: DateRange::new(date("2018-01-01"), date("2018-03-31")),
            topology: TopologyConfig {
                seed: 21,
                num_tier1: 4,
                num_tier2: 12,
                num_stubs: 100,
                multi_as_org_fraction: 0.15,
            },
            num_allocations: 40,
            initial_active_leases: 120,
            bgp_visible_fraction: 0.3,
            num_hijacks: 5,
            num_moas: 4,
            num_as_sets: 3,
            num_scrubbing: 2,
            ..Default::default()
        })
    }

    #[test]
    fn sweep_is_order_independent() {
        let w = world();
        let model = VisibilityModel::default();
        let engine = RenderEngine::new(&w, &model);
        // Forward order…
        let mut forward = engine.scratch();
        let days: Vec<Date> = w.span.iter().collect();
        let f: Vec<ObservationDay> = days.iter().map(|&d| engine.render_day(&mut forward, d)).collect();
        // …vs a scratch queried backwards (forces resets).
        let mut backward = engine.scratch();
        let b: Vec<ObservationDay> = days
            .iter()
            .rev()
            .map(|&d| engine.render_day(&mut backward, d))
            .collect();
        for (i, day) in f.iter().enumerate() {
            assert_eq!(*day, b[days.len() - 1 - i], "day {} differs", day.date);
        }
    }

    #[test]
    fn out_of_span_day_falls_back_to_interval_scan() {
        let w = world();
        let model = VisibilityModel::default();
        let engine = RenderEngine::new(&w, &model);
        let mut scratch = engine.scratch();
        // A day before the span: the sweep cannot serve it, but the
        // interval scan still renders every statically-announced
        // allocation, and nothing outside its active window.
        let day = engine.render_day(&mut scratch, date("2017-06-01"));
        let allocs = day
            .routes
            .iter()
            .filter(|r| r.class == Some(RouteClass::Allocation))
            .count();
        assert_eq!(allocs, w.allocations.len());
        assert!(day.routes.iter().all(|r| match r.class {
            Some(RouteClass::Hijack) | None => false, // events start in-span
            _ => true,
        }));
    }

    #[test]
    fn scratches_are_independent() {
        let w = world();
        let model = VisibilityModel::default();
        let engine = RenderEngine::new(&w, &model);
        let d = date("2018-02-10");
        let mut a = engine.scratch();
        let mut b = engine.scratch();
        // Warm `a` with other days first; `b` goes straight there.
        let _ = engine.render_day(&mut a, date("2018-01-05"));
        let _ = engine.render_day(&mut a, date("2018-01-20"));
        assert_eq!(engine.render_day(&mut a, d), engine.render_day(&mut b, d));
        assert_eq!(
            engine.per_monitor_routes(&mut a, d),
            engine.per_monitor_routes(&mut b, d)
        );
    }
}
