//! # bgpsim
//!
//! A self-contained AS-level Internet model that produces the same
//! observable surface the paper's delegation-inference pipeline
//! consumes from RIPE RIS, Route Views and Isolario:
//! *daily sets of (prefix, AS path, monitor) observations*.
//!
//! Pieces:
//!
//! * [`topology`] — a three-tier AS topology (transit-free clique,
//!   regional transits, stubs) with organizations owning one or more
//!   ASes, and valley-free path computation between any two ASes,
//! * [`scenario`] — ground-truth lease worlds: who owns which block,
//!   who leases which sub-block when, and which of that is announced
//!   in BGP (including on-off announcement patterns, BGP-invisible
//!   leases, intra-organization delegations, MOAS and AS_SET noise,
//!   more-specific hijacks and scrubbing services),
//! * [`observe`] — renders a world into per-day route observations at
//!   a configurable set of monitors, with per-monitor visibility loss,
//! * [`mrt`] — a compact MRT-like binary codec for daily RIB snapshots
//!   and update files,
//! * [`collector`] — an in-process collector archive with the paper's
//!   "if an update file is missing, use the next available RIB"
//!   fallback behaviour.
//!
//! Everything is seeded and deterministic; generating ~2.4 years of
//! daily observations for a few thousand prefixes takes well under a
//! second per simulated month.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bgp;
pub mod collector;
pub mod engine;
pub mod mrt;
pub mod mrt2;
pub mod observe;
pub mod par;
pub mod query;
pub mod scenario;
pub mod topology;
pub mod updates;

pub use collector::{CollectorArchive, DayData};
pub use observe::{ObservationDay, RouteObservation, VisibilityModel};
pub use scenario::{Lease, LeaseWorld, WorldConfig};
pub use topology::{AsNode, Tier, Topology, TopologyConfig};
