//! RFC 6396 MRT format: `TABLE_DUMP_V2` RIB dumps and `BGP4MP`
//! update records.
//!
//! This is the on-disk format the real collector projects (RIPE RIS,
//! Route Views) archive and that tools like `bgpkit` parse. The
//! simulation writes its daily RIBs as `PEER_INDEX_TABLE` +
//! `RIB_IPV4_UNICAST` records and its daily update streams as
//! `BGP4MP_MESSAGE_AS4` records wrapping real BGP UPDATE messages
//! (see [`crate::bgp`]).
//!
//! Implemented subset (IPv4, 4-octet ASNs):
//!
//! | type | subtype | record |
//! |---|---|---|
//! | 13 (`TABLE_DUMP_V2`) | 1 | `PEER_INDEX_TABLE` |
//! | 13 (`TABLE_DUMP_V2`) | 2 | `RIB_IPV4_UNICAST` |
//! | 16 (`BGP4MP`) | 4 | `BGP4MP_MESSAGE_AS4` |
//!
//! Unknown record types are surfaced as [`MrtRecord::Unknown`] and
//! skipped gracefully — archives in the wild interleave many record
//! kinds.

use crate::bgp::{self, BgpMessage};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use nettypes::asn::Asn;
use nettypes::prefix::Prefix;

/// MRT type `TABLE_DUMP_V2`.
pub const TYPE_TABLE_DUMP_V2: u16 = 13;
/// MRT type `BGP4MP`.
pub const TYPE_BGP4MP: u16 = 16;
/// Subtype `PEER_INDEX_TABLE`.
pub const SUBTYPE_PEER_INDEX_TABLE: u16 = 1;
/// Subtype `RIB_IPV4_UNICAST`.
pub const SUBTYPE_RIB_IPV4_UNICAST: u16 = 2;
/// Subtype `BGP4MP_MESSAGE_AS4`.
pub const SUBTYPE_BGP4MP_MESSAGE_AS4: u16 = 4;

/// Decode and encode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mrt2Error {
    /// Buffer shorter than the structure requires.
    Truncated,
    /// A structurally invalid field.
    Malformed(&'static str),
    /// An embedded BGP message failed to decode.
    Bgp(bgp::BgpError),
    /// Encode-side: a value does not fit its wire-format length field.
    /// Refusing beats silently truncating and corrupting the archive
    /// (the same contract as `mrt::MrtError::TooLong`).
    TooLong {
        /// Which field overflowed.
        field: &'static str,
        /// The offending length.
        len: usize,
    },
}

impl std::fmt::Display for Mrt2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mrt2Error::Truncated => write!(f, "truncated MRT record"),
            Mrt2Error::Malformed(w) => write!(f, "malformed MRT record: {w}"),
            Mrt2Error::Bgp(e) => write!(f, "embedded BGP message: {e}"),
            Mrt2Error::TooLong { field, len } => {
                write!(f, "{field} of {len} entries overflows its wire length field")
            }
        }
    }
}

impl std::error::Error for Mrt2Error {}

impl From<bgp::BgpError> for Mrt2Error {
    fn from(e: bgp::BgpError) -> Self {
        Mrt2Error::Bgp(e)
    }
}

/// One peer of the `PEER_INDEX_TABLE` (IPv4, AS4 flavor).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PeerEntry {
    /// The peer's BGP identifier.
    pub bgp_id: u32,
    /// The peer's IPv4 address.
    pub ip: u32,
    /// The peer's ASN.
    pub asn: Asn,
}

/// The `PEER_INDEX_TABLE` record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PeerIndexTable {
    /// The collector's BGP identifier.
    pub collector_bgp_id: u32,
    /// Optional view name.
    pub view_name: String,
    /// Indexed peers (RIB entries refer to these by position).
    pub peers: Vec<PeerEntry>,
}

/// One RIB entry: which peer had the route and with what attributes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RibEntry {
    /// Index into the peer table.
    pub peer_index: u16,
    /// When the route was received (Unix seconds).
    pub originated_time: u32,
    /// Raw BGP path attributes (same wire format as in UPDATEs).
    pub attributes: Bytes,
}

/// A `RIB_IPV4_UNICAST` record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RibIpv4Unicast {
    /// Dump-wide sequence number.
    pub sequence: u32,
    /// The prefix.
    pub prefix: Prefix,
    /// Per-peer entries.
    pub entries: Vec<RibEntry>,
}

/// A `BGP4MP_MESSAGE_AS4` record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Bgp4mpMessage {
    /// Sender ASN.
    pub peer_as: Asn,
    /// Receiver (collector) ASN.
    pub local_as: Asn,
    /// Interface index (0 in archives).
    pub interface: u16,
    /// Sender IPv4 address.
    pub peer_ip: u32,
    /// Receiver IPv4 address.
    pub local_ip: u32,
    /// The embedded BGP message.
    pub message: BgpMessage,
}

/// A decoded MRT record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MrtRecord {
    /// `TABLE_DUMP_V2` / `PEER_INDEX_TABLE`.
    PeerIndexTable(PeerIndexTable),
    /// `TABLE_DUMP_V2` / `RIB_IPV4_UNICAST`.
    RibIpv4Unicast(RibIpv4Unicast),
    /// `BGP4MP` / `BGP4MP_MESSAGE_AS4`.
    Bgp4mpMessage(Bgp4mpMessage),
    /// Anything else (preserved raw so archives can be re-emitted).
    Unknown {
        /// MRT type.
        mrt_type: u16,
        /// MRT subtype.
        mrt_subtype: u16,
        /// Raw record body.
        body: Bytes,
    },
}

/// An MRT record with its header timestamp.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TimestampedRecord {
    /// Unix seconds.
    pub timestamp: u32,
    /// The record.
    pub record: MrtRecord,
}

// --- encoding ---------------------------------------------------------

fn put_wire_prefix(buf: &mut BytesMut, p: &Prefix) {
    buf.put_u8(p.len());
    let nbytes = p.len().div_ceil(8) as usize;
    buf.put_slice(&p.network().to_be_bytes()[..nbytes]);
}

/// A value destined for a u16 wire length field, or [`Mrt2Error::TooLong`].
fn wire_u16(field: &'static str, len: usize) -> Result<u16, Mrt2Error> {
    u16::try_from(len).map_err(|_| Mrt2Error::TooLong { field, len })
}

fn encode_body(record: &MrtRecord) -> Result<(u16, u16, BytesMut), Mrt2Error> {
    Ok(match record {
        MrtRecord::PeerIndexTable(t) => {
            let mut b = BytesMut::new();
            b.put_u32(t.collector_bgp_id);
            b.put_u16(wire_u16("view name", t.view_name.len())?);
            b.put_slice(t.view_name.as_bytes());
            b.put_u16(wire_u16("peer table", t.peers.len())?);
            for p in &t.peers {
                // peer type: bit 0 = IPv6 (0 here), bit 1 = AS4 (set).
                b.put_u8(0x02);
                b.put_u32(p.bgp_id);
                b.put_u32(p.ip);
                b.put_u32(p.asn.0);
            }
            (TYPE_TABLE_DUMP_V2, SUBTYPE_PEER_INDEX_TABLE, b)
        }
        MrtRecord::RibIpv4Unicast(r) => {
            let mut b = BytesMut::new();
            b.put_u32(r.sequence);
            put_wire_prefix(&mut b, &r.prefix);
            b.put_u16(wire_u16("RIB entry list", r.entries.len())?);
            for e in &r.entries {
                b.put_u16(e.peer_index);
                b.put_u32(e.originated_time);
                b.put_u16(wire_u16("attribute bytes", e.attributes.len())?);
                b.put_slice(&e.attributes);
            }
            (TYPE_TABLE_DUMP_V2, SUBTYPE_RIB_IPV4_UNICAST, b)
        }
        MrtRecord::Bgp4mpMessage(m) => {
            let mut b = BytesMut::new();
            b.put_u32(m.peer_as.0);
            b.put_u32(m.local_as.0);
            b.put_u16(m.interface);
            b.put_u16(1); // AFI IPv4
            b.put_u32(m.peer_ip);
            b.put_u32(m.local_ip);
            b.put_slice(&bgp::encode_message(&m.message));
            (TYPE_BGP4MP, SUBTYPE_BGP4MP_MESSAGE_AS4, b)
        }
        MrtRecord::Unknown {
            mrt_type,
            mrt_subtype,
            body,
        } => {
            let mut b = BytesMut::with_capacity(body.len());
            b.put_slice(body);
            (*mrt_type, *mrt_subtype, b)
        }
    })
}

/// Encode one record with its MRT common header.
///
/// Fails with [`Mrt2Error::TooLong`] if any length (view name, peer
/// table, RIB entries, attributes, or the whole body) overflows its
/// wire-format field — truncating would corrupt the archive.
pub fn encode_record(timestamp: u32, record: &MrtRecord) -> Result<Bytes, Mrt2Error> {
    let (t, st, body) = encode_body(record)?;
    let body_len = u32::try_from(body.len()).map_err(|_| Mrt2Error::TooLong {
        field: "record body",
        len: body.len(),
    })?;
    let mut out = BytesMut::with_capacity(12 + body.len());
    out.put_u32(timestamp);
    out.put_u16(t);
    out.put_u16(st);
    out.put_u32(body_len);
    out.put_slice(&body);
    Ok(out.freeze())
}

/// Encode a whole file (concatenated records).
pub fn encode_file<'a>(
    records: impl IntoIterator<Item = &'a TimestampedRecord>,
) -> Result<Bytes, Mrt2Error> {
    let mut out = BytesMut::new();
    for r in records {
        out.put_slice(&encode_record(r.timestamp, &r.record)?);
    }
    Ok(out.freeze())
}

// --- decoding ---------------------------------------------------------

macro_rules! need {
    ($buf:expr, $n:expr) => {
        if $buf.remaining() < $n {
            return Err(Mrt2Error::Truncated);
        }
    };
}

fn get_wire_prefix(buf: &mut &[u8]) -> Result<Prefix, Mrt2Error> {
    need!(buf, 1);
    let len = buf.get_u8();
    if len > 32 {
        return Err(Mrt2Error::Malformed("prefix length"));
    }
    let nbytes = len.div_ceil(8) as usize;
    need!(buf, nbytes);
    let mut net = [0u8; 4];
    for b in net.iter_mut().take(nbytes) {
        *b = buf.get_u8();
    }
    Ok(Prefix::new_unchecked_masked(u32::from_be_bytes(net), len))
}

fn decode_body(t: u16, st: u16, mut body: &[u8]) -> Result<MrtRecord, Mrt2Error> {
    match (t, st) {
        (TYPE_TABLE_DUMP_V2, SUBTYPE_PEER_INDEX_TABLE) => {
            need!(body, 4 + 2);
            let collector_bgp_id = body.get_u32();
            let name_len = body.get_u16() as usize;
            need!(body, name_len);
            let view_name = String::from_utf8(body[..name_len].to_vec())
                .map_err(|_| Mrt2Error::Malformed("view name utf8"))?;
            body.advance(name_len);
            need!(body, 2);
            let count = body.get_u16() as usize;
            let mut peers = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                need!(body, 1);
                let ptype = body.get_u8();
                if ptype & 0x01 != 0 {
                    return Err(Mrt2Error::Malformed("IPv6 peers unsupported"));
                }
                need!(body, 4 + 4);
                let bgp_id = body.get_u32();
                let ip = body.get_u32();
                let asn = if ptype & 0x02 != 0 {
                    need!(body, 4);
                    Asn(body.get_u32())
                } else {
                    need!(body, 2);
                    Asn(body.get_u16() as u32) // lint:allow(L1): u16→u32 widening, lossless
                };
                peers.push(PeerEntry { bgp_id, ip, asn });
            }
            Ok(MrtRecord::PeerIndexTable(PeerIndexTable {
                collector_bgp_id,
                view_name,
                peers,
            }))
        }
        (TYPE_TABLE_DUMP_V2, SUBTYPE_RIB_IPV4_UNICAST) => {
            need!(body, 4);
            let sequence = body.get_u32();
            let prefix = get_wire_prefix(&mut body)?;
            need!(body, 2);
            let count = body.get_u16() as usize;
            let mut entries = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                need!(body, 2 + 4 + 2);
                let peer_index = body.get_u16();
                let originated_time = body.get_u32();
                let alen = body.get_u16() as usize;
                need!(body, alen);
                let attributes = Bytes::copy_from_slice(&body[..alen]);
                body.advance(alen);
                entries.push(RibEntry {
                    peer_index,
                    originated_time,
                    attributes,
                });
            }
            Ok(MrtRecord::RibIpv4Unicast(RibIpv4Unicast {
                sequence,
                prefix,
                entries,
            }))
        }
        (TYPE_BGP4MP, SUBTYPE_BGP4MP_MESSAGE_AS4) => {
            need!(body, 4 + 4 + 2 + 2);
            let peer_as = Asn(body.get_u32());
            let local_as = Asn(body.get_u32());
            let interface = body.get_u16();
            let afi = body.get_u16();
            if afi != 1 {
                return Err(Mrt2Error::Malformed("non-IPv4 AFI"));
            }
            need!(body, 4 + 4);
            let peer_ip = body.get_u32();
            let local_ip = body.get_u32();
            let (message, used) = bgp::decode_message(body)?;
            if used != body.len() {
                return Err(Mrt2Error::Malformed("trailing bytes after BGP message"));
            }
            Ok(MrtRecord::Bgp4mpMessage(Bgp4mpMessage {
                peer_as,
                local_as,
                interface,
                peer_ip,
                local_ip,
                message,
            }))
        }
        _ => Ok(MrtRecord::Unknown {
            mrt_type: t,
            mrt_subtype: st,
            body: Bytes::copy_from_slice(body),
        }),
    }
}

/// Decode one record from the front of `buf`; returns it and the bytes
/// consumed.
pub fn decode_record(mut buf: &[u8]) -> Result<(TimestampedRecord, usize), Mrt2Error> {
    need!(buf, 12);
    let timestamp = buf.get_u32();
    let t = buf.get_u16();
    let st = buf.get_u16();
    let len = buf.get_u32() as usize;
    need!(buf, len);
    let record = decode_body(t, st, &buf[..len])?;
    Ok((TimestampedRecord { timestamp, record }, 12 + len))
}

/// Decode a whole file into records. Fails on the first structural
/// error; use [`decode_file_lossy`] for damaged archives.
pub fn decode_file(mut buf: &[u8]) -> Result<Vec<TimestampedRecord>, Mrt2Error> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        let (rec, used) = decode_record(buf)?;
        out.push(rec);
        buf = &buf[used..];
    }
    Ok(out)
}

/// Accounting from a lossy scan: how many records decoded, how many
/// were skipped and why, and whether the scan had to abandon the tail
/// of the file. `bytes_scanned + bytes_unscanned` always equals the
/// input length, so no byte goes unaccounted for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LossyStats {
    /// Records that decoded successfully.
    pub decoded: usize,
    /// Skipped: body shorter than its internal structure claims (the
    /// record boundary itself was still trustworthy).
    pub skipped_truncated: usize,
    /// Skipped: structurally malformed body.
    pub skipped_malformed: usize,
    /// Skipped: the embedded BGP message failed to decode.
    pub skipped_bgp: usize,
    /// True when a corrupt length field (or a file cut mid-record)
    /// made every later offset meaningless and the scan stopped.
    pub aborted: bool,
    /// Bytes the scan examined, including skipped records.
    pub bytes_scanned: usize,
    /// Bytes abandoned unexamined after an abort (0 on a full scan).
    pub bytes_unscanned: usize,
}

impl LossyStats {
    /// Total skipped records across all reasons (the abandoned tail is
    /// bytes, not records, and is reported via `bytes_unscanned`).
    pub fn skipped(&self) -> usize {
        self.skipped_truncated + self.skipped_malformed + self.skipped_bgp
    }

    /// True when every byte decoded cleanly.
    pub fn is_clean(&self) -> bool {
        self.skipped() == 0 && !self.aborted
    }

    /// Fold another scan's accounting into this one (multi-file scans).
    pub fn merge(&mut self, other: &LossyStats) {
        self.decoded += other.decoded;
        self.skipped_truncated += other.skipped_truncated;
        self.skipped_malformed += other.skipped_malformed;
        self.skipped_bgp += other.skipped_bgp;
        self.aborted |= other.aborted;
        self.bytes_scanned += other.bytes_scanned;
        self.bytes_unscanned += other.bytes_unscanned;
    }

    fn count_skip(&mut self, e: &Mrt2Error) {
        match e {
            Mrt2Error::Truncated => self.skipped_truncated += 1,
            Mrt2Error::Bgp(_) => self.skipped_bgp += 1,
            Mrt2Error::Malformed(_) | Mrt2Error::TooLong { .. } => {
                self.skipped_malformed += 1
            }
        }
    }

    /// Emit the warn events and counters for a finished scan. Distinct
    /// signals: `mrt_records_skipped` for per-record damage,
    /// `mrt_scan_aborted` for an abandoned tail.
    pub fn emit(&self) {
        let skipped = self.skipped();
        if skipped > 0 {
            obs::metrics::counter("mrt_records_skipped_total").add(skipped as u64);
            obs::event!(obs::Level::Warn, "mrt_records_skipped", skipped = skipped);
        }
        if self.aborted {
            obs::metrics::counter("mrt_scan_aborted_total").inc();
            obs::event!(
                obs::Level::Warn,
                "mrt_scan_aborted",
                bytes_unscanned = self.bytes_unscanned
            );
        }
    }
}

/// Streaming lossy decoder: yields one decodable record at a time,
/// resynchronizing on the declared record length and accumulating
/// [`LossyStats`] as it goes. When a length field overruns the rest of
/// the buffer (corrupt length, or a file cut mid-record) there is no
/// framing magic to resync on, so the scan aborts and the abandoned
/// tail is accounted in `bytes_unscanned` instead of being silently
/// dropped.
pub struct RecordReader<'a> {
    buf: &'a [u8],
    offset: usize,
    stats: LossyStats,
}

impl<'a> RecordReader<'a> {
    /// A reader over a whole file's bytes.
    pub fn new(buf: &'a [u8]) -> RecordReader<'a> {
        RecordReader {
            buf,
            offset: 0,
            stats: LossyStats::default(),
        }
    }

    /// Accounting so far; complete once `next()` has returned `None`.
    pub fn stats(&self) -> LossyStats {
        self.stats
    }

    fn abort(&mut self) {
        self.stats.aborted = true;
        self.stats.bytes_unscanned = self.buf.len() - self.offset;
        self.offset = self.buf.len();
    }
}

impl Iterator for RecordReader<'_> {
    type Item = TimestampedRecord;

    fn next(&mut self) -> Option<TimestampedRecord> {
        loop {
            let rest = &self.buf[self.offset..];
            if rest.is_empty() {
                return None;
            }
            if rest.len() < 12 {
                // A fragment too short to be a header: the file was
                // cut mid-header, nothing further can be framed.
                self.abort();
                return None;
            }
            let len = u32::from_be_bytes([rest[8], rest[9], rest[10], rest[11]]) as usize;
            let total = 12usize.saturating_add(len);
            if rest.len() < total {
                self.abort();
                return None;
            }
            self.offset += total;
            self.stats.bytes_scanned += total;
            match decode_record(&rest[..total]) {
                Ok((rec, _)) => {
                    self.stats.decoded += 1;
                    return Some(rec);
                }
                Err(e) => self.stats.count_skip(&e),
            }
        }
    }
}

/// Decode a file, skipping undecodable records by scanning to the next
/// header boundary via the declared length. Records with corrupted
/// *bodies* are skipped and counted per reason; a corrupted *length*
/// aborts the scan with the abandoned tail accounted in
/// [`LossyStats::bytes_unscanned`] (and a distinct `mrt_scan_aborted`
/// warn event/counter) instead of being silently dropped.
pub fn decode_file_lossy(buf: &[u8]) -> (Vec<TimestampedRecord>, LossyStats) {
    let mut reader = RecordReader::new(buf);
    let out: Vec<TimestampedRecord> = reader.by_ref().collect();
    let stats = reader.stats();
    stats.emit();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp::UpdateMessage;
    use nettypes::prefix::pfx;
    use proptest::prelude::*;

    fn sample_records() -> Vec<TimestampedRecord> {
        vec![
            TimestampedRecord {
                timestamp: 1_577_836_800,
                record: MrtRecord::PeerIndexTable(PeerIndexTable {
                    collector_bgp_id: 0xC0A80001,
                    view_name: "sim-view".into(),
                    peers: vec![
                        PeerEntry {
                            bgp_id: 1,
                            ip: 0x0A000001,
                            asn: Asn(64500),
                        },
                        PeerEntry {
                            bgp_id: 2,
                            ip: 0x0A000002,
                            asn: Asn(3333),
                        },
                    ],
                }),
            },
            TimestampedRecord {
                timestamp: 1_577_836_800,
                record: MrtRecord::RibIpv4Unicast(RibIpv4Unicast {
                    sequence: 0,
                    prefix: pfx("193.0.0.0/21"),
                    entries: vec![RibEntry {
                        peer_index: 1,
                        originated_time: 1_577_000_000,
                        attributes: Bytes::from_static(&[0x40, 0x01, 0x01, 0x00]),
                    }],
                }),
            },
            TimestampedRecord {
                timestamp: 1_577_840_400,
                record: MrtRecord::Bgp4mpMessage(Bgp4mpMessage {
                    peer_as: Asn(64500),
                    local_as: Asn(12654),
                    interface: 0,
                    peer_ip: 0x0A000001,
                    local_ip: 0x0A0000FE,
                    message: BgpMessage::Update(UpdateMessage::announce(
                        vec![pfx("193.0.0.0/21")],
                        vec![Asn(64500), Asn(3333)],
                        0x0A000001,
                    )),
                }),
            },
        ]
    }

    #[test]
    fn file_roundtrip() {
        let records = sample_records();
        let bytes = encode_file(&records).expect("encodes");
        let decoded = decode_file(&bytes).unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn single_record_roundtrip_reports_length() {
        let records = sample_records();
        for r in &records {
            let bytes = encode_record(r.timestamp, &r.record).expect("encodes");
            let (decoded, used) = decode_record(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(&decoded, r);
        }
    }

    #[test]
    fn unknown_records_roundtrip_raw() {
        let r = TimestampedRecord {
            timestamp: 42,
            record: MrtRecord::Unknown {
                mrt_type: 48,
                mrt_subtype: 7,
                body: Bytes::from_static(b"opaque-bytes"),
            },
        };
        let bytes = encode_record(r.timestamp, &r.record).expect("encodes");
        let (decoded, _) = decode_record(&bytes).unwrap();
        assert_eq!(decoded, r);
    }

    #[test]
    fn rejects_ipv6_peers_and_bad_afi() {
        // Flip the peer-type byte of the PEER_INDEX_TABLE to IPv6.
        let records = sample_records();
        let mut bytes = encode_record(records[0].timestamp, &records[0].record).expect("encodes").to_vec();
        // header 12 + bgp_id 4 + name_len 2 + "sim-view" 8 + count 2 = offset 28.
        bytes[28] |= 0x01;
        assert!(matches!(
            decode_record(&bytes),
            Err(Mrt2Error::Malformed("IPv6 peers unsupported"))
        ));
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = encode_file(&sample_records()).expect("encodes");
        for cut in 0..bytes.len() {
            let _ = decode_file(&bytes[..cut]);
            let _ = decode_file_lossy(&bytes[..cut]);
        }
    }

    #[test]
    fn lossy_decoding_skips_damaged_record() {
        let records = sample_records();
        let mut bytes = encode_file(&records).expect("encodes").to_vec();
        // Damage the middle record's body (the RIB prefix length).
        let first_len = {
            let l = u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
            12 + l
        };
        bytes[first_len + 12 + 4] = 77; // prefix length byte of record 2
        let (decoded, stats) = decode_file_lossy(&bytes);
        assert_eq!(stats.skipped(), 1);
        assert_eq!(stats.skipped_malformed, 1);
        assert!(!stats.aborted);
        assert_eq!(stats.bytes_unscanned, 0);
        assert_eq!(stats.bytes_scanned, bytes.len());
        assert_eq!(decoded.len(), 2);
        assert_eq!(stats.decoded, 2);
        assert!(matches!(decoded[0].record, MrtRecord::PeerIndexTable(_)));
        assert!(matches!(decoded[1].record, MrtRecord::Bgp4mpMessage(_)));
        // Strict decoding fails outright.
        assert!(decode_file(&bytes).is_err());
    }

    #[test]
    fn corrupt_length_field_aborts_with_tail_accounted() {
        let bytes = encode_file(&sample_records()).expect("encodes").to_vec();
        let mut damaged = bytes.clone();
        // Blow up the first record's length field: the scan cannot
        // resync, but the tail must be accounted, not silently lost.
        damaged[8] = 0xFF;
        let (decoded, stats) = decode_file_lossy(&damaged);
        assert!(decoded.is_empty());
        assert!(stats.aborted, "corrupt length must abort the scan");
        assert_eq!(stats.bytes_scanned, 0);
        assert_eq!(stats.bytes_unscanned, damaged.len());
        assert_eq!(stats.skipped(), 0);

        // A file cut mid-record aborts the same way, with everything
        // before the cut scanned and the fragment accounted.
        let cut = bytes.len() - 5;
        let (decoded, stats) = decode_file_lossy(&bytes[..cut]);
        assert_eq!(decoded.len(), 2);
        assert!(stats.aborted);
        assert_eq!(stats.bytes_scanned + stats.bytes_unscanned, cut);
        assert!(stats.bytes_unscanned > 0);
    }

    #[test]
    fn two_byte_as_peers_decode() {
        // Hand-encode a peer entry without the AS4 bit.
        let mut b = BytesMut::new();
        b.put_u32(1); // collector id
        b.put_u16(0); // empty view name
        b.put_u16(1); // one peer
        b.put_u8(0x00); // IPv4, 2-byte AS
        b.put_u32(9); // bgp id
        b.put_u32(0x7F000001); // ip
        b.put_u16(65000); // asn16
        let mut rec = BytesMut::new();
        rec.put_u32(0);
        rec.put_u16(TYPE_TABLE_DUMP_V2);
        rec.put_u16(SUBTYPE_PEER_INDEX_TABLE);
        rec.put_u32(b.len() as u32);
        rec.put_slice(&b);
        let (decoded, _) = decode_record(&rec).unwrap();
        match decoded.record {
            MrtRecord::PeerIndexTable(t) => {
                assert_eq!(t.peers[0].asn, Asn(65000));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    proptest! {
        #[test]
        fn prop_rib_roundtrip(
            seq in any::<u32>(),
            net in any::<u32>(),
            len in 0u8..=32,
            entries in proptest::collection::vec(
                (any::<u16>(), any::<u32>(), proptest::collection::vec(any::<u8>(), 0..40)),
                0..6
            ),
        ) {
            let rec = TimestampedRecord {
                timestamp: 7,
                record: MrtRecord::RibIpv4Unicast(RibIpv4Unicast {
                    sequence: seq,
                    prefix: Prefix::new_unchecked_masked(net, len),
                    entries: entries
                        .into_iter()
                        .map(|(pi, ot, attrs)| RibEntry {
                            peer_index: pi,
                            originated_time: ot,
                            attributes: Bytes::from(attrs),
                        })
                        .collect(),
                }),
            };
            let bytes = encode_record(rec.timestamp, &rec.record).expect("encodes");
            let (decoded, used) = decode_record(&bytes).unwrap();
            prop_assert_eq!(used, bytes.len());
            prop_assert_eq!(decoded, rec);
        }

        #[test]
        fn prop_corruption_never_panics(flip in 0usize..400, xor in 1u8..=255) {
            let mut bytes = encode_file(&sample_records()).expect("encodes").to_vec();
            if flip < bytes.len() {
                bytes[flip] ^= xor;
            }
            let _ = decode_file(&bytes);
            let (decoded, stats) = decode_file_lossy(&bytes);
            // Lossy accounting must balance no matter what was hit:
            // every byte is either scanned or reported unscanned, every
            // record either decoded or counted under one skip reason.
            prop_assert_eq!(stats.bytes_scanned + stats.bytes_unscanned, bytes.len());
            prop_assert_eq!(stats.decoded, decoded.len());
            prop_assert_eq!(
                stats.skipped(),
                stats.skipped_truncated + stats.skipped_malformed + stats.skipped_bgp
            );
            prop_assert!(stats.aborted || stats.bytes_unscanned == 0);
        }
    }
}
