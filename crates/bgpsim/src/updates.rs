//! The MRT-based collector archive: daily RIB dumps plus update
//! streams, and the paper's reconstruction procedure.
//!
//! §4: *"We aggregated the data daily; i.e., we use the RIB snapshot
//! at 0:00 UTC+0 and all update files for that day. If an update file
//! is missing, we additionally download the first available rib
//! snapshot afterward."*
//!
//! [`CollectorArchiveV2`] stores genuine RFC 6396 bytes:
//! `TABLE_DUMP_V2` files for the periodic RIB snapshots and `BGP4MP`
//! files carrying real BGP UPDATE messages for the daily diffs.
//! [`CollectorArchiveV2::day_view`] reconstructs any day's per-peer
//! routing state by applying update files to the most recent RIB,
//! implementing the missing-file fallback verbatim.

use crate::bgp::{self, BgpMessage, PathAttribute, UpdateMessage};
use crate::mrt2::{
    decode_file_lossy, encode_file, Bgp4mpMessage, Mrt2Error, MrtRecord, PeerEntry,
    PeerIndexTable, RibEntry, RibIpv4Unicast, TimestampedRecord,
};
use crate::engine::{RenderEngine, SelChange};
use crate::observe::{ObservationDay, RouteObservation, VisibilityModel};
use crate::scenario::LeaseWorld;
use crate::topology::Topology;
use bytes::Bytes;
use nettypes::asn::{Asn, Origin};
use nettypes::date::{Date, DateRange};
use nettypes::prefix::Prefix;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Errors from archive reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchiveError {
    /// No RIB snapshot exists at or before (or after) the requested day.
    NoRibAvailable(Date),
    /// The requested day precedes the archive entirely.
    OutOfRange(Date),
}

impl std::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveError::NoRibAvailable(d) => write!(f, "no RIB available around {d}"),
            ArchiveError::OutOfRange(d) => write!(f, "{d} outside the archived window"),
        }
    }
}

impl std::error::Error for ArchiveError {}

/// How a day's state was obtained.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Provenance {
    /// RIB of the same day (possibly plus that day's updates).
    Exact,
    /// Reconstructed from an earlier RIB plus complete update files.
    Reconstructed {
        /// The RIB's date.
        rib_date: Date,
    },
    /// An update file was missing; the state is the first available
    /// later RIB (the paper's fallback).
    FallbackRib {
        /// The later RIB's date.
        rib_date: Date,
    },
}

/// The per-peer routing state: for each peer (index-aligned with the
/// peer table), prefix → chosen origin. Ordered maps so every
/// iteration over a peer's table is deterministic.
pub type PeerRoutes = Vec<BTreeMap<Prefix, Origin>>;

/// A reconstructed day: per-peer routing state.
#[derive(Clone, Debug)]
pub struct DayView {
    /// The requested date.
    pub date: Date,
    /// How the state was obtained.
    pub provenance: Provenance,
    /// Peer table (index-aligned with `peer_routes`).
    pub peers: Vec<PeerEntry>,
    /// For each peer, prefix → origin.
    pub peer_routes: PeerRoutes,
}

impl DayView {
    /// Collapse the per-peer state into the paper's observation
    /// surface: distinct (prefix, origin) pairs with the number of
    /// peers holding each.
    pub fn to_observation_day(&self) -> ObservationDay {
        let mut counts: BTreeMap<(Prefix, String), (Origin, u16)> = BTreeMap::new();
        for routes in &self.peer_routes {
            for (p, o) in routes {
                let e = counts
                    .entry((*p, format!("{o}")))
                    .or_insert_with(|| (o.clone(), 0));
                e.1 += 1;
            }
        }
        ObservationDay {
            date: self.date,
            // lint:allow(L1): peer tables are u16-counted on the wire, so ≤ 65535
            num_monitors: self.peers.len() as u16,
            routes: counts
                .into_iter()
                .map(|((prefix, _), (origin, monitors_seen))| RouteObservation {
                    prefix,
                    origin,
                    monitors_seen,
                    path: Vec::new().into(), // real archives carry no ground truth
                    class: None,
                })
                .collect(),
        }
    }
}

/// Archive configuration.
#[derive(Clone, Debug)]
pub struct ArchiveV2Config {
    /// Store a full RIB every this many days (RIS: every 8 hours; we
    /// archive daily state, so 1 = every day, 7 = weekly).
    pub rib_every_days: usize,
    /// Collector ASN (route collectors peer from a reserved AS).
    pub collector_asn: Asn,
    /// Collector BGP identifier.
    pub collector_bgp_id: u32,
}

impl Default for ArchiveV2Config {
    fn default() -> Self {
        ArchiveV2Config {
            rib_every_days: 7,
            collector_asn: Asn(12654), // RIS's AS, as a nod
            collector_bgp_id: 0xC012_0001,
        }
    }
}

/// The MRT archive: RIB files + update files, all as wire bytes.
#[derive(Clone, Debug, Default)]
pub struct CollectorArchiveV2 {
    ribs: BTreeMap<Date, Bytes>,
    updates: BTreeMap<Date, Bytes>,
    peers: Vec<PeerEntry>,
}

/// 00:00 UTC of `d` as a Unix timestamp. MRT timestamps are 32-bit;
/// dates past 2106 saturate rather than wrap.
fn midnight(d: Date) -> u32 {
    let secs = d.days_since_epoch().max(0) as u64 * 86_400;
    u32::try_from(secs).unwrap_or(u32::MAX)
}

/// The shared attribute table for the encode passes.
///
/// The monitor→origin valley-free path and its encoded attribute blob
/// are day-invariant, so the table computes every `(peer, origin)`
/// pair up front — one whole-topology BFS per peer
/// ([`Topology::paths_from`]) instead of a pairwise search per pair —
/// and eagerly encodes the RIB-entry blob for each. The table is
/// immutable afterwards, so one instance is shared by every worker
/// and every day: blobs are interned across the archive's whole
/// lifetime (`Bytes` clones are refcount bumps). Keys are flat
/// `peer_slot * n_nodes + origin_index`; origins outside the topology
/// (none today) fall back to an uncached path, which is still
/// deterministic.
struct AttrTable<'w> {
    topology: &'w Topology,
    n_nodes: usize,
    paths: Vec<Vec<Asn>>,
    encoded: Vec<Bytes>,
}

impl<'w> AttrTable<'w> {
    fn new(topology: &'w Topology, peers: &[PeerEntry]) -> AttrTable<'w> {
        use crate::bgp::{AsPathSegment, OriginType};
        let nodes = topology.nodes();
        let n_nodes = nodes.len();
        let mut paths = Vec::with_capacity(peers.len() * n_nodes);
        let mut encoded = Vec::with_capacity(peers.len() * n_nodes);
        for peer in peers {
            let all = topology.paths_from(peer.asn);
            for (oi, node) in nodes.iter().enumerate() {
                // Fallback `[peer, o]` when no valley-free path exists
                // — same as the uncached encoder.
                let path = match &all {
                    Some(v) => v[oi].clone(),
                    None => topology.path(peer.asn, node.asn),
                }
                .unwrap_or_else(|| vec![peer.asn, node.asn]);
                encoded.push(bgp::encode_attributes(&[
                    PathAttribute::Origin(OriginType::Igp),
                    PathAttribute::AsPath(vec![AsPathSegment::Sequence(path.clone())]),
                    PathAttribute::NextHop(0x0A00_0001),
                ]));
                paths.push(path);
            }
        }
        AttrTable {
            topology,
            n_nodes,
            paths,
            encoded,
        }
    }

    /// The AS path from `peer` to `o`.
    fn path_for(&self, peer_slot: usize, peer: Asn, o: Asn) -> Vec<Asn> {
        match self.topology.index_of(o) {
            Some(oi) => self.paths[peer_slot * self.n_nodes + oi].clone(),
            None => self.topology.path(peer, o).unwrap_or_else(|| vec![peer, o]),
        }
    }

    /// Decoded path attributes (for UPDATE messages, which carry owned
    /// attribute structs).
    fn attributes(&self, peer_slot: usize, peer: Asn, origin: &Origin) -> Vec<PathAttribute> {
        use crate::bgp::{AsPathSegment, OriginType};
        let segs = match origin {
            Origin::Single(o) => vec![AsPathSegment::Sequence(self.path_for(peer_slot, peer, *o))],
            Origin::Set(set) => vec![
                AsPathSegment::Sequence(vec![peer]),
                AsPathSegment::Set(set.clone()),
            ],
        };
        vec![
            PathAttribute::Origin(OriginType::Igp),
            PathAttribute::AsPath(segs),
            PathAttribute::NextHop(0x0A00_0001),
        ]
    }

    /// Encoded attribute blob (for RIB entries, which carry wire
    /// bytes); table hits cost no copy at all.
    fn encoded_attributes(&self, peer_slot: usize, peer: Asn, origin: &Origin) -> Bytes {
        if let Origin::Single(o) = origin {
            if let Some(oi) = self.topology.index_of(*o) {
                return self.encoded[peer_slot * self.n_nodes + oi].clone();
            }
        }
        bgp::encode_attributes(&self.attributes(peer_slot, peer, origin))
    }
}

fn origin_from_attributes(attrs: &[PathAttribute]) -> Option<Origin> {
    use crate::bgp::AsPathSegment;
    for a in attrs {
        if let PathAttribute::AsPath(segs) = a {
            return match segs.last()? {
                AsPathSegment::Sequence(v) => v.last().copied().map(Origin::Single),
                AsPathSegment::Set(v) => Some(Origin::Set(v.clone())),
            };
        }
    }
    None
}

/// The peer table for a monitor fleet. Peer tables are u16-counted on
/// the wire; oversized monitor sets are rejected here so every
/// per-peer index downstream fits.
fn build_peers(monitor_asns: &[Asn]) -> Result<Vec<PeerEntry>, Mrt2Error> {
    if u16::try_from(monitor_asns.len()).is_err() {
        return Err(Mrt2Error::TooLong {
            field: "peer table",
            len: monitor_asns.len(),
        });
    }
    Ok(monitor_asns
        .iter()
        .enumerate()
        .map(|(i, &asn)| PeerEntry {
            bgp_id: 0x0A00_0100 + i as u32, // lint:allow(L1): i ≤ u16::MAX, checked above
            ip: 0x0A00_0200 + i as u32,     // lint:allow(L1): i ≤ u16::MAX, checked above
            asn,
        })
        .collect())
}

type Encoded = (Option<Result<Bytes, Mrt2Error>>, Option<Result<Bytes, Mrt2Error>>);

impl CollectorArchiveV2 {
    /// Generate the archive for a world over `span` at the default
    /// thread count.
    pub fn generate(
        world: &LeaseWorld,
        model: &VisibilityModel,
        span: DateRange,
        config: &ArchiveV2Config,
    ) -> Result<CollectorArchiveV2, Mrt2Error> {
        Self::generate_with_threads(world, model, span, config, crate::par::num_threads())
    }

    /// Generate the archive on `threads` workers, incrementally.
    ///
    /// The span is split into one contiguous day range per worker;
    /// each worker seeds one full render at its chunk start
    /// ([`RenderEngine::seed_state`]) and then advances day by day
    /// ([`RenderEngine::advance_state`]), so each day transition costs
    /// only its touched prefixes. RIB files snapshot the maintained
    /// state; update files are encoded straight from the per-monitor
    /// [`SelChange`] lists instead of merge-joining two full states.
    /// Chunk results merge in date order, so the archive bytes are
    /// identical for any thread count — and to the full-recompute
    /// oracle ([`CollectorArchiveV2::generate_full_recompute_with_threads`]).
    pub fn generate_with_threads(
        world: &LeaseWorld,
        model: &VisibilityModel,
        span: DateRange,
        config: &ArchiveV2Config,
        threads: usize,
    ) -> Result<CollectorArchiveV2, Mrt2Error> {
        let n = span.iter().count();
        let ranges = crate::par::chunk_ranges(n, threads);
        Self::generate_with_chunks(world, model, span, config, &ranges)
    }

    /// Incremental generation over caller-chosen chunk boundaries.
    ///
    /// `ranges` must partition `0..span_days` contiguously in order
    /// (what [`crate::par::chunk_ranges`] produces, but any split
    /// works). Exposed so the determinism suite can prove that chunk
    /// boundaries never change the archive bytes.
    #[doc(hidden)]
    pub fn generate_with_chunks(
        world: &LeaseWorld,
        model: &VisibilityModel,
        span: DateRange,
        config: &ArchiveV2Config,
        ranges: &[std::ops::Range<usize>],
    ) -> Result<CollectorArchiveV2, Mrt2Error> {
        let engine = RenderEngine::new(world, model);
        let peers = build_peers(engine.monitors())?;

        let days: Vec<Date> = span.iter().collect();
        let n = days.len();
        let mut covered = 0;
        for r in ranges {
            assert_eq!(r.start, covered, "chunk ranges must tile the span in order");
            covered = r.end;
        }
        assert_eq!(covered, n, "chunk ranges must cover every day");
        let span_obs = obs::span!("mrt_encode", days = n, threads = ranges.len(), unit = "days");
        span_obs.add_items(n as u64);
        let attrs = {
            let _t = obs::span!("mrt_attr_table");
            AttrTable::new(&world.topology, &peers)
        };
        let rib_every = config.rib_every_days.max(1);
        let encoded: Vec<Encoded> = {
            let _pass = obs::span!("mrt_delta_pass");
            crate::par::map_chunked_with(ranges, |r| {
                let mut out: Vec<Encoded> = Vec::with_capacity(r.len());
                // Seed at the chunk's predecessor day so the first
                // in-chunk transition yields that day's update file.
                let seed_day = days[r.start.saturating_sub(1)];
                let mut state = engine
                    .seed_state(seed_day)
                    // lint:allow(L2): seed day comes from the span itself
                    .expect("archive days are inside the engine span");
                let mut changes: Vec<Vec<SelChange>> = Vec::new();
                if r.start > 0 {
                    engine
                        .advance_state(&mut state, &mut changes)
                        // lint:allow(L2): r.start indexes into the span
                        .expect("chunk start day is inside the engine span");
                }
                for i in r.clone() {
                    let rib = (i % rib_every == 0).then(|| {
                        encode_rib(&attrs, config, &peers, days[i], &engine.state_routes(&state))
                    });
                    let upd = (i > 0).then(|| {
                        encode_updates_delta(&attrs, &engine, config, &peers, days[i], &changes)
                    });
                    out.push((rib, upd));
                    if i + 1 < r.end {
                        engine
                            .advance_state(&mut state, &mut changes)
                            // lint:allow(L2): i + 1 < r.end stays inside the span
                            .expect("next chunk day is inside the engine span");
                    }
                }
                out
            })
        };
        Self::assemble(peers, days, encoded)
    }

    /// Generate the archive by fully re-rendering every day — the
    /// pre-incremental two-pass path, kept as the byte-identity oracle
    /// for the delta path (and for out-of-sequence render needs).
    pub fn generate_full_recompute_with_threads(
        world: &LeaseWorld,
        model: &VisibilityModel,
        span: DateRange,
        config: &ArchiveV2Config,
        threads: usize,
    ) -> Result<CollectorArchiveV2, Mrt2Error> {
        let engine = RenderEngine::new(world, model);
        let peers = build_peers(engine.monitors())?;

        let days: Vec<Date> = span.iter().collect();
        let n = days.len();
        let span_obs = obs::span!("mrt_encode", days = n, threads = threads, unit = "days");
        span_obs.add_items(n as u64);
        let attrs = AttrTable::new(&world.topology, &peers);
        // Pass 1: every day's per-monitor routing state, rendered by
        // the shared engine (one sweep scratch per worker).
        let states: Vec<Vec<Vec<(Prefix, Origin)>>> = {
            let _pass = obs::span!("mrt_state_pass");
            crate::par::map_indexed_local(
                n,
                threads,
                || engine.scratch(),
                |scratch, i| engine.per_monitor_routes(scratch, days[i]),
            )
        };
        // Pass 2: encode RIBs and update diffs; day i's update file
        // only needs states[i-1] and states[i], so this fans out too.
        let rib_every = config.rib_every_days.max(1);
        let encoded: Vec<Encoded> = {
            let _pass = obs::span!("mrt_encode_pass");
            crate::par::map_indexed(n, threads, |i| {
                let rib = (i % rib_every == 0)
                    .then(|| encode_rib(&attrs, config, &peers, days[i], &states[i]));
                let upd = (i > 0).then(|| {
                    encode_updates(&attrs, config, &peers, days[i], &states[i - 1], &states[i])
                });
                (rib, upd)
            })
        };
        Self::assemble(peers, days, encoded)
    }

    /// Deterministic date-ordered store; the first encode error (if
    /// any) surfaces here, after the parallel pass drains.
    fn assemble(
        peers: Vec<PeerEntry>,
        days: Vec<Date>,
        encoded: Vec<Encoded>,
    ) -> Result<CollectorArchiveV2, Mrt2Error> {
        let mut archive = CollectorArchiveV2 {
            ribs: BTreeMap::new(),
            updates: BTreeMap::new(),
            peers,
        };
        for (i, (rib, upd)) in encoded.into_iter().enumerate() {
            if let Some(bytes) = rib.transpose()? {
                archive.ribs.insert(days[i], bytes);
            }
            if let Some(bytes) = upd.transpose()? {
                archive.updates.insert(days[i], bytes);
            }
        }
        obs::event!(
            obs::Level::Info,
            "archive_built",
            ribs = archive.ribs.len(),
            updates = archive.updates.len(),
        );
        Ok(archive)
    }

    /// The collector's peer table.
    pub fn peers(&self) -> &[PeerEntry] {
        &self.peers
    }

    /// Dates with RIB files.
    pub fn rib_dates(&self) -> impl Iterator<Item = Date> + '_ {
        self.ribs.keys().copied()
    }

    /// Dates with update files.
    pub fn update_dates(&self) -> impl Iterator<Item = Date> + '_ {
        self.updates.keys().copied()
    }

    /// Raw RIB bytes (for fault injection and size accounting).
    pub fn rib_bytes(&self, d: Date) -> Option<&Bytes> {
        self.ribs.get(&d)
    }

    /// Raw update bytes.
    pub fn update_bytes(&self, d: Date) -> Option<&Bytes> {
        self.updates.get(&d)
    }

    /// Total archive size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.ribs.values().map(|b| b.len()).sum::<usize>()
            + self.updates.values().map(|b| b.len()).sum::<usize>()
    }

    /// Write the archive to a directory, one file per day, using the
    /// collector-style naming `rib-YYYY-MM-DD.mrt` /
    /// `updates-YYYY-MM-DD.mrt` that [`crate::query::files_from_dir`]
    /// reads back. Returns the number of files written.
    pub fn write_dir(&self, dir: &std::path::Path) -> std::io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        let mut written = 0usize;
        for (d, bytes) in &self.ribs {
            std::fs::write(dir.join(format!("rib-{d}.mrt")), bytes)?;
            written += 1;
        }
        for (d, bytes) in &self.updates {
            std::fs::write(dir.join(format!("updates-{d}.mrt")), bytes)?;
            written += 1;
        }
        Ok(written)
    }

    /// Delete an update file (simulates an archive gap).
    pub fn drop_update_file(&mut self, d: Date) -> bool {
        self.updates.remove(&d).is_some()
    }

    /// Delete a RIB file.
    pub fn drop_rib(&mut self, d: Date) -> bool {
        self.ribs.remove(&d).is_some()
    }

    /// Overwrite a file with corrupted bytes.
    pub fn corrupt_update_file(&mut self, d: Date, bytes: Bytes) {
        self.updates.insert(d, bytes);
    }

    /// Load a RIB file into per-peer state.
    fn load_rib(&self, d: Date) -> Option<(Vec<PeerEntry>, PeerRoutes)> {
        let bytes = self.ribs.get(&d)?;
        let (records, _stats) = decode_file_lossy(bytes);
        let mut peers: Vec<PeerEntry> = Vec::new();
        let mut routes: PeerRoutes = Vec::new();
        for rec in records {
            match rec.record {
                MrtRecord::PeerIndexTable(t) => {
                    peers = t.peers;
                    routes = vec![BTreeMap::new(); peers.len()];
                }
                MrtRecord::RibIpv4Unicast(r) => {
                    for e in &r.entries {
                        let Some(slot) = routes.get_mut(e.peer_index as usize) else {
                            continue;
                        };
                        if let Ok(attrs) = bgp::decode_attributes(&e.attributes) {
                            if let Some(origin) = origin_from_attributes(&attrs) {
                                slot.insert(r.prefix, origin);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        if peers.is_empty() {
            return None;
        }
        Some((peers, routes))
    }

    /// Apply one update file to per-peer state. Unknown peers and
    /// undecodable records are skipped (lossy, like real pipelines).
    fn apply_updates(
        &self,
        bytes: &Bytes,
        peers: &[PeerEntry],
        routes: &mut [BTreeMap<Prefix, Origin>],
    ) {
        let (mut records, _stats) = decode_file_lossy(bytes);
        records.sort_by_key(|r| r.timestamp);
        // Peers are identified by (IP, ASN): multiple collector peers
        // may share an ASN (multi-session setups), but never an IP.
        let index_of: HashMap<(u32, Asn), usize> = peers
            .iter()
            .enumerate()
            .map(|(i, p)| ((p.ip, p.asn), i))
            .collect();
        for rec in records {
            let MrtRecord::Bgp4mpMessage(m) = rec.record else {
                continue;
            };
            let Some(&pi) = index_of.get(&(m.peer_ip, m.peer_as)) else {
                continue;
            };
            let BgpMessage::Update(u) = m.message else {
                continue;
            };
            for w in &u.withdrawn {
                routes[pi].remove(w);
            }
            if !u.nlri.is_empty() {
                if let Some(origin) = origin_from_attributes(&u.attributes) {
                    for p in &u.nlri {
                        routes[pi].insert(*p, origin.clone());
                    }
                }
            }
        }
    }

    /// Reconstruct the routing state of `date` per the paper's rules.
    pub fn day_view(&self, date: Date) -> Result<DayView, ArchiveError> {
        // The RIB at or before the date…
        let Some((&rib_date, _)) = self.ribs.range(..=date).next_back() else {
            // …or, if the day precedes all RIBs, it is out of range.
            return Err(if self.ribs.is_empty() {
                ArchiveError::NoRibAvailable(date)
            } else {
                ArchiveError::OutOfRange(date)
            });
        };
        let (peers, mut routes) = self
            .load_rib(rib_date)
            .ok_or(ArchiveError::NoRibAvailable(date))?;

        let mut provenance = if rib_date == date {
            Provenance::Exact
        } else {
            Provenance::Reconstructed { rib_date }
        };

        let mut d = rib_date.succ();
        while d <= date {
            match self.updates.get(&d) {
                Some(bytes) => {
                    self.apply_updates(bytes, &peers, &mut routes);
                    d = d.succ();
                }
                None => {
                    // Missing update file: "download the first
                    // available rib snapshot afterward".
                    let Some((&next_rib, _)) = self.ribs.range(d..).next() else {
                        return Err(ArchiveError::NoRibAvailable(d));
                    };
                    let (p2, r2) = self
                        .load_rib(next_rib)
                        .ok_or(ArchiveError::NoRibAvailable(next_rib))?;
                    if next_rib <= date {
                        // Resume reconstruction from the later RIB.
                        routes = r2;
                        debug_assert_eq!(p2.len(), peers.len());
                        d = next_rib.succ();
                        provenance = Provenance::Reconstructed { rib_date: next_rib };
                        if next_rib == date {
                            provenance = Provenance::Exact;
                        }
                    } else {
                        // The only data is *after* the requested day.
                        return Ok(DayView {
                            date,
                            provenance: Provenance::FallbackRib { rib_date: next_rib },
                            peers: p2,
                            peer_routes: r2,
                        });
                    }
                }
            }
        }
        Ok(DayView {
            date,
            provenance,
            peers,
            peer_routes: routes,
        })
    }

    /// Start an incremental day-by-day walk over this archive.
    pub fn sweep(&self) -> ObservationSweep<'_> {
        ObservationSweep {
            archive: self,
            peers: Vec::new(),
            routes: Vec::new(),
            counts: BTreeMap::new(),
            fmt: HashMap::new(),
            empty_key: Arc::from(""),
            anchor: Anchor::None,
            full_rebuilds: 0,
        }
    }
}

/// The outcome of one [`ObservationSweep::advance`] step.
#[derive(Clone, Debug)]
pub struct DayDelta {
    /// How the day's state was obtained (same meaning as
    /// [`DayView::provenance`]).
    pub provenance: Provenance,
    /// Prefixes whose observation surface (the per-prefix origin/count
    /// rows) may have changed since the previous served day, sorted.
    /// `None` means the state was rebuilt from scratch — treat every
    /// prefix as changed.
    pub changed: Option<Vec<Prefix>>,
}

/// How the sweep's maintained state relates to the last served day.
enum Anchor {
    /// No usable state (fresh sweep, or the last day errored).
    None,
    /// State equals `day_view(day)` with Exact/Reconstructed
    /// provenance: anchored at `rib_date` with every update file
    /// through `day` applied.
    Day { day: Date, rib_date: Date },
    /// State equals the decoded forward-fallback RIB at `rib`, served
    /// for `day` (< `rib`). Consecutive fallback days reuse it without
    /// re-decoding.
    Fallback { day: Date, rib: Date },
    /// An update file for `missing` is gone and no RIB exists at or
    /// after it: every later consecutive day fails identically.
    Dead { day: Date, missing: Date },
}

/// An incremental replacement for calling
/// [`CollectorArchiveV2::day_view`] + [`DayView::to_observation_day`]
/// on every day of an ascending walk.
///
/// The sweep keeps the per-peer routing state *and* the aggregated
/// observation surface (per `(prefix, origin)` monitor counts) alive
/// across days. A day whose update file is present costs one update
/// decode instead of a RIB decode plus every update since; the decoded
/// forward-fallback RIB is memoized so N consecutive fallback days
/// cost one decode. Every step reports which prefixes changed, feeding
/// incremental consumers; results are identical to the per-day
/// reconstruction (the anchored state is exactly what `day_view`
/// recomputes from the same RIB, and the sweep reanchors through
/// `day_view` itself whenever the fast path doesn't apply).
pub struct ObservationSweep<'a> {
    archive: &'a CollectorArchiveV2,
    peers: Vec<PeerEntry>,
    routes: PeerRoutes,
    /// `(prefix, origin rendering) → (origin, peers holding it)` — the
    /// same aggregation [`DayView::to_observation_day`] builds, kept
    /// incrementally. Keyed by the rendering because [`Origin`] is not
    /// `Ord`; `Arc<str>` keys are interned via `fmt`.
    counts: BTreeMap<(Prefix, Arc<str>), (Origin, u16)>,
    fmt: HashMap<Origin, Arc<str>>,
    empty_key: Arc<str>,
    anchor: Anchor,
    full_rebuilds: usize,
}

fn okey(fmt: &mut HashMap<Origin, Arc<str>>, o: &Origin) -> Arc<str> {
    if let Some(s) = fmt.get(o) {
        return s.clone();
    }
    let s: Arc<str> = format!("{o}").into();
    fmt.insert(o.clone(), s.clone());
    s
}

fn count_inc(
    counts: &mut BTreeMap<(Prefix, Arc<str>), (Origin, u16)>,
    fmt: &mut HashMap<Origin, Arc<str>>,
    p: Prefix,
    o: &Origin,
) {
    let k = okey(fmt, o);
    let e = counts.entry((p, k)).or_insert_with(|| (o.clone(), 0));
    e.1 += 1;
}

fn count_dec(
    counts: &mut BTreeMap<(Prefix, Arc<str>), (Origin, u16)>,
    fmt: &mut HashMap<Origin, Arc<str>>,
    p: Prefix,
    o: &Origin,
) {
    let k = okey(fmt, o);
    if let Some(e) = counts.get_mut(&(p, k.clone())) {
        e.1 -= 1;
        if e.1 == 0 {
            counts.remove(&(p, k));
        }
    }
}

impl<'a> ObservationSweep<'a> {
    /// Serve `d`, which should be the successor of the last served day
    /// (any other day falls back to a full reconstruction).
    pub fn advance(&mut self, d: Date) -> Result<DayDelta, ArchiveError> {
        match self.anchor {
            Anchor::Day { day, rib_date } if d == day.succ() => {
                if self.archive.ribs.contains_key(&d) {
                    // `day_view` prefers a same-day RIB over applying
                    // updates; mirror it by reanchoring.
                    return self.reanchor(d);
                }
                let Some(bytes) = self.archive.updates.get(&d) else {
                    return self.enter_fallback(d);
                };
                let bytes = bytes.clone();
                let changed = self.apply_updates_tracked(&bytes);
                self.anchor = Anchor::Day { day: d, rib_date };
                Ok(DayDelta {
                    provenance: Provenance::Reconstructed { rib_date },
                    changed: Some(changed),
                })
            }
            Anchor::Fallback { day, rib } if d == day.succ() => {
                if d < rib {
                    self.anchor = Anchor::Fallback { day: d, rib };
                    Ok(DayDelta {
                        provenance: Provenance::FallbackRib { rib_date: rib },
                        changed: Some(Vec::new()),
                    })
                } else {
                    // d == rib: the memoized fallback state *is* this
                    // RIB, which `day_view(d)` would serve as Exact.
                    self.anchor = Anchor::Day { day: d, rib_date: rib };
                    Ok(DayDelta {
                        provenance: Provenance::Exact,
                        changed: Some(Vec::new()),
                    })
                }
            }
            Anchor::Dead { day, missing } if d == day.succ() => {
                self.anchor = Anchor::Dead { day: d, missing };
                Err(ArchiveError::NoRibAvailable(missing))
            }
            _ => self.reanchor(d),
        }
    }

    /// The current peer table (for the day last served).
    pub fn peers(&self) -> &[PeerEntry] {
        &self.peers
    }

    /// Number of monitors in the current peer table.
    pub fn num_monitors(&self) -> u16 {
        // lint:allow(L1): peer tables are u16-counted on the wire, so ≤ 65535
        self.peers.len() as u16
    }

    /// The aggregated observation surface for the day last served.
    pub fn counts(&self) -> &BTreeMap<(Prefix, Arc<str>), (Origin, u16)> {
        &self.counts
    }

    /// One prefix's observation rows, in origin-rendering order — the
    /// same order the rows appear in
    /// [`DayView::to_observation_day`]'s output.
    pub fn routes_for(&self, p: Prefix) -> impl Iterator<Item = (&Origin, u16)> + '_ {
        self.counts
            .range((p, self.empty_key.clone())..)
            .take_while(move |((q, _), _)| *q == p)
            .map(|(_, (o, n))| (o, *n))
    }

    /// Materialize the current surface as an [`ObservationDay`] —
    /// identical to `day_view(date)?.to_observation_day()`.
    pub fn observation_day(&self, date: Date) -> ObservationDay {
        ObservationDay {
            date,
            num_monitors: self.num_monitors(),
            routes: self
                .counts
                .iter()
                .map(|((prefix, _), (origin, monitors_seen))| RouteObservation {
                    prefix: *prefix,
                    origin: origin.clone(),
                    monitors_seen: *monitors_seen,
                    path: Vec::new().into(),
                    class: None,
                })
                .collect(),
        }
    }

    /// How many times the sweep paid for a full state rebuild (RIB
    /// decode + count aggregation) — the work the incremental paths
    /// avoid. Exposed for tests and diagnostics.
    pub fn full_rebuilds(&self) -> usize {
        self.full_rebuilds
    }

    /// Full reconstruction through `day_view` (first day, rib days,
    /// out-of-sequence queries, recovery after errors).
    fn reanchor(&mut self, d: Date) -> Result<DayDelta, ArchiveError> {
        match self.archive.day_view(d) {
            Ok(view) => {
                self.full_rebuilds += 1;
                self.peers = view.peers;
                self.routes = view.peer_routes;
                self.rebuild_counts();
                self.anchor = match view.provenance {
                    Provenance::Exact => Anchor::Day { day: d, rib_date: d },
                    Provenance::Reconstructed { rib_date } => Anchor::Day { day: d, rib_date },
                    Provenance::FallbackRib { rib_date } => Anchor::Fallback { day: d, rib: rib_date },
                };
                Ok(DayDelta {
                    provenance: view.provenance,
                    changed: None,
                })
            }
            Err(e) => {
                self.anchor = Anchor::None;
                self.peers.clear();
                self.routes.clear();
                self.counts.clear();
                Err(e)
            }
        }
    }

    /// Anchored at `d - 1` but `d`'s update file is missing: serve the
    /// first RIB after `d` (the paper's fallback), memoized for the
    /// following days.
    fn enter_fallback(&mut self, d: Date) -> Result<DayDelta, ArchiveError> {
        let Some((&rib, _)) = self.archive.ribs.range(d..).next() else {
            // No data at or after the gap: this and every later
            // consecutive day fail the same way.
            self.anchor = Anchor::Dead { day: d, missing: d };
            return Err(ArchiveError::NoRibAvailable(d));
        };
        let Some((peers, routes)) = self.archive.load_rib(rib) else {
            self.anchor = Anchor::None;
            return Err(ArchiveError::NoRibAvailable(rib));
        };
        self.full_rebuilds += 1;
        self.peers = peers;
        self.routes = routes;
        self.rebuild_counts();
        self.anchor = Anchor::Fallback { day: d, rib };
        Ok(DayDelta {
            provenance: Provenance::FallbackRib { rib_date: rib },
            changed: None,
        })
    }

    fn rebuild_counts(&mut self) {
        let Self {
            ref routes,
            ref mut counts,
            ref mut fmt,
            ..
        } = *self;
        counts.clear();
        for peer in routes {
            for (p, o) in peer {
                count_inc(counts, fmt, *p, o);
            }
        }
    }

    /// [`CollectorArchiveV2::apply_updates`], with count maintenance
    /// and changed-prefix tracking bolted on. A route write that does
    /// not change the stored origin touches nothing.
    fn apply_updates_tracked(&mut self, bytes: &Bytes) -> Vec<Prefix> {
        let (mut records, _stats) = decode_file_lossy(bytes);
        records.sort_by_key(|r| r.timestamp);
        let index_of: HashMap<(u32, Asn), usize> = self
            .peers
            .iter()
            .enumerate()
            .map(|(i, p)| ((p.ip, p.asn), i))
            .collect();
        let mut touched: BTreeSet<Prefix> = BTreeSet::new();
        let Self {
            ref mut routes,
            ref mut counts,
            ref mut fmt,
            ..
        } = *self;
        for rec in records {
            let MrtRecord::Bgp4mpMessage(m) = rec.record else {
                continue;
            };
            let Some(&pi) = index_of.get(&(m.peer_ip, m.peer_as)) else {
                continue;
            };
            let BgpMessage::Update(u) = m.message else {
                continue;
            };
            for w in &u.withdrawn {
                if let Some(old) = routes[pi].remove(w) {
                    count_dec(counts, fmt, *w, &old);
                    touched.insert(*w);
                }
            }
            if !u.nlri.is_empty() {
                if let Some(origin) = origin_from_attributes(&u.attributes) {
                    for p in &u.nlri {
                        match routes[pi].insert(*p, origin.clone()) {
                            Some(old) if old == origin => {}
                            old => {
                                if let Some(o) = &old {
                                    count_dec(counts, fmt, *p, o);
                                }
                                count_inc(counts, fmt, *p, &origin);
                                touched.insert(*p);
                            }
                        }
                    }
                }
            }
        }
        touched.into_iter().collect()
    }
}

fn encode_rib(
    attrs: &AttrTable<'_>,
    config: &ArchiveV2Config,
    peers: &[PeerEntry],
    day: Date,
    state: &[Vec<(Prefix, Origin)>],
) -> Result<Bytes, Mrt2Error> {
    let ts = midnight(day);
    let mut records = vec![TimestampedRecord {
        timestamp: ts,
        record: MrtRecord::PeerIndexTable(PeerIndexTable {
            collector_bgp_id: config.collector_bgp_id,
            view_name: "drywells".into(),
            peers: peers.to_vec(),
        }),
    }];
    // Group by (prefix, origin-rendering) → entries.
    let mut by_prefix: BTreeMap<Prefix, Vec<(u16, Origin)>> = BTreeMap::new();
    for (pi, routes) in state.iter().enumerate() {
        let pi = u16::try_from(pi).map_err(|_| Mrt2Error::TooLong {
            field: "peer index",
            len: pi,
        })?;
        for (prefix, origin) in routes {
            by_prefix.entry(*prefix).or_default().push((pi, origin.clone()));
        }
    }
    for (seq, (prefix, holders)) in by_prefix.into_iter().enumerate() {
        let sequence = u32::try_from(seq).map_err(|_| Mrt2Error::TooLong {
            field: "RIB sequence",
            len: seq,
        })?;
        let entries: Vec<RibEntry> = holders
            .into_iter()
            .map(|(pi, origin)| RibEntry {
                peer_index: pi,
                originated_time: ts.saturating_sub(86_400),
                attributes: attrs.encoded_attributes(
                    pi as usize,
                    peers[pi as usize].asn,
                    &origin,
                ),
            })
            .collect();
        records.push(TimestampedRecord {
            timestamp: ts,
            record: MrtRecord::RibIpv4Unicast(RibIpv4Unicast {
                sequence,
                prefix,
                entries,
            }),
        });
    }
    encode_file(&records)
}

/// Per-peer diff accumulators: prefix-ordered withdraws plus
/// announcements grouped by origin rendering (implicit withdraws are
/// expressed as re-announcements, as in real BGP).
#[derive(Default)]
struct PeerDiff {
    withdrawn: Vec<Prefix>,
    announced: BTreeMap<String, (Origin, Vec<Prefix>)>,
}

impl PeerDiff {
    fn announce(&mut self, p: Prefix, o: &Origin) {
        let e = self
            .announced
            .entry(format!("{o}"))
            .or_insert_with(|| (o.clone(), Vec::new()));
        e.1.push(p);
    }

    /// Emit this peer's BGP4MP records, spreading messages over the
    /// first hours of the day.
    fn emit(
        self,
        attrs: &AttrTable<'_>,
        config: &ArchiveV2Config,
        peer: &PeerEntry,
        pi: usize,
        pi32: u32,
        base_ts: u32,
        records: &mut Vec<TimestampedRecord>,
    ) {
        let mut seq = 0u32;
        let mut ts = || {
            let t = base_ts + 60 + seq * 13 + pi32;
            seq += 1;
            t
        };
        if !self.withdrawn.is_empty() {
            records.push(TimestampedRecord {
                timestamp: ts(),
                record: MrtRecord::Bgp4mpMessage(Bgp4mpMessage {
                    peer_as: peer.asn,
                    local_as: config.collector_asn,
                    interface: 0,
                    peer_ip: peer.ip,
                    local_ip: 0x0A00_00FE,
                    message: BgpMessage::Update(UpdateMessage::withdraw(self.withdrawn)),
                }),
            });
        }
        for (_, (origin, mut prefixes)) in self.announced {
            prefixes.sort();
            records.push(TimestampedRecord {
                timestamp: ts(),
                record: MrtRecord::Bgp4mpMessage(Bgp4mpMessage {
                    peer_as: peer.asn,
                    local_as: config.collector_asn,
                    interface: 0,
                    peer_ip: peer.ip,
                    local_ip: 0x0A00_00FE,
                    message: BgpMessage::Update(UpdateMessage {
                        withdrawn: Vec::new(),
                        attributes: attrs.attributes(pi, peer.asn, &origin),
                        nlri: prefixes,
                    }),
                }),
            });
        }
    }
}

fn encode_updates(
    attrs: &AttrTable<'_>,
    config: &ArchiveV2Config,
    peers: &[PeerEntry],
    day: Date,
    prev: &[Vec<(Prefix, Origin)>],
    cur: &[Vec<(Prefix, Origin)>],
) -> Result<Bytes, Mrt2Error> {
    let base_ts = midnight(day);
    let mut records = Vec::new();
    for (pi, peer) in peers.iter().enumerate() {
        let pi32 = u32::try_from(pi).map_err(|_| Mrt2Error::TooLong {
            field: "peer index",
            len: pi,
        })?;
        // Both states are sorted by prefix with at most one route per
        // prefix (BGP best-path semantics), so the day-over-day diff
        // is a linear merge-join — no per-peer hash maps.
        let (prev_routes, cur_routes) = (&prev[pi], &cur[pi]);
        let mut diff = PeerDiff::default();
        let (mut a, mut b) = (0, 0);
        while a < prev_routes.len() || b < cur_routes.len() {
            match (prev_routes.get(a), cur_routes.get(b)) {
                (Some((pp, _)), Some((cp, _))) if pp < cp => {
                    diff.withdrawn.push(*pp);
                    a += 1;
                }
                (Some((pp, _)), Some((cp, co))) if cp < pp => {
                    diff.announce(*cp, co);
                    b += 1;
                }
                (Some((_, po)), Some((cp, co))) => {
                    if po != co {
                        diff.announce(*cp, co);
                    }
                    a += 1;
                    b += 1;
                }
                (Some((pp, _)), None) => {
                    diff.withdrawn.push(*pp);
                    a += 1;
                }
                (None, Some((cp, co))) => {
                    diff.announce(*cp, co);
                    b += 1;
                }
                (None, None) => break,
            }
        }
        diff.emit(attrs, config, peer, pi, pi32, base_ts, &mut records);
    }
    records.sort_by_key(|r| r.timestamp);
    encode_file(&records)
}

/// Delta-fed update encoding: the per-monitor [`SelChange`] lists from
/// one [`RenderEngine::advance_state`] call already *are* the
/// day-over-day diff (prefix-sorted, origin-change-only), so no
/// merge-join over two full states is needed. Byte-identical to
/// [`encode_updates`] on the same transition: withdraws arrive in the
/// same prefix order and announcements group under the same
/// origin-rendering keys.
fn encode_updates_delta(
    attrs: &AttrTable<'_>,
    engine: &RenderEngine,
    config: &ArchiveV2Config,
    peers: &[PeerEntry],
    day: Date,
    changes: &[Vec<SelChange>],
) -> Result<Bytes, Mrt2Error> {
    let base_ts = midnight(day);
    let mut records = Vec::new();
    for (pi, peer) in peers.iter().enumerate() {
        let pi32 = u32::try_from(pi).map_err(|_| Mrt2Error::TooLong {
            field: "peer index",
            len: pi,
        })?;
        let mut diff = PeerDiff::default();
        for c in &changes[pi] {
            match c.new {
                Some(e) => diff.announce(c.prefix, engine.entity_origin(e)),
                None => diff.withdrawn.push(c.prefix),
            }
        }
        diff.emit(attrs, config, peer, pi, pi32, base_ts, &mut records);
    }
    records.sort_by_key(|r| r.timestamp);
    encode_file(&records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::per_monitor_routes;
    use crate::scenario::WorldConfig;
    use crate::topology::TopologyConfig;
    use nettypes::date::date;

    fn world() -> LeaseWorld {
        LeaseWorld::generate(&WorldConfig {
            seed: 33,
            span: DateRange::new(date("2018-01-01"), date("2018-01-31")),
            topology: TopologyConfig {
                seed: 33,
                num_tier1: 4,
                num_tier2: 10,
                num_stubs: 80,
                multi_as_org_fraction: 0.15,
            },
            num_allocations: 30,
            initial_active_leases: 80,
            bgp_visible_fraction: 0.4,
            onoff_fraction: 0.5,
            num_hijacks: 3,
            num_moas: 3,
            num_as_sets: 2,
            num_scrubbing: 1,
            ..Default::default()
        })
    }

    fn setup() -> (LeaseWorld, VisibilityModel, CollectorArchiveV2) {
        let w = world();
        let model = VisibilityModel {
            num_monitors: 12,
            daily_flicker: 0.01,
            seed: 33,
        };
        let archive = CollectorArchiveV2::generate(
            &w,
            &model,
            w.span,
            &ArchiveV2Config {
                rib_every_days: 7,
                ..Default::default()
            },
        )
        .expect("archive encodes");
        (w, model, archive)
    }

    #[test]
    fn archive_layout() {
        let (w, _, archive) = setup();
        // RIBs every 7 days over a 31-day span: days 0,7,14,21,28.
        assert_eq!(archive.rib_dates().count(), 5);
        // Updates for every day but the first.
        assert_eq!(archive.update_dates().count() as i64, w.span.num_days() - 1);
        assert!(archive.total_bytes() > 10_000);
    }

    #[test]
    fn reconstruction_matches_direct_rendering() {
        let (w, model, archive) = setup();
        for probe in [date("2018-01-01"), date("2018-01-06"), date("2018-01-13"), date("2018-01-31")] {
            let view = archive.day_view(probe).expect("view");
            let direct = per_monitor_routes(&w, &model, probe);
            assert_eq!(view.peer_routes.len(), direct.len());
            for (pi, routes) in direct.iter().enumerate() {
                let got = &view.peer_routes[pi];
                assert_eq!(
                    got.len(),
                    routes.len(),
                    "peer {pi} on {probe}: {} vs {} routes",
                    got.len(),
                    routes.len()
                );
                for (p, o) in routes {
                    assert_eq!(got.get(p), Some(o), "peer {pi} {p} on {probe}");
                }
            }
        }
    }

    #[test]
    fn provenance_reporting() {
        let (_, _, archive) = setup();
        assert_eq!(
            archive.day_view(date("2018-01-01")).unwrap().provenance,
            Provenance::Exact
        );
        assert_eq!(
            archive.day_view(date("2018-01-05")).unwrap().provenance,
            Provenance::Reconstructed {
                rib_date: date("2018-01-01")
            }
        );
        assert_eq!(
            archive.day_view(date("2018-01-08")).unwrap().provenance,
            Provenance::Exact
        );
    }

    #[test]
    fn missing_update_file_falls_to_next_rib() {
        let (w, model, mut archive) = setup();
        // Kill the update file for Jan 3.
        assert!(archive.drop_update_file(date("2018-01-03")));
        // Jan 5 can no longer be reconstructed from Jan 1; the paper
        // fallback continues from the Jan 8 RIB — which is *after* the
        // target, so the state is the Jan 8 RIB itself.
        let view = archive.day_view(date("2018-01-05")).unwrap();
        assert_eq!(
            view.provenance,
            Provenance::FallbackRib {
                rib_date: date("2018-01-08")
            }
        );
        // The fallback state equals the direct rendering of Jan 8.
        let direct = per_monitor_routes(&w, &model, date("2018-01-08"));
        for (pi, routes) in direct.iter().enumerate() {
            assert_eq!(view.peer_routes[pi].len(), routes.len());
        }
        // A later day that passes through the next RIB reconstructs fine.
        let later = archive.day_view(date("2018-01-10")).unwrap();
        assert_eq!(
            later.provenance,
            Provenance::Reconstructed {
                rib_date: date("2018-01-08")
            }
        );
        let direct10 = per_monitor_routes(&w, &model, date("2018-01-10"));
        for (pi, routes) in direct10.iter().enumerate() {
            assert_eq!(later.peer_routes[pi].len(), routes.len());
        }
    }

    #[test]
    fn corrupted_update_file_skips_bad_records() {
        let (w, model, mut archive) = setup();
        // Corrupt half of the Jan 4 update file.
        let bytes = archive.update_bytes(date("2018-01-04")).unwrap().clone();
        let mut v = bytes.to_vec();
        let cut = v.len() / 2;
        v.truncate(cut);
        archive.corrupt_update_file(date("2018-01-04"), Bytes::from(v));
        // Reconstruction still works (lossy decode) but Jan 4+ may
        // drift; the Jan 8 RIB resynchronizes Jan 8 onwards.
        let view = archive.day_view(date("2018-01-09")).unwrap();
        let direct = per_monitor_routes(&w, &model, date("2018-01-09"));
        for (pi, routes) in direct.iter().enumerate() {
            let got = &view.peer_routes[pi];
            for (p, o) in routes {
                assert_eq!(got.get(p), Some(o));
            }
        }
    }

    #[test]
    fn out_of_range_and_empty() {
        let (_, _, archive) = setup();
        assert!(matches!(
            archive.day_view(date("2017-12-25")),
            Err(ArchiveError::OutOfRange(_))
        ));
        let empty = CollectorArchiveV2::default();
        assert!(matches!(
            empty.day_view(date("2018-01-01")),
            Err(ArchiveError::NoRibAvailable(_))
        ));
    }

    #[test]
    fn observation_day_counts_match() {
        let (w, model, archive) = setup();
        let probe = date("2018-01-20");
        let view = archive.day_view(probe).unwrap();
        let obs = view.to_observation_day();
        assert_eq!(obs.num_monitors, 12);
        // Aggregate counts agree with the direct per-monitor rendering.
        let direct = per_monitor_routes(&w, &model, probe);
        let mut expect: HashMap<(Prefix, String), u16> = HashMap::new();
        for routes in &direct {
            for (p, o) in routes {
                *expect.entry((*p, format!("{o}"))).or_default() += 1;
            }
        }
        assert_eq!(obs.routes.len(), expect.len());
        for r in &obs.routes {
            let key = (r.prefix, format!("{}", r.origin));
            assert_eq!(expect.get(&key), Some(&r.monitors_seen), "{key:?}");
        }
    }

    #[test]
    fn parallel_generation_is_byte_identical() {
        let (w, model, _) = setup();
        let cfg = ArchiveV2Config {
            rib_every_days: 7,
            ..Default::default()
        };
        let seq = CollectorArchiveV2::generate_with_threads(&w, &model, w.span, &cfg, 1)
            .expect("archive encodes");
        for threads in [2, 4] {
            let par =
                CollectorArchiveV2::generate_with_threads(&w, &model, w.span, &cfg, threads)
                    .expect("archive encodes");
            assert_eq!(par.peers(), seq.peers());
            assert_eq!(
                par.rib_dates().collect::<Vec<_>>(),
                seq.rib_dates().collect::<Vec<_>>()
            );
            assert_eq!(
                par.update_dates().collect::<Vec<_>>(),
                seq.update_dates().collect::<Vec<_>>()
            );
            for d in seq.rib_dates() {
                assert_eq!(par.rib_bytes(d), seq.rib_bytes(d), "RIB bytes differ on {d}");
            }
            for d in seq.update_dates() {
                assert_eq!(
                    par.update_bytes(d),
                    seq.update_bytes(d),
                    "update bytes differ on {d}"
                );
            }
        }
    }

    fn archives_equal(a: &CollectorArchiveV2, b: &CollectorArchiveV2) {
        assert_eq!(a.peers(), b.peers());
        assert_eq!(a.rib_dates().collect::<Vec<_>>(), b.rib_dates().collect::<Vec<_>>());
        assert_eq!(
            a.update_dates().collect::<Vec<_>>(),
            b.update_dates().collect::<Vec<_>>()
        );
        for d in a.rib_dates() {
            assert_eq!(a.rib_bytes(d), b.rib_bytes(d), "RIB bytes differ on {d}");
        }
        for d in a.update_dates() {
            assert_eq!(a.update_bytes(d), b.update_bytes(d), "update bytes differ on {d}");
        }
    }

    #[test]
    fn delta_generation_matches_full_recompute_oracle() {
        let (w, model, _) = setup();
        let cfg = ArchiveV2Config {
            rib_every_days: 7,
            ..Default::default()
        };
        let oracle =
            CollectorArchiveV2::generate_full_recompute_with_threads(&w, &model, w.span, &cfg, 1)
                .expect("archive encodes");
        for threads in [1, 2, 4] {
            let delta = CollectorArchiveV2::generate_with_threads(&w, &model, w.span, &cfg, threads)
                .expect("archive encodes");
            archives_equal(&delta, &oracle);
        }
    }

    #[test]
    fn sweep_matches_day_view_every_day() {
        let (_, _, archive) = setup();
        let mut sweep = archive.sweep();
        for d in DateRange::new(date("2018-01-01"), date("2018-01-31")).iter() {
            let delta = sweep.advance(d).expect("day serves");
            let view = archive.day_view(d).expect("view");
            assert_eq!(delta.provenance, view.provenance, "provenance differs on {d}");
            assert_eq!(
                sweep.observation_day(d),
                view.to_observation_day(),
                "observation surface differs on {d}"
            );
        }
    }

    #[test]
    fn sweep_changed_prefixes_cover_all_surface_changes() {
        let (_, _, archive) = setup();
        let mut sweep = archive.sweep();
        let mut prev: Option<ObservationDay> = None;
        for d in DateRange::new(date("2018-01-01"), date("2018-01-31")).iter() {
            let delta = sweep.advance(d).expect("day serves");
            let today = sweep.observation_day(d);
            if let (Some(prev), Some(changed)) = (&prev, &delta.changed) {
                // Rows of untouched prefixes are identical day-over-day.
                let rows =
                    |o: &ObservationDay, p: Prefix| -> Vec<(Prefix, Origin, u16)> {
                        o.routes
                            .iter()
                            .filter(|r| r.prefix == p)
                            .map(|r| (r.prefix, r.origin.clone(), r.monitors_seen))
                            .collect()
                    };
                let all: BTreeSet<Prefix> = prev
                    .routes
                    .iter()
                    .chain(&today.routes)
                    .map(|r| r.prefix)
                    .collect();
                for p in all {
                    if !changed.contains(&p) {
                        assert_eq!(rows(prev, p), rows(&today, p), "silent change at {p} on {d}");
                    }
                }
            }
            prev = Some(today);
        }
    }

    #[test]
    fn sweep_memoizes_fallback_rib() {
        let (_, _, mut archive) = setup();
        // Kill Jan 3's update file: Jan 3–7 fall forward to the Jan 8
        // RIB, which must be decoded exactly once.
        assert!(archive.drop_update_file(date("2018-01-03")));
        let mut sweep = archive.sweep();
        let mut rebuilds_at_fallback_start = None;
        for d in DateRange::new(date("2018-01-01"), date("2018-01-31")).iter() {
            let delta = sweep.advance(d).expect("day serves");
            let view = archive.day_view(d).expect("view");
            assert_eq!(delta.provenance, view.provenance, "provenance differs on {d}");
            assert_eq!(
                sweep.observation_day(d),
                view.to_observation_day(),
                "observation surface differs on {d}"
            );
            if d == date("2018-01-03") {
                rebuilds_at_fallback_start = Some(sweep.full_rebuilds());
            }
            if d > date("2018-01-03") && d <= date("2018-01-08") {
                // Consecutive fallback days (and the RIB day the
                // fallback anchors to) cost no further rebuilds.
                assert_eq!(Some(sweep.full_rebuilds()), rebuilds_at_fallback_start, "{d}");
            }
        }
        // 31 day_view calls would have paid 31 rebuilds; the sweep
        // pays one per anchor: Jan 1, the fallback, and the later RIB
        // days (15, 22, 29).
        assert_eq!(sweep.full_rebuilds(), 5);
    }

    #[test]
    fn sweep_trailing_gap_errors_every_day() {
        let (_, _, mut archive) = setup();
        // Remove the last RIB and every update file after Jan 25: days
        // 26+ have no data at all.
        assert!(archive.drop_rib(date("2018-01-29")));
        for d in DateRange::new(date("2018-01-26"), date("2018-01-31")).iter() {
            archive.drop_update_file(d);
        }
        let mut sweep = archive.sweep();
        for d in DateRange::new(date("2018-01-01"), date("2018-01-31")).iter() {
            let got = sweep.advance(d);
            let want = archive.day_view(d);
            match (got, want) {
                (Ok(delta), Ok(view)) => {
                    assert_eq!(delta.provenance, view.provenance, "{d}");
                    assert_eq!(sweep.observation_day(d), view.to_observation_day(), "{d}");
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "{d}"),
                (a, b) => panic!("sweep/day_view disagree on {d}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn update_files_contain_real_bgp_messages() {
        let (_, _, archive) = setup();
        let bytes = archive.update_bytes(date("2018-01-02")).unwrap();
        let (records, stats) = decode_file_lossy(bytes);
        assert!(stats.is_clean());
        assert!(!records.is_empty());
        let mut updates = 0;
        for r in &records {
            if let MrtRecord::Bgp4mpMessage(m) = &r.record {
                assert!(matches!(m.message, BgpMessage::Update(_)));
                updates += 1;
            }
        }
        assert!(updates > 0, "no BGP4MP updates in the file");
        // Timestamps are sorted within the file.
        assert!(records.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }
}
