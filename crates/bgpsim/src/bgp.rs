//! BGP-4 message encoding and decoding (RFC 4271, with 4-octet AS
//! numbers per RFC 6793).
//!
//! The collector substrate stores update files as MRT `BGP4MP`
//! records, each of which wraps a raw BGP message; this module is the
//! message layer. Only the message types and path attributes the
//! simulation produces are modelled richly — everything else is
//! preserved as [`PathAttribute::Unknown`] so decode→encode is
//! lossless for third-party attributes.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use nettypes::asn::Asn;
use nettypes::prefix::Prefix;

/// BGP message types (RFC 4271 §4.1).
pub const TYPE_OPEN: u8 = 1;
/// UPDATE message type.
pub const TYPE_UPDATE: u8 = 2;
/// NOTIFICATION message type.
pub const TYPE_NOTIFICATION: u8 = 3;
/// KEEPALIVE message type.
pub const TYPE_KEEPALIVE: u8 = 4;

/// Maximum BGP message size (RFC 4271 §4).
pub const MAX_MESSAGE: usize = 4096;

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BgpError {
    /// Fewer bytes than the fixed header requires.
    Truncated,
    /// The 16-byte marker was not all-ones.
    BadMarker,
    /// Header length field out of `[19, 4096]` or inconsistent with
    /// the buffer.
    BadLength(u16),
    /// Unknown message type.
    BadType(u8),
    /// A prefix field had length > 32 bits.
    BadPrefixLen(u8),
    /// Attribute section inconsistent (lengths overflow the message).
    BadAttributes(&'static str),
}

impl std::fmt::Display for BgpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BgpError::Truncated => write!(f, "truncated BGP message"),
            BgpError::BadMarker => write!(f, "bad BGP marker"),
            BgpError::BadLength(l) => write!(f, "bad BGP length {l}"),
            BgpError::BadType(t) => write!(f, "unknown BGP type {t}"),
            BgpError::BadPrefixLen(l) => write!(f, "bad NLRI prefix length {l}"),
            BgpError::BadAttributes(w) => write!(f, "bad path attributes: {w}"),
        }
    }
}

impl std::error::Error for BgpError {}

/// The ORIGIN attribute value (RFC 4271 §5.1.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OriginType {
    /// Interior (IGP).
    Igp,
    /// Exterior (EGP).
    Egp,
    /// Incomplete.
    Incomplete,
}

impl OriginType {
    fn code(self) -> u8 {
        match self {
            OriginType::Igp => 0,
            OriginType::Egp => 1,
            OriginType::Incomplete => 2,
        }
    }

    fn from_code(c: u8) -> Option<OriginType> {
        Some(match c {
            0 => OriginType::Igp,
            1 => OriginType::Egp,
            2 => OriginType::Incomplete,
            _ => return None,
        })
    }
}

/// One AS_PATH segment (RFC 4271 §4.3; 4-octet ASNs per RFC 6793).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsPathSegment {
    /// Ordered sequence of ASes.
    Sequence(Vec<Asn>),
    /// Unordered set (aggregation artifact).
    Set(Vec<Asn>),
}

/// A BGP path attribute.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PathAttribute {
    /// ORIGIN (type 1).
    Origin(OriginType),
    /// AS_PATH (type 2).
    AsPath(Vec<AsPathSegment>),
    /// NEXT_HOP (type 3), IPv4 in host order.
    NextHop(u32),
    /// MULTI_EXIT_DISC (type 4).
    Med(u32),
    /// LOCAL_PREF (type 5).
    LocalPref(u32),
    /// COMMUNITIES (type 8, RFC 1997).
    Communities(Vec<u32>),
    /// Any attribute this library does not interpret; round-trips
    /// byte-exactly.
    Unknown {
        /// Attribute flags byte.
        flags: u8,
        /// Attribute type code.
        type_code: u8,
        /// Raw value bytes.
        value: Bytes,
    },
}

impl PathAttribute {
    /// The attribute's type code.
    pub fn type_code(&self) -> u8 {
        match self {
            PathAttribute::Origin(_) => 1,
            PathAttribute::AsPath(_) => 2,
            PathAttribute::NextHop(_) => 3,
            PathAttribute::Med(_) => 4,
            PathAttribute::LocalPref(_) => 5,
            PathAttribute::Communities(_) => 8,
            PathAttribute::Unknown { type_code, .. } => *type_code,
        }
    }
}

/// A BGP UPDATE message.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct UpdateMessage {
    /// Withdrawn routes.
    pub withdrawn: Vec<Prefix>,
    /// Path attributes (apply to all NLRI).
    pub attributes: Vec<PathAttribute>,
    /// Announced prefixes.
    pub nlri: Vec<Prefix>,
}

impl UpdateMessage {
    /// Convenience: build a plain announcement with ORIGIN IGP, the
    /// given AS_PATH sequence and next hop.
    pub fn announce(nlri: Vec<Prefix>, path: Vec<Asn>, next_hop: u32) -> UpdateMessage {
        UpdateMessage {
            withdrawn: Vec::new(),
            attributes: vec![
                PathAttribute::Origin(OriginType::Igp),
                PathAttribute::AsPath(vec![AsPathSegment::Sequence(path)]),
                PathAttribute::NextHop(next_hop),
            ],
            nlri,
        }
    }

    /// Convenience: build a withdrawal.
    pub fn withdraw(withdrawn: Vec<Prefix>) -> UpdateMessage {
        UpdateMessage {
            withdrawn,
            attributes: Vec::new(),
            nlri: Vec::new(),
        }
    }

    /// The flattened AS path (sequence segments in order; set members
    /// appended), or empty when no AS_PATH attribute is present.
    pub fn as_path(&self) -> Vec<Asn> {
        for a in &self.attributes {
            if let PathAttribute::AsPath(segs) = a {
                let mut out = Vec::new();
                for s in segs {
                    match s {
                        AsPathSegment::Sequence(v) | AsPathSegment::Set(v) => {
                            out.extend_from_slice(v)
                        }
                    }
                }
                return out;
            }
        }
        Vec::new()
    }

    /// The origin AS (last AS of the path), if a non-empty AS_PATH
    /// sequence exists.
    pub fn origin_as(&self) -> Option<Asn> {
        self.as_path().last().copied()
    }
}

/// A decoded BGP message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BgpMessage {
    /// An UPDATE.
    Update(UpdateMessage),
    /// A KEEPALIVE (no body).
    Keepalive,
    /// Any other message type, body preserved raw.
    Other {
        /// Message type byte.
        msg_type: u8,
        /// Raw body.
        body: Bytes,
    },
}

// --- encoding ---------------------------------------------------------

fn put_wire_prefix(buf: &mut BytesMut, p: &Prefix) {
    buf.put_u8(p.len());
    let nbytes = p.len().div_ceil(8) as usize;
    let net = p.network().to_be_bytes();
    buf.put_slice(&net[..nbytes]);
}

fn wire_prefix_size(p: &Prefix) -> usize {
    1 + p.len().div_ceil(8) as usize
}

fn encode_attribute(buf: &mut BytesMut, attr: &PathAttribute) {
    // flags: optional(0x80) transitive(0x40) partial(0x20) extended(0x10)
    let (flags, type_code, value): (u8, u8, BytesMut) = match attr {
        PathAttribute::Origin(o) => {
            let mut v = BytesMut::with_capacity(1);
            v.put_u8(o.code());
            (0x40, 1, v)
        }
        PathAttribute::AsPath(segs) => {
            let mut v = BytesMut::new();
            for s in segs {
                let (seg_type, asns) = match s {
                    AsPathSegment::Set(a) => (1u8, a),
                    AsPathSegment::Sequence(a) => (2u8, a),
                };
                v.put_u8(seg_type);
                v.put_u8(asns.len() as u8);
                for a in asns {
                    v.put_u32(a.0);
                }
            }
            (0x40, 2, v)
        }
        PathAttribute::NextHop(ip) => {
            let mut v = BytesMut::with_capacity(4);
            v.put_u32(*ip);
            (0x40, 3, v)
        }
        PathAttribute::Med(m) => {
            let mut v = BytesMut::with_capacity(4);
            v.put_u32(*m);
            (0x80, 4, v)
        }
        PathAttribute::LocalPref(l) => {
            let mut v = BytesMut::with_capacity(4);
            v.put_u32(*l);
            (0x40, 5, v)
        }
        PathAttribute::Communities(cs) => {
            let mut v = BytesMut::with_capacity(cs.len() * 4);
            for c in cs {
                v.put_u32(*c);
            }
            (0xC0, 8, v)
        }
        PathAttribute::Unknown {
            flags,
            type_code,
            value,
        } => {
            let mut v = BytesMut::with_capacity(value.len());
            v.put_slice(value);
            (*flags, *type_code, v)
        }
    };
    let extended = value.len() > 255;
    let flags = if extended { flags | 0x10 } else { flags & !0x10 };
    buf.put_u8(flags);
    buf.put_u8(type_code);
    if extended {
        buf.put_u16(value.len() as u16);
    } else {
        buf.put_u8(value.len() as u8);
    }
    buf.put_slice(&value);
}

/// Encode a bare path-attribute blob (the wire form embedded in
/// `TABLE_DUMP_V2` RIB entries).
pub fn encode_attributes(attrs: &[PathAttribute]) -> Bytes {
    let mut buf = BytesMut::new();
    for a in attrs {
        encode_attribute(&mut buf, a);
    }
    buf.freeze()
}

/// Decode a bare path-attribute blob.
pub fn decode_attributes(mut buf: &[u8]) -> Result<Vec<PathAttribute>, BgpError> {
    let mut out = Vec::new();
    while buf.has_remaining() {
        out.push(decode_attribute(&mut buf)?);
    }
    Ok(out)
}

/// Encode a message with the standard 19-byte header.
pub fn encode_message(msg: &BgpMessage) -> Bytes {
    let mut body = BytesMut::new();
    let msg_type = match msg {
        BgpMessage::Keepalive => TYPE_KEEPALIVE,
        BgpMessage::Other { msg_type, body: b } => {
            body.put_slice(b);
            *msg_type
        }
        BgpMessage::Update(u) => {
            // Withdrawn routes.
            let wsize: usize = u.withdrawn.iter().map(wire_prefix_size).sum();
            body.put_u16(wsize as u16);
            for p in &u.withdrawn {
                put_wire_prefix(&mut body, p);
            }
            // Path attributes.
            let mut attrs = BytesMut::new();
            for a in &u.attributes {
                encode_attribute(&mut attrs, a);
            }
            body.put_u16(attrs.len() as u16);
            body.put_slice(&attrs);
            // NLRI.
            for p in &u.nlri {
                put_wire_prefix(&mut body, p);
            }
            TYPE_UPDATE
        }
    };
    let total = 19 + body.len();
    debug_assert!(total <= MAX_MESSAGE, "BGP message too large: {total}");
    let mut out = BytesMut::with_capacity(total);
    out.put_slice(&[0xFF; 16]);
    out.put_u16(total as u16);
    out.put_u8(msg_type);
    out.put_slice(&body);
    out.freeze()
}

// --- decoding ---------------------------------------------------------

fn get_wire_prefix(buf: &mut &[u8]) -> Result<Prefix, BgpError> {
    if buf.remaining() < 1 {
        return Err(BgpError::Truncated);
    }
    let len = buf.get_u8();
    if len > 32 {
        return Err(BgpError::BadPrefixLen(len));
    }
    let nbytes = len.div_ceil(8) as usize;
    if buf.remaining() < nbytes {
        return Err(BgpError::Truncated);
    }
    let mut net_bytes = [0u8; 4];
    for b in net_bytes.iter_mut().take(nbytes) {
        *b = buf.get_u8();
    }
    // Mask silently: senders may leave trailing bits set.
    Ok(Prefix::new_unchecked_masked(u32::from_be_bytes(net_bytes), len))
}

/// A big-endian u32 from an attribute value, `None` unless it is
/// exactly four bytes (malformed fixed-width attributes fall back to
/// [`PathAttribute::Unknown`] rather than erroring).
fn be_u32(value: &[u8]) -> Option<u32> {
    Some(u32::from_be_bytes(value.try_into().ok()?))
}

fn decode_attribute(buf: &mut &[u8]) -> Result<PathAttribute, BgpError> {
    if buf.remaining() < 2 {
        return Err(BgpError::Truncated);
    }
    let flags = buf.get_u8();
    let type_code = buf.get_u8();
    let extended = flags & 0x10 != 0;
    let len = if extended {
        if buf.remaining() < 2 {
            return Err(BgpError::Truncated);
        }
        buf.get_u16() as usize
    } else {
        if buf.remaining() < 1 {
            return Err(BgpError::Truncated);
        }
        buf.get_u8() as usize
    };
    if buf.remaining() < len {
        return Err(BgpError::Truncated);
    }
    let mut value = &buf[..len];
    buf.advance(len);

    let parsed = match type_code {
        1 if value.len() == 1 => OriginType::from_code(value[0]).map(PathAttribute::Origin),
        2 => {
            // AS_PATH with 4-octet ASNs.
            let mut segs = Vec::new();
            let v = &mut value;
            let mut ok = true;
            while v.remaining() >= 2 {
                let seg_type = v.get_u8();
                let count = v.get_u8() as usize;
                if v.remaining() < count * 4 {
                    ok = false;
                    break;
                }
                let mut asns = Vec::with_capacity(count);
                for _ in 0..count {
                    asns.push(Asn(v.get_u32()));
                }
                match seg_type {
                    1 => segs.push(AsPathSegment::Set(asns)),
                    2 => segs.push(AsPathSegment::Sequence(asns)),
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok && !v.has_remaining() {
                Some(PathAttribute::AsPath(segs))
            } else {
                None
            }
        }
        3 => be_u32(value).map(PathAttribute::NextHop),
        4 => be_u32(value).map(PathAttribute::Med),
        5 => be_u32(value).map(PathAttribute::LocalPref),
        8 if value.len().is_multiple_of(4) => {
            let mut cs = Vec::with_capacity(value.len() / 4);
            let v = &mut value;
            while v.has_remaining() {
                cs.push(v.get_u32());
            }
            Some(PathAttribute::Communities(cs))
        }
        _ => None,
    };
    Ok(parsed.unwrap_or_else(|| PathAttribute::Unknown {
        flags: flags & !0x10,
        type_code,
        value: Bytes::copy_from_slice(value),
    }))
}

/// Decode the body of an UPDATE message (after the 19-byte header).
pub fn decode_update_body(mut buf: &[u8]) -> Result<UpdateMessage, BgpError> {
    if buf.remaining() < 2 {
        return Err(BgpError::Truncated);
    }
    let wlen = buf.get_u16() as usize;
    if buf.remaining() < wlen {
        return Err(BgpError::BadAttributes("withdrawn length"));
    }
    let mut wbuf = &buf[..wlen];
    buf.advance(wlen);
    let mut withdrawn = Vec::new();
    while wbuf.has_remaining() {
        withdrawn.push(get_wire_prefix(&mut wbuf)?);
    }

    if buf.remaining() < 2 {
        return Err(BgpError::Truncated);
    }
    let alen = buf.get_u16() as usize;
    if buf.remaining() < alen {
        return Err(BgpError::BadAttributes("attribute length"));
    }
    let mut abuf = &buf[..alen];
    buf.advance(alen);
    let mut attributes = Vec::new();
    while abuf.has_remaining() {
        attributes.push(decode_attribute(&mut abuf)?);
    }

    let mut nlri = Vec::new();
    while buf.has_remaining() {
        nlri.push(get_wire_prefix(&mut buf)?);
    }
    Ok(UpdateMessage {
        withdrawn,
        attributes,
        nlri,
    })
}

/// Decode one message from the front of `buf`, returning it and the
/// number of bytes consumed.
pub fn decode_message(buf: &[u8]) -> Result<(BgpMessage, usize), BgpError> {
    if buf.len() < 19 {
        return Err(BgpError::Truncated);
    }
    if buf[..16] != [0xFF; 16] {
        return Err(BgpError::BadMarker);
    }
    let total_u16 = u16::from_be_bytes([buf[16], buf[17]]);
    let total = usize::from(total_u16);
    if !(19..=MAX_MESSAGE).contains(&total) {
        return Err(BgpError::BadLength(total_u16));
    }
    if buf.len() < total {
        return Err(BgpError::Truncated);
    }
    let msg_type = buf[18];
    let body = &buf[19..total];
    let msg = match msg_type {
        TYPE_UPDATE => BgpMessage::Update(decode_update_body(body)?),
        TYPE_KEEPALIVE => {
            if !body.is_empty() {
                return Err(BgpError::BadLength(total_u16));
            }
            BgpMessage::Keepalive
        }
        TYPE_OPEN | TYPE_NOTIFICATION => BgpMessage::Other {
            msg_type,
            body: Bytes::copy_from_slice(body),
        },
        other => return Err(BgpError::BadType(other)),
    };
    Ok((msg, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettypes::prefix::pfx;
    use proptest::prelude::*;

    fn roundtrip(msg: &BgpMessage) -> BgpMessage {
        let bytes = encode_message(msg);
        let (decoded, used) = decode_message(&bytes).expect("decodes");
        assert_eq!(used, bytes.len());
        decoded
    }

    #[test]
    fn keepalive_roundtrip() {
        let m = BgpMessage::Keepalive;
        assert_eq!(roundtrip(&m), m);
        assert_eq!(encode_message(&m).len(), 19);
    }

    #[test]
    fn announce_roundtrip() {
        let m = BgpMessage::Update(UpdateMessage::announce(
            vec![pfx("193.0.0.0/21"), pfx("10.0.0.0/8"), pfx("0.0.0.0/0")],
            vec![Asn(64500), Asn(3333)],
            nettypes::parse_ipv4("192.0.2.1").unwrap(),
        ));
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn withdraw_roundtrip() {
        let m = BgpMessage::Update(UpdateMessage::withdraw(vec![
            pfx("1.2.3.0/24"),
            pfx("128.0.0.0/1"),
        ]));
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn prefix_wire_encoding_is_minimal() {
        // A /8 occupies 1 length byte + 1 network byte.
        let m = BgpMessage::Update(UpdateMessage::withdraw(vec![pfx("10.0.0.0/8")]));
        let bytes = encode_message(&m);
        // header 19 + wlen 2 + (1+1) + attrlen 2 = 25.
        assert_eq!(bytes.len(), 25);
        // /0 occupies only the length byte.
        let m0 = BgpMessage::Update(UpdateMessage::withdraw(vec![Prefix::DEFAULT]));
        assert_eq!(encode_message(&m0).len(), 24);
    }

    #[test]
    fn as_path_accessors() {
        let u = UpdateMessage::announce(
            vec![pfx("193.0.0.0/21")],
            vec![Asn(1), Asn(2), Asn(3)],
            0,
        );
        assert_eq!(u.as_path(), vec![Asn(1), Asn(2), Asn(3)]);
        assert_eq!(u.origin_as(), Some(Asn(3)));
        let w = UpdateMessage::withdraw(vec![pfx("1.2.3.0/24")]);
        assert_eq!(w.origin_as(), None);
    }

    #[test]
    fn unknown_attribute_preserved() {
        let m = BgpMessage::Update(UpdateMessage {
            withdrawn: vec![],
            attributes: vec![PathAttribute::Unknown {
                flags: 0xC0,
                type_code: 32, // LARGE_COMMUNITY — not interpreted
                value: Bytes::from_static(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]),
            }],
            nlri: vec![pfx("203.0.112.0/24")],
        });
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn communities_and_med() {
        let m = BgpMessage::Update(UpdateMessage {
            withdrawn: vec![],
            attributes: vec![
                PathAttribute::Origin(OriginType::Incomplete),
                PathAttribute::AsPath(vec![
                    AsPathSegment::Sequence(vec![Asn(1), Asn(2)]),
                    AsPathSegment::Set(vec![Asn(7), Asn(8)]),
                ]),
                PathAttribute::NextHop(0x0A000001),
                PathAttribute::Med(50),
                PathAttribute::LocalPref(100),
                PathAttribute::Communities(vec![0x0001_0002, 0xFFFF_FF01]),
            ],
            nlri: vec![pfx("198.51.100.0/24")],
        });
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn rejects_bad_marker_and_length() {
        let m = encode_message(&BgpMessage::Keepalive);
        let mut bad = m.to_vec();
        bad[0] = 0;
        assert_eq!(decode_message(&bad), Err(BgpError::BadMarker));
        let mut short = m.to_vec();
        short[17] = 18; // length < 19
        assert_eq!(decode_message(&short), Err(BgpError::BadLength(18)));
        assert_eq!(decode_message(&m[..10]), Err(BgpError::Truncated));
    }

    #[test]
    fn rejects_nonzero_keepalive_body() {
        let mut bytes = BytesMut::new();
        bytes.put_slice(&[0xFF; 16]);
        bytes.put_u16(20);
        bytes.put_u8(TYPE_KEEPALIVE);
        bytes.put_u8(0);
        assert!(matches!(
            decode_message(&bytes),
            Err(BgpError::BadLength(_))
        ));
    }

    #[test]
    fn rejects_bad_nlri_prefix_len() {
        // Hand-craft an update whose NLRI prefix length is 60.
        let mut body = BytesMut::new();
        body.put_u16(0); // withdrawn len
        body.put_u16(0); // attr len
        body.put_u8(60); // bogus prefix length
        let mut msg = BytesMut::new();
        msg.put_slice(&[0xFF; 16]);
        msg.put_u16(19 + body.len() as u16);
        msg.put_u8(TYPE_UPDATE);
        msg.put_slice(&body);
        assert_eq!(decode_message(&msg), Err(BgpError::BadPrefixLen(60)));
    }

    #[test]
    fn truncation_never_panics() {
        let m = BgpMessage::Update(UpdateMessage::announce(
            vec![pfx("193.0.0.0/21")],
            vec![Asn(64500), Asn(3333)],
            1,
        ));
        let bytes = encode_message(&m);
        for cut in 0..bytes.len() {
            let _ = decode_message(&bytes[..cut]);
        }
    }

    fn arb_prefix() -> impl Strategy<Value = Prefix> {
        (any::<u32>(), 0u8..=32).prop_map(|(n, l)| Prefix::new_unchecked_masked(n, l))
    }

    proptest! {
        #[test]
        fn prop_update_roundtrip(
            withdrawn in proptest::collection::vec(arb_prefix(), 0..8),
            nlri in proptest::collection::vec(arb_prefix(), 0..8),
            path in proptest::collection::vec(any::<u32>(), 0..6),
            next_hop in any::<u32>(),
            med in proptest::option::of(any::<u32>()),
        ) {
            let mut attributes = vec![
                PathAttribute::Origin(OriginType::Igp),
                PathAttribute::AsPath(vec![AsPathSegment::Sequence(
                    path.into_iter().map(Asn).collect(),
                )]),
                PathAttribute::NextHop(next_hop),
            ];
            if let Some(m) = med {
                attributes.push(PathAttribute::Med(m));
            }
            let msg = BgpMessage::Update(UpdateMessage { withdrawn, attributes, nlri });
            let bytes = encode_message(&msg);
            let (decoded, used) = decode_message(&bytes).unwrap();
            prop_assert_eq!(used, bytes.len());
            prop_assert_eq!(decoded, msg);
        }

        #[test]
        fn prop_bitflips_never_panic(flip in 0usize..100, xor in 1u8..=255) {
            let m = BgpMessage::Update(UpdateMessage::announce(
                vec![pfx("193.0.0.0/21"), pfx("10.0.0.0/8")],
                vec![Asn(64500), Asn(3333)],
                7,
            ));
            let mut bytes = encode_message(&m).to_vec();
            if flip < bytes.len() {
                bytes[flip] ^= xor;
            }
            let _ = decode_message(&bytes);
        }
    }
}
