//! Ground-truth lease worlds.
//!
//! A [`LeaseWorld`] knows the *truth* the paper's measurement pipeline
//! can only estimate: which organization owns which block, which
//! sub-blocks are leased to whom and when, which of those leases are
//! ever announced in BGP, and which registry objects exist. The
//! observation layer ([`crate::observe`]) renders the world into daily
//! per-monitor route observations; inference quality can then be
//! scored against the truth.
//!
//! The generator engineers the phenomena §4 and Appendix A rest on:
//!
//! * most leases are **BGP-invisible** (reserved for future customers
//!   or simply not routed by the delegatee) — this is what makes the
//!   paper's "BGP covers only ~1.85 % of RDAP-delegated IPs" finding,
//! * a third of BGP-visible leases are **not registered** in the
//!   database (RDAP covers ~65.7 % of BGP-delegated IPs),
//! * announced leases show **on-off announcement patterns**,
//! * multi-AS organizations create **intra-org delegations** that are
//!   not leases (extension (iv) must filter them),
//! * **MOAS** and **AS_SET** origins pollute the prefix-origin set
//!   (baseline step (iii) must drop them),
//! * **more-specific hijacks** with limited propagation (step (ii)'s
//!   visibility threshold must drop them) and **scrubbing services**
//!   (a documented false-positive source),
//! * the active-delegation count **grows ~7 %** over the window while
//!   delegation sizes shrink (/24 share 66 % → 72 %, /20 7 % → 3 %).

use crate::topology::{Tier, Topology, TopologyConfig};
use nettypes::asn::Asn;
use nettypes::date::{date, Date, DateRange};
use nettypes::prefix::Prefix;
use rand::prelude::*;
use rand_pcg::Pcg64Mcg;
use registry::org::OrgId;
use registry::rir::Rir;
use serde::{Deserialize, Serialize};

/// An address block held by a delegator organization (an LIR
/// allocation in registry terms).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Allocation {
    /// The allocated block (a /16–/19).
    pub prefix: Prefix,
    /// Holding organization.
    pub org: OrgId,
    /// The AS announcing the covering prefix.
    pub asn: Asn,
    /// Maintaining RIR.
    pub rir: Rir,
    /// Bump-allocator offset (in /24 units) for carving lease blocks.
    next_free_slash24: u64,
}

impl Allocation {
    /// Carve the next free sub-block of `len` (>= the allocation's
    /// length) from this allocation, or `None` if exhausted.
    fn carve(&mut self, len: u8) -> Option<Prefix> {
        debug_assert!(len > self.prefix.len() && len <= 24);
        let slash24_per_block = 1u64 << (24 - len as u64);
        // Align the bump pointer to the block size.
        let aligned = self.next_free_slash24.div_ceil(slash24_per_block) * slash24_per_block;
        let total_slash24 = 1u64 << (24 - self.prefix.len() as u64);
        if aligned + slash24_per_block > total_slash24 {
            return None;
        }
        let block = self
            .prefix
            .subprefix(len, aligned / slash24_per_block)
            .expect("aligned block fits");
        self.next_free_slash24 = aligned + slash24_per_block;
        Some(block)
    }
}

/// A leasing agreement between two organizations.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Lease {
    /// Stable id.
    pub id: u32,
    /// The leased sub-block.
    pub prefix: Prefix,
    /// Covering allocation prefix.
    pub parent: Prefix,
    /// The delegator's announcing AS.
    pub delegator_asn: Asn,
    /// Delegator organization.
    pub delegator_org: OrgId,
    /// The delegatee's AS (used only when the lease is announced).
    pub delegatee_asn: Asn,
    /// Delegatee organization.
    pub delegatee_org: OrgId,
    /// Active period.
    pub active: DateRange,
    /// Whether the delegatee ever announces the block in BGP.
    pub announced: bool,
    /// Whether the announcement is aggregated away by the delegatee's
    /// upstream (§4 limitation (ii)): the route exists but is not
    /// globally visible, so the visibility threshold drops it.
    pub aggregated: bool,
    /// On-off announcement cycle `(on_days, off_days)`; `None` means
    /// continuously announced while active.
    pub onoff: Option<(u16, u16)>,
    /// Daily probability of a short routing flap (withdrawn for the
    /// day — session resets, maintenance). Extension (v) repairs these.
    pub flap_rate: f64,
    /// Deterministic key for the flap hash.
    pub flap_key: u64,
    /// Whether the lease is registered in the WHOIS/RDAP database.
    pub registered: bool,
}

impl Lease {
    /// Whether the lease is active on `d`.
    pub fn active_on(&self, d: Date) -> bool {
        self.active.contains(d)
    }

    /// Whether the delegatee announces the block on `d` (active,
    /// announced, in the "on" part of the on-off cycle, and not
    /// flapped away for the day).
    pub fn announced_on(&self, d: Date) -> bool {
        if !self.announced || !self.active_on(d) {
            return false;
        }
        let on_cycle = match self.onoff {
            None => true,
            Some((on, off)) => {
                let cycle = (on + off) as i64;
                let pos = (d - self.active.start).rem_euclid(cycle);
                pos < on as i64
            }
        };
        if !on_cycle {
            return false;
        }
        if self.flap_rate > 0.0 {
            let h = flap_hash(self.flap_key, d);
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            if u < self.flap_rate {
                return false;
            }
        }
        true
    }
}

/// SplitMix64 over (key, day) for deterministic flap draws.
pub(crate) fn flap_hash(key: u64, d: Date) -> u64 {
    let mut x = key ^ (d.days_since_epoch() as u64).wrapping_mul(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A more-specific announced by a sibling AS of the same organization —
/// *not* a lease; extension (iv) must remove it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IntraOrgDelegation {
    /// The announced sub-block.
    pub prefix: Prefix,
    /// Covering allocation prefix.
    pub parent: Prefix,
    /// AS announcing the covering prefix.
    pub parent_asn: Asn,
    /// Sibling AS announcing the sub-block.
    pub child_asn: Asn,
    /// The shared organization.
    pub org: OrgId,
    /// Announcement period.
    pub active: DateRange,
}

/// A more-specific hijack with limited propagation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HijackEvent {
    /// The hijacked (more-specific) prefix.
    pub prefix: Prefix,
    /// Covering allocation prefix.
    pub parent: Prefix,
    /// Victim origin (announces the parent).
    pub victim_asn: Asn,
    /// Hijacker origin.
    pub attacker_asn: Asn,
    /// Days the hijack is announced.
    pub active: DateRange,
    /// Fraction of monitors that see the hijack (local spread).
    pub visibility: f64,
}

/// A transient MOAS (multi-origin AS) conflict on an allocation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MoasEvent {
    /// The affected prefix.
    pub prefix: Prefix,
    /// The additional origin.
    pub second_origin: Asn,
    /// Conflict window.
    pub active: DateRange,
}

/// A prefix originated by an AS_SET during a window.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AsSetEvent {
    /// The affected sub-block.
    pub prefix: Prefix,
    /// The AS_SET members.
    pub set: Vec<Asn>,
    /// Window.
    pub active: DateRange,
}

/// A DDoS-scrubbing engagement: the scrubber announces the customer's
/// more-specific during the attack. Indistinguishable from a lease in
/// BGP — a documented limitation of the inference.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScrubbingEvent {
    /// The customer's sub-block announced by the scrubber.
    pub prefix: Prefix,
    /// Covering allocation prefix.
    pub parent: Prefix,
    /// Customer origin (announces the parent).
    pub customer_asn: Asn,
    /// Scrubbing-service origin.
    pub scrubber_asn: Asn,
    /// Engagement window.
    pub active: DateRange,
}

/// Why a route exists — ground-truth labels attached to every
/// generated route observation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum RouteClass {
    /// A delegator announcing its allocation.
    Allocation,
    /// A delegatee announcing a leased sub-block (the lease id).
    Lease(u32),
    /// A sibling AS announcing an intra-org more-specific.
    IntraOrg,
    /// A hijacker announcing a more-specific.
    Hijack,
    /// A scrubbing service announcing a customer block.
    Scrubbing,
}

/// A single announced route on some day, before monitor visibility is
/// applied.
#[derive(Clone, Debug, PartialEq)]
pub struct AnnouncedRoute {
    /// The announced prefix.
    pub prefix: Prefix,
    /// Origin AS. (AS_SET origins are carried separately in
    /// [`LeaseWorld::as_set_events_on`].)
    pub origin: Asn,
    /// Ground-truth class.
    pub class: RouteClass,
    /// Baseline fraction of monitors that see the route.
    pub visibility: f64,
}

/// Configuration for world generation.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// RNG seed.
    pub seed: u64,
    /// Observation window (paper: 2018-01-01 → 2020-06-01).
    pub span: DateRange,
    /// Topology parameters.
    pub topology: TopologyConfig,
    /// Number of delegator-held allocations.
    pub num_allocations: usize,
    /// Target number of concurrently active leases at window start.
    pub initial_active_leases: usize,
    /// Relative growth of the active-lease count across the window
    /// (the paper observes ~7 % for BGP-visible delegations).
    pub growth: f64,
    /// Fraction of leases whose delegatee announces them in BGP.
    pub bgp_visible_fraction: f64,
    /// Fraction of *announced* leases registered in WHOIS/RDAP
    /// (paper: RDAP covers ~65.7 % of BGP-delegated IPs).
    pub registered_fraction_of_announced: f64,
    /// Fraction of *unannounced* leases registered in WHOIS/RDAP
    /// (they have no other trace, so this is high).
    pub registered_fraction_of_unannounced: f64,
    /// Fraction of announced leases with on-off patterns.
    pub onoff_fraction: f64,
    /// Fraction of announced leases whose announcement is aggregated
    /// by the upstream and thus only locally visible (§4 limitation
    /// (ii) — a structural false negative no extension can recover).
    pub aggregated_fraction: f64,
    /// Daily single-day withdrawal probability for announced leases
    /// (routing flaps).
    pub flap_rate: f64,
    /// Mean lease lifetime in days (geometric hazard).
    pub mean_lease_days: f64,
    /// Number of long-lived intra-org delegations.
    pub num_intra_org: usize,
    /// Number of hijack events across the window.
    pub num_hijacks: usize,
    /// Number of MOAS events.
    pub num_moas: usize,
    /// Number of AS_SET events.
    pub num_as_sets: usize,
    /// Number of scrubbing engagements.
    pub num_scrubbing: usize,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 2020,
            span: DateRange::new(date("2018-01-01"), date("2020-06-01")),
            topology: TopologyConfig::default(),
            num_allocations: 240,
            initial_active_leases: 900,
            growth: 0.07,
            bgp_visible_fraction: 0.055,
            registered_fraction_of_announced: 0.657,
            registered_fraction_of_unannounced: 0.97,
            onoff_fraction: 0.35,
            aggregated_fraction: 0.08,
            flap_rate: 0.03,
            mean_lease_days: 420.0,
            num_intra_org: 40,
            num_hijacks: 25,
            num_moas: 20,
            num_as_sets: 12,
            num_scrubbing: 10,
        }
    }
}

/// Lease-size distribution: interpolates between the early and late
/// BGP-visible delegation mixes reported in Appendix A
/// (/24: 66 % → 72 %, /20: 7 % → 3 %).
fn sample_lease_len(rng: &mut impl Rng, progress: f64) -> u8 {
    let p = progress.clamp(0.0, 1.0);
    let w24 = 0.66 + 0.06 * p;
    let w20 = 0.07 - 0.04 * p;
    let rest = 1.0 - w24 - w20;
    // Split the remainder over /23, /22, /21 (heavier to /23).
    let w23 = rest * 0.45;
    let w22 = rest * 0.35;
    let w21 = rest * 0.20;
    let table = [(24u8, w24), (23, w23), (22, w22), (21, w21), (20, w20)];
    let mut x = rng.gen::<f64>();
    for (len, w) in table {
        if x < w {
            return len;
        }
        x -= w;
    }
    24
}

/// The generated world.
#[derive(Clone, Debug)]
pub struct LeaseWorld {
    /// The AS topology.
    pub topology: Topology,
    /// Delegator-held allocations.
    pub allocations: Vec<Allocation>,
    /// All leases (announced and not, registered and not).
    pub leases: Vec<Lease>,
    /// Intra-organization more-specifics.
    pub intra_org: Vec<IntraOrgDelegation>,
    /// Hijack events.
    pub hijacks: Vec<HijackEvent>,
    /// MOAS events.
    pub moas: Vec<MoasEvent>,
    /// AS_SET events.
    pub as_sets: Vec<AsSetEvent>,
    /// Scrubbing engagements.
    pub scrubbing: Vec<ScrubbingEvent>,
    /// The observation window.
    pub span: DateRange,
}

impl LeaseWorld {
    /// Generate a world from a config.
    pub fn generate(config: &WorldConfig) -> LeaseWorld {
        let _span = obs::span!(
            "world_generate",
            allocations = config.num_allocations,
            seed = config.seed,
        );
        let mut rng = Pcg64Mcg::seed_from_u64(config.seed ^ 0x77D5_3EE0_0000_0002);
        let topology = Topology::generate(&config.topology);

        let stubs: Vec<Asn> = topology.ases_of_tier(Tier::Stub).collect();
        let tier2: Vec<Asn> = topology.ases_of_tier(Tier::Tier2).collect();
        assert!(
            stubs.len() >= 8 && !tier2.is_empty(),
            "topology too small for a lease world"
        );

        // --- Allocations: carve /16s–/19s out of distinct /12 parents so
        // nothing overlaps. Delegators are mostly tier-2s and big stubs.
        let mut allocations = Vec::with_capacity(config.num_allocations);
        let rirs = [Rir::RipeNcc, Rir::RipeNcc, Rir::Arin, Rir::Apnic];
        for i in 0..config.num_allocations {
            // Spread allocations over 60.0.0.0/6 style space: use the
            // i-th /16 inside 64.0.0.0/4 and widen randomly.
            let len = *[16u8, 17, 18, 19].choose(&mut rng).expect("non-empty");
            let slot = Prefix::new_unchecked_masked(0x4000_0000, 4)
                .subprefix(16, i as u64)
                .expect("fits: < 4096 allocations");
            let prefix = Prefix::new_unchecked_masked(slot.network(), len);
            let asn = if rng.gen::<f64>() < 0.6 {
                *tier2.choose(&mut rng).expect("non-empty")
            } else {
                *stubs.choose(&mut rng).expect("non-empty")
            };
            let org = topology.org_of(asn).expect("known AS");
            allocations.push(Allocation {
                prefix,
                org,
                asn,
                rir: *rirs.choose(&mut rng).expect("non-empty"),
                next_free_slash24: 0,
            });
        }

        // --- Leases: day-by-day control loop targeting
        // active(t) = initial * (1 + growth * progress).
        let mut leases: Vec<Lease> = Vec::new();
        let mut active_ids: Vec<usize> = Vec::new();
        let total_days = config.span.num_days() as f64;
        let mut next_id = 0u32;
        // Warm-up: create the initial stock with starts before the window.
        let warmup_start = config.span.start - 400;
        let mut day = warmup_start;
        while day <= config.span.end {
            let in_window = day >= config.span.start;
            let progress = if in_window {
                (day - config.span.start) as f64 / total_days
            } else {
                0.0
            };
            let target = (config.initial_active_leases as f64
                * (1.0 + config.growth * progress)) as usize;

            // Terminations: geometric hazard on each active lease.
            let hazard = 1.0 / config.mean_lease_days;
            active_ids.retain(|&idx| {
                if rng.gen::<f64>() < hazard {
                    // Close the lease today.
                    let l = &mut leases[idx];
                    l.active = DateRange::new(l.active.start, day.max(l.active.start));
                    false
                } else {
                    true
                }
            });

            // Arrivals to reach the target (bounded per day to smooth).
            let deficit = target.saturating_sub(active_ids.len());
            let arrivals = if day < config.span.start {
                // During warm-up converge quickly.
                deficit.min(50)
            } else {
                deficit.min(8)
            };
            for _ in 0..arrivals {
                let len = sample_lease_len(&mut rng, progress);
                // Find an allocation with room (a few tries, then linear).
                let mut carved = None;
                for _ in 0..8 {
                    let ai = rng.gen_range(0..allocations.len());
                    if allocations[ai].prefix.len() >= len {
                        continue;
                    }
                    if let Some(p) = allocations[ai].carve(len) {
                        carved = Some((ai, p));
                        break;
                    }
                }
                if carved.is_none() {
                    for (ai, alloc) in allocations.iter_mut().enumerate() {
                        if alloc.prefix.len() >= len {
                            continue;
                        }
                        if let Some(p) = alloc.carve(len) {
                            carved = Some((ai, p));
                            break;
                        }
                    }
                }
                let Some((ai, prefix)) = carved else {
                    break; // world space exhausted; stop adding leases
                };
                let alloc = &allocations[ai];
                let delegatee_asn = loop {
                    let a = *stubs.choose(&mut rng).expect("non-empty");
                    if a != alloc.asn && topology.org_of(a) != Some(alloc.org) {
                        break a;
                    }
                };
                let announced = rng.gen::<f64>() < config.bgp_visible_fraction;
                let aggregated = announced && rng.gen::<f64>() < config.aggregated_fraction;
                let registered = if announced {
                    rng.gen::<f64>() < config.registered_fraction_of_announced
                } else {
                    rng.gen::<f64>() < config.registered_fraction_of_unannounced
                };
                let onoff = if announced && rng.gen::<f64>() < config.onoff_fraction {
                    let on = rng.gen_range(4..=15u16);
                    let off = rng.gen_range(1..=5u16);
                    Some((on, off))
                } else {
                    None
                };
                let lease = Lease {
                    id: next_id,
                    prefix,
                    parent: alloc.prefix,
                    delegator_asn: alloc.asn,
                    delegator_org: alloc.org,
                    delegatee_asn,
                    delegatee_org: topology.org_of(delegatee_asn).expect("known AS"),
                    active: DateRange::new(day, config.span.end), // end patched on termination
                    announced,
                    aggregated,
                    onoff,
                    flap_rate: if announced { config.flap_rate } else { 0.0 },
                    flap_key: rng.gen(),
                    registered,
                };
                active_ids.push(leases.len());
                leases.push(lease);
                next_id += 1;
            }
            day = day.succ();
        }

        // --- Intra-org delegations: multi-AS orgs that also hold an
        // allocation announce a more-specific from a sibling AS.
        let mut intra_org = Vec::new();
        let multi_orgs: Vec<(OrgId, Vec<Asn>)> = topology
            .multi_as_orgs()
            .map(|(o, a)| (o, a.to_vec()))
            .collect();
        // Each allocation may be re-bound to a multi-AS org at most
        // once — re-binding twice would leave earlier intra-org records
        // pointing at a stale parent AS.
        let mut rebound: Vec<bool> = vec![false; allocations.len()];
        for _ in 0..config.num_intra_org {
            if multi_orgs.is_empty() {
                break;
            }
            // Retarget a not-yet-rebound allocation to a multi-AS org.
            let mut candidate = None;
            for _ in 0..allocations.len() {
                let i = rng.gen_range(0..allocations.len());
                if !rebound[i] {
                    candidate = Some(i);
                    break;
                }
            }
            let Some(ai) = candidate else { break };
            rebound[ai] = true;
            let (org, ases) = multi_orgs.choose(&mut rng).expect("non-empty").clone();
            let parent_asn = ases[0];
            let child_asn = ases[1 % ases.len()];
            if parent_asn == child_asn {
                continue;
            }
            // Rebind the allocation to this org so parent/child share it.
            allocations[ai].asn = parent_asn;
            allocations[ai].org = org;
            let Some(prefix) = allocations[ai].carve(24) else {
                continue;
            };
            intra_org.push(IntraOrgDelegation {
                prefix,
                parent: allocations[ai].prefix,
                parent_asn,
                child_asn,
                org,
                active: config.span,
            });
        }

        // Leases referencing re-bound allocations must keep consistent
        // delegator info, and a lease must never end up inside one
        // organization (it would not be a lease).
        for l in &mut leases {
            if let Some(a) = allocations.iter().find(|a| a.prefix == l.parent) {
                l.delegator_asn = a.asn;
                l.delegator_org = a.org;
                if l.delegatee_org == a.org {
                    let new_delegatee = loop {
                        let cand = *stubs.choose(&mut rng).expect("non-empty");
                        let cand_org = topology.org_of(cand).expect("known AS");
                        if cand != a.asn && cand_org != a.org {
                            break cand;
                        }
                    };
                    l.delegatee_asn = new_delegatee;
                    l.delegatee_org = topology.org_of(new_delegatee).expect("known AS");
                }
            }
        }

        // --- Noise events.
        let mut hijacks = Vec::new();
        for _ in 0..config.num_hijacks {
            let a = &allocations[rng.gen_range(0..allocations.len())];
            let sub = a
                .prefix
                .subprefix(24, (1u64 << (24 - a.prefix.len() as u64)) - 1)
                .expect("last /24 exists");
            let start_off = rng.gen_range(0..config.span.num_days().max(2) - 1);
            let len_days = rng.gen_range(1..=10i64);
            let start = config.span.start + start_off;
            let end = (start + len_days).min(config.span.end);
            let attacker_asn = *stubs.choose(&mut rng).expect("non-empty");
            if attacker_asn == a.asn {
                continue;
            }
            hijacks.push(HijackEvent {
                prefix: sub,
                parent: a.prefix,
                victim_asn: a.asn,
                attacker_asn,
                active: DateRange::new(start, end),
                // Mostly locally spread; a few slip past the threshold.
                visibility: if rng.gen::<f64>() < 0.85 {
                    rng.gen_range(0.05..0.35)
                } else {
                    rng.gen_range(0.6..0.9)
                },
            });
        }

        let mut moas = Vec::new();
        for _ in 0..config.num_moas {
            let a = &allocations[rng.gen_range(0..allocations.len())];
            let second = *stubs.choose(&mut rng).expect("non-empty");
            if second == a.asn {
                continue;
            }
            let start_off = rng.gen_range(0..config.span.num_days().max(2) - 1);
            let start = config.span.start + start_off;
            let end = (start + rng.gen_range(2..=30i64)).min(config.span.end);
            moas.push(MoasEvent {
                prefix: a.prefix,
                second_origin: second,
                active: DateRange::new(start, end),
            });
        }

        let mut as_sets = Vec::new();
        for _ in 0..config.num_as_sets {
            let a = &allocations[rng.gen_range(0..allocations.len())];
            let sub = a.prefix.subprefix(24, 0).expect("first /24");
            let m1 = *stubs.choose(&mut rng).expect("non-empty");
            let m2 = *stubs.choose(&mut rng).expect("non-empty");
            let start_off = rng.gen_range(0..config.span.num_days().max(2) - 1);
            let start = config.span.start + start_off;
            let end = (start + rng.gen_range(5..=60i64)).min(config.span.end);
            as_sets.push(AsSetEvent {
                prefix: sub,
                set: vec![m1, m2],
                active: DateRange::new(start, end),
            });
        }

        let mut scrubbing = Vec::new();
        for _ in 0..config.num_scrubbing {
            let a = &allocations[rng.gen_range(0..allocations.len())];
            let sub = a
                .prefix
                .subprefix(24, (1u64 << (24 - a.prefix.len() as u64)) / 2)
                .expect("middle /24");
            let scrubber_asn = *tier2.choose(&mut rng).expect("non-empty");
            if scrubber_asn == a.asn {
                continue;
            }
            let start_off = rng.gen_range(0..config.span.num_days().max(2) - 1);
            let start = config.span.start + start_off;
            let end = (start + rng.gen_range(10..=40i64)).min(config.span.end);
            scrubbing.push(ScrubbingEvent {
                prefix: sub,
                parent: a.prefix,
                customer_asn: a.asn,
                scrubber_asn,
                active: DateRange::new(start, end),
            });
        }

        LeaseWorld {
            topology,
            allocations,
            leases,
            intra_org,
            hijacks,
            moas,
            as_sets,
            scrubbing,
            span: config.span,
        }
    }

    /// All routes announced on `d` (before monitor visibility).
    pub fn announced_routes_on(&self, d: Date) -> Vec<AnnouncedRoute> {
        let mut out = Vec::new();
        for a in &self.allocations {
            out.push(AnnouncedRoute {
                prefix: a.prefix,
                origin: a.asn,
                class: RouteClass::Allocation,
                visibility: 0.992,
            });
        }
        for l in &self.leases {
            if l.announced_on(d) {
                out.push(AnnouncedRoute {
                    prefix: l.prefix,
                    origin: l.delegatee_asn,
                    class: RouteClass::Lease(l.id),
                    // Aggregated announcements stay inside the
                    // upstream's customer cone — a handful of monitors
                    // at most, below even the 10 % threshold.
                    visibility: if l.aggregated { 0.06 } else { 0.99 },
                });
            }
        }
        for i in &self.intra_org {
            if i.active.contains(d) {
                out.push(AnnouncedRoute {
                    prefix: i.prefix,
                    origin: i.child_asn,
                    class: RouteClass::IntraOrg,
                    visibility: 0.99,
                });
            }
        }
        for h in &self.hijacks {
            if h.active.contains(d) {
                out.push(AnnouncedRoute {
                    prefix: h.prefix,
                    origin: h.attacker_asn,
                    class: RouteClass::Hijack,
                    visibility: h.visibility,
                });
            }
        }
        for s in &self.scrubbing {
            if s.active.contains(d) {
                out.push(AnnouncedRoute {
                    prefix: s.prefix,
                    origin: s.scrubber_asn,
                    class: RouteClass::Scrubbing,
                    visibility: 0.99,
                });
            }
        }
        out
    }

    /// MOAS second origins active on `d` — rendered as additional
    /// routes for the same prefix by the observation layer.
    pub fn moas_events_on(&self, d: Date) -> impl Iterator<Item = &MoasEvent> {
        self.moas.iter().filter(move |m| m.active.contains(d))
    }

    /// AS_SET-originated routes active on `d`.
    pub fn as_set_events_on(&self, d: Date) -> impl Iterator<Item = &AsSetEvent> {
        self.as_sets.iter().filter(move |e| e.active.contains(d))
    }

    /// Ground truth: the set of true (leased AND globally-visible)
    /// delegations `(P', S, T)` active on day `d`, regardless of the
    /// on-off state. This is the target the inference is scored on.
    /// Aggregated announcements (§4 limitation (ii)) are excluded —
    /// no BGP-based method can see them; count them separately via
    /// [`LeaseWorld::aggregated_leases_on`].
    pub fn true_bgp_delegations_on(&self, d: Date) -> Vec<(Prefix, Asn, Asn)> {
        self.leases
            .iter()
            .filter(|l| l.announced && !l.aggregated && l.active_on(d))
            .map(|l| (l.prefix, l.delegator_asn, l.delegatee_asn))
            .collect()
    }

    /// Leases announced but aggregated away (§4 limitation (ii)) —
    /// structurally invisible to the global vantage points.
    pub fn aggregated_leases_on(&self, d: Date) -> Vec<&Lease> {
        self.leases
            .iter()
            .filter(|l| l.announced && l.aggregated && l.active_on(d))
            .collect()
    }

    /// Ground truth: all leases active on `d` (announced or not) — the
    /// full leasing-market size the paper argues neither data source
    /// captures alone.
    pub fn true_leases_on(&self, d: Date) -> Vec<&Lease> {
        self.leases.iter().filter(|l| l.active_on(d)).collect()
    }

    /// Leases registered in WHOIS/RDAP and active on `d` — the registry
    /// view generated by the `rdap` crate.
    pub fn registered_leases_on(&self, d: Date) -> Vec<&Lease> {
        self.leases
            .iter()
            .filter(|l| l.registered && l.active_on(d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> WorldConfig {
        WorldConfig {
            seed: 5,
            span: DateRange::new(date("2018-01-01"), date("2018-06-30")),
            topology: TopologyConfig {
                seed: 5,
                num_tier1: 4,
                num_tier2: 15,
                num_stubs: 120,
                multi_as_org_fraction: 0.2,
            },
            num_allocations: 60,
            initial_active_leases: 150,
            growth: 0.07,
            num_hijacks: 6,
            num_moas: 5,
            num_as_sets: 3,
            num_scrubbing: 3,
            ..Default::default()
        }
    }

    #[test]
    fn allocations_do_not_overlap() {
        let w = LeaseWorld::generate(&tiny_config());
        for (i, a) in w.allocations.iter().enumerate() {
            for b in &w.allocations[i + 1..] {
                assert!(!a.prefix.overlaps(&b.prefix), "{} vs {}", a.prefix, b.prefix);
            }
        }
    }

    #[test]
    fn leases_nest_in_their_parents_and_do_not_overlap() {
        let w = LeaseWorld::generate(&tiny_config());
        assert!(!w.leases.is_empty());
        for l in &w.leases {
            assert!(l.parent.covers_strictly(&l.prefix), "{} !⊂ {}", l.prefix, l.parent);
            assert_ne!(l.delegator_org, l.delegatee_org, "lease within one org");
        }
        for (i, a) in w.leases.iter().enumerate() {
            for b in &w.leases[i + 1..] {
                assert!(!a.prefix.overlaps(&b.prefix), "{} vs {}", a.prefix, b.prefix);
            }
        }
    }

    #[test]
    fn active_lease_count_grows_roughly_as_configured() {
        let cfg = WorldConfig {
            span: DateRange::new(date("2018-01-01"), date("2019-12-31")),
            ..tiny_config()
        };
        let w = LeaseWorld::generate(&cfg);
        let start_count = w.true_leases_on(cfg.span.start).len() as f64;
        let end_count = w.true_leases_on(cfg.span.end).len() as f64;
        let growth = end_count / start_count - 1.0;
        assert!(
            (0.0..=0.15).contains(&growth),
            "expected ~7 % growth, got {:.1} % ({start_count} → {end_count})",
            growth * 100.0
        );
    }

    #[test]
    fn visibility_fractions_in_band() {
        let w = LeaseWorld::generate(&WorldConfig {
            initial_active_leases: 800,
            ..tiny_config()
        });
        let total = w.leases.len() as f64;
        let announced = w.leases.iter().filter(|l| l.announced).count() as f64;
        assert!(
            (announced / total) < 0.12,
            "announced fraction too high: {}",
            announced / total
        );
        let registered_of_announced = w
            .leases
            .iter()
            .filter(|l| l.announced && l.registered)
            .count() as f64
            / announced.max(1.0);
        assert!(
            (0.45..=0.85).contains(&registered_of_announced),
            "got {registered_of_announced}"
        );
    }

    #[test]
    fn onoff_pattern_cycles() {
        let l = Lease {
            id: 0,
            prefix: "10.0.0.0/24".parse().unwrap(),
            parent: "10.0.0.0/16".parse().unwrap(),
            delegator_asn: Asn(1),
            delegator_org: OrgId(1),
            delegatee_asn: Asn(2),
            delegatee_org: OrgId(2),
            active: DateRange::new(date("2018-01-01"), date("2018-03-01")),
            announced: true,
            aggregated: false,
            onoff: Some((5, 2)),
            flap_rate: 0.0,
            flap_key: 0,
            registered: true,
        };
        // Days 0..5 on, 5..7 off, repeating.
        assert!(l.announced_on(date("2018-01-01")));
        assert!(l.announced_on(date("2018-01-05")));
        assert!(!l.announced_on(date("2018-01-06")));
        assert!(!l.announced_on(date("2018-01-07")));
        assert!(l.announced_on(date("2018-01-08")));
        // Outside the active window: never.
        assert!(!l.announced_on(date("2018-03-02")));
    }

    #[test]
    fn intra_org_delegations_share_org() {
        let w = LeaseWorld::generate(&tiny_config());
        assert!(!w.intra_org.is_empty());
        for i in &w.intra_org {
            assert_eq!(w.topology.org_of(i.parent_asn), Some(i.org));
            assert_eq!(w.topology.org_of(i.child_asn), Some(i.org));
            assert_ne!(i.parent_asn, i.child_asn);
            assert!(i.parent.covers_strictly(&i.prefix));
        }
    }

    #[test]
    fn daily_routes_contain_expected_classes() {
        let w = LeaseWorld::generate(&tiny_config());
        let d = date("2018-03-15");
        let routes = w.announced_routes_on(d);
        let has = |c: fn(&RouteClass) -> bool| routes.iter().any(|r| c(&r.class));
        assert!(has(|c| matches!(c, RouteClass::Allocation)));
        assert!(has(|c| matches!(c, RouteClass::Lease(_))));
        assert!(has(|c| matches!(c, RouteClass::IntraOrg)));
        // Every allocation announced daily.
        let alloc_routes = routes
            .iter()
            .filter(|r| r.class == RouteClass::Allocation)
            .count();
        assert_eq!(alloc_routes, w.allocations.len());
    }

    #[test]
    fn hijacks_are_more_specifics_of_victims() {
        let w = LeaseWorld::generate(&tiny_config());
        for h in &w.hijacks {
            assert!(h.parent.covers_strictly(&h.prefix));
            assert_ne!(h.victim_asn, h.attacker_asn);
            assert!(h.visibility > 0.0 && h.visibility < 1.0);
        }
    }

    #[test]
    fn deterministic_generation() {
        let cfg = tiny_config();
        let a = LeaseWorld::generate(&cfg);
        let b = LeaseWorld::generate(&cfg);
        assert_eq!(a.leases.len(), b.leases.len());
        for (x, y) in a.leases.iter().zip(&b.leases) {
            assert_eq!(x.prefix, y.prefix);
            assert_eq!(x.active, y.active);
            assert_eq!(x.announced, y.announced);
        }
    }
}
