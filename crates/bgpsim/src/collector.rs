//! An in-process collector archive.
//!
//! Models the archives of RIPE RIS / Route Views / Isolario the paper
//! downloads from: per-day RIB snapshots ("the RIB snapshot at 0:00
//! UTC+0 and all update files for that day"), with occasional missing
//! or corrupted files. The paper's stated fallback — *"If an update
//! file is missing, we additionally download the first available rib
//! snapshot afterward"* — is implemented by [`CollectorArchive::fetch_day`],
//! which falls forward to the next stored day when a day's data is
//! absent or undecodable.

use crate::mrt::{decode_day, encode_day, MrtError};
use crate::observe::ObservationDay;
use bytes::Bytes;
use nettypes::date::Date;
use std::collections::BTreeMap;

/// The result of fetching one day from the archive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DayData {
    /// The day's own snapshot was present and decodable.
    Exact(ObservationDay),
    /// The day's data was missing/corrupted; this is the first
    /// available later snapshot (the paper's fallback), together with
    /// the day it came from.
    FallbackFrom(Date, ObservationDay),
    /// Nothing available on or after the requested day.
    Unavailable,
}

impl DayData {
    /// The observation data, if any — callers that accept the fallback
    /// semantics can flatten with this.
    pub fn into_observation(self) -> Option<ObservationDay> {
        match self {
            DayData::Exact(d) => Some(d),
            DayData::FallbackFrom(_, d) => Some(d),
            DayData::Unavailable => None,
        }
    }
}

/// A byte-level archive of encoded observation days.
#[derive(Clone, Debug, Default)]
pub struct CollectorArchive {
    files: BTreeMap<Date, Bytes>,
}

impl CollectorArchive {
    /// Empty archive.
    pub fn new() -> Self {
        CollectorArchive::default()
    }

    /// Store a day (encodes to the MRT-like wire format).
    ///
    /// Panics if the day exceeds the wire format's field limits; the
    /// simulation never produces origin sets or AS paths anywhere near
    /// the u16 bounds, so a failure here indicates corrupted input.
    pub fn store(&mut self, day: &ObservationDay) {
        self.files.insert(
            day.date,
            encode_day(day).expect("simulated day exceeds MRT-like format field limits"),
        );
    }

    /// Store raw bytes for a date — used to inject corrupted files in
    /// tests and fault-injection runs.
    pub fn store_raw(&mut self, date: Date, bytes: Bytes) {
        self.files.insert(date, bytes);
    }

    /// Delete a day's file (simulates an archive gap).
    pub fn drop_day(&mut self, date: Date) -> bool {
        self.files.remove(&date).is_some()
    }

    /// Number of stored files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Raw bytes for a date, if present.
    pub fn raw(&self, date: Date) -> Option<&Bytes> {
        self.files.get(&date)
    }

    /// Decode exactly the requested day (no fallback).
    pub fn fetch_exact(&self, date: Date) -> Result<Option<ObservationDay>, MrtError> {
        match self.files.get(&date) {
            None => Ok(None),
            Some(bytes) => decode_day(bytes).map(Some),
        }
    }

    /// Fetch a day with the paper's forward-fallback behaviour: if the
    /// day is missing or fails to decode, scan forward to the first
    /// later day that decodes.
    pub fn fetch_day(&self, date: Date) -> DayData {
        if let Some(bytes) = self.files.get(&date) {
            if let Ok(day) = decode_day(bytes) {
                return DayData::Exact(day);
            }
        }
        for (&d, bytes) in self.files.range(date.succ()..) {
            if let Ok(day) = decode_day(bytes) {
                return DayData::FallbackFrom(d, day);
            }
        }
        DayData::Unavailable
    }

    /// Dates with stored files, in order.
    pub fn dates(&self) -> impl Iterator<Item = Date> + '_ {
        self.files.keys().copied()
    }

    /// Total archive size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.files.values().map(|b| b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::RouteObservation;
    use nettypes::asn::{Asn, Origin};

    fn day(days: i64, n_routes: usize) -> ObservationDay {
        ObservationDay {
            date: Date::from_days(days),
            num_monitors: 10,
            routes: (0..n_routes)
                .map(|i| RouteObservation {
                    prefix: nettypes::prefix::Prefix::new_unchecked_masked(
                        0x4000_0000 + ((i as u32) << 8),
                        24,
                    ),
                    origin: Origin::Single(Asn(1000 + i as u32)),
                    monitors_seen: 9,
                    path: vec![].into(),
                    class: None,
                })
                .collect(),
        }
    }

    #[test]
    fn store_and_fetch_exact() {
        let mut a = CollectorArchive::new();
        let d = day(100, 3);
        a.store(&d);
        assert_eq!(a.len(), 1);
        assert_eq!(a.fetch_exact(Date::from_days(100)).unwrap(), Some(d.clone()));
        assert_eq!(a.fetch_day(Date::from_days(100)), DayData::Exact(d));
        assert_eq!(a.fetch_exact(Date::from_days(101)).unwrap(), None);
    }

    #[test]
    fn missing_day_falls_forward() {
        let mut a = CollectorArchive::new();
        a.store(&day(100, 1));
        a.store(&day(103, 2));
        match a.fetch_day(Date::from_days(101)) {
            DayData::FallbackFrom(d, obs) => {
                assert_eq!(d, Date::from_days(103));
                assert_eq!(obs.routes.len(), 2);
            }
            other => panic!("expected fallback, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_day_falls_forward() {
        let mut a = CollectorArchive::new();
        a.store(&day(100, 1));
        a.store(&day(101, 2));
        // Corrupt day 100 in place.
        let mut bytes = a.raw(Date::from_days(100)).unwrap().to_vec();
        bytes.truncate(bytes.len() / 2);
        a.store_raw(Date::from_days(100), Bytes::from(bytes));
        match a.fetch_day(Date::from_days(100)) {
            DayData::FallbackFrom(d, _) => assert_eq!(d, Date::from_days(101)),
            other => panic!("expected fallback, got {other:?}"),
        }
        assert!(a.fetch_exact(Date::from_days(100)).is_err());
    }

    #[test]
    fn no_future_data_is_unavailable() {
        let mut a = CollectorArchive::new();
        a.store(&day(100, 1));
        assert_eq!(a.fetch_day(Date::from_days(101)), DayData::Unavailable);
        assert!(a
            .fetch_day(Date::from_days(101))
            .into_observation()
            .is_none());
    }

    #[test]
    fn drop_day_creates_gap() {
        let mut a = CollectorArchive::new();
        a.store(&day(100, 1));
        a.store(&day(101, 1));
        assert!(a.drop_day(Date::from_days(100)));
        assert!(!a.drop_day(Date::from_days(100)));
        assert_eq!(a.len(), 1);
        assert!(matches!(
            a.fetch_day(Date::from_days(100)),
            DayData::FallbackFrom(_, _)
        ));
    }

    #[test]
    fn size_accounting() {
        let mut a = CollectorArchive::new();
        assert!(a.is_empty());
        a.store(&day(1, 10));
        assert!(a.total_bytes() > 0);
        assert!(!a.is_empty());
    }
}
