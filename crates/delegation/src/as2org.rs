//! AS-to-Organization mapping snapshots.
//!
//! CAIDA publishes quarterly AS-to-Organization data sets; the paper
//! uses the 2018-01-01 → 2020-05-01 snapshots and removes intra-org
//! delegations "within the next available snapshot" — i.e. a day's
//! delegations are checked against the first snapshot at or after
//! that day (falling back to the last snapshot for trailing days).

use bgpsim::topology::Topology;
use nettypes::asn::Asn;
use nettypes::date::Date;
use registry::org::OrgId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// A dated series of `asn → org` snapshots.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct As2OrgSeries {
    snapshots: BTreeMap<Date, HashMap<Asn, OrgId>>,
}

impl As2OrgSeries {
    /// Empty series.
    pub fn new() -> Self {
        As2OrgSeries::default()
    }

    /// Add a snapshot.
    pub fn insert_snapshot(&mut self, date: Date, mapping: HashMap<Asn, OrgId>) {
        self.snapshots.insert(date, mapping);
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Snapshot dates in order.
    pub fn dates(&self) -> impl Iterator<Item = Date> + '_ {
        self.snapshots.keys().copied()
    }

    /// The paper's lookup rule: the *next available* snapshot at or
    /// after `day`, falling back to the latest snapshot when none
    /// follows.
    pub fn snapshot_for(&self, day: Date) -> Option<&HashMap<Asn, OrgId>> {
        self.snapshots
            .range(day..)
            .next()
            .map(|(_, m)| m)
            .or_else(|| self.snapshots.values().next_back())
    }

    /// Whether `a` and `b` belong to the same organization per the
    /// snapshot applicable to `day`. Unknown ASes never match.
    pub fn same_org(&self, day: Date, a: Asn, b: Asn) -> bool {
        let Some(snap) = self.snapshot_for(day) else {
            return false;
        };
        match (snap.get(&a), snap.get(&b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Build a quarterly series from the simulator's topology (which
    /// knows the true AS ownership). `span` bounds and `every_days`
    /// spaces the snapshots (CAIDA: ~90 days).
    pub fn from_topology(
        topology: &Topology,
        start: Date,
        end: Date,
        every_days: i64,
    ) -> As2OrgSeries {
        let _span = obs::span!("as2org_build", every_days = every_days);
        let mut series = As2OrgSeries::new();
        let mapping: HashMap<Asn, OrgId> = topology
            .nodes()
            .iter()
            .map(|n| (n.asn, n.org))
            .collect();
        let mut d = start;
        while d <= end {
            series.insert_snapshot(d, mapping.clone());
            d += every_days;
        }
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettypes::date::date;

    fn mk(pairs: &[(u32, u32)]) -> HashMap<Asn, OrgId> {
        pairs.iter().map(|&(a, o)| (Asn(a), OrgId(o))).collect()
    }

    #[test]
    fn next_available_snapshot_rule() {
        let mut s = As2OrgSeries::new();
        s.insert_snapshot(date("2018-01-01"), mk(&[(1, 10), (2, 10)]));
        s.insert_snapshot(date("2018-04-01"), mk(&[(1, 10), (2, 20)]));
        // A day before the second snapshot uses the second snapshot
        // ("next available").
        assert!(!s.same_org(date("2018-02-15"), Asn(1), Asn(2)));
        // A day on/before the first snapshot uses the first.
        assert!(s.same_org(date("2018-01-01"), Asn(1), Asn(2)));
        assert!(s.same_org(date("2017-12-01"), Asn(1), Asn(2)));
        // Days after the last snapshot fall back to the last.
        assert!(!s.same_org(date("2019-01-01"), Asn(1), Asn(2)));
    }

    #[test]
    fn unknown_ases_never_match() {
        let mut s = As2OrgSeries::new();
        s.insert_snapshot(date("2018-01-01"), mk(&[(1, 10)]));
        assert!(!s.same_org(date("2018-01-01"), Asn(1), Asn(99)));
        assert!(!s.same_org(date("2018-01-01"), Asn(98), Asn(99)));
        let empty = As2OrgSeries::new();
        assert!(!empty.same_org(date("2018-01-01"), Asn(1), Asn(1)));
    }

    #[test]
    fn from_topology_mirrors_ownership() {
        use bgpsim::topology::TopologyConfig;
        let topo = Topology::generate(&TopologyConfig {
            seed: 8,
            num_tier1: 3,
            num_tier2: 10,
            num_stubs: 60,
            multi_as_org_fraction: 0.3,
        });
        let s = As2OrgSeries::from_topology(&topo, date("2018-01-01"), date("2018-12-31"), 90);
        assert_eq!(s.len(), 5); // Jan, Apr, Jul, Oct, (Dec 27)
        let (org, ases) = topo.multi_as_orgs().next().expect("multi-AS org exists");
        let _ = org;
        assert!(s.same_org(date("2018-06-01"), ases[0], ases[1]));
        // Two single-AS orgs don't match.
        let singles: Vec<Asn> = topo
            .nodes()
            .iter()
            .filter(|n| topo.ases_of_org(n.org).len() == 1)
            .map(|n| n.asn)
            .take(2)
            .collect();
        if singles.len() == 2 {
            assert!(!s.same_org(date("2018-06-01"), singles[0], singles[1]));
        }
    }
}
