//! Figure 6 metrics: daily delegation counts, delegated address
//! volume, size distributions, and baseline-vs-extended comparisons.

use crate::base::Delegation;
use crate::pipeline::DailyDelegations;
use nettypes::date::Date;
use nettypes::set::PrefixSet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One day's worth of Figure 6 numbers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DailyMetrics {
    /// The day.
    pub date: Date,
    /// Number of delegations.
    pub delegations: usize,
    /// Unique delegated addresses.
    pub delegated_addresses: u64,
    /// Fraction of delegations that are /24s.
    pub slash24_share: f64,
    /// Fraction of delegations that are /20s.
    pub slash20_share: f64,
}

/// Compute the per-day series.
pub fn daily_metrics(result: &DailyDelegations) -> Vec<DailyMetrics> {
    result
        .days
        .iter()
        .enumerate()
        .map(|(i, delegs)| {
            let date = result.start + i as i64;
            let set: PrefixSet = delegs.iter().map(|d| d.prefix).collect();
            let n = delegs.len();
            let share = |len: u8| {
                if n == 0 {
                    0.0
                } else {
                    delegs.iter().filter(|d| d.prefix.len() == len).count() as f64 / n as f64
                }
            };
            DailyMetrics {
                date,
                delegations: n,
                delegated_addresses: set.num_addresses(),
                slash24_share: share(24),
                slash20_share: share(20),
            }
        })
        .collect()
}

/// Summary statistics over a metric series.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SeriesSummary {
    /// Mean daily delegation count.
    pub mean_delegations: f64,
    /// Standard deviation of the daily delegation count.
    pub count_std: f64,
    /// Standard deviation of the day-over-day count differences — the
    /// high-frequency "jumpiness" Figure 6 shows the extensions
    /// eliminating (insensitive to the slow market-growth trend).
    pub count_diff_std: f64,
    /// Coefficient of variation of the daily count (σ/μ).
    pub count_cv: f64,
    /// Relative growth of the delegation count, first→last 30-day
    /// means.
    pub growth: f64,
    /// Mean delegated addresses.
    pub mean_addresses: f64,
    /// Relative growth of delegated addresses.
    pub address_growth: f64,
    /// /24 share at the start / end (30-day means).
    pub slash24_share_start: f64,
    /// /24 share at the end.
    pub slash24_share_end: f64,
    /// /20 share at the start.
    pub slash20_share_start: f64,
    /// /20 share at the end.
    pub slash20_share_end: f64,
}

fn mean(v: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = v.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Summarize a metric series (window = first/last `edge_days`).
pub fn summarize(metrics: &[DailyMetrics], edge_days: usize) -> SeriesSummary {
    assert!(!metrics.is_empty(), "empty metric series");
    let e = edge_days.min(metrics.len() / 2).max(1);
    let head = &metrics[..e];
    let tail = &metrics[metrics.len() - e..];

    let counts: Vec<f64> = metrics.iter().map(|m| m.delegations as f64).collect();
    let m = mean(counts.iter().copied());
    let var = counts.iter().map(|c| (c - m).powi(2)).sum::<f64>() / counts.len() as f64;
    let std = var.sqrt();
    let cv = if m > 0.0 { std / m } else { 0.0 };
    let diffs: Vec<f64> = counts.windows(2).map(|w| w[1] - w[0]).collect();
    let diff_std = if diffs.is_empty() {
        0.0
    } else {
        let dm = diffs.iter().sum::<f64>() / diffs.len() as f64;
        (diffs.iter().map(|d| (d - dm).powi(2)).sum::<f64>() / diffs.len() as f64).sqrt()
    };

    let head_count = mean(head.iter().map(|x| x.delegations as f64));
    let tail_count = mean(tail.iter().map(|x| x.delegations as f64));
    let head_addr = mean(head.iter().map(|x| x.delegated_addresses as f64));
    let tail_addr = mean(tail.iter().map(|x| x.delegated_addresses as f64));

    SeriesSummary {
        mean_delegations: m,
        count_std: std,
        count_diff_std: diff_std,
        count_cv: cv,
        growth: if head_count > 0.0 {
            tail_count / head_count - 1.0
        } else {
            0.0
        },
        mean_addresses: mean(metrics.iter().map(|x| x.delegated_addresses as f64)),
        address_growth: if head_addr > 0.0 {
            tail_addr / head_addr - 1.0
        } else {
            0.0
        },
        slash24_share_start: mean(head.iter().map(|x| x.slash24_share)),
        slash24_share_end: mean(tail.iter().map(|x| x.slash24_share)),
        slash20_share_start: mean(head.iter().map(|x| x.slash20_share)),
        slash20_share_end: mean(tail.iter().map(|x| x.slash20_share)),
    }
}

/// Distribution of delegation prefix lengths over a whole result
/// (pooled across days, counting each delegation key once per day as
/// the paper's daily series does).
pub fn length_distribution(result: &DailyDelegations) -> BTreeMap<u8, u64> {
    let mut out: BTreeMap<u8, u64> = BTreeMap::new();
    for day in &result.days {
        for d in day {
            *out.entry(d.prefix.len()).or_default() += 1;
        }
    }
    out
}

/// The set of unique addresses ever delegated in a result — the "BGP
/// delegated IPs" side of the §4 coverage comparison.
pub fn all_delegated_addresses(result: &DailyDelegations) -> PrefixSet {
    result
        .days
        .iter()
        .flatten()
        .map(|d: &Delegation| d.prefix)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettypes::asn::Asn;
    use nettypes::date::date;
    use nettypes::prefix::pfx;

    fn deleg(p: &str) -> Delegation {
        Delegation {
            prefix: pfx(p),
            parent: pfx("64.0.0.0/12"),
            delegator: Asn(1),
            delegatee: Asn(2),
        }
    }

    fn result(days: Vec<Vec<Delegation>>) -> DailyDelegations {
        DailyDelegations {
            start: date("2018-01-01"),
            days,
            fallback_days: vec![],
            missing_days: vec![],
            intra_org_removed: 0,
        }
    }

    #[test]
    fn per_day_numbers() {
        let r = result(vec![
            vec![deleg("64.0.1.0/24"), deleg("64.0.16.0/20")],
            vec![deleg("64.0.1.0/24")],
            vec![],
        ]);
        let m = daily_metrics(&r);
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].delegations, 2);
        assert_eq!(m[0].delegated_addresses, 256 + 4096);
        assert!((m[0].slash24_share - 0.5).abs() < 1e-12);
        assert!((m[0].slash20_share - 0.5).abs() < 1e-12);
        assert_eq!(m[1].delegations, 1);
        assert_eq!(m[2].delegations, 0);
        assert_eq!(m[2].slash24_share, 0.0);
        assert_eq!(m[2].date, date("2018-01-03"));
    }

    #[test]
    fn overlapping_delegations_counted_once_in_addresses() {
        let r = result(vec![vec![deleg("64.0.1.0/24"), deleg("64.0.0.0/20")]]);
        let m = daily_metrics(&r);
        // /24 inside /20: only 4096 unique addresses.
        assert_eq!(m[0].delegated_addresses, 4096);
    }

    #[test]
    fn summary_growth_and_cv() {
        // 10 days at 100, 10 days at 107: ~7 % growth.
        let mut days = Vec::new();
        for i in 0..20 {
            let n = if i < 10 { 100 } else { 107 };
            days.push((0..n).map(|j| deleg(&format!("64.{}.{}.0/24", j / 256, j % 256))).collect());
        }
        let r = result(days);
        let s = summarize(&daily_metrics(&r), 10);
        assert!((s.growth - 0.07).abs() < 0.001, "growth {}", s.growth);
        assert!(s.count_cv > 0.0 && s.count_cv < 0.1);
    }

    #[test]
    fn length_distribution_counts() {
        let r = result(vec![
            vec![deleg("64.0.1.0/24"), deleg("64.0.16.0/20")],
            vec![deleg("64.0.1.0/24")],
        ]);
        let dist = length_distribution(&r);
        assert_eq!(dist[&24], 2);
        assert_eq!(dist[&20], 1);
    }

    #[test]
    fn all_addresses_union() {
        let r = result(vec![
            vec![deleg("64.0.1.0/24")],
            vec![deleg("64.0.2.0/24")],
            vec![deleg("64.0.1.0/24")],
        ]);
        assert_eq!(all_delegated_addresses(&r).num_addresses(), 512);
    }

    #[test]
    #[should_panic(expected = "empty metric series")]
    fn summary_requires_data() {
        let _ = summarize(&[], 10);
    }
}
