//! The paper's extensions (iv) and (v).

use crate::as2org::As2OrgSeries;
use crate::base::Delegation;
use nettypes::asn::Asn;
use nettypes::date::Date;
use nettypes::prefix::Prefix;
use std::collections::{BTreeMap, BTreeSet};

/// Extension (iv): remove delegations between ASes of the same
/// organization, using the AS-to-Org snapshot applicable to `day`
/// ("the next available snapshot"). Returns the surviving delegations
/// and the number removed.
pub fn filter_intra_org(
    delegations: Vec<Delegation>,
    as2org: &As2OrgSeries,
    day: Date,
) -> (Vec<Delegation>, usize) {
    let before = delegations.len();
    let kept: Vec<Delegation> = delegations
        .into_iter()
        .filter(|d| !as2org.same_org(day, d.delegator, d.delegatee))
        .collect();
    let removed = before - kept.len();
    (kept, removed)
}

/// Extension (v): temporal consistency fill.
///
/// For each delegation key `(P', S, T)` observed on days X and Y with
/// `Y − X ≤ max_gap_days`, and no *conflicting* delegation (same P'
/// delegated to some T' ≠ T) observed strictly between X and Y,
/// materialize the delegation on every day in `(X, Y)`.
///
/// Input and output are day-indexed delegation sets (`days[i]`
/// corresponds to `start + i`).
pub fn consistency_fill(
    days: &[Vec<Delegation>],
    max_gap_days: usize,
) -> Vec<Vec<Delegation>> {
    let n = days.len();
    // Key → sorted day indices where the key is observed.
    let mut observed: BTreeMap<(Prefix, Asn, Asn), Vec<usize>> = BTreeMap::new();
    // Full Delegation by key (parent may differ slightly between days;
    // keep the first).
    let mut canonical: BTreeMap<(Prefix, Asn, Asn), Delegation> = BTreeMap::new();
    // Prefix → per-day delegatee sets for conflict checks.
    let mut by_prefix: BTreeMap<Prefix, Vec<Vec<Asn>>> = BTreeMap::new();

    for (di, day) in days.iter().enumerate() {
        for d in day {
            let key = d.key();
            observed.entry(key).or_default().push(di);
            canonical.entry(key).or_insert(*d);
            let slots = by_prefix
                .entry(d.prefix)
                .or_insert_with(|| vec![Vec::new(); n]);
            if !slots[di].contains(&d.delegatee) {
                slots[di].push(d.delegatee);
            }
        }
    }

    // Collect fills.
    let mut fills: Vec<(usize, Delegation)> = Vec::new();
    for (key, day_idxs) in &observed {
        let (prefix, _s, t) = *key;
        let slots = &by_prefix[&prefix];
        let delegation = canonical[key];
        for w in day_idxs.windows(2) {
            let (x, y) = (w[0], w[1]);
            if y - x <= 1 || y - x > max_gap_days {
                continue;
            }
            // Conflict check in (x, y) exclusive.
            let conflict = (x + 1..y).any(|di| slots[di].iter().any(|&tt| tt != t));
            if conflict {
                continue;
            }
            for di in x + 1..y {
                fills.push((di, delegation));
            }
        }
    }

    // Apply fills (dedup against existing entries).
    let mut out: Vec<Vec<Delegation>> = days.to_vec();
    let mut present: Vec<BTreeSet<(Prefix, Asn, Asn)>> = days
        .iter()
        .map(|d| d.iter().map(Delegation::key).collect())
        .collect();
    for (di, d) in fills {
        if present[di].insert(d.key()) {
            out[di].push(d);
        }
    }
    for day in &mut out {
        day.sort();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettypes::date::date;
    use nettypes::prefix::pfx;
    use registry::org::OrgId;

    fn deleg(p: &str, s: u32, t: u32) -> Delegation {
        Delegation {
            prefix: pfx(p),
            parent: pfx("64.0.0.0/16"),
            delegator: Asn(s),
            delegatee: Asn(t),
        }
    }

    #[test]
    fn intra_org_filtering() {
        let mut s = As2OrgSeries::new();
        s.insert_snapshot(
            date("2018-01-01"),
            [(Asn(1), OrgId(7)), (Asn(2), OrgId(7)), (Asn(3), OrgId(8))]
                .into_iter()
                .collect(),
        );
        let delegs = vec![deleg("64.0.1.0/24", 1, 2), deleg("64.0.2.0/24", 1, 3)];
        let (kept, removed) = filter_intra_org(delegs, &s, date("2017-12-15"));
        assert_eq!(removed, 1);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].delegatee, Asn(3));
    }

    /// Build a day-series for one delegation from a presence pattern.
    fn series(pattern: &str, d: Delegation) -> Vec<Vec<Delegation>> {
        pattern
            .chars()
            .map(|c| if c == '1' { vec![d] } else { vec![] })
            .collect()
    }

    fn presence(days: &[Vec<Delegation>], d: &Delegation) -> String {
        days.iter()
            .map(|day| if day.contains(d) { '1' } else { '0' })
            .collect()
    }

    #[test]
    fn fills_short_gaps() {
        let d = deleg("64.0.1.0/24", 1, 2);
        let days = series("1100111", d);
        let filled = consistency_fill(&days, 10);
        assert_eq!(presence(&filled, &d), "1111111");
    }

    #[test]
    fn respects_max_gap() {
        let d = deleg("64.0.1.0/24", 1, 2);
        // Gap of 12 days > 10: not filled.
        let days = series("1000000000001", d);
        let filled = consistency_fill(&days, 10);
        assert_eq!(presence(&filled, &d), "1000000000001");
        // Gap of exactly 10 (indices 0 and 10): filled.
        let days = series("10000000001", d);
        let filled = consistency_fill(&days, 10);
        assert_eq!(presence(&filled, &d), "11111111111");
    }

    #[test]
    fn conflict_blocks_fill() {
        let d = deleg("64.0.1.0/24", 1, 2);
        let other = deleg("64.0.1.0/24", 1, 3); // same P', different T
        let mut days = series("100001", d);
        days[3] = vec![other];
        let filled = consistency_fill(&days, 10);
        // The gap around the conflict is NOT filled for (.., T=2)...
        assert_eq!(presence(&filled, &d), "100001");
        // ...and the conflicting observation is untouched.
        assert!(filled[3].contains(&other));
    }

    #[test]
    fn non_conflicting_other_prefix_does_not_block() {
        let d = deleg("64.0.1.0/24", 1, 2);
        let unrelated = deleg("64.0.9.0/24", 1, 3);
        let mut days = series("100001", d);
        days[2].push(unrelated);
        let filled = consistency_fill(&days, 10);
        assert_eq!(presence(&filled, &d), "111111");
    }

    #[test]
    fn fill_is_idempotent() {
        let d = deleg("64.0.1.0/24", 1, 2);
        let days = series("110011011", d);
        let once = consistency_fill(&days, 10);
        let twice = consistency_fill(&once, 10);
        assert_eq!(once, twice);
    }

    #[test]
    fn chains_of_observations_fill_each_window() {
        let d = deleg("64.0.1.0/24", 1, 2);
        // Two separate windows: 0-4 and 4-8.
        let days = series("100010001", d);
        let filled = consistency_fill(&days, 10);
        assert_eq!(presence(&filled, &d), "111111111");
    }

    #[test]
    fn empty_input() {
        assert!(consistency_fill(&[], 10).is_empty());
        let empty_days: Vec<Vec<Delegation>> = vec![vec![], vec![], vec![]];
        let filled = consistency_fill(&empty_days, 10);
        assert!(filled.iter().all(Vec::is_empty));
    }
}
