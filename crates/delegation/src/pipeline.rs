//! The daily inference pipeline.
//!
//! Drives the full §4 procedure over a date range: fetch each day's
//! observations from a collector archive (with the paper's missing-
//! file fallback), run steps (i)–(iv), apply extension (iv) per day
//! and extension (v) across days.
//!
//! Per-day inference is embarrassingly parallel; days are fanned out
//! over the shared worker pool (`bgpsim::par`) before the sequential
//! consistency fill. Results merge in day order, so parallel runs are
//! identical to sequential ones.

use crate::as2org::As2OrgSeries;
use crate::base::{infer_base_delegations, infer_from_pairs, origin_for_prefix, Delegation};
use crate::config::InferenceConfig;
use crate::extensions::{consistency_fill, filter_intra_org};
use bgpsim::collector::CollectorArchive;
use bgpsim::observe::ObservationDay;
use bgpsim::updates::{CollectorArchiveV2, Provenance};
use nettypes::asn::Asn;
use nettypes::bogons::BogonFilter;
use nettypes::date::{Date, DateRange};
use nettypes::prefix::Prefix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Where the pipeline reads observations from.
pub enum PipelineInput<'a> {
    /// A collector archive (bytes on "disk", decoded per day, with
    /// forward fallback for missing days).
    Archive(&'a CollectorArchive),
    /// An RFC 6396 MRT archive: periodic `TABLE_DUMP_V2` RIBs plus
    /// daily `BGP4MP` update files, reconstructed per the paper's
    /// procedure (the most faithful input path).
    MrtArchive(&'a CollectorArchiveV2),
    /// Pre-rendered observation days (index 0 = span start).
    Days(&'a [ObservationDay]),
}

/// The pipeline result: per-day delegation sets plus bookkeeping.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DailyDelegations {
    /// First day of the span.
    pub start: Date,
    /// `days[i]` = delegations for `start + i`, sorted.
    pub days: Vec<Vec<Delegation>>,
    /// Days whose own archive file was missing/corrupt and were served
    /// by the forward fallback.
    pub fallback_days: Vec<Date>,
    /// Days with no data at all (trailing gaps).
    pub missing_days: Vec<Date>,
    /// Delegations removed by extension (iv), summed over days.
    pub intra_org_removed: usize,
}

impl DailyDelegations {
    /// The delegation set for a date, if inside the span.
    pub fn on(&self, d: Date) -> Option<&[Delegation]> {
        let idx = d - self.start;
        if idx < 0 {
            return None;
        }
        self.days.get(idx as usize).map(Vec::as_slice)
    }
}

/// How the pipeline walks an MRT archive.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PipelineMode {
    /// Walk the span with a persistent [`bgpsim::updates::ObservationSweep`]
    /// and re-run steps (i)–(iii) only for prefixes whose observation
    /// surface changed since the previous day. The default.
    Incremental,
    /// Reconstruct every day from scratch (`day_view` per day, full
    /// steps (i)–(iv)) — the pre-incremental oracle path.
    FullRecompute,
}

/// Run the pipeline over `span`.
///
/// `as2org` is required when `config.filter_intra_org` is set; pass
/// `None` to reproduce the baseline.
pub fn run_pipeline(
    input: PipelineInput<'_>,
    span: DateRange,
    config: &InferenceConfig,
    as2org: Option<&As2OrgSeries>,
) -> DailyDelegations {
    run_pipeline_with_mode(input, span, config, as2org, PipelineMode::Incremental)
}

/// [`run_pipeline`] with an explicit [`PipelineMode`]. The mode only
/// affects [`PipelineInput::MrtArchive`]; both modes produce identical
/// results (the incremental walk is proven against the full recompute
/// by the determinism suite).
pub fn run_pipeline_with_mode(
    input: PipelineInput<'_>,
    span: DateRange,
    config: &InferenceConfig,
    as2org: Option<&As2OrgSeries>,
    mode: PipelineMode,
) -> DailyDelegations {
    assert!(
        !config.filter_intra_org || as2org.is_some(),
        "extension (iv) requires an AS-to-Org series"
    );

    let sp = obs::span!("delegation_inference", days = span.num_days() as u64, unit = "days");
    sp.add_items(span.num_days() as u64);

    if let (PipelineInput::MrtArchive(archive), PipelineMode::Incremental) = (&input, mode) {
        return run_mrt_incremental(archive, span, config, as2org);
    }

    let mut fallback_days = Vec::new();
    let mut missing_days = Vec::new();

    // Materialize the day observations (archive decode or borrow).
    let fetch_sp = obs::span!("fetch_observations");
    let mut observations: Vec<Option<ObservationDay>> =
        Vec::with_capacity(span.num_days() as usize);
    match input {
        PipelineInput::Archive(archive) => {
            for d in span.iter() {
                match archive.fetch_day(d) {
                    bgpsim::collector::DayData::Exact(obs) => observations.push(Some(obs)),
                    bgpsim::collector::DayData::FallbackFrom(_, obs) => {
                        fallback_days.push(d);
                        observations.push(Some(obs));
                    }
                    bgpsim::collector::DayData::Unavailable => {
                        missing_days.push(d);
                        observations.push(None);
                    }
                }
            }
        }
        PipelineInput::MrtArchive(archive) => {
            for d in span.iter() {
                match archive.day_view(d) {
                    Ok(view) => {
                        if let Provenance::FallbackRib { .. } = view.provenance {
                            fallback_days.push(d);
                        }
                        observations.push(Some(view.to_observation_day()));
                    }
                    Err(_) => {
                        missing_days.push(d);
                        observations.push(None);
                    }
                }
            }
        }
        PipelineInput::Days(days) => {
            for (i, d) in span.iter().enumerate() {
                match days.get(i) {
                    Some(obs) => observations.push(Some(obs.clone())),
                    None => {
                        missing_days.push(d);
                        observations.push(None);
                    }
                }
            }
        }
    }

    if !fallback_days.is_empty() {
        obs::event!(
            obs::Level::Warn,
            "archive_fallback_days",
            count = fallback_days.len(),
        );
    }
    drop(fetch_sp);

    // Parallel per-day inference + extension (iv), merged in day order.
    let infer_sp = obs::span!("infer_days", unit = "routes");
    let n = observations.len();
    if infer_sp.is_enabled() {
        let routes: usize = observations
            .iter()
            .flatten()
            .map(|o| o.routes.len())
            .sum();
        infer_sp.add_items(routes as u64);
    }
    let per_day: Vec<(Vec<Delegation>, usize)> = bgpsim::par::par_map(n, |gi| {
        let Some(obs) = &observations[gi] else {
            return (Vec::new(), 0);
        };
        let mut delegs = infer_base_delegations(obs, config);
        let mut removed = 0;
        if config.filter_intra_org {
            let date = span.start + gi as i64;
            let (kept, r) =
                filter_intra_org(delegs, as2org.expect("checked above"), date);
            delegs = kept;
            removed = r;
        }
        (delegs, removed)
    });
    let mut days: Vec<Vec<Delegation>> = Vec::with_capacity(n);
    let mut removed_counts: Vec<usize> = Vec::with_capacity(n);
    for (d, r) in per_day {
        days.push(d);
        removed_counts.push(r);
    }
    drop(infer_sp);

    // Extension (v): sequential consistency fill across days.
    let days = if let Some(max_gap) = config.consistency_fill_days {
        let _fill_sp = obs::span!("consistency_fill", max_gap = max_gap as u64);
        consistency_fill(&days, max_gap)
    } else {
        days
    };

    DailyDelegations {
        start: span.start,
        days,
        fallback_days,
        missing_days,
        intra_org_removed: removed_counts.iter().sum(),
    }
}

/// One day's outcome inside an incremental chunk walk.
enum DayOutcome {
    Missing,
    Served {
        delegations: Vec<Delegation>,
        removed: usize,
        fallback: bool,
    },
}

/// The incremental MRT path: fetch and steps (i)–(iii) fused into one
/// chunked walk.
///
/// The span is split into one contiguous day range per worker
/// (`bgpsim::par::chunk_ranges`); each worker runs a persistent
/// [`bgpsim::updates::ObservationSweep`] seeded with one full
/// reconstruction at its chunk start, then pays one update-file decode
/// per day. A maintained `prefix → origin` pair map is re-evaluated
/// only for the prefixes the sweep reports changed; step (iv) and
/// extension (iv) run per day as before, and chunk results merge in
/// day order, so any worker count produces the full-recompute result.
fn run_mrt_incremental(
    archive: &CollectorArchiveV2,
    span: DateRange,
    config: &InferenceConfig,
    as2org: Option<&As2OrgSeries>,
) -> DailyDelegations {
    let days_vec: Vec<Date> = span.iter().collect();
    let n = days_vec.len();
    let sweep_sp = obs::span!("sweep_infer_days", days = n as u64, unit = "days");
    sweep_sp.add_items(n as u64);

    let ranges = bgpsim::par::chunk_ranges(n, bgpsim::par::num_threads());
    let per_day: Vec<DayOutcome> = bgpsim::par::map_chunked_with(&ranges, |r| {
        let mut sweep = archive.sweep();
        let bogons = BogonFilter::new();
        let mut pairs: BTreeMap<Prefix, Asn> = BTreeMap::new();
        let mut out = Vec::with_capacity(r.len());
        for i in r {
            let d = days_vec[i];
            let delta = match sweep.advance(d) {
                Ok(delta) => delta,
                Err(_) => {
                    out.push(DayOutcome::Missing);
                    continue;
                }
            };
            // Constant while the sweep stays anchored (the peer table
            // only changes on full rebuilds, where `changed` is None).
            let threshold =
                // lint:allow(L1): a ceil of a fraction of a u16 count fits u16
                (config.visibility_threshold * sweep.num_monitors() as f64).ceil() as u16;
            match &delta.changed {
                None => {
                    // Full rebuild: re-reduce every prefix, walking the
                    // aggregated surface in its day order.
                    pairs.clear();
                    let mut rows = sweep.counts().iter().peekable();
                    while let Some(((prefix, _), _)) = rows.peek().copied() {
                        let p = *prefix;
                        let group = std::iter::from_fn(|| {
                            rows.next_if(|((q, _), _)| *q == p)
                                .map(|(_, (o, c))| (o, *c))
                        });
                        if let Some(a) = origin_for_prefix(&bogons, config, threshold, p, group) {
                            pairs.insert(p, a);
                        }
                    }
                }
                Some(changed) => {
                    for &p in changed {
                        match origin_for_prefix(&bogons, config, threshold, p, sweep.routes_for(p))
                        {
                            Some(a) => {
                                pairs.insert(p, a);
                            }
                            None => {
                                pairs.remove(&p);
                            }
                        }
                    }
                }
            }
            let pair_list: Vec<(Prefix, Asn)> = pairs.iter().map(|(&p, &a)| (p, a)).collect();
            let mut delegations = infer_from_pairs(&pair_list);
            let mut removed = 0;
            if config.filter_intra_org {
                // lint:allow(L2): non-None asserted at pipeline entry
                let (kept, r) = filter_intra_org(delegations, as2org.expect("checked above"), d);
                delegations = kept;
                removed = r;
            }
            out.push(DayOutcome::Served {
                delegations,
                removed,
                fallback: matches!(delta.provenance, Provenance::FallbackRib { .. }),
            });
        }
        out
    });
    drop(sweep_sp);

    let mut days: Vec<Vec<Delegation>> = Vec::with_capacity(n);
    let mut fallback_days = Vec::new();
    let mut missing_days = Vec::new();
    let mut intra_org_removed = 0usize;
    for (i, outcome) in per_day.into_iter().enumerate() {
        match outcome {
            DayOutcome::Missing => {
                missing_days.push(days_vec[i]);
                days.push(Vec::new());
            }
            DayOutcome::Served {
                delegations,
                removed,
                fallback,
            } => {
                if fallback {
                    fallback_days.push(days_vec[i]);
                }
                intra_org_removed += removed;
                days.push(delegations);
            }
        }
    }
    if !fallback_days.is_empty() {
        obs::event!(
            obs::Level::Warn,
            "archive_fallback_days",
            count = fallback_days.len(),
        );
    }

    let days = if let Some(max_gap) = config.consistency_fill_days {
        let _fill_sp = obs::span!("consistency_fill", max_gap = max_gap as u64);
        consistency_fill(&days, max_gap)
    } else {
        days
    };

    DailyDelegations {
        start: span.start,
        days,
        fallback_days,
        missing_days,
        intra_org_removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim::observe::{render_day, VisibilityModel};
    use bgpsim::scenario::{LeaseWorld, WorldConfig};
    use bgpsim::topology::TopologyConfig;
    use nettypes::date::date;

    fn world_and_days() -> (LeaseWorld, Vec<ObservationDay>) {
        let w = LeaseWorld::generate(&WorldConfig {
            seed: 17,
            span: DateRange::new(date("2018-01-01"), date("2018-02-28")),
            topology: TopologyConfig {
                seed: 17,
                num_tier1: 4,
                num_tier2: 12,
                num_stubs: 100,
                multi_as_org_fraction: 0.15,
            },
            num_allocations: 40,
            initial_active_leases: 120,
            bgp_visible_fraction: 0.35,
            num_hijacks: 4,
            num_moas: 4,
            num_as_sets: 2,
            num_scrubbing: 2,
            ..Default::default()
        });
        let model = VisibilityModel::default();
        let days: Vec<ObservationDay> = w
            .span
            .iter()
            .map(|d| render_day(&w, &model, d))
            .collect();
        (w, days)
    }

    #[test]
    fn pipeline_runs_and_finds_delegations() {
        let (w, days) = world_and_days();
        let result = run_pipeline(
            PipelineInput::Days(&days),
            w.span,
            &InferenceConfig::baseline(),
            None,
        );
        assert_eq!(result.days.len() as i64, w.span.num_days());
        let total: usize = result.days.iter().map(Vec::len).sum();
        assert!(total > 0, "no delegations inferred");
        assert!(result.missing_days.is_empty());
    }

    #[test]
    fn extension_iv_reduces_counts() {
        let (w, days) = world_and_days();
        let as2org =
            As2OrgSeries::from_topology(&w.topology, w.span.start, w.span.end, 90);
        let base = run_pipeline(
            PipelineInput::Days(&days),
            w.span,
            &InferenceConfig::baseline(),
            None,
        );
        let cfg_iv = InferenceConfig {
            filter_intra_org: true,
            ..InferenceConfig::baseline()
        };
        let ext = run_pipeline(PipelineInput::Days(&days), w.span, &cfg_iv, Some(&as2org));
        assert!(ext.intra_org_removed > 0, "no intra-org delegations removed");
        let base_total: usize = base.days.iter().map(Vec::len).sum();
        let ext_total: usize = ext.days.iter().map(Vec::len).sum();
        assert!(ext_total < base_total);
        // And nothing intra-org survives.
        for day in &ext.days {
            for d in day {
                assert_ne!(
                    w.topology.org_of(d.delegator),
                    w.topology.org_of(d.delegatee),
                    "intra-org delegation survived: {d:?}"
                );
            }
        }
    }

    #[test]
    fn extension_v_smooths_onoff_patterns() {
        let (w, days) = world_and_days();
        let base = run_pipeline(
            PipelineInput::Days(&days),
            w.span,
            &InferenceConfig::baseline(),
            None,
        );
        let cfg_v = InferenceConfig {
            consistency_fill_days: Some(10),
            ..InferenceConfig::baseline()
        };
        let filled = run_pipeline(PipelineInput::Days(&days), w.span, &cfg_v, None);
        // The day-to-day jumpiness must drop (first-difference
        // variance — the fill cannot remove the slow growth trend both
        // series share).
        let diff_var = |days: &[Vec<Delegation>]| {
            let counts: Vec<f64> = days.iter().map(|d| d.len() as f64).collect();
            let diffs: Vec<f64> = counts.windows(2).map(|w| w[1] - w[0]).collect();
            let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
            diffs.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / diffs.len() as f64
        };
        let v_base = diff_var(&base.days);
        let v_filled = diff_var(&filled.days);
        assert!(
            v_filled < 0.5 * v_base,
            "fill should cut the day-to-day variance: {v_base:.1} → {v_filled:.1}"
        );
        // Filling never removes delegations.
        for (b, f) in base.days.iter().zip(&filled.days) {
            assert!(f.len() >= b.len());
        }
    }

    #[test]
    fn archive_input_with_gaps_uses_fallback() {
        let (w, days) = world_and_days();
        let mut archive = CollectorArchive::new();
        for d in &days {
            archive.store(d);
        }
        // Punch two holes mid-window.
        archive.drop_day(date("2018-01-15"));
        archive.drop_day(date("2018-02-10"));
        let result = run_pipeline(
            PipelineInput::Archive(&archive),
            w.span,
            &InferenceConfig::baseline(),
            None,
        );
        assert_eq!(result.fallback_days, vec![date("2018-01-15"), date("2018-02-10")]);
        assert!(result.missing_days.is_empty());
        assert_eq!(result.days.len() as i64, w.span.num_days());
    }

    #[test]
    fn trailing_gap_reported_missing() {
        let (w, days) = world_and_days();
        let mut archive = CollectorArchive::new();
        for d in &days[..days.len() - 3] {
            archive.store(d);
        }
        let result = run_pipeline(
            PipelineInput::Archive(&archive),
            w.span,
            &InferenceConfig::baseline(),
            None,
        );
        assert_eq!(result.missing_days.len(), 3);
        assert_eq!(result.missing_days[2], w.span.end);
    }

    #[test]
    fn on_accessor() {
        let (w, days) = world_and_days();
        let result = run_pipeline(
            PipelineInput::Days(&days),
            w.span,
            &InferenceConfig::baseline(),
            None,
        );
        assert!(result.on(w.span.start).is_some());
        assert!(result.on(w.span.end).is_some());
        assert!(result.on(w.span.end + 1).is_none());
        assert!(result.on(w.span.start - 1).is_none());
    }

    #[test]
    #[should_panic(expected = "extension (iv) requires")]
    fn ext_iv_without_mapping_panics() {
        let (w, days) = world_and_days();
        let cfg = InferenceConfig {
            filter_intra_org: true,
            ..InferenceConfig::baseline()
        };
        let _ = run_pipeline(PipelineInput::Days(&days), w.span, &cfg, None);
    }
}
