//! Steps (i)–(iv) of the per-day inference.

use crate::config::InferenceConfig;
use bgpsim::observe::ObservationDay;
use nettypes::asn::{Asn, Origin};
use nettypes::bogons::{route_is_clean, BogonFilter};
use nettypes::prefix::Prefix;
use nettypes::trie::PrefixTrie;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An inferred delegation `P'_{S,T}`: S originates the covering P and
/// delegates the more-specific P' to T.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct Delegation {
    /// The delegated (more-specific) prefix P'.
    pub prefix: Prefix,
    /// The covering prefix P announced by the delegator.
    pub parent: Prefix,
    /// The delegator AS S.
    pub delegator: Asn,
    /// The delegatee AS T.
    pub delegatee: Asn,
}

impl Delegation {
    /// The conflict identity used by extension (v): a delegation
    /// conflicts with another if the same P' goes to a different T.
    pub fn key(&self) -> (Prefix, Asn, Asn) {
        (self.prefix, self.delegator, self.delegatee)
    }
}

/// Sanitize and reduce a day's observations to globally-visible,
/// single-origin prefix-origin pairs (steps i–iii plus the route
/// sanitization from §4: no bogons, no reserved ASNs, no AS-path
/// loops).
pub fn visible_prefix_origins(
    day: &ObservationDay,
    config: &InferenceConfig,
) -> Vec<(Prefix, Asn)> {
    let threshold = (config.visibility_threshold * day.num_monitors as f64).ceil() as u16;
    let bogons = BogonFilter::new();

    // prefix → origins surviving visibility + sanitization.
    let mut origins: HashMap<Prefix, Vec<Asn>> = HashMap::new();
    let mut saw_as_set: HashMap<Prefix, bool> = HashMap::new();
    for r in &day.routes {
        if r.monitors_seen < threshold.max(1) {
            continue; // step (ii)
        }
        match &r.origin {
            Origin::Set(_) => {
                if config.drop_as_sets {
                    saw_as_set.insert(r.prefix, true); // step (iii), AS_SET
                }
            }
            Origin::Single(asn) => {
                if !route_is_clean(&bogons, &r.prefix, &r.path) {
                    continue;
                }
                // For routes without a rendered path, still check the
                // origin against the reserved table.
                if r.path.is_empty() && asn.is_reserved() {
                    continue;
                }
                let v = origins.entry(r.prefix).or_default();
                if !v.contains(asn) {
                    v.push(*asn);
                }
            }
        }
    }

    origins
        .into_iter()
        .filter(|(p, asns)| {
            if config.drop_as_sets && saw_as_set.get(p).copied().unwrap_or(false) {
                return false;
            }
            if config.drop_moas && asns.len() > 1 {
                return false; // step (iii), MOAS
            }
            !asns.is_empty()
        })
        .map(|(p, asns)| (p, asns[0]))
        .collect()
}

/// Steps (i)–(iii) for a single prefix, fed its observation rows in
/// day-surface order (ascending origin rendering, the order archive-
/// derived observation days list them). Returns the surviving origin,
/// or `None` when the prefix is dropped.
///
/// Matches [`visible_prefix_origins`] exactly for observation days
/// without rendered paths (the archive surface carries none): the
/// visibility threshold, AS_SET and MOAS handling, bogon-prefix
/// sanitization, and the reserved-origin check are the same, and the
/// first-surviving-origin MOAS pick follows the row order.
pub fn origin_for_prefix<'a>(
    bogons: &BogonFilter,
    config: &InferenceConfig,
    threshold: u16,
    prefix: Prefix,
    rows: impl IntoIterator<Item = (&'a Origin, u16)>,
) -> Option<Asn> {
    let mut asns: Vec<Asn> = Vec::new();
    let mut saw_as_set = false;
    for (origin, seen) in rows {
        if seen < threshold.max(1) {
            continue; // step (ii)
        }
        match origin {
            Origin::Set(_) => {
                if config.drop_as_sets {
                    saw_as_set = true; // step (iii), AS_SET
                }
            }
            Origin::Single(asn) => {
                if !route_is_clean(bogons, &prefix, &[]) {
                    continue;
                }
                if asn.is_reserved() {
                    continue;
                }
                if !asns.contains(asn) {
                    asns.push(*asn);
                }
            }
        }
    }
    if saw_as_set {
        return None;
    }
    if config.drop_moas && asns.len() > 1 {
        return None; // step (iii), MOAS
    }
    asns.first().copied()
}

/// Step (iv) on already-reduced pairs: the delegator of P' is the
/// origin of the *most specific* covering prefix with a different
/// origin. Output is sorted, so pair order does not matter.
pub fn infer_from_pairs(pairs: &[(Prefix, Asn)]) -> Vec<Delegation> {
    let trie: PrefixTrie<Asn> = pairs.iter().map(|&(p, a)| (p, a)).collect();

    let mut out = Vec::new();
    for &(prefix, delegatee) in pairs {
        let covering = trie.covering(&prefix);
        for (parent, &delegator) in covering.into_iter().rev() {
            if delegator != delegatee {
                out.push(Delegation {
                    prefix,
                    parent,
                    delegator,
                    delegatee,
                });
                break;
            }
        }
    }
    out.sort();
    out
}

/// Step (iv): infer delegations from the surviving prefix-origin
/// pairs.
pub fn infer_base_delegations(day: &ObservationDay, config: &InferenceConfig) -> Vec<Delegation> {
    let pairs = visible_prefix_origins(day, config);
    infer_from_pairs(&pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim::observe::RouteObservation;
    use nettypes::date::Date;
    use nettypes::prefix::pfx;

    fn obs(prefix: &str, origin: u32, seen: u16) -> RouteObservation {
        RouteObservation {
            prefix: pfx(prefix),
            origin: Origin::Single(Asn(origin)),
            monitors_seen: seen,
            path: vec![].into(),
            class: None,
        }
    }

    fn day(routes: Vec<RouteObservation>) -> ObservationDay {
        ObservationDay {
            date: Date::from_days(17532),
            num_monitors: 40,
            routes,
        }
    }

    #[test]
    fn basic_inference() {
        let d = day(vec![obs("64.0.0.0/16", 1001, 40), obs("64.0.1.0/24", 1002, 38)]);
        let cfg = InferenceConfig::baseline();
        let delegs = infer_base_delegations(&d, &cfg);
        assert_eq!(
            delegs,
            vec![Delegation {
                prefix: pfx("64.0.1.0/24"),
                parent: pfx("64.0.0.0/16"),
                delegator: Asn(1001),
                delegatee: Asn(1002),
            }]
        );
    }

    #[test]
    fn visibility_threshold_drops_local_routes() {
        let d = day(vec![
            obs("64.0.0.0/16", 1001, 40),
            obs("64.0.1.0/24", 1002, 19), // below 50 % of 40
        ]);
        let cfg = InferenceConfig::baseline();
        assert!(infer_base_delegations(&d, &cfg).is_empty());
        // With a 25 % threshold it appears.
        let lax = InferenceConfig {
            visibility_threshold: 0.25,
            ..cfg
        };
        assert_eq!(infer_base_delegations(&d, &lax).len(), 1);
    }

    #[test]
    fn moas_prefixes_dropped() {
        let d = day(vec![
            obs("64.0.0.0/16", 1001, 40),
            obs("64.0.1.0/24", 1002, 38),
            obs("64.0.1.0/24", 1003, 35), // MOAS on the more-specific
        ]);
        let cfg = InferenceConfig::baseline();
        assert!(infer_base_delegations(&d, &cfg).is_empty());
        // MOAS on the parent also kills the delegation (parent pair is
        // dropped, no covering prefix remains).
        let d2 = day(vec![
            obs("64.0.0.0/16", 1001, 40),
            obs("64.0.0.0/16", 1009, 40),
            obs("64.0.1.0/24", 1002, 38),
        ]);
        assert!(infer_base_delegations(&d2, &cfg).is_empty());
    }

    #[test]
    fn as_set_prefixes_dropped() {
        let d = day(vec![
            obs("64.0.0.0/16", 1001, 40),
            RouteObservation {
                prefix: pfx("64.0.1.0/24"),
                origin: Origin::Set(vec![Asn(1002), Asn(1003)]),
                monitors_seen: 38,
                path: vec![].into(),
                class: None,
            },
        ]);
        let cfg = InferenceConfig::baseline();
        assert!(infer_base_delegations(&d, &cfg).is_empty());
    }

    #[test]
    fn nearest_covering_origin_is_delegator() {
        let d = day(vec![
            obs("64.0.0.0/12", 1000, 40),
            obs("64.0.0.0/16", 1001, 40),
            obs("64.0.1.0/24", 1002, 38),
        ]);
        let cfg = InferenceConfig::baseline();
        let delegs = infer_base_delegations(&d, &cfg);
        let d24 = delegs.iter().find(|d| d.prefix == pfx("64.0.1.0/24")).unwrap();
        assert_eq!(d24.delegator, Asn(1001));
        assert_eq!(d24.parent, pfx("64.0.0.0/16"));
        // The /16 itself is delegated by the /12.
        let d16 = delegs.iter().find(|d| d.prefix == pfx("64.0.0.0/16")).unwrap();
        assert_eq!(d16.delegator, Asn(1000));
    }

    #[test]
    fn same_origin_more_specific_is_not_a_delegation() {
        // Traffic engineering: same AS announces both.
        let d = day(vec![obs("64.0.0.0/16", 1001, 40), obs("64.0.1.0/24", 1001, 38)]);
        let cfg = InferenceConfig::baseline();
        assert!(infer_base_delegations(&d, &cfg).is_empty());
    }

    #[test]
    fn skips_same_origin_ancestor_to_find_delegator() {
        // /24 by AS B; /16 by AS B (its own TE); /12 by AS A.
        let d = day(vec![
            obs("64.0.0.0/12", 1000, 40),
            obs("64.0.0.0/16", 1002, 40),
            obs("64.0.1.0/24", 1002, 38),
        ]);
        let cfg = InferenceConfig::baseline();
        let delegs = infer_base_delegations(&d, &cfg);
        let d24 = delegs.iter().find(|d| d.prefix == pfx("64.0.1.0/24")).unwrap();
        assert_eq!(d24.delegator, Asn(1000));
        assert_eq!(d24.parent, pfx("64.0.0.0/12"));
    }

    #[test]
    fn bogon_and_reserved_asn_routes_sanitized() {
        let d = day(vec![
            obs("10.0.0.0/8", 1001, 40),      // bogon prefix
            obs("10.0.1.0/24", 1002, 38),     // bogon prefix
            obs("64.0.0.0/16", 1001, 40),
            obs("64.0.1.0/24", 64512, 38),    // reserved origin ASN
        ]);
        let cfg = InferenceConfig::baseline();
        assert!(infer_base_delegations(&d, &cfg).is_empty());
    }

    #[test]
    fn path_loop_routes_sanitized() {
        let d = day(vec![
            obs("64.0.0.0/16", 1001, 40),
            RouteObservation {
                prefix: pfx("64.0.1.0/24"),
                origin: Origin::Single(Asn(1002)),
                monitors_seen: 38,
                path: vec![Asn(1050), Asn(1060), Asn(1050), Asn(1002)].into(), // loop
                class: None,
            },
        ]);
        let cfg = InferenceConfig::baseline();
        assert!(infer_base_delegations(&d, &cfg).is_empty());
    }

    proptest::proptest! {
        /// The trie-based inference equals an O(n²) brute-force
        /// reference implementation of steps (i)–(iv) on arbitrary
        /// observation days (clean address space and ASNs, so the
        /// sanitization layer is identity).
        #[test]
        fn prop_matches_bruteforce_reference(
            routes in proptest::collection::vec(
                (0u32..(1 << 18), 16u8..=28, 1000u32..1060, 1u16..=40),
                0..40
            ),
            threshold in proptest::sample::select(vec![0.1f64, 0.5, 0.9]),
        ) {
            use std::collections::HashMap;
            // Build the day inside 64.0.0.0/8 (never bogon).
            let day = day(routes
                .iter()
                .map(|&(net, len, origin, seen)| RouteObservation {
                    prefix: Prefix::new_unchecked_masked(0x4000_0000 | net, len),
                    origin: Origin::Single(Asn(origin)),
                    monitors_seen: seen,
                    path: vec![].into(),
                    class: None,
                })
                .collect());
            let cfg = InferenceConfig {
                visibility_threshold: threshold,
                ..InferenceConfig::baseline()
            };
            let fast = infer_base_delegations(&day, &cfg);

            // --- brute force ---
            let min_seen = (threshold * day.num_monitors as f64).ceil().max(1.0) as u16;
            let mut origins: HashMap<Prefix, Vec<Asn>> = HashMap::new();
            for r in &day.routes {
                if r.monitors_seen < min_seen {
                    continue;
                }
                if let Origin::Single(a) = &r.origin {
                    let v = origins.entry(r.prefix).or_default();
                    if !v.contains(a) {
                        v.push(*a);
                    }
                }
            }
            let pairs: Vec<(Prefix, Asn)> = origins
                .iter()
                .filter(|(_, v)| v.len() == 1)
                .map(|(p, v)| (*p, v[0]))
                .collect();
            let mut slow = Vec::new();
            for &(p, t) in &pairs {
                // Most specific covering pair with a different origin.
                let mut best: Option<(Prefix, Asn)> = None;
                for &(q, s) in &pairs {
                    if q.covers_strictly(&p) && s != t {
                        match best {
                            Some((bq, _)) if bq.len() >= q.len() => {}
                            _ => best = Some((q, s)),
                        }
                    }
                }
                if let Some((parent, delegator)) = best {
                    slow.push(Delegation { prefix: p, parent, delegator, delegatee: t });
                }
            }
            slow.sort();
            proptest::prop_assert_eq!(fast, slow);
        }
    }

    #[test]
    fn prefix_origin_reduction_counts() {
        let d = day(vec![
            obs("64.0.0.0/16", 1001, 40),
            obs("64.0.1.0/24", 1002, 10), // below threshold
            obs("64.1.0.0/16", 1003, 40),
        ]);
        let pairs = visible_prefix_origins(&d, &InferenceConfig::baseline());
        assert_eq!(pairs.len(), 2);
    }
}
