//! Inference configuration and the baseline/extended presets.

use serde::{Deserialize, Serialize};

/// Knobs of the delegation-inference algorithm.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// Fraction of monitors that must see a prefix-origin pair
    /// (step ii). The paper uses 0.5 and notes any threshold between
    /// 10 % and 90 % yields negligible differences.
    pub visibility_threshold: f64,
    /// Drop AS_SET-originated prefixes (step iii).
    pub drop_as_sets: bool,
    /// Drop prefixes originated by multiple ASes (step iii).
    pub drop_moas: bool,
    /// Extension (iv): drop delegations between ASes of the same
    /// organization.
    pub filter_intra_org: bool,
    /// Extension (v): fill gaps up to this many days when the same
    /// delegation recurs with no conflicting delegation in between
    /// (the paper's validated rule uses 10). `None` disables filling.
    pub consistency_fill_days: Option<usize>,
}

impl InferenceConfig {
    /// The Krenc-Feldmann baseline: steps (i)–(iii) only.
    pub fn baseline() -> InferenceConfig {
        InferenceConfig {
            visibility_threshold: 0.5,
            drop_as_sets: true,
            drop_moas: true,
            filter_intra_org: false,
            consistency_fill_days: None,
        }
    }

    /// The paper's extended algorithm: baseline + (iv) + (v).
    pub fn extended() -> InferenceConfig {
        InferenceConfig {
            filter_intra_org: true,
            consistency_fill_days: Some(10),
            ..InferenceConfig::baseline()
        }
    }
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig::extended()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let b = InferenceConfig::baseline();
        assert!(!b.filter_intra_org);
        assert_eq!(b.consistency_fill_days, None);
        assert_eq!(b.visibility_threshold, 0.5);
        assert!(b.drop_as_sets && b.drop_moas);

        let e = InferenceConfig::extended();
        assert!(e.filter_intra_org);
        assert_eq!(e.consistency_fill_days, Some(10));
        assert_eq!(e.visibility_threshold, b.visibility_threshold);
        assert_eq!(InferenceConfig::default(), e);
    }
}
