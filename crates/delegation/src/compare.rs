//! BGP-delegations vs RDAP-delegations (§4).
//!
//! The paper's headline comparison for the RIPE region (June 2020):
//! BGP-delegations cover only **~1.85 %** of the RDAP-delegated IPs,
//! while RDAP-delegations cover **~65.7 %** of the BGP-delegated IPs —
//! neither source alone sees the whole leasing market.

use crate::base::Delegation;
use nettypes::set::PrefixSet;
use rdap::pipeline::RdapDelegation;
use serde::{Deserialize, Serialize};

/// The two-way coverage numbers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Unique addresses delegated per BGP.
    pub bgp_addresses: u64,
    /// Unique addresses delegated per RDAP.
    pub rdap_addresses: u64,
    /// Addresses in both.
    pub intersection: u64,
    /// Fraction of RDAP-delegated IPs also seen in BGP (paper: ~1.85 %).
    pub bgp_coverage_of_rdap: f64,
    /// Fraction of BGP-delegated IPs also registered in RDAP
    /// (paper: ~65.7 %).
    pub rdap_coverage_of_bgp: f64,
    /// BGP delegation count (unique prefixes).
    pub bgp_delegations: usize,
    /// RDAP delegation count.
    pub rdap_delegations: usize,
}

/// Compute the §4 coverage comparison from one day's BGP delegations
/// and the RDAP extraction.
pub fn coverage_report(bgp: &[Delegation], rdap: &[RdapDelegation]) -> CoverageReport {
    let bgp_set: PrefixSet = bgp.iter().map(|d| d.prefix).collect();
    let rdap_set: PrefixSet = rdap
        .iter()
        .flat_map(|d| d.child.to_cidrs())
        .collect();
    let intersection = bgp_set.intersection_size(&rdap_set);
    CoverageReport {
        bgp_addresses: bgp_set.num_addresses(),
        rdap_addresses: rdap_set.num_addresses(),
        intersection,
        bgp_coverage_of_rdap: rdap_set.coverage_by(&bgp_set),
        rdap_coverage_of_bgp: bgp_set.coverage_by(&rdap_set),
        bgp_delegations: {
            let mut p: Vec<_> = bgp.iter().map(|d| d.prefix).collect();
            p.sort();
            p.dedup();
            p.len()
        },
        rdap_delegations: rdap.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettypes::asn::Asn;
    use nettypes::prefix::pfx;

    fn bgp(p: &str) -> Delegation {
        Delegation {
            prefix: pfx(p),
            parent: pfx("64.0.0.0/12"),
            delegator: Asn(1),
            delegatee: Asn(2),
        }
    }

    fn rd(r: &str) -> RdapDelegation {
        RdapDelegation {
            child: r.parse().unwrap(),
            child_org: "C".into(),
            parent_handle: "P".into(),
            parent_org: "O".into(),
        }
    }

    #[test]
    fn two_way_coverage() {
        let bgp_delegs = vec![bgp("64.0.1.0/24"), bgp("64.0.2.0/24")];
        let rdap_delegs = vec![
            rd("64.0.1.0 - 64.0.1.255"),     // shared with BGP
            rd("64.0.16.0 - 64.0.31.255"),   // RDAP-only /20
        ];
        let r = coverage_report(&bgp_delegs, &rdap_delegs);
        assert_eq!(r.bgp_addresses, 512);
        assert_eq!(r.rdap_addresses, 256 + 4096);
        assert_eq!(r.intersection, 256);
        assert!((r.bgp_coverage_of_rdap - 256.0 / 4352.0).abs() < 1e-12);
        assert!((r.rdap_coverage_of_bgp - 0.5).abs() < 1e-12);
        assert_eq!(r.bgp_delegations, 2);
        assert_eq!(r.rdap_delegations, 2);
    }

    #[test]
    fn duplicate_bgp_prefixes_counted_once() {
        let bgp_delegs = vec![bgp("64.0.1.0/24"), bgp("64.0.1.0/24")];
        let r = coverage_report(&bgp_delegs, &[]);
        assert_eq!(r.bgp_delegations, 1);
        assert_eq!(r.bgp_addresses, 256);
        assert_eq!(r.bgp_coverage_of_rdap, 0.0);
        assert_eq!(r.rdap_coverage_of_bgp, 0.0);
    }

    #[test]
    fn empty_inputs() {
        let r = coverage_report(&[], &[]);
        assert_eq!(r.bgp_addresses, 0);
        assert_eq!(r.rdap_addresses, 0);
        assert_eq!(r.intersection, 0);
    }
}
