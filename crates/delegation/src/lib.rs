//! # delegation
//!
//! The core contribution of *When Wells Run Dry* (§4): inferring IPv4
//! prefix delegations — the observable shadow of the leasing market —
//! from BGP routing data.
//!
//! The algorithm, per observation day:
//!
//! 1. obtain the set of all prefix-origin pairs (from the monitors),
//! 2. drop pairs seen by fewer than half of all BGP monitors
//!    (limits local misconfigurations and locally-spread hijacks),
//! 3. drop pairs whose prefix is originated by an AS_SET or by
//!    multiple ASes (MOAS),
//! 4. infer a delegation `P'_{S,T}` when S originates P, T originates
//!    P', and P' is a more-specific of P,
//!
//! plus the paper's extensions (marked ⁺ in the paper):
//!
//! 5. **(iv)⁺** drop delegations between ASes of the same organization
//!    (CAIDA AS-to-Org), using the next available mapping snapshot,
//! 6. **(v)⁺** temporal consistency fill: if the same delegation is
//!    seen ten days apart with no conflicting delegation in between,
//!    materialize it for the days in between (rule validated on RPKI,
//!    Appendix A).
//!
//! Steps 1–4 form the Krenc-Feldmann (IMC'16) baseline; the
//! [`config::InferenceConfig`] presets let every analysis run both.
//!
//! Modules: [`as2org`] (mapping snapshots), [`base`] (steps 1–4),
//! [`extensions`] (iv and v), [`pipeline`] (daily driver over a
//! collector archive), [`metrics`] (Figure 6 series), [`compare`]
//! (BGP vs RDAP coverage, §4), [`eval`] (precision/recall against the
//! simulator's ground truth), and [`combine`] — the §7 future-work
//! estimator that merges BGP, RPKI and RDAP perspectives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod as2org;
pub mod base;
pub mod combine;
pub mod compare;
pub mod config;
pub mod eval;
pub mod extensions;
pub mod metrics;
pub mod pipeline;

pub use as2org::As2OrgSeries;
pub use base::{infer_base_delegations, Delegation};
pub use combine::{market_coverage, CombinedEstimate, MarketCoverage, SourceAttribution};
pub use compare::{coverage_report, CoverageReport};
pub use config::InferenceConfig;
pub use eval::{evaluate_against_truth, TruthEvaluation};
pub use metrics::{daily_metrics, DailyMetrics};
pub use pipeline::{run_pipeline, DailyDelegations, PipelineInput};
