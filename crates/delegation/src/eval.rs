//! Ground-truth evaluation.
//!
//! Unlike the paper's authors, the simulator *knows* the true leases,
//! so the inference can be scored: precision (inferred delegations
//! that are real leases) and recall (real BGP-announceable leases that
//! were inferred). This is the harness that validates the extensions
//! actually improve the estimate.

use crate::pipeline::DailyDelegations;
use bgpsim::scenario::LeaseWorld;
use nettypes::date::Date;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Precision/recall of inferred delegations against the world's truth.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TruthEvaluation {
    /// Inferred (day, delegation) pairs matching a true active lease.
    pub true_positives: u64,
    /// Inferred pairs not matching any true lease (hijacks, scrubbing,
    /// unfiltered intra-org, artifacts).
    pub false_positives: u64,
    /// True announce-capable lease-days that were not inferred.
    pub false_negatives: u64,
}

impl TruthEvaluation {
    /// TP / (TP + FP).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// TP / (TP + FN).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Score a pipeline result day by day against the world's ground
/// truth. A true positive requires matching (prefix, delegator,
/// delegatee) of an *active, announced* lease on that day.
pub fn evaluate_against_truth(world: &LeaseWorld, result: &DailyDelegations) -> TruthEvaluation {
    let mut eval = TruthEvaluation::default();
    for (i, day) in result.days.iter().enumerate() {
        let date: Date = result.start + i as i64;
        let truth: HashSet<(nettypes::prefix::Prefix, nettypes::asn::Asn, nettypes::asn::Asn)> =
            world
                .true_bgp_delegations_on(date)
                .into_iter()
                .collect();
        let mut matched: HashSet<_> = HashSet::new();
        for d in day {
            let key = (d.prefix, d.delegator, d.delegatee);
            if truth.contains(&key) {
                eval.true_positives += 1;
                matched.insert(key);
            } else {
                eval.false_positives += 1;
            }
        }
        eval.false_negatives += (truth.len() - matched.len()) as u64;
    }
    eval
}

/// Per-extension ablation row: the same world scored under a config.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Config label.
    pub label: String,
    /// The scores.
    pub eval: TruthEvaluation,
    /// Mean daily delegation count.
    pub mean_daily_delegations: f64,
}

/// Build an ablation row from a labelled result.
pub fn ablation_row(
    label: impl Into<String>,
    world: &LeaseWorld,
    result: &DailyDelegations,
) -> AblationRow {
    let eval = evaluate_against_truth(world, result);
    let mean = result.days.iter().map(Vec::len).sum::<usize>() as f64
        / result.days.len().max(1) as f64;
    AblationRow {
        label: label.into(),
        eval,
        mean_daily_delegations: mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InferenceConfig;
    use crate::pipeline::{run_pipeline, PipelineInput};
    use bgpsim::observe::{render_day, ObservationDay, VisibilityModel};
    use bgpsim::scenario::WorldConfig;
    use bgpsim::topology::TopologyConfig;
    use nettypes::date::{date, DateRange};

    fn world_and_days() -> (LeaseWorld, Vec<ObservationDay>) {
        let w = LeaseWorld::generate(&WorldConfig {
            seed: 23,
            span: DateRange::new(date("2018-01-01"), date("2018-03-31")),
            topology: TopologyConfig {
                seed: 23,
                num_tier1: 4,
                num_tier2: 12,
                num_stubs: 120,
                multi_as_org_fraction: 0.15,
            },
            num_allocations: 40,
            initial_active_leases: 150,
            bgp_visible_fraction: 0.35,
            onoff_fraction: 0.4,
            num_hijacks: 6,
            num_moas: 4,
            num_as_sets: 2,
            num_scrubbing: 3,
            ..Default::default()
        });
        let model = VisibilityModel::default();
        let days: Vec<ObservationDay> = w
            .span
            .iter()
            .map(|d| render_day(&w, &model, d))
            .collect();
        (w, days)
    }

    #[test]
    fn metrics_arithmetic() {
        let e = TruthEvaluation {
            true_positives: 80,
            false_positives: 20,
            false_negatives: 20,
        };
        assert!((e.precision() - 0.8).abs() < 1e-12);
        assert!((e.recall() - 0.8).abs() < 1e-12);
        assert!((e.f1() - 0.8).abs() < 1e-12);
        let zero = TruthEvaluation::default();
        assert_eq!(zero.precision(), 0.0);
        assert_eq!(zero.recall(), 0.0);
        assert_eq!(zero.f1(), 0.0);
    }

    #[test]
    fn extended_beats_baseline() {
        let (w, days) = world_and_days();
        let as2org = crate::as2org::As2OrgSeries::from_topology(
            &w.topology,
            w.span.start,
            w.span.end,
            90,
        );
        let base = run_pipeline(
            PipelineInput::Days(&days),
            w.span,
            &InferenceConfig::baseline(),
            None,
        );
        let ext = run_pipeline(
            PipelineInput::Days(&days),
            w.span,
            &InferenceConfig::extended(),
            Some(&as2org),
        );
        let eb = evaluate_against_truth(&w, &base);
        let ee = evaluate_against_truth(&w, &ext);
        // Extension (v) fills gaps ⇒ recall up; extension (iv) removes
        // intra-org false positives ⇒ precision up.
        assert!(
            ee.recall() > eb.recall(),
            "recall: base {:.3} ext {:.3}",
            eb.recall(),
            ee.recall()
        );
        assert!(
            ee.precision() > eb.precision(),
            "precision: base {:.3} ext {:.3}",
            eb.precision(),
            ee.precision()
        );
        assert!(ee.f1() > eb.f1());
        // Both should be respectable on this clean world.
        assert!(ee.recall() > 0.7, "ext recall {:.3}", ee.recall());
        assert!(ee.precision() > 0.8, "ext precision {:.3}", ee.precision());
    }

    #[test]
    fn ablation_rows_labelled() {
        let (w, days) = world_and_days();
        let base = run_pipeline(
            PipelineInput::Days(&days),
            w.span,
            &InferenceConfig::baseline(),
            None,
        );
        let row = ablation_row("baseline", &w, &base);
        assert_eq!(row.label, "baseline");
        assert!(row.mean_daily_delegations > 0.0);
        assert!(row.eval.true_positives > 0);
    }
}
