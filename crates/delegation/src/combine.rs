//! The combined estimator the paper proposes as future work.
//!
//! §7: *"We argue that future research efforts should combine routing
//! information, RPKI data, as well as the RDAP databases to obtain a
//! better picture of the leasing ecosystem and its characteristics."*
//!
//! This module implements that combination: BGP delegations (daily
//! pipeline), RPKI delegations (ROA containment), and RDAP delegations
//! (registry extraction) are merged at address granularity, with
//! per-source attribution so every estimate is auditable. The
//! simulator's ground truth then quantifies what each source adds —
//! the experiment the paper's authors could not run.

use crate::base::Delegation;
use bgpsim::scenario::LeaseWorld;
use nettypes::date::Date;
use nettypes::prefix::Prefix;
use nettypes::set::PrefixSet;
use rdap::pipeline::RdapDelegation;
use rpki::delegation::RpkiDelegation;
use serde::{Deserialize, Serialize};

/// Which sources saw a delegated block.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct SourceAttribution {
    /// Seen in BGP routing data.
    pub bgp: bool,
    /// Seen in RPKI ROAs.
    pub rpki: bool,
    /// Registered in WHOIS/RDAP.
    pub rdap: bool,
}

impl SourceAttribution {
    /// Number of agreeing sources.
    pub fn count(&self) -> u8 {
        self.bgp as u8 + self.rpki as u8 + self.rdap as u8
    }
}

/// The combined leasing-market estimate for one day.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CombinedEstimate {
    /// Every delegated block seen by at least one source, with its
    /// attribution (sorted by prefix).
    pub blocks: Vec<(Prefix, SourceAttribution)>,
}

impl CombinedEstimate {
    /// Merge the three views. RDAP children that are not single CIDR
    /// blocks are decomposed into their minimal CIDR cover.
    pub fn build(
        bgp: &[Delegation],
        rpki: &[RpkiDelegation],
        rdap: &[RdapDelegation],
    ) -> CombinedEstimate {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<Prefix, SourceAttribution> = BTreeMap::new();
        for d in bgp {
            map.entry(d.prefix).or_default().bgp = true;
        }
        for d in rpki {
            map.entry(d.prefix).or_default().rpki = true;
        }
        for d in rdap {
            for p in d.child.to_cidrs() {
                map.entry(p).or_default().rdap = true;
            }
        }
        CombinedEstimate {
            blocks: map.into_iter().collect(),
        }
    }

    /// Unique delegated addresses in the combined estimate.
    pub fn address_set(&self) -> PrefixSet {
        self.blocks.iter().map(|(p, _)| *p).collect()
    }

    /// Addresses contributed by blocks a *single* source saw — what
    /// would be lost by dropping any one perspective.
    pub fn exclusive_addresses(&self) -> [u64; 3] {
        let only = |f: fn(&SourceAttribution) -> bool| -> u64 {
            self.blocks
                .iter()
                .filter(|(_, a)| a.count() == 1 && f(a))
                .map(|(p, _)| *p)
                .collect::<PrefixSet>()
                .num_addresses()
        };
        [
            only(|a| a.bgp),
            only(|a| a.rpki),
            only(|a| a.rdap),
        ]
    }

    /// Number of blocks seen by at least `k` sources.
    pub fn blocks_with_agreement(&self, k: u8) -> usize {
        self.blocks.iter().filter(|(_, a)| a.count() >= k).count()
    }
}

/// Ground-truth coverage of an estimate (fraction of truly leased
/// addresses captured) and its precision at address granularity.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MarketCoverage {
    /// Truly leased addresses on the evaluation day.
    pub true_addresses: u64,
    /// Addresses in the estimate.
    pub estimated_addresses: u64,
    /// Intersection.
    pub captured: u64,
    /// captured / true — how much of the market the estimate sees.
    pub market_recall: f64,
    /// captured / estimated — how much of the estimate is real.
    pub address_precision: f64,
}

/// Score an address set against the true leases active on `day`.
pub fn market_coverage(world: &LeaseWorld, day: Date, estimate: &PrefixSet) -> MarketCoverage {
    let truth: PrefixSet = world
        .true_leases_on(day)
        .iter()
        .map(|l| l.prefix)
        .collect();
    let captured = truth.intersection_size(estimate);
    let true_addresses = truth.num_addresses();
    let estimated_addresses = estimate.num_addresses();
    MarketCoverage {
        true_addresses,
        estimated_addresses,
        captured,
        market_recall: if true_addresses > 0 {
            captured as f64 / true_addresses as f64
        } else {
            0.0
        },
        address_precision: if estimated_addresses > 0 {
            captured as f64 / estimated_addresses as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettypes::asn::Asn;
    use nettypes::prefix::pfx;

    fn bgp(p: &str) -> Delegation {
        Delegation {
            prefix: pfx(p),
            parent: pfx("64.0.0.0/12"),
            delegator: Asn(1),
            delegatee: Asn(2),
        }
    }

    fn rpki(p: &str) -> RpkiDelegation {
        RpkiDelegation {
            prefix: pfx(p),
            delegator: Asn(1),
            delegatee: Asn(2),
        }
    }

    fn rdap(r: &str) -> RdapDelegation {
        RdapDelegation {
            child: r.parse().unwrap(),
            child_org: "C".into(),
            parent_handle: "P".into(),
            parent_org: "O".into(),
        }
    }

    #[test]
    fn attribution_merging() {
        let est = CombinedEstimate::build(
            &[bgp("64.0.1.0/24"), bgp("64.0.2.0/24")],
            &[rpki("64.0.1.0/24")],
            &[rdap("64.0.1.0 - 64.0.1.255"), rdap("64.0.3.0 - 64.0.3.255")],
        );
        assert_eq!(est.blocks.len(), 3);
        let get = |p: &str| {
            est.blocks
                .iter()
                .find(|(q, _)| *q == pfx(p))
                .map(|(_, a)| *a)
                .expect("block present")
        };
        let all3 = get("64.0.1.0/24");
        assert!(all3.bgp && all3.rpki && all3.rdap);
        assert_eq!(all3.count(), 3);
        assert_eq!(get("64.0.2.0/24").count(), 1);
        assert_eq!(get("64.0.3.0/24").count(), 1);
        assert_eq!(est.blocks_with_agreement(1), 3);
        assert_eq!(est.blocks_with_agreement(2), 1);
        assert_eq!(est.blocks_with_agreement(3), 1);
        assert_eq!(est.address_set().num_addresses(), 768);
    }

    #[test]
    fn exclusive_contributions() {
        let est = CombinedEstimate::build(
            &[bgp("64.0.1.0/24")],                     // BGP-only
            &[rpki("64.0.2.0/23")],                    // RPKI-only, bigger
            &[rdap("64.0.4.0 - 64.0.7.255")],          // RDAP-only /22
        );
        let [b, k, r] = est.exclusive_addresses();
        assert_eq!(b, 256);
        assert_eq!(k, 512);
        assert_eq!(r, 1024);
    }

    #[test]
    fn non_cidr_rdap_children_decomposed() {
        let est = CombinedEstimate::build(&[], &[], &[rdap("64.0.1.0 - 64.0.2.127")]);
        // 64.0.1.0/24 + 64.0.2.0/25
        assert_eq!(est.blocks.len(), 2);
        assert_eq!(est.address_set().num_addresses(), 256 + 128);
    }

    #[test]
    fn empty_inputs() {
        let est = CombinedEstimate::build(&[], &[], &[]);
        assert!(est.blocks.is_empty());
        assert_eq!(est.address_set().num_addresses(), 0);
        assert_eq!(est.exclusive_addresses(), [0, 0, 0]);
    }
}
