//! Shared helpers for the benchmark suite and the `repro` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use drywells::StudyConfig;

/// The study config benchmarks run against: quick scale so Criterion
/// iterations stay in the tens-of-milliseconds range.
pub fn bench_config() -> StudyConfig {
    StudyConfig::quick()
}
