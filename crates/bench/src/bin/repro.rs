//! `repro` — regenerate every table and figure of the paper, and run
//! the serving layer.
//!
//! ```sh
//! repro all                 # every artifact, quick scale
//! repro all --full          # every artifact, paper-scale windows
//! repro fig6 --seed 7       # one artifact, custom seed
//! repro fig6 --trace        # …with human-readable tracing on stderr
//! repro fig6 --trace=jsonl:trace.jsonl   # …with a machine trace
//! repro trace-check trace.jsonl          # validate a JSONL trace
//! repro profile fig6        # per-stage wall time / throughput tree
//! repro bench --json BENCH_PR10.json     # stage timings, machine-readable
//! repro lint                # workspace invariant gate (ratcheting baseline)
//! repro lint --update-baseline   # rewrite lint-baseline.txt
//! repro list                # what can be regenerated
//! repro serve               # HTTP + WHOIS server on ephemeral ports
//! repro loadgen --addr A    # load-generate against a running server
//! ```

use drywells::{csv, experiments, run_all, StudyConfig};
use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const ARTIFACTS: &[(&str, &str)] = &[
    ("table1", "Table 1: IPv4 exhaustion timeline per RIR"),
    ("s2-waitlists", "§2: post-exhaustion waiting-list status"),
    ("fig1", "Figure 1: evolution of price per IP by size and region"),
    ("fig2", "Figure 2: # of market transfers per region"),
    ("fig3", "Figure 3: inter-RIR transactions"),
    ("fig4", "Figure 4: advertised leasing prices"),
    ("fig5", "Figure 5: consistency-rule fail rates on RPKI delegations"),
    ("fig6", "Figure 6: BGP delegations w/wo the paper's extensions"),
    ("s4-coverage", "§4: BGP-delegations vs RDAP-delegations coverage"),
    ("s5-prediction", "§5: related-work prediction models vs the market"),
    ("s6-amortization", "§6: buy-vs-lease amortization times"),
    ("s6-behavior", "§6: market engagement by business model"),
    ("s7-combined", "§7: the combined BGP+RPKI+RDAP estimator (future work)"),
    ("sensitivity", "footnote 2 / Appendix A parameter sweeps"),
    ("all", "everything above, in order"),
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <artifact> [--full] [--seed N] [--csv DIR] [--threads N]\n\
         \x20                    [--trace[=stderr|=jsonl:PATH]]\n\
         \x20      repro profile <artifact> [--full] [--seed N] [--threads N]\n\
         \x20      repro trace-check PATH\n\
         \x20      repro flight-dump [artifact] [--full] [--seed N] [--threads N]\n\
         \x20                  [--out PATH]\n\
         \x20      repro bench [--json PATH] [--full] [--seed N] [--threads N]\n\
         \x20                  [--baseline PATH] [--max-ratio X]\n\
         \x20                  [--max-overhead-pct X] [--max-lint-ms X]\n\
         \x20      repro lint [--update-baseline] [--list] [--format json|text]\n\
         \x20                  [--explain Ln]\n\
         \x20      repro archive --out DIR [--full] [--seed N] [--threads N]\n\
         \x20      repro query DIR [--filter F] [--format csv|jsonl] [--lossy]\n\
         \x20                  [--limit N] [--threads N]\n\
         \x20      repro serve   [--full] [--seed N] [--port P] [--whois-port P]\n\
         \x20                    [--workers N] [--cap N] [--rate-burst N]\n\
         \x20                    [--rate-per-sec X] [--addr-file PATH]\n\
         \x20                    [--debug] [--trace[=stderr|=jsonl:PATH]]\n\
         \x20      repro loadgen (--addr HOST:PORT | --addr-file PATH)\n\
         \x20                    [--clients N] [--requests N] [--seed N]\n\n\
         --threads N   pin the worker pool (1 = sequential); defaults to\n\
         DRYWELLS_THREADS or the machine's parallelism. Output is\n\
         identical for any thread count.\n\
         --trace       stream spans/events; `jsonl:PATH` writes a trace\n\
         file that `repro trace-check` validates. Tracing never changes\n\
         results — artifacts are byte-identical with it on or off.\n\
         flight-dump   run an artifact and dump the always-on flight\n\
         ring as JSONL that `repro trace-check` accepts.\n\
         --debug       (serve) expose the /debug/flight, /debug/requests\n\
         and /debug/pool introspection routes.\n\nartifacts:"
    );
    for (name, what) in ARTIFACTS {
        eprintln!("  {name:<16} {what}");
    }
    ExitCode::FAILURE
}

/// `--trace` flag parsing shared by the artifact and serve commands.
/// `--trace` / `--trace=stderr` stream human-readable lines to stderr;
/// `--trace=jsonl:PATH` writes the machine-readable JSONL schema.
fn parse_trace_flag(arg: &str) -> Option<Result<TraceMode, String>> {
    let rest = if arg == "--trace" {
        ""
    } else {
        arg.strip_prefix("--trace=")?
    };
    Some(match rest {
        "" | "stderr" => Ok(TraceMode::Stderr),
        other => match other.strip_prefix("jsonl:") {
            Some(path) if !path.is_empty() => Ok(TraceMode::Jsonl(PathBuf::from(path))),
            _ => Err(format!(
                "bad --trace value {other:?} (expected stderr or jsonl:PATH)"
            )),
        },
    })
}

enum TraceMode {
    Stderr,
    Jsonl(PathBuf),
}

/// Install the requested subscriber. The returned guard must stay
/// alive for the traced region; dropping it uninstalls the subscriber
/// and flushes JSONL output.
fn install_trace(mode: &TraceMode) -> Result<obs::SubscriberGuard, String> {
    match mode {
        TraceMode::Stderr => Ok(obs::subscribe(std::sync::Arc::new(
            obs::StderrSubscriber,
        ))),
        TraceMode::Jsonl(path) => {
            let sub = obs::JsonlSubscriber::create(path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
            Ok(obs::subscribe(std::sync::Arc::new(sub)))
        }
    }
}

/// `repro trace-check PATH`: validate a JSONL trace written by
/// `--trace=jsonl:PATH`. Exit non-zero (listing every violation) if a
/// line fails to parse, spans don't nest/close per thread, or any
/// error-level event occurred.
fn cmd_trace_check(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("trace-check needs exactly one PATH");
        return usage();
    };
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match drywells::tracecheck::check_trace(&text) {
        Ok(stats) => {
            println!(
                "trace ok: {} span(s), {} event(s), max depth {}",
                stats.spans, stats.events, stats.max_depth
            );
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("trace-check: {e}");
            }
            eprintln!("trace-check: {} violation(s) in {path}", errors.len());
            ExitCode::FAILURE
        }
    }
}

/// `repro profile <artifact>`: run under a profile collector and print
/// the per-stage tree (wall time, items, throughput) plus the study
/// cache counters.
fn cmd_profile(args: &[String]) -> ExitCode {
    let mut artifact: Option<String> = None;
    let mut full = false;
    let mut seed: u64 = 2020;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => full = true,
            "--seed" => {
                let Some(v) = it.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--seed needs an integer");
                    return usage();
                };
                seed = v;
            }
            "--threads" => {
                let Some(v) = it.next().and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--threads needs an integer");
                    return usage();
                };
                env::set_var("DRYWELLS_THREADS", v.max(1).to_string());
            }
            other if artifact.is_none() => artifact = Some(other.to_string()),
            other => {
                eprintln!("unexpected profile argument {other:?}");
                return usage();
            }
        }
    }
    let Some(artifact) = artifact else {
        eprintln!("profile needs an artifact name");
        return usage();
    };
    let config = if full {
        StudyConfig::full_seeded(seed)
    } else {
        StudyConfig::quick_seeded(seed)
    };
    // lint:allow(L3): stderr wall-time note only, never reaches artifacts
    let t0 = Instant::now();
    match drywells::profile::run_profiled(&artifact, &config) {
        Ok(report) => {
            print!("{report}");
            eprintln!("# profiled {artifact} in {:.2?}", t0.elapsed());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            usage()
        }
    }
}

/// `repro serve`: build the serving state and run the HTTP + WHOIS
/// listeners until the process is killed (CI backgrounds it).
fn cmd_serve(args: &[String]) -> ExitCode {
    let mut full = false;
    let mut seed: u64 = 2020;
    let mut port: u16 = 0;
    let mut whois_port: u16 = 0;
    let mut workers: usize = 4;
    let mut cap: usize = 64;
    let mut rate_burst: u64 = 256;
    let mut rate_per_sec: f64 = 64.0;
    let mut addr_file: Option<PathBuf> = None;
    let mut debug_routes = false;
    let mut trace: Option<TraceMode> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(parsed) = parse_trace_flag(a) {
            match parsed {
                Ok(mode) => trace = Some(mode),
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            }
            continue;
        }
        let mut grab = |what: &str| -> Option<String> {
            let v = it.next().cloned();
            if v.is_none() {
                eprintln!("{what} needs a value");
            }
            v
        };
        match a.as_str() {
            "--full" => full = true,
            "--seed" => match grab("--seed").and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--port" => match grab("--port").and_then(|v| v.parse().ok()) {
                Some(v) => port = v,
                None => return usage(),
            },
            "--whois-port" => match grab("--whois-port").and_then(|v| v.parse().ok()) {
                Some(v) => whois_port = v,
                None => return usage(),
            },
            "--workers" => match grab("--workers").and_then(|v| v.parse().ok()) {
                Some(v) => workers = v,
                None => return usage(),
            },
            "--cap" => match grab("--cap").and_then(|v| v.parse().ok()) {
                Some(v) => cap = v,
                None => return usage(),
            },
            "--rate-burst" => match grab("--rate-burst").and_then(|v| v.parse().ok()) {
                Some(v) => rate_burst = v,
                None => return usage(),
            },
            "--rate-per-sec" => match grab("--rate-per-sec").and_then(|v| v.parse().ok()) {
                Some(v) => rate_per_sec = v,
                None => return usage(),
            },
            "--addr-file" => match grab("--addr-file") {
                Some(v) => addr_file = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--debug" => debug_routes = true,
            other => {
                eprintln!("unexpected serve argument {other:?}");
                return usage();
            }
        }
    }

    // The server runs until killed, so the guard lives for the whole
    // process; buffered JSONL output may lose its tail on SIGKILL.
    let _trace_guard = match trace.as_ref().map(install_trace) {
        Some(Ok(guard)) => Some(guard),
        Some(Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        None => None,
    };

    let config = if full {
        StudyConfig::full_seeded(seed)
    } else {
        StudyConfig::quick_seeded(seed)
    };
    eprintln!("# building serving state (scale {:?}, seed {seed})…", config.scale);
    let app = serve::App::from_study(
        &config,
        Some(serve::RateLimitConfig {
            burst: rate_burst,
            per_second: rate_per_sec,
        }),
    )
    .with_debug_routes(debug_routes);
    let server_config = serve::ServerConfig {
        http_addr: ([127, 0, 0, 1], port).into(),
        whois_addr: Some(([127, 0, 0, 1], whois_port).into()),
        workers,
        max_connections: cap,
        ..serve::ServerConfig::default()
    };
    let server = match serve::Server::start(app, server_config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    let http = server.http_addr();
    let Some(whois) = server.whois_addr() else {
        eprintln!("whois listener failed to come up");
        return ExitCode::FAILURE;
    };
    println!("listening http={http} whois={whois}");
    if let Some(path) = &addr_file {
        // The file is the startup handshake for scripts: it appears
        // only once both listeners are live.
        if let Err(e) = fs::write(path, format!("{http}\n{whois}\n")) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("# wrote {}", path.display());
    }
    eprintln!("# serving until killed (workers {workers}, connection cap {cap})");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// `repro loadgen`: drive a running server, print the throughput and
/// latency report, exit non-zero on any protocol error.
fn cmd_loadgen(args: &[String]) -> ExitCode {
    let mut config = serve::loadgen::LoadgenConfig::default();
    let mut addr: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab = |what: &str| -> Option<String> {
            let v = it.next().cloned();
            if v.is_none() {
                eprintln!("{what} needs a value");
            }
            v
        };
        match a.as_str() {
            "--addr" => match grab("--addr") {
                Some(v) => addr = Some(v),
                None => return usage(),
            },
            "--addr-file" => match grab("--addr-file") {
                Some(path) => match fs::read_to_string(&path) {
                    // First line of the handshake file is the HTTP address.
                    Ok(text) => addr = text.lines().next().map(str::to_string),
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => return usage(),
            },
            "--clients" => match grab("--clients").and_then(|v| v.parse().ok()) {
                Some(v) => config.clients = v,
                None => return usage(),
            },
            "--requests" => match grab("--requests").and_then(|v| v.parse().ok()) {
                Some(v) => config.requests_per_client = v,
                None => return usage(),
            },
            "--seed" => match grab("--seed").and_then(|v| v.parse().ok()) {
                Some(v) => config.seed = v,
                None => return usage(),
            },
            other => {
                eprintln!("unexpected loadgen argument {other:?}");
                return usage();
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("loadgen needs --addr HOST:PORT or --addr-file PATH");
        return usage();
    };
    config.addr = match addr.trim().parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bad address {addr:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match serve::loadgen::run(&config) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                eprintln!("loadgen: protocol errors detected");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro bench [--json PATH] [--full] [--seed N] [--threads N]
/// [--baseline PATH] [--max-ratio X]`: time the named pipeline stages
/// (world build, render_days, MRT encode, delegation pipeline, fig6
/// end-to-end) and optionally write the machine-readable JSON report.
/// With `--baseline`, compare every guarded quick-scale stage
/// (`render_days`, `mrt_encode`, `delegation_pipeline`) against the
/// committed JSON and exit non-zero past `--max-ratio` (default 2.0).
fn cmd_bench(args: &[String]) -> ExitCode {
    let mut json_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut max_ratio = 2.0f64;
    let mut max_overhead_pct: Option<f64> = None;
    let mut max_lint_ms = 2000.0f64;
    let mut full = false;
    let mut seed: u64 = 2020;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => full = true,
            "--json" => {
                let Some(p) = it.next() else {
                    eprintln!("--json needs a PATH");
                    return usage();
                };
                json_path = Some(PathBuf::from(p));
            }
            "--baseline" => {
                let Some(p) = it.next() else {
                    eprintln!("--baseline needs a PATH");
                    return usage();
                };
                baseline_path = Some(PathBuf::from(p));
            }
            "--max-ratio" => {
                let Some(v) = it.next().and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--max-ratio needs a number");
                    return usage();
                };
                max_ratio = v;
            }
            "--max-overhead-pct" => {
                let Some(v) = it.next().and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--max-overhead-pct needs a number");
                    return usage();
                };
                max_overhead_pct = Some(v);
            }
            "--max-lint-ms" => {
                let Some(v) = it.next().and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--max-lint-ms needs a number");
                    return usage();
                };
                max_lint_ms = v;
            }
            "--seed" => {
                let Some(v) = it.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--seed needs an integer");
                    return usage();
                };
                seed = v;
            }
            "--threads" => {
                let Some(v) = it.next().and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--threads needs an integer");
                    return usage();
                };
                env::set_var("DRYWELLS_THREADS", v.max(1).to_string());
            }
            other => {
                eprintln!("unexpected bench argument {other:?}");
                return usage();
            }
        }
    }
    let report = match drywells::bench::run(seed, full) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    if let Some(path) = &json_path {
        if let Err(e) = fs::write(path, report.to_json()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("# wrote {}", path.display());
    }
    if let Some(path) = &baseline_path {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        match drywells::bench::check_regression(&report, &text, max_ratio) {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(max_pct) = max_overhead_pct {
        match drywells::bench::check_overhead(&report, max_pct) {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // The lint gate runs on every CI job, so its wall time is always
    // budgeted (override the 2 s default with --max-lint-ms).
    match drywells::bench::check_lint_budget(&report, max_lint_ms) {
        Ok(msg) => println!("{msg}"),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `repro archive --out DIR [--full] [--seed N] [--threads N]`:
/// generate the RFC 6396 collector archive for the study window and
/// write it to a directory that `repro query` (and the serve layer)
/// can scan.
fn cmd_archive(args: &[String]) -> ExitCode {
    let mut out: Option<PathBuf> = None;
    let mut full = false;
    let mut seed: u64 = 2020;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => full = true,
            "--out" => {
                let Some(p) = it.next() else {
                    eprintln!("--out needs a DIR");
                    return usage();
                };
                out = Some(PathBuf::from(p));
            }
            "--seed" => {
                let Some(v) = it.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--seed needs an integer");
                    return usage();
                };
                seed = v;
            }
            "--threads" => {
                let Some(v) = it.next().and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--threads needs an integer");
                    return usage();
                };
                env::set_var("DRYWELLS_THREADS", v.max(1).to_string());
            }
            other => {
                eprintln!("unexpected archive argument {other:?}");
                return usage();
            }
        }
    }
    let Some(out) = out else {
        eprintln!("archive needs --out DIR");
        return usage();
    };
    let config = if full {
        StudyConfig::full_seeded(seed)
    } else {
        StudyConfig::quick_seeded(seed)
    };
    eprintln!("# building world and rendering days (scale {:?}, seed {seed})…", config.scale);
    let study = experiments::build_bgp_study(&config);
    let archive = match bgpsim::updates::CollectorArchiveV2::generate(
        &study.world,
        study.visibility_model(),
        study.world.span,
        &bgpsim::updates::ArchiveV2Config::default(),
    ) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("archive generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match archive.write_dir(&out) {
        Ok(n) => {
            println!(
                "wrote {n} MRT files ({:.1} MiB) to {}",
                archive.total_bytes() as f64 / (1024.0 * 1024.0),
                out.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {}: {e}", out.display());
            ExitCode::FAILURE
        }
    }
}

/// `repro query DIR [--filter F] [--format csv|jsonl] [--lossy]
/// [--limit N] [--threads N]`: scan an on-disk MRT archive directory,
/// print matching rows to stdout and scan accounting to stderr.
/// Strict mode exits non-zero on the first damaged record; `--lossy`
/// skips damage, reports it (per-reason counts plus bytes left
/// unscanned after an aborted file), and still exits zero.
fn cmd_query(args: &[String]) -> ExitCode {
    use bgpsim::query::{Filter, OutputFormat, QueryOptions};
    let mut dir: Option<PathBuf> = None;
    let mut opts = QueryOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--filter" => {
                let Some(v) = it.next() else {
                    eprintln!("--filter needs a filter string");
                    return usage();
                };
                opts.filter = match Filter::parse(v) {
                    Ok(f) => f,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--format" => {
                let Some(v) = it.next() else {
                    eprintln!("--format needs csv or jsonl");
                    return usage();
                };
                opts.format = match v.parse::<OutputFormat>() {
                    Ok(f) => f,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--lossy" => opts.lossy = true,
            "--limit" => {
                let Some(v) = it.next().and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--limit needs an integer");
                    return usage();
                };
                opts.limit = Some(v);
            }
            "--threads" => {
                let Some(v) = it.next().and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--threads needs an integer");
                    return usage();
                };
                env::set_var("DRYWELLS_THREADS", v.max(1).to_string());
                opts.threads = v.max(1);
            }
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unexpected query argument {other:?}");
                return usage();
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("query needs an archive DIR (see `repro archive --out DIR`)");
        return usage();
    };
    let files = match bgpsim::query::files_from_dir(&dir) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot read archive dir {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    if files.is_empty() {
        eprintln!("no archive files (rib-*.mrt / updates-*.mrt / day-*.mrtd) in {}", dir.display());
        return ExitCode::FAILURE;
    }
    match bgpsim::query::run_query(&files, &opts) {
        Ok(out) => {
            print!("{}", out.body);
            let s = &out.stats;
            eprintln!(
                "# query: {} file(s) scanned ({} pruned by day), {} element(s), \
                 {} row(s) emitted ({} matched)",
                s.files_scanned, s.files_pruned, s.elems_scanned, s.rows_emitted, s.rows_matched
            );
            if opts.lossy && !s.lossy.is_clean() {
                eprintln!(
                    "# lossy: {} record(s) skipped ({} truncated, {} malformed, {} bgp), \
                     aborted={}, {} byte(s) unscanned",
                    s.lossy.skipped(),
                    s.lossy.skipped_truncated,
                    s.lossy.skipped_malformed,
                    s.lossy.skipped_bgp,
                    s.lossy.aborted,
                    s.lossy.bytes_unscanned
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("query failed: {e} (use --lossy to skip damaged records)");
            ExitCode::FAILURE
        }
    }
}

/// `repro lint [--update-baseline] [--format json] [--explain Ln]`:
/// the workspace invariant gate. Scans every crate against rules
/// L1–L10 and compares the findings to the committed ratchet
/// baseline; new findings and stale baseline entries both exit
/// non-zero. `--format json` emits the SARIF-shaped report CI uploads
/// as an artifact; `--explain` prints the invariant behind a rule.
fn cmd_lint(args: &[String]) -> ExitCode {
    let mut update = false;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--update-baseline" => update = true,
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("json") => json = true,
                    Some("text") => json = false,
                    _ => {
                        eprintln!("lint: --format needs a value (json or text)");
                        return usage();
                    }
                }
            }
            "--explain" => {
                let Some(id) = args.get(i + 1) else {
                    eprintln!("lint: --explain needs a rule id (L1…L10)");
                    return usage();
                };
                return match lint::Rule::parse(id) {
                    Some(rule) => {
                        println!("{}", rule.explain());
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!(
                            "lint: unknown rule {id:?}; known rules: {}",
                            lint::ALL_RULES
                                .iter()
                                .map(|r| r.id())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        ExitCode::FAILURE
                    }
                };
            }
            other => {
                eprintln!("lint: unexpected argument {other:?}");
                return usage();
            }
        }
        i += 1;
    }
    let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = lint::find_workspace_root(&cwd) else {
        eprintln!("lint: no [workspace] Cargo.toml above {}", cwd.display());
        return ExitCode::FAILURE;
    };
    match lint::run(&root, &root.join(lint::BASELINE_FILE), update) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.render());
            }
            if report.ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("lint: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Run one named artifact and return its rendered text; `None` for an
/// unknown name. Shared by the default artifact command and
/// `repro flight-dump`.
fn artifact_output(artifact: &str, config: &StudyConfig) -> Option<String> {
    Some(match artifact {
        "table1" => experiments::table1::run().rendered,
        "s2-waitlists" => experiments::s2_waitlists::run(config).rendered,
        "fig1" => experiments::fig1::run(config).rendered,
        "fig2" => experiments::fig2::run(config).rendered,
        "fig3" => experiments::fig3::run(config).rendered,
        "fig4" => experiments::fig4::run().rendered,
        "fig5" => experiments::fig5::run(config).rendered,
        "fig6" => experiments::fig6::run(config).rendered,
        "s4-coverage" => experiments::s4_coverage::run(config).rendered,
        "s5-prediction" => experiments::s5_prediction::run(config)
            .map(|r| r.rendered)
            .unwrap_or_else(|| "insufficient data".into()),
        "s6-amortization" => experiments::s6_amortization::run().rendered,
        "s6-behavior" => experiments::s6_behavior::run(config).rendered,
        "s7-combined" => experiments::s7_combined::run(config).rendered,
        "sensitivity" => experiments::sensitivity::run(config).rendered,
        "all" => run_all(config),
        _ => return None,
    })
}

/// `repro flight-dump [artifact] [--full] [--seed N] [--threads N]
/// [--out PATH]`: run an artifact (default fig6) with the always-on
/// flight recorder, then dump the ring as trace-check-compatible
/// JSONL — to stdout, or to `--out PATH`. `repro trace-check` accepts
/// the output directly.
fn cmd_flight_dump(args: &[String]) -> ExitCode {
    let mut artifact: Option<String> = None;
    let mut full = false;
    let mut seed: u64 = 2020;
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => full = true,
            "--seed" => {
                let Some(v) = it.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--seed needs an integer");
                    return usage();
                };
                seed = v;
            }
            "--threads" => {
                let Some(v) = it.next().and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--threads needs an integer");
                    return usage();
                };
                env::set_var("DRYWELLS_THREADS", v.max(1).to_string());
            }
            "--out" => {
                let Some(p) = it.next() else {
                    eprintln!("--out needs a PATH");
                    return usage();
                };
                out = Some(PathBuf::from(p));
            }
            other if artifact.is_none() && !other.starts_with('-') => {
                artifact = Some(other.to_string());
            }
            other => {
                eprintln!("unexpected flight-dump argument {other:?}");
                return usage();
            }
        }
    }
    let artifact = artifact.unwrap_or_else(|| "fig6".to_string());
    let config = if full {
        StudyConfig::full_seeded(seed)
    } else {
        StudyConfig::quick_seeded(seed)
    };
    eprintln!("# running {artifact} with the flight recorder (scale {:?}, seed {seed})…", config.scale);
    if artifact_output(&artifact, &config).is_none() {
        eprintln!("unknown artifact {artifact:?}");
        return usage();
    }
    let snapshot = obs::flight::global().snapshot_jsonl();
    let lines = snapshot.lines().count();
    match &out {
        Some(path) => {
            if let Err(e) = fs::write(path, &snapshot) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("# wrote {lines} JSONL line(s) to {}", path.display());
        }
        None => {
            print!("{snapshot}");
            eprintln!("# {lines} JSONL line(s) from the flight ring");
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    // The serving subcommands have their own flags; dispatch early.
    match args.first().map(String::as_str) {
        Some("serve") => return cmd_serve(&args[1..]),
        Some("loadgen") => return cmd_loadgen(&args[1..]),
        Some("profile") => return cmd_profile(&args[1..]),
        Some("trace-check") => return cmd_trace_check(&args[1..]),
        Some("flight-dump") => return cmd_flight_dump(&args[1..]),
        Some("bench") => return cmd_bench(&args[1..]),
        Some("lint") => return cmd_lint(&args[1..]),
        Some("archive") => return cmd_archive(&args[1..]),
        Some("query") => return cmd_query(&args[1..]),
        _ => {}
    }
    let mut artifact: Option<String> = None;
    let mut full = false;
    let mut seed: u64 = 2020;
    let mut csv_dir: Option<PathBuf> = None;
    let mut trace: Option<TraceMode> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(parsed) = parse_trace_flag(a) {
            match parsed {
                Ok(mode) => trace = Some(mode),
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            }
            continue;
        }
        match a.as_str() {
            "--full" => full = true,
            "--csv" => {
                let Some(dir) = it.next() else {
                    eprintln!("--csv needs a directory");
                    return usage();
                };
                csv_dir = Some(PathBuf::from(dir));
            }
            "--seed" => {
                let Some(v) = it.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--seed needs an integer");
                    return usage();
                };
                seed = v;
            }
            "--threads" => {
                let Some(v) = it.next().and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--threads needs an integer");
                    return usage();
                };
                // The pool reads DRYWELLS_THREADS at each fan-out.
                env::set_var("DRYWELLS_THREADS", v.max(1).to_string());
            }
            "list" | "--help" | "-h" => return usage(),
            other if artifact.is_none() => artifact = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument {other:?}");
                return usage();
            }
        }
    }
    let Some(artifact) = artifact else {
        return usage();
    };
    // Installed before the run; dropped (flushing JSONL) before exit.
    let trace_guard = match trace.as_ref().map(install_trace) {
        Some(Ok(guard)) => Some(guard),
        Some(Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        None => None,
    };

    let config = if full {
        StudyConfig::full_seeded(seed)
    } else {
        StudyConfig::quick_seeded(seed)
    };
    eprintln!(
        "# scale: {:?}, seed: {seed}, BGP window {} → {}, workers: {}",
        config.scale,
        config.world.span.start,
        config.world.span.end,
        bgpsim::par::num_threads()
    );

    // lint:allow(L3): stderr wall-time note only, never reaches artifacts
    let t0 = Instant::now();
    let Some(output) = artifact_output(&artifact, &config) else {
        eprintln!("unknown artifact {artifact:?}");
        return usage();
    };
    if let Some(dir) = &csv_dir {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let write = |name: &str, contents: String| {
            let path = dir.join(name);
            match fs::write(&path, contents) {
                Ok(()) => eprintln!("# wrote {}", path.display()),
                Err(e) => eprintln!("# FAILED to write {}: {e}", path.display()),
            }
        };
        let wants = |a: &str| artifact == "all" || artifact == a;
        if wants("fig1") {
            write("fig1_prices.csv", csv::fig1_csv(&experiments::fig1::run(&config)));
        }
        if wants("fig2") {
            write("fig2_transfers.csv", csv::fig2_csv(&experiments::fig2::run(&config)));
        }
        if wants("fig3") {
            write("fig3_inter_rir.csv", csv::fig3_csv(&experiments::fig3::run(&config)));
        }
        if wants("fig4") {
            write("fig4_leasing.csv", csv::fig4_csv(&experiments::fig4::run()));
        }
        if wants("fig5") {
            write("fig5_fail_rates.csv", csv::fig5_csv(&experiments::fig5::run(&config)));
        }
        if wants("fig6") {
            write("fig6_delegations.csv", csv::fig6_csv(&experiments::fig6::run(&config)));
        }
        if wants("sensitivity") {
            write(
                "sensitivity.csv",
                csv::sensitivity_csv(&experiments::sensitivity::run(&config)),
            );
        }
    }
    println!("{output}");
    eprintln!("# regenerated {artifact} in {:.2?}", t0.elapsed());
    drop(trace_guard);
    ExitCode::SUCCESS
}
