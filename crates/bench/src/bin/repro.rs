//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! repro all                 # every artifact, quick scale
//! repro all --full          # every artifact, paper-scale windows
//! repro fig6 --seed 7       # one artifact, custom seed
//! repro list                # what can be regenerated
//! ```

use drywells::{csv, experiments, run_all, StudyConfig};
use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const ARTIFACTS: &[(&str, &str)] = &[
    ("table1", "Table 1: IPv4 exhaustion timeline per RIR"),
    ("s2-waitlists", "§2: post-exhaustion waiting-list status"),
    ("fig1", "Figure 1: evolution of price per IP by size and region"),
    ("fig2", "Figure 2: # of market transfers per region"),
    ("fig3", "Figure 3: inter-RIR transactions"),
    ("fig4", "Figure 4: advertised leasing prices"),
    ("fig5", "Figure 5: consistency-rule fail rates on RPKI delegations"),
    ("fig6", "Figure 6: BGP delegations w/wo the paper's extensions"),
    ("s4-coverage", "§4: BGP-delegations vs RDAP-delegations coverage"),
    ("s5-prediction", "§5: related-work prediction models vs the market"),
    ("s6-amortization", "§6: buy-vs-lease amortization times"),
    ("s6-behavior", "§6: market engagement by business model"),
    ("s7-combined", "§7: the combined BGP+RPKI+RDAP estimator (future work)"),
    ("sensitivity", "footnote 2 / Appendix A parameter sweeps"),
    ("all", "everything above, in order"),
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <artifact> [--full] [--seed N] [--csv DIR] [--threads N]\n\n\
         --threads N   pin the worker pool (1 = sequential); defaults to\n\
         DRYWELLS_THREADS or the machine's parallelism. Output is\n\
         identical for any thread count.\n\nartifacts:"
    );
    for (name, what) in ARTIFACTS {
        eprintln!("  {name:<16} {what}");
    }
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut artifact: Option<String> = None;
    let mut full = false;
    let mut seed: u64 = 2020;
    let mut csv_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => full = true,
            "--csv" => {
                let Some(dir) = it.next() else {
                    eprintln!("--csv needs a directory");
                    return usage();
                };
                csv_dir = Some(PathBuf::from(dir));
            }
            "--seed" => {
                let Some(v) = it.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--seed needs an integer");
                    return usage();
                };
                seed = v;
            }
            "--threads" => {
                let Some(v) = it.next().and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--threads needs an integer");
                    return usage();
                };
                // The pool reads DRYWELLS_THREADS at each fan-out.
                env::set_var("DRYWELLS_THREADS", v.max(1).to_string());
            }
            "list" | "--help" | "-h" => return usage(),
            other if artifact.is_none() => artifact = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument {other:?}");
                return usage();
            }
        }
    }
    let Some(artifact) = artifact else {
        return usage();
    };

    let config = if full {
        StudyConfig::full_seeded(seed)
    } else {
        StudyConfig::quick_seeded(seed)
    };
    eprintln!(
        "# scale: {:?}, seed: {seed}, BGP window {} → {}, workers: {}",
        config.scale,
        config.world.span.start,
        config.world.span.end,
        bgpsim::par::num_threads()
    );

    let t0 = Instant::now();
    let output = match artifact.as_str() {
        "table1" => experiments::table1::run().rendered,
        "s2-waitlists" => experiments::s2_waitlists::run(&config).rendered,
        "fig1" => experiments::fig1::run(&config).rendered,
        "fig2" => experiments::fig2::run(&config).rendered,
        "fig3" => experiments::fig3::run(&config).rendered,
        "fig4" => experiments::fig4::run().rendered,
        "fig5" => experiments::fig5::run(&config).rendered,
        "fig6" => experiments::fig6::run(&config).rendered,
        "s4-coverage" => experiments::s4_coverage::run(&config).rendered,
        "s5-prediction" => experiments::s5_prediction::run(&config)
            .map(|r| r.rendered)
            .unwrap_or_else(|| "insufficient data".into()),
        "s6-amortization" => experiments::s6_amortization::run().rendered,
        "s6-behavior" => experiments::s6_behavior::run(&config).rendered,
        "s7-combined" => experiments::s7_combined::run(&config).rendered,
        "sensitivity" => experiments::sensitivity::run(&config).rendered,
        "all" => run_all(&config),
        other => {
            eprintln!("unknown artifact {other:?}");
            return usage();
        }
    };
    if let Some(dir) = &csv_dir {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let write = |name: &str, contents: String| {
            let path = dir.join(name);
            match fs::write(&path, contents) {
                Ok(()) => eprintln!("# wrote {}", path.display()),
                Err(e) => eprintln!("# FAILED to write {}: {e}", path.display()),
            }
        };
        let wants = |a: &str| artifact == "all" || artifact == a;
        if wants("fig1") {
            write("fig1_prices.csv", csv::fig1_csv(&experiments::fig1::run(&config)));
        }
        if wants("fig2") {
            write("fig2_transfers.csv", csv::fig2_csv(&experiments::fig2::run(&config)));
        }
        if wants("fig3") {
            write("fig3_inter_rir.csv", csv::fig3_csv(&experiments::fig3::run(&config)));
        }
        if wants("fig4") {
            write("fig4_leasing.csv", csv::fig4_csv(&experiments::fig4::run()));
        }
        if wants("fig5") {
            write("fig5_fail_rates.csv", csv::fig5_csv(&experiments::fig5::run(&config)));
        }
        if wants("fig6") {
            write("fig6_delegations.csv", csv::fig6_csv(&experiments::fig6::run(&config)));
        }
        if wants("sensitivity") {
            write(
                "sensitivity.csv",
                csv::sensitivity_csv(&experiments::sensitivity::run(&config)),
            );
        }
    }
    println!("{output}");
    eprintln!("# regenerated {artifact} in {:.2?}", t0.elapsed());
    ExitCode::SUCCESS
}
