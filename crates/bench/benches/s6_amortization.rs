//! Bench: §6 — the amortization scenario grid (trivial arithmetic;
//! included so every paper artifact has a bench target).

use criterion::{criterion_group, criterion_main, Criterion};
use market::amortization::{amortization_months, section6_scenarios};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("s6/scenario_grid", |b| {
        b.iter(|| {
            for s in section6_scenarios() {
                black_box(s.months());
            }
        })
    });
    c.bench_function("s6/single_amortization", |b| {
        b.iter(|| black_box(amortization_months(22.50, 0.75, 0.05)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
