//! Micro-benchmarks of the render-engine primitives: the four pieces
//! of day-invariant work the [`bgpsim::engine::RenderEngine`] hoists
//! out of the per-day loop, each next to the legacy-shaped work it
//! replaces.
//!
//! 1. interval index: `engine_build` (paid once) and `render_day_warm`
//!    (the residual per-day cost) vs `world_event_scan` (the full
//!    per-day scan the legacy path repeated);
//! 2. stable-visibility bitsets: `render_day_warm` performs only one
//!    flicker hash per surviving monitor bit;
//! 3. path interning: `render_span_sequential` re-uses one arena
//!    across all days vs `render_day_oneshot`, which pays a cold
//!    engine + arena per day (the legacy per-call shape);
//! 4. dense-state BFS: `valley_free_path` over monitor→origin pairs.
//!
//! Plus the incremental cross-day delta primitives, each next to the
//! full-recompute work it replaces:
//!
//! 5. touched-prefix extraction: `delta_advance_span` (seed once, then
//!    one `advance_state` per transition) vs `full_render_span` (one
//!    `per_monitor_routes` per day);
//! 6. patch-apply materialization: `state_routes_warm` (read the
//!    patch-maintained candidates) vs `per_monitor_routes_warm` (full
//!    selection from scratch);
//! 7. update encoding: `archive_delta` (delta-fed `encode_updates`
//!    from `SelChange` lists) vs `archive_full_recompute` (merge-join
//!    over two full per-peer states), both single-threaded.

use bgpsim::engine::RenderEngine;
use bgpsim::observe::{monitor_ases, render_day, render_days_with_threads, VisibilityModel};
use bgpsim::scenario::LeaseWorld;
use bgpsim::updates::{ArchiveV2Config, CollectorArchiveV2};
use criterion::{criterion_group, criterion_main, Criterion};
use nettypes::date::date;
use std::hint::black_box;

fn setup() -> (LeaseWorld, VisibilityModel) {
    let world = LeaseWorld::generate(&bench::bench_config().world);
    (world, VisibilityModel::default())
}

fn bench_event_indexing(c: &mut Criterion) {
    let (world, model) = setup();
    let day = date("2018-02-01");
    // The per-day scan the interval index replaces.
    c.bench_function("engine/world_event_scan", |b| {
        b.iter(|| black_box(world.announced_routes_on(day)))
    });
    // The one-time precompute the index costs.
    c.bench_function("engine/engine_build", |b| {
        b.iter(|| black_box(RenderEngine::new(&world, &model)))
    });
}

fn bench_render_day(c: &mut Criterion) {
    let (world, model) = setup();
    let day = date("2018-02-01");
    // Residual per-day work with a shared engine and warm scratch:
    // interval deltas + one flicker hash per set mask bit + interned
    // path lookups.
    let engine = RenderEngine::new(&world, &model);
    c.bench_function("engine/render_day_warm", |b| {
        let mut scratch = engine.scratch();
        b.iter(|| black_box(engine.render_day(&mut scratch, day)))
    });
    // The legacy per-call shape: everything recomputed per day.
    c.bench_function("engine/render_day_oneshot", |b| {
        b.iter(|| black_box(render_day(&world, &model, day)))
    });
}

fn bench_render_span(c: &mut Criterion) {
    let (world, model) = setup();
    // One engine amortized across a whole span, sequentially — the
    // sweep + arena reuse path the daily pipeline takes.
    c.bench_function("engine/render_span_sequential", |b| {
        b.iter(|| black_box(render_days_with_threads(&world, &model, world.span, 1)))
    });
}

fn bench_per_monitor_state(c: &mut Criterion) {
    let (world, model) = setup();
    let day = date("2018-02-01");
    let engine = RenderEngine::new(&world, &model);
    // Best-route selection via precomputed ranks + sort/dedup, warm.
    c.bench_function("engine/per_monitor_routes_warm", |b| {
        let mut scratch = engine.scratch();
        b.iter(|| black_box(engine.per_monitor_routes(&mut scratch, day)))
    });
}

fn bench_valley_free_path(c: &mut Criterion) {
    let (world, model) = setup();
    let monitors = monitor_ases(&world, &model);
    let origins: Vec<_> = world.allocations.iter().map(|a| a.asn).collect();
    // The dense-state BFS primitive: flat seen/parent arrays indexed
    // by (node, phase) instead of hash sets of (Asn, phase).
    c.bench_function("engine/valley_free_path", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for &m in &monitors {
                for &o in &origins {
                    if world.topology.path(m, o).is_some() {
                        found += 1;
                    }
                }
            }
            black_box(found)
        })
    });
}

fn bench_delta_advance(c: &mut Criterion) {
    let (world, model) = setup();
    let engine = RenderEngine::new(&world, &model);
    let days: Vec<_> = world.span.iter().collect();
    // Touched-prefix extraction: one seed plus one `advance_state`
    // (CSR interval deltas + flicker-bit XOR + sorted patch apply) per
    // day transition across the span.
    c.bench_function("engine/delta_advance_span", |b| {
        b.iter(|| {
            let mut state = engine.seed_state(days[0]).expect("day 0 in span");
            let mut changes = Vec::new();
            let mut touched = 0usize;
            while engine.advance_state(&mut state, &mut changes).is_some() {
                touched += changes.iter().map(Vec::len).sum::<usize>();
            }
            black_box(touched)
        })
    });
    // The full recompute the delta sweep replaces: every day's
    // per-monitor routes from scratch (warm scratch, shared engine).
    c.bench_function("engine/full_render_span", |b| {
        let mut scratch = engine.scratch();
        b.iter(|| {
            let mut total = 0usize;
            for &d in &days {
                total += engine
                    .per_monitor_routes(&mut scratch, d)
                    .iter()
                    .map(Vec::len)
                    .sum::<usize>();
            }
            black_box(total)
        })
    });
}

fn bench_patch_apply_vs_full(c: &mut Criterion) {
    let (world, model) = setup();
    let engine = RenderEngine::new(&world, &model);
    let days: Vec<_> = world.span.iter().collect();
    // A mid-span state that has absorbed many patches — reading its
    // routes is the per-day cost of the incremental path once seeded.
    let mut state = engine.seed_state(days[0]).expect("day 0 in span");
    let mut changes = Vec::new();
    for _ in 0..days.len() / 2 {
        engine.advance_state(&mut state, &mut changes);
    }
    c.bench_function("engine/state_routes_warm", |b| {
        b.iter(|| black_box(engine.state_routes(&state)))
    });
    // `per_monitor_routes_warm` in `bench_per_monitor_state` is the
    // from-scratch selection this replaces.
}

fn bench_archive_delta_vs_full(c: &mut Criterion) {
    let (world, model) = setup();
    let cfg = ArchiveV2Config::default();
    // Delta-fed update encoding straight from `SelChange` lists…
    c.bench_function("engine/archive_delta", |b| {
        b.iter(|| {
            black_box(
                CollectorArchiveV2::generate_with_threads(&world, &model, world.span, &cfg, 1)
                    .expect("archive encodes"),
            )
        })
    });
    // …vs the merge-join over two full per-peer states per day.
    c.bench_function("engine/archive_full_recompute", |b| {
        b.iter(|| {
            black_box(
                CollectorArchiveV2::generate_full_recompute_with_threads(
                    &world, &model, world.span, &cfg, 1,
                )
                .expect("archive encodes"),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_event_indexing,
    bench_render_day,
    bench_render_span,
    bench_per_monitor_state,
    bench_valley_free_path,
    bench_delta_advance,
    bench_patch_apply_vs_full,
    bench_archive_delta_vs_full,
);
criterion_main!(benches);
