//! Bench: Figure 3 — inter-RIR flow aggregation.

use bench::bench_config;
use criterion::{criterion_group, criterion_main, Criterion};
use registry::simulate::simulate;
use registry::stats::{inter_rir_flows, inter_rir_net_by_rir};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let history = simulate(&bench_config().registry);
    c.bench_function("fig3/inter_rir_flows", |b| {
        b.iter(|| black_box(inter_rir_flows(&history.log)))
    });
    c.bench_function("fig3/net_by_rir", |b| {
        b.iter(|| black_box(inter_rir_net_by_rir(&history.log)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
