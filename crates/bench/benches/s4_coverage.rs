//! Bench: §4 — WHOIS database construction, the RDAP extraction
//! pipeline, and the two-way coverage computation.

use bench::bench_config;
use criterion::{criterion_group, criterion_main, Criterion};
use delegation::compare::coverage_report;
use delegation::config::InferenceConfig;
use delegation::pipeline::{run_pipeline, PipelineInput};
use drywells::experiments::build_bgp_study;
use rdap::database::{DbBuildConfig, WhoisDb};
use rdap::pipeline::{extract_delegations, PipelineConfig};
use rdap::server::RdapServer;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let study = build_bgp_study(&bench_config());
    let as_of = study.world.span.end;
    let mut g = c.benchmark_group("s4");
    g.sample_size(10);
    g.bench_function("whois_db_build", |b| {
        b.iter(|| black_box(WhoisDb::build_from_world(&study.world, as_of, &DbBuildConfig::default())))
    });
    let db = WhoisDb::build_from_world(&study.world, as_of, &DbBuildConfig::default());
    g.bench_function("rdap_extraction", |b| {
        b.iter(|| {
            let server = RdapServer::new(db.clone());
            black_box(extract_delegations(&db, &server, &PipelineConfig::default()))
        })
    });
    let server = RdapServer::new(db.clone());
    let (rdap_delegs, _) = extract_delegations(&db, &server, &PipelineConfig::default());
    let bgp = run_pipeline(
        PipelineInput::Days(&study.days),
        study.world.span,
        &InferenceConfig::extended(),
        Some(&study.as2org),
    );
    let bgp_today = bgp.on(as_of).unwrap_or(&[]).to_vec();
    g.bench_function("coverage_report", |b| {
        b.iter(|| black_box(coverage_report(&bgp_today, &rdap_delegs)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
