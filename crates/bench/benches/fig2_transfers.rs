//! Bench: Figure 2 — the 2009–2020 registry history simulation and its
//! quarterly aggregation.

use bench::bench_config;
use criterion::{criterion_group, criterion_main, Criterion};
use registry::simulate::simulate;
use registry::stats::quarterly_counts;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_config().registry;
    let mut g = c.benchmark_group("fig2");
    g.sample_size(20);
    g.bench_function("simulate_registry_history", |b| {
        b.iter(|| black_box(simulate(&cfg)))
    });
    let history = simulate(&cfg);
    let published = history.log.published().without_labelled_mna();
    g.bench_function("quarterly_counts", |b| {
        b.iter(|| black_box(quarterly_counts(&published)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
