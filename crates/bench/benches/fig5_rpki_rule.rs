//! Bench: Figure 5 — RPKI snapshot-series generation, per-day
//! delegation inference, and the (M, N) fail-rate grid.

use bench::bench_config;
use bgpsim::scenario::LeaseWorld;
use criterion::{criterion_group, criterion_main, Criterion};
use rpki::consistency::{evaluate_rule, fail_rate_curves};
use rpki::delegation::infer_series;
use rpki::snapshot::SnapshotSeries;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    let world = LeaseWorld::generate(&cfg.world);
    let mut g = c.benchmark_group("fig5");
    g.sample_size(20);
    g.bench_function("snapshot_series", |b| {
        b.iter(|| black_box(SnapshotSeries::generate(&world, &cfg.rpki)))
    });
    let series = SnapshotSeries::generate(&world, &cfg.rpki);
    g.bench_function("infer_series", |b| b.iter(|| black_box(infer_series(&series.days))));
    let daily = infer_series(&series.days);
    g.bench_function("chosen_rule_m10_n0", |b| {
        b.iter(|| black_box(evaluate_rule(&daily, 10, 0)))
    });
    g.bench_function("fail_rate_grid", |b| {
        b.iter(|| black_box(fail_rate_curves(&daily, &[2, 5, 10, 20, 30, 50, 70], &[0, 1, 2, 3])))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
