//! Bench: Figure 4 — catalog construction and per-date price lookups.

use criterion::{criterion_group, criterion_main, Criterion};
use market::leasing::{leasing_catalog, prices_on};
use nettypes::date::date;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("fig4/catalog", |b| b.iter(|| black_box(leasing_catalog())));
    let catalog = leasing_catalog();
    let days = [
        date("2019-10-26"),
        date("2020-01-15"),
        date("2020-06-01"),
    ];
    c.bench_function("fig4/prices_on", |b| {
        b.iter(|| {
            for d in days {
                black_box(prices_on(&catalog, d));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
