//! Bench: Figure 1 — transaction generation, box-plot grid, and the
//! regional Mann-Whitney test over the ~2.9k-record data set.

use criterion::{criterion_group, criterion_main, Criterion};
use market::analysis::boxplot::boxplot_grid;
use market::analysis::consolidation::detect_consolidation_default;
use market::analysis::significance::regional_difference_test;
use market::transactions::{generate_transactions, TransactionConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = TransactionConfig::default();
    c.bench_function("fig1/generate_transactions", |b| {
        b.iter(|| black_box(generate_transactions(&cfg)))
    });
    let txs = generate_transactions(&cfg);
    c.bench_function("fig1/boxplot_grid", |b| b.iter(|| black_box(boxplot_grid(&txs))));
    c.bench_function("fig1/regional_mwu_test", |b| {
        b.iter(|| black_box(regional_difference_test(&txs)))
    });
    c.bench_function("fig1/consolidation_detect", |b| {
        b.iter(|| black_box(detect_consolidation_default(&txs)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
