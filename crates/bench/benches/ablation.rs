//! Ablation benches for the design choices DESIGN.md calls out:
//! each extension toggled independently, and the visibility-threshold
//! sweep the paper's footnote 2 claims is uncritical.

use bench::bench_config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use delegation::config::InferenceConfig;
use delegation::pipeline::{run_pipeline, PipelineInput};
use drywells::experiments::build_bgp_study;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let study = build_bgp_study(&bench_config());
    let span = study.world.span;

    let variants: Vec<(&str, InferenceConfig, bool)> = vec![
        ("baseline", InferenceConfig::baseline(), false),
        (
            "baseline+iv",
            InferenceConfig {
                filter_intra_org: true,
                ..InferenceConfig::baseline()
            },
            true,
        ),
        (
            "baseline+v",
            InferenceConfig {
                consistency_fill_days: Some(10),
                ..InferenceConfig::baseline()
            },
            false,
        ),
        ("extended", InferenceConfig::extended(), true),
    ];

    let mut g = c.benchmark_group("ablation/extensions");
    g.sample_size(10);
    for (label, cfg, needs_as2org) in &variants {
        g.bench_with_input(BenchmarkId::from_parameter(label), cfg, |b, cfg| {
            b.iter(|| {
                black_box(run_pipeline(
                    PipelineInput::Days(&study.days),
                    span,
                    cfg,
                    needs_as2org.then_some(&study.as2org),
                ))
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ablation/visibility_threshold");
    g.sample_size(10);
    for threshold in [0.1f64, 0.5, 0.9] {
        let cfg = InferenceConfig {
            visibility_threshold: threshold,
            ..InferenceConfig::baseline()
        };
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{threshold:.1}")),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    black_box(run_pipeline(
                        PipelineInput::Days(&study.days),
                        span,
                        cfg,
                        None,
                    ))
                })
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("ablation/fill_window");
    g.sample_size(10);
    for m in [5usize, 10, 30] {
        let cfg = InferenceConfig {
            consistency_fill_days: Some(m),
            ..InferenceConfig::baseline()
        };
        g.bench_with_input(BenchmarkId::from_parameter(m), &cfg, |b, cfg| {
            b.iter(|| {
                black_box(run_pipeline(
                    PipelineInput::Days(&study.days),
                    span,
                    cfg,
                    None,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
