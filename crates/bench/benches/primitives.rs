//! Micro-benchmarks of the data-plane primitives everything else is
//! built on: prefix arithmetic, trie LPM, prefix sets, the MRT-like
//! codec, and valley-free path computation.

use bgpsim::mrt::{decode_day, encode_day};
use bgpsim::observe::{render_day, VisibilityModel};
use bgpsim::scenario::LeaseWorld;
use bgpsim::topology::{Tier, Topology, TopologyConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use nettypes::date::date;
use nettypes::prefix::Prefix;
use nettypes::set::PrefixSet;
use nettypes::trie::PrefixTrie;
use std::hint::black_box;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn bench_trie(c: &mut Criterion) {
    // 100k-entry routing-table-shaped trie.
    let mut s = 0x9E3779B97F4A7C15u64;
    let entries: Vec<(Prefix, u32)> = (0..100_000u32)
        .map(|i| {
            let r = xorshift(&mut s);
            let len = 8 + (r % 25) as u8; // /8../32
            (Prefix::new_unchecked_masked((r >> 16) as u32, len), i)
        })
        .collect();
    let trie: PrefixTrie<u32> = entries.iter().copied().collect();
    let probes: Vec<u32> = (0..1_000).map(|_| (xorshift(&mut s) >> 16) as u32).collect();

    c.bench_function("primitives/trie_insert_100k", |b| {
        b.iter(|| {
            let t: PrefixTrie<u32> = entries.iter().copied().collect();
            black_box(t.len())
        })
    });
    c.bench_function("primitives/trie_lpm_1k", |b| {
        b.iter(|| {
            for &a in &probes {
                black_box(trie.longest_match(a));
            }
        })
    });
}

fn bench_prefix_set(c: &mut Criterion) {
    let mut s = 0xABCDEF12345u64;
    let prefixes: Vec<Prefix> = (0..10_000)
        .map(|_| {
            let r = xorshift(&mut s);
            Prefix::new_unchecked_masked((r >> 16) as u32, 16 + (r % 17) as u8)
        })
        .collect();
    c.bench_function("primitives/prefix_set_build_10k", |b| {
        b.iter(|| {
            let set: PrefixSet = prefixes.iter().copied().collect();
            black_box(set.num_addresses())
        })
    });
    let a: PrefixSet = prefixes[..5000].iter().copied().collect();
    let b2: PrefixSet = prefixes[5000..].iter().copied().collect();
    c.bench_function("primitives/prefix_set_intersection", |b| {
        b.iter(|| black_box(a.intersection_size(&b2)))
    });
}

fn bench_mrt(c: &mut Criterion) {
    let world = LeaseWorld::generate(&bench::bench_config().world);
    let model = VisibilityModel::default();
    let day = render_day(&world, &model, date("2018-02-01"));
    let bytes = encode_day(&day).unwrap();
    c.bench_function("primitives/mrt_encode_day", |b| {
        b.iter(|| black_box(encode_day(&day).unwrap()))
    });
    c.bench_function("primitives/mrt_decode_day", |b| {
        b.iter(|| black_box(decode_day(&bytes).unwrap()))
    });
}

fn bench_paths(c: &mut Criterion) {
    let topo = Topology::generate(&TopologyConfig::default());
    let stubs: Vec<_> = topo.ases_of_tier(Tier::Stub).collect();
    c.bench_function("primitives/valley_free_path", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let from = stubs[i % stubs.len()];
            let to = stubs[(i * 7 + 13) % stubs.len()];
            i += 1;
            black_box(topo.path(from, to))
        })
    });
}

fn bench_bgp_wire(c: &mut Criterion) {
    use bgpsim::bgp::{decode_message, encode_message, BgpMessage, UpdateMessage};
    use nettypes::asn::Asn;
    let msg = BgpMessage::Update(UpdateMessage::announce(
        (0..20)
            .map(|i| Prefix::new_unchecked_masked(0x4000_0000 + (i << 8), 24))
            .collect(),
        vec![Asn(64500), Asn(3333), Asn(1299)],
        0x0A000001,
    ));
    let bytes = encode_message(&msg);
    c.bench_function("primitives/bgp_encode_update", |b| {
        b.iter(|| black_box(encode_message(&msg)))
    });
    c.bench_function("primitives/bgp_decode_update", |b| {
        b.iter(|| black_box(decode_message(&bytes).unwrap()))
    });
}

fn bench_mrt_archive(c: &mut Criterion) {
    use bgpsim::updates::{ArchiveV2Config, CollectorArchiveV2};
    let world = LeaseWorld::generate(&bench::bench_config().world);
    let model = bench::bench_config().visibility;
    let mut g = c.benchmark_group("primitives/mrt_archive");
    g.sample_size(10);
    g.bench_function("generate_quick_window", |b| {
        b.iter(|| {
            black_box(CollectorArchiveV2::generate(
                &world,
                &model,
                world.span,
                &ArchiveV2Config::default(),
            ))
            .expect("archive encodes")
        })
    });
    let archive =
        CollectorArchiveV2::generate(&world, &model, world.span, &ArchiveV2Config::default())
            .expect("archive encodes");
    let mid = date("2018-02-15");
    g.bench_function("reconstruct_day", |b| {
        b.iter(|| black_box(archive.day_view(mid).unwrap()))
    });
    g.finish();
}

fn bench_render(c: &mut Criterion) {
    let world = LeaseWorld::generate(&bench::bench_config().world);
    let model = VisibilityModel::default();
    c.bench_function("primitives/render_observation_day", |b| {
        b.iter(|| black_box(render_day(&world, &model, date("2018-02-01"))))
    });
}

criterion_group!(
    benches,
    bench_trie,
    bench_prefix_set,
    bench_mrt,
    bench_bgp_wire,
    bench_mrt_archive,
    bench_paths,
    bench_render
);
criterion_main!(benches);
