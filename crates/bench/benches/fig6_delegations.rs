//! Bench: Figure 6 — the full daily delegation-inference pipeline,
//! baseline vs extended, over the quick-study window.

use bench::bench_config;
use criterion::{criterion_group, criterion_main, Criterion};
use delegation::config::InferenceConfig;
use delegation::metrics::daily_metrics;
use delegation::pipeline::{run_pipeline, PipelineInput};
use drywells::experiments::build_bgp_study;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let study = build_bgp_study(&bench_config());
    let span = study.world.span;
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("pipeline_baseline", |b| {
        b.iter(|| {
            black_box(run_pipeline(
                PipelineInput::Days(&study.days),
                span,
                &InferenceConfig::baseline(),
                None,
            ))
        })
    });
    g.bench_function("pipeline_extended", |b| {
        b.iter(|| {
            black_box(run_pipeline(
                PipelineInput::Days(&study.days),
                span,
                &InferenceConfig::extended(),
                Some(&study.as2org),
            ))
        })
    });
    let result = run_pipeline(
        PipelineInput::Days(&study.days),
        span,
        &InferenceConfig::extended(),
        Some(&study.as2org),
    );
    g.bench_function("daily_metrics", |b| b.iter(|| black_box(daily_metrics(&result))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
