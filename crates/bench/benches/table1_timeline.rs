//! Bench: regenerating Table 1 (pure policy data; sub-microsecond).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("table1/timeline", |b| {
        b.iter(|| black_box(registry::timeline::exhaustion_timeline()))
    });
    c.bench_function("table1/render", |b| {
        b.iter(|| black_box(registry::timeline::render_table1()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
