//! # drywells
//!
//! A full reproduction of **"When Wells Run Dry: The 2020 IPv4 Address
//! Market"** (Prehn, Lichtblau, Feldmann — CoNEXT 2020) as a Rust
//! workspace: the paper's measurement pipelines plus synthetic
//! substrates for every data source the paper used (BGP collectors,
//! RIR registries, WHOIS/RDAP, RPKI, broker pricing, leasing-price
//! scrapes).
//!
//! This crate is the facade: a [`StudyConfig`] fixes the scale and
//! seeds, and one runner per paper artifact regenerates it:
//!
//! | Paper artifact | Runner |
//! |---|---|
//! | Table 1 (exhaustion timeline) | [`experiments::table1`] |
//! | Figure 1 (price per IP box plots) | [`experiments::fig1`] |
//! | Figure 2 (# market transfers) | [`experiments::fig2`] |
//! | Figure 3 (inter-RIR transactions) | [`experiments::fig3`] |
//! | Figure 4 (advertised leasing prices) | [`experiments::fig4`] |
//! | Figure 5 (RPKI consistency-rule fail rates) | [`experiments::fig5`] |
//! | Figure 6 (BGP delegations w/wo extensions) | [`experiments::fig6`] |
//! | §4 BGP-vs-RDAP coverage | [`experiments::s4_coverage`] |
//! | §5 prediction-model comparison | [`experiments::s5_prediction`] |
//! | §6 amortization times | [`experiments::s6_amortization`] |
//! | §6 behaviour by business model | [`experiments::s6_behavior`] |
//! | Footnote 2 / Appendix A sweeps | [`experiments::sensitivity`] |
//!
//! ```
//! use drywells::{StudyConfig, experiments};
//!
//! let cfg = StudyConfig::quick();
//! let t1 = experiments::table1::run();
//! assert!(t1.rendered.contains("RIPE NCC"));
//! let s6 = experiments::s6_amortization::run();
//! assert!(s6.rendered.contains("months"));
//! # let _ = cfg;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod csv;
pub mod experiments;
pub mod profile;
pub mod report;
pub mod study;
pub mod tracecheck;

pub use study::{StudyConfig, StudyScale};

/// Run every experiment at the given scale and concatenate the
/// reports — the programmatic equivalent of `repro all`.
pub fn run_all(config: &StudyConfig) -> String {
    let mut out = String::new();
    let mut add = |title: &str, body: String| {
        out.push_str(&format!("\n=== {title} ===\n\n{body}\n"));
    };
    add("Table 1: IPv4 exhaustion timeline", experiments::table1::run().rendered);
    add("S2: waiting lists", experiments::s2_waitlists::run(config).rendered);
    add("Figure 1: price per IP", experiments::fig1::run(config).rendered);
    add("Figure 2: market transfers", experiments::fig2::run(config).rendered);
    add("Figure 3: inter-RIR transfers", experiments::fig3::run(config).rendered);
    add("Figure 4: advertised leasing prices", experiments::fig4::run().rendered);
    add("Figure 5: RPKI consistency rules", experiments::fig5::run(config).rendered);
    add("Figure 6: BGP delegations", experiments::fig6::run(config).rendered);
    add("S4: BGP vs RDAP coverage", experiments::s4_coverage::run(config).rendered);
    if let Some(s5) = experiments::s5_prediction::run(config) {
        add("S5: related-work prediction models", s5.rendered);
    }
    add("S6: amortization", experiments::s6_amortization::run().rendered);
    add("S6: market behaviour by business model", experiments::s6_behavior::run(config).rendered);
    add("S7: combined BGP+RPKI+RDAP estimator", experiments::s7_combined::run(config).rendered);
    add("Sensitivity: thresholds and fill windows", experiments::sensitivity::run(config).rendered);
    out
}
