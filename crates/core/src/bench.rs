//! The `repro bench` stage-timing harness.
//!
//! Times the named pipeline stages — world build, day rendering, MRT
//! archive encoding, the delegation pipeline over that archive, a
//! query-engine scan of the same archive, and the fig6 artifact
//! end-to-end — by wrapping each in a uniquely-named
//! `obs` span and reading the wall time back from a
//! [`obs::ProfileCollector`]. All wall-clock reads stay inside `obs`;
//! this module only orchestrates.
//!
//! The report serializes to a small JSON document (`BENCH_PR10.json`)
//! so CI and future PRs have a machine-readable perf trajectory, and
//! [`check_regression`] compares a fresh run against a committed
//! baseline with a generous ratio bound (catches asymptotic
//! regressions, not timer jitter).

use crate::experiments;
use crate::study::StudyConfig;
use bgpsim::observe::render_days;
use bgpsim::scenario::LeaseWorld;
use bgpsim::updates::{ArchiveV2Config, CollectorArchiveV2};
use delegation::config::InferenceConfig;
use delegation::pipeline::{run_pipeline, PipelineInput};
use std::sync::Arc;
use std::time::Duration;

/// The timed stages: `(json_key, span_name)`. The JSON field is
/// `<json_key>_ms`.
pub const STAGES: &[(&str, &str)] = &[
    ("world_build", "bench_world_build"),
    ("render_days", "bench_render_days"),
    ("mrt_encode", "bench_mrt_encode"),
    ("delegation_pipeline", "bench_delegation_pipeline"),
    ("query_scan", "bench_query_scan"),
    ("fig6_end_to_end", "bench_fig6_end_to_end"),
    ("lint_scan", "bench_lint_scan"),
];

/// Stage timings for one scale (quick or full).
pub struct ScaleReport {
    /// `"quick"` or `"full"`.
    pub scale: &'static str,
    /// `(json_key, wall)` in [`STAGES`] order.
    pub stages: Vec<(&'static str, Duration)>,
}

/// The flight-recorder overhead measurement: quick-scale fig6 with
/// the always-on ring actively recording vs paused.
pub struct ObsOverhead {
    /// Best-of-N fig6 wall with the recorder recording.
    pub active_ms: f64,
    /// Best-of-N fig6 wall with the recorder paused.
    pub paused_ms: f64,
    /// `(active - paused) / paused`, clamped at 0, as a percentage.
    pub overhead_pct: f64,
}

/// The whole bench run: per-scale stage timings plus the run's
/// parameters.
pub struct BenchReport {
    /// World/visibility seed the stages ran with.
    pub seed: u64,
    /// Worker-pool width the stages ran with.
    pub threads: usize,
    /// One entry per benched scale, quick first.
    pub scales: Vec<ScaleReport>,
    /// Flight-recorder overhead on quick-scale fig6.
    pub obs_overhead: ObsOverhead,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Run the timed stages once at `config`'s scale and collect
/// per-stage wall times.
fn run_scale(config: &StudyConfig, scale: &'static str) -> Result<ScaleReport, String> {
    let collector = Arc::new(obs::ProfileCollector::new());
    let guard = obs::subscribe(collector.clone());

    let world = {
        let _s = obs::span!("bench_world_build");
        LeaseWorld::generate(&config.world)
    };
    let days = {
        let _s = obs::span!("bench_render_days");
        render_days(&world, &config.visibility, world.span)
    };
    let archive = {
        let _s = obs::span!("bench_mrt_encode");
        CollectorArchiveV2::generate(
            &world,
            &config.visibility,
            world.span,
            &ArchiveV2Config::default(),
        )
        .map_err(|e| format!("bench: MRT archive encoding failed: {e}"))?
    };
    {
        let _s = obs::span!("bench_delegation_pipeline");
        let result = run_pipeline(
            PipelineInput::MrtArchive(&archive),
            world.span,
            &InferenceConfig::baseline(),
            None,
        );
        if result.days.len() != days.len() {
            return Err(format!(
                "bench: pipeline returned {} day(s) for a {}-day span",
                result.days.len(),
                days.len()
            ));
        }
    }
    {
        let _s = obs::span!("bench_query_scan");
        let files = bgpsim::query::files_from_archive_v2(&archive);
        let opts = bgpsim::query::QueryOptions {
            filter: bgpsim::query::Filter::parse("kind=announce|withdraw")
                .map_err(|e| format!("bench: query filter failed to parse: {e}"))?,
            ..bgpsim::query::QueryOptions::default()
        };
        let out = bgpsim::query::run_query(&files, &opts)
            .map_err(|e| format!("bench: query scan failed: {e}"))?;
        if out.stats.rows_emitted == 0 {
            return Err("bench: query scan matched no rows".into());
        }
    }
    {
        let _s = obs::span!("bench_fig6_end_to_end");
        let fig = experiments::fig6::run(config);
        if fig.rendered.is_empty() {
            return Err("bench: fig6 rendered nothing".into());
        }
    }
    {
        // The static-analysis gate is part of every CI run, so its
        // wall time is a perf budget like any pipeline stage.
        let _s = obs::span!("bench_lint_scan");
        let cwd = std::env::current_dir()
            .map_err(|e| format!("bench: cannot read cwd for the lint scan: {e}"))?;
        let root = lint::find_workspace_root(&cwd)
            .ok_or("bench: no [workspace] Cargo.toml above cwd for the lint scan")?;
        let findings = lint::collect_findings(&root)
            .map_err(|e| format!("bench: lint scan failed: {e}"))?;
        // An empty workspace scan means the roots moved, not cleanliness.
        if findings.is_empty() && lint::collect_sources(&root).map_or(true, |s| s.is_empty()) {
            return Err("bench: lint scan saw no source files".into());
        }
    }

    drop(guard);
    let mut stages = Vec::with_capacity(STAGES.len());
    for &(key, span_name) in STAGES {
        let wall = collector
            .stage_wall(span_name)
            .ok_or_else(|| format!("bench: stage span {span_name:?} never closed"))?;
        stages.push((key, wall));
    }
    Ok(ScaleReport { scale, stages })
}

/// Measure the flight recorder's cost: quick-scale fig6 with the ring
/// actively recording vs paused, interleaved pairs, best-of-N per arm
/// (min is the right statistic for a noisy 1-CPU container — noise
/// only ever adds time). The recorder is re-enabled before returning,
/// whatever happens — pausing is strictly a measurement tool.
fn measure_obs_overhead(config: &StudyConfig) -> ObsOverhead {
    const ROUNDS: usize = 5;
    let recorder = obs::flight::global();
    // Warm the study cache so neither arm pays the first-build cost.
    let _ = experiments::fig6::run(config); // lint:allow(L10): warm-up run, figure intentionally discarded
    let mut active = Duration::MAX;
    let mut paused = Duration::MAX;
    for _ in 0..ROUNDS {
        recorder.set_paused(true);
        let (_, wall) = obs::time(|| experiments::fig6::run(config));
        paused = paused.min(wall);
        recorder.set_paused(false);
        let (_, wall) = obs::time(|| experiments::fig6::run(config));
        active = active.min(wall);
    }
    recorder.set_paused(false);
    let active_ms = ms(active);
    let paused_ms = ms(paused);
    let overhead_pct = if paused_ms > 0.0 {
        (100.0 * (active_ms - paused_ms) / paused_ms).max(0.0)
    } else {
        0.0
    };
    ObsOverhead {
        active_ms,
        paused_ms,
        overhead_pct,
    }
}

/// Run the bench at quick scale — and, when `full` is set, at the
/// paper-scale window too.
pub fn run(seed: u64, full: bool) -> Result<BenchReport, String> {
    let mut scales = vec![run_scale(&StudyConfig::quick_seeded(seed), "quick")?];
    if full {
        scales.push(run_scale(&StudyConfig::full_seeded(seed), "full")?);
    }
    let obs_overhead = measure_obs_overhead(&StudyConfig::quick_seeded(seed));
    Ok(BenchReport {
        seed,
        threads: bgpsim::par::num_threads(),
        scales,
        obs_overhead,
    })
}

impl BenchReport {
    /// Human-readable table: one block per scale, one line per stage.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "bench: seed {}, {} worker(s)\n",
            self.seed, self.threads
        ));
        for scale in &self.scales {
            out.push_str(&format!("\n[{}]\n", scale.scale));
            for (key, wall) in &scale.stages {
                out.push_str(&format!("  {key:<22} {:>12.3} ms\n", ms(*wall)));
            }
        }
        out.push_str(&format!(
            "\n[obs_overhead]\n  flight recorder on quick fig6: active {:.3} ms vs paused {:.3} ms ({:.2}%)\n",
            self.obs_overhead.active_ms,
            self.obs_overhead.paused_ms,
            self.obs_overhead.overhead_pct,
        ));
        out
    }

    /// The machine-readable `BENCH_PR10.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"drywells-bench-v1\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str("  \"scales\": {\n");
        for (i, scale) in self.scales.iter().enumerate() {
            out.push_str(&format!("    \"{}\": {{\n", scale.scale));
            for (j, (key, wall)) in scale.stages.iter().enumerate() {
                let comma = if j + 1 == scale.stages.len() { "" } else { "," };
                out.push_str(&format!("      \"{key}_ms\": {:.3}{comma}\n", ms(*wall)));
            }
            let comma = if i + 1 == self.scales.len() { "" } else { "," };
            out.push_str(&format!("    }}{comma}\n"));
        }
        out.push_str("  },\n");
        out.push_str("  \"obs_overhead\": {\n");
        out.push_str(&format!(
            "    \"active_ms\": {:.3},\n",
            self.obs_overhead.active_ms
        ));
        out.push_str(&format!(
            "    \"paused_ms\": {:.3},\n",
            self.obs_overhead.paused_ms
        ));
        out.push_str(&format!(
            "    \"overhead_pct\": {:.3}\n",
            self.obs_overhead.overhead_pct
        ));
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

/// Guard the flight recorder's measured overhead: fails when the
/// active arm exceeds the paused arm by more than `max_pct` percent
/// **and** more than 1 ms absolute — on a 1-CPU CI container a
/// sub-millisecond delta on a quick run is timer jitter, not cost.
pub fn check_overhead(report: &BenchReport, max_pct: f64) -> Result<String, String> {
    let o = &report.obs_overhead;
    let abs_ms = (o.active_ms - o.paused_ms).max(0.0);
    if o.overhead_pct > max_pct && abs_ms > 1.0 {
        return Err(format!(
            "bench: flight recorder overhead {:.2}% ({abs_ms:.3} ms) exceeds {max_pct:.2}% on quick fig6",
            o.overhead_pct
        ));
    }
    Ok(format!(
        "bench: flight recorder overhead {:.2}% ({abs_ms:.3} ms) within {max_pct:.2}% on quick fig6",
        o.overhead_pct
    ))
}

/// The quick-scale stages the CI regression guard compares against
/// the committed baseline — the three pipeline stages the incremental
/// rendering work optimizes (a regression in any of them is exactly
/// what the delta paths could silently cause).
pub const GUARDED_STAGES: &[&str] = &["render_days", "mrt_encode", "delegation_pipeline"];

/// Compare a fresh report's quick-scale wall times for every stage in
/// [`GUARDED_STAGES`] against a committed baseline JSON. Returns a
/// summary line per stage, or an error naming the first stage that
/// exceeds `max_ratio` × its baseline (or a parse/shape complaint).
pub fn check_regression(
    report: &BenchReport,
    baseline_json: &str,
    max_ratio: f64,
) -> Result<String, String> {
    let baseline = serde_json::parse(baseline_json)
        .map_err(|e| format!("bench: baseline JSON does not parse: {e:?}"))?;
    let quick = report
        .scales
        .iter()
        .find(|s| s.scale == "quick")
        .ok_or("bench: fresh report lacks a quick scale")?;
    let mut lines = Vec::with_capacity(GUARDED_STAGES.len());
    for &stage in GUARDED_STAGES {
        let base_ms = baseline
            .get("scales")
            .and_then(|s| s.get("quick"))
            .and_then(|q| q.get(&format!("{stage}_ms")))
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("bench: baseline JSON lacks scales.quick.{stage}_ms"))?;
        let fresh_ms = quick
            .stages
            .iter()
            .find(|(k, _)| *k == stage)
            .map(|(_, w)| ms(*w))
            .ok_or_else(|| format!("bench: fresh report lacks a quick-scale {stage} stage"))?;
        // A sub-millisecond baseline would make the ratio pure jitter;
        // clamp the bound to an absolute floor.
        let bound = (base_ms * max_ratio).max(1.0);
        if fresh_ms > bound {
            return Err(format!(
                "bench: quick {stage} regressed: {fresh_ms:.3} ms > {max_ratio:.1}× baseline {base_ms:.3} ms"
            ));
        }
        lines.push(format!(
            "bench: quick {stage} {fresh_ms:.3} ms within {max_ratio:.1}× baseline {base_ms:.3} ms"
        ));
    }
    Ok(lines.join("\n"))
}

/// Guard the lint gate's wall time: the whole-workspace `lint_scan`
/// stage must finish inside `max_ms` (CI uses 2000 ms). A lexer or
/// lock-graph change that turns the linter superlinear shows up here
/// before it shows up as a slow pre-merge gate.
pub fn check_lint_budget(report: &BenchReport, max_ms: f64) -> Result<String, String> {
    let wall_ms = report
        .scales
        .iter()
        .find(|s| s.scale == "quick")
        .and_then(|s| {
            s.stages
                .iter()
                .find(|(k, _)| *k == "lint_scan")
                .map(|(_, w)| ms(*w))
        })
        .ok_or("bench: report lacks a quick-scale lint_scan stage")?;
    if wall_ms > max_ms {
        return Err(format!(
            "bench: whole-workspace lint scan took {wall_ms:.3} ms, over the {max_ms:.0} ms budget"
        ));
    }
    Ok(format!(
        "bench: whole-workspace lint scan {wall_ms:.3} ms within the {max_ms:.0} ms budget"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_times_every_stage() {
        let report = run(2020, false).expect("quick bench runs");
        assert_eq!(report.scales.len(), 1);
        let quick = &report.scales[0];
        assert_eq!(quick.scale, "quick");
        assert_eq!(quick.stages.len(), STAGES.len());
        for (key, wall) in &quick.stages {
            assert!(*wall > Duration::ZERO, "stage {key} has zero wall time");
        }
        let rendered = report.render();
        for &(key, _) in STAGES {
            assert!(rendered.contains(key), "{rendered}");
        }
        // The overhead stage ran too, on sane values.
        assert!(report.obs_overhead.active_ms > 0.0);
        assert!(report.obs_overhead.paused_ms > 0.0);
        assert!(report.obs_overhead.overhead_pct >= 0.0);
        assert!(rendered.contains("obs_overhead"), "{rendered}");
        // The workspace lint gate stays inside its CI wall-time budget.
        check_lint_budget(&report, 2000.0).expect("lint scan within budget");
    }

    #[test]
    fn lint_budget_guard_fails_over_budget() {
        let mut report = fixed_report(10.0, 10.0);
        report.scales[0]
            .stages
            .push(("lint_scan", Duration::from_millis(150)));
        assert!(check_lint_budget(&report, 2000.0).is_ok());
        assert!(check_lint_budget(&report, 100.0).is_err());
        report.scales[0].stages.pop();
        assert!(check_lint_budget(&report, 2000.0).is_err());
    }

    fn fixed_report(active_ms: f64, paused_ms: f64) -> BenchReport {
        let overhead_pct = (100.0 * (active_ms - paused_ms) / paused_ms).max(0.0);
        BenchReport {
            seed: 7,
            threads: 1,
            scales: vec![ScaleReport {
                scale: "quick",
                stages: vec![
                    ("world_build", Duration::from_micros(1500)),
                    ("render_days", Duration::from_micros(2500)),
                ],
            }],
            obs_overhead: ObsOverhead {
                active_ms,
                paused_ms,
                overhead_pct,
            },
        }
    }

    #[test]
    fn json_round_trips_through_the_shim_parser() {
        let report = fixed_report(10.1, 10.0);
        let json = report.to_json();
        let v = serde_json::parse(&json).expect("bench JSON parses");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("drywells-bench-v1")
        );
        let quick = v.get("scales").and_then(|s| s.get("quick")).expect("quick block");
        assert_eq!(
            quick.get("render_days_ms").and_then(|x| x.as_f64()),
            Some(2.5)
        );
        let overhead = v.get("obs_overhead").expect("obs_overhead block");
        assert_eq!(
            overhead.get("active_ms").and_then(|x| x.as_f64()),
            Some(10.1)
        );
        assert_eq!(
            overhead.get("overhead_pct").and_then(|x| x.as_f64()),
            Some(1.0)
        );
    }

    #[test]
    fn regression_guard_passes_within_bound_and_fails_outside() {
        let mut report = fixed_report(10.0, 10.0);
        report.scales[0].stages = vec![
            ("render_days", Duration::from_millis(30)),
            ("mrt_encode", Duration::from_millis(40)),
            ("delegation_pipeline", Duration::from_millis(50)),
        ];
        let baseline = r#"{"scales":{"quick":{
            "render_days_ms": 20.0, "mrt_encode_ms": 30.0, "delegation_pipeline_ms": 40.0}}}"#;
        let summary = check_regression(&report, baseline, 2.0).expect("within bound");
        for stage in GUARDED_STAGES {
            assert!(summary.contains(stage), "{summary}");
        }
        // Any single guarded stage over its bound fails the guard,
        // naming the offender.
        for (i, stage) in GUARDED_STAGES.iter().enumerate() {
            let mut walls = [20.0f64, 30.0, 40.0];
            walls[i] = 200.0;
            let mut r = fixed_report(10.0, 10.0);
            r.scales[0].stages = vec![
                ("render_days", Duration::from_secs_f64(walls[0] / 1e3)),
                ("mrt_encode", Duration::from_secs_f64(walls[1] / 1e3)),
                ("delegation_pipeline", Duration::from_secs_f64(walls[2] / 1e3)),
            ];
            let err = check_regression(&r, baseline, 2.0).expect_err("over bound");
            assert!(err.contains(stage), "{err}");
        }
        // A baseline missing any guarded stage is a hard error, as is
        // non-JSON.
        let partial = r#"{"scales":{"quick":{"render_days_ms": 20.0}}}"#;
        assert!(check_regression(&report, partial, 2.0).is_err());
        assert!(check_regression(&report, "not json", 2.0).is_err());
    }

    #[test]
    fn overhead_guard_uses_both_relative_and_absolute_bounds() {
        // 10% over but only 0.5 ms absolute: jitter floor, passes.
        assert!(check_overhead(&fixed_report(5.5, 5.0), 1.0).is_ok());
        // 10% over AND 50 ms absolute: a real regression, fails.
        assert!(check_overhead(&fixed_report(550.0, 500.0), 1.0).is_err());
        // Under the percentage bound: passes regardless of scale.
        assert!(check_overhead(&fixed_report(505.0, 500.0), 1.0).is_ok());
    }
}
