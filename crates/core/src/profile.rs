//! The `repro profile <experiment>` driver.
//!
//! Installs an [`obs::ProfileCollector`], runs an experiment, and
//! renders the per-stage tree (wall time, item counts, throughput)
//! plus the study-cache counters and build-time histogram from the
//! process-wide metrics registry.
//!
//! `fig6` gets the *faithful* chain: world + day rendering (through
//! the study cache), MRT archive encoding, then the delegation
//! pipeline reading that MRT archive back — so the profile covers
//! topology build, day rendering, MRT encode, delegation inference
//! and study aggregation in one tree. Other artifacts run their
//! normal runner under the collector and show whatever stages they
//! traverse.

use crate::experiments;
use crate::study::StudyConfig;
use bgpsim::updates::{ArchiveV2Config, CollectorArchiveV2};
use delegation::pipeline::PipelineInput;
use std::sync::Arc;

fn run_artifact(artifact: &str, config: &StudyConfig) -> Result<String, String> {
    let rendered = match artifact {
        "table1" => experiments::table1::run().rendered,
        "s2-waitlists" => experiments::s2_waitlists::run(config).rendered,
        "fig1" => experiments::fig1::run(config).rendered,
        "fig2" => experiments::fig2::run(config).rendered,
        "fig3" => experiments::fig3::run(config).rendered,
        "fig4" => experiments::fig4::run().rendered,
        "fig5" => experiments::fig5::run(config).rendered,
        "fig6" => {
            // The faithful chain: build (or reuse) the study, encode
            // the MRT archive, and run both algorithms over the
            // archive so the decode path is profiled too.
            let study = experiments::build_bgp_study_cached(config);
            let archive = CollectorArchiveV2::generate(
                &study.world,
                study.visibility_model(),
                study.world.span,
                &ArchiveV2Config::default(),
            )
            .map_err(|e| format!("fig6: MRT archive encoding failed: {e}"))?;
            experiments::fig6::run_with_inputs(&study, || PipelineInput::MrtArchive(&archive))
                .rendered
        }
        "s4-coverage" => experiments::s4_coverage::run(config).rendered,
        "s5-prediction" => experiments::s5_prediction::run(config)
            .map(|r| r.rendered)
            .unwrap_or_else(|| "insufficient data".into()),
        "s6-amortization" => experiments::s6_amortization::run().rendered,
        "s6-behavior" => experiments::s6_behavior::run(config).rendered,
        "s7-combined" => experiments::s7_combined::run(config).rendered,
        "sensitivity" => experiments::sensitivity::run(config).rendered,
        "all" => crate::run_all(config),
        _ => return Err(format!("unknown artifact {artifact:?}")),
    };
    Ok(rendered)
}

/// Run `artifact` under a profile collector and return the report:
/// the stage tree, then the study-cache and build-time metrics.
/// Returns `Err` for an unknown artifact name.
pub fn run_profiled(artifact: &str, config: &StudyConfig) -> Result<String, String> {
    let registry = obs::metrics::global();
    let hits = registry.counter("study_cache_hits_total");
    let misses = registry.counter("study_cache_misses_total");
    let build = registry.histogram("study_build");
    let (hits0, misses0, builds0) = (hits.get(), misses.get(), build.count());

    let collector = Arc::new(obs::ProfileCollector::new());
    let guard = obs::subscribe(collector.clone());
    let result = run_artifact(artifact, config);
    drop(guard);
    result?;

    let mut out = String::new();
    out.push_str(&format!("profile: {artifact}\n\n"));
    out.push_str(&collector.render_tree());
    out.push_str(&format!(
        "\nstudy cache: {} hit(s), {} miss(es) this run\n",
        hits.get() - hits0,
        misses.get() - misses0,
    ));
    if build.count() > builds0 {
        out.push_str(&format!(
            "study build time: p50 ≤ {}µs, p99 ≤ {}µs over {} build(s)\n",
            build.quantile_us(0.50),
            build.quantile_us(0.99),
            build.count(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_profile_covers_the_required_stages() {
        let report = run_profiled("fig6", &StudyConfig::quick()).expect("fig6 is known");
        // The acceptance-criteria stages, by span name.
        for stage in [
            "render_days",          // day rendering (on a cache miss)…
            "mrt_encode",           // archive encoding
            "delegation_inference", // pipeline over the MRT archive
            "study_aggregation",    // metrics + summaries + eval
        ] {
            // topology_build/render_days only appear when this test
            // observes the cache miss; another test may have warmed
            // the study cache first, so assert via cache counters
            // below instead of on build-stage spans.
            if stage == "render_days" {
                continue;
            }
            assert!(report.contains(stage), "missing {stage} in:\n{report}");
        }
        assert!(report.contains("study cache:"), "{report}");
        // Items/throughput attribution shows up in the tree.
        assert!(report.contains("days"), "{report}");
    }

    #[test]
    fn unknown_artifact_is_an_error() {
        assert!(run_profiled("fig99", &StudyConfig::quick()).is_err());
    }
}
