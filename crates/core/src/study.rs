//! Study configuration: scales and seeds for the whole reproduction.

use bgpsim::observe::VisibilityModel;
use bgpsim::scenario::WorldConfig;
use bgpsim::topology::TopologyConfig;
use nettypes::date::{date, DateRange};
use registry::simulate::SimulationConfig;
use rpki::snapshot::SnapshotSeriesConfig;

/// How big a study to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StudyScale {
    /// Small worlds, short spans — seconds, used by tests and examples.
    Quick,
    /// Paper-scale spans (2018-01-01 → 2020-06-01 for the BGP window,
    /// 2009-10 → 2020-06 for the registry history).
    Full,
}

/// All knobs of a reproduction run, derived from a scale + seed.
#[derive(Clone, Debug)]
pub struct StudyConfig {
    /// The scale preset this config was built from.
    pub scale: StudyScale,
    /// Master seed (folded into every substrate's seed).
    pub seed: u64,
    /// The lease-world generator config (BGP window).
    pub world: WorldConfig,
    /// Monitor fleet parameters.
    pub visibility: VisibilityModel,
    /// Registry history config (transfer feeds).
    pub registry: SimulationConfig,
    /// RPKI snapshot series config.
    pub rpki: SnapshotSeriesConfig,
}

impl StudyConfig {
    /// The quick preset: a three-month window, a few hundred ASes.
    pub fn quick() -> StudyConfig {
        StudyConfig::quick_seeded(2020)
    }

    /// Quick preset with an explicit seed.
    pub fn quick_seeded(seed: u64) -> StudyConfig {
        let span = DateRange::new(date("2018-01-01"), date("2018-03-31"));
        StudyConfig {
            scale: StudyScale::Quick,
            seed,
            world: WorldConfig {
                seed,
                span,
                topology: TopologyConfig {
                    seed,
                    num_tier1: 4,
                    num_tier2: 15,
                    num_stubs: 150,
                    multi_as_org_fraction: 0.15,
                },
                num_allocations: 60,
                initial_active_leases: 500,
                bgp_visible_fraction: 0.05,
                num_intra_org: 15,
                num_hijacks: 8,
                num_moas: 6,
                num_as_sets: 3,
                num_scrubbing: 3,
                ..Default::default()
            },
            visibility: VisibilityModel {
                num_monitors: 40,
                daily_flicker: 0.01,
                seed,
            },
            registry: SimulationConfig {
                seed,
                volume_scale: 0.25,
                orgs_per_rir: 60,
                ..Default::default()
            },
            rpki: SnapshotSeriesConfig {
                seed,
                // Higher RPKI coverage so the small quick world still
                // yields enough delegations for the Figure 5 statistics;
                // slightly higher stability to keep the small-sample
                // fail-rate estimate inside the paper's band.
                allocation_coverage: 0.8,
                lease_coverage: 0.9,
                stable_fraction: 0.93,
                ..Default::default()
            },
        }
    }

    /// The full preset: the paper's observation windows.
    pub fn full() -> StudyConfig {
        StudyConfig::full_seeded(2020)
    }

    /// Full preset with an explicit seed.
    pub fn full_seeded(seed: u64) -> StudyConfig {
        let span = DateRange::new(date("2018-01-01"), date("2020-06-01"));
        StudyConfig {
            scale: StudyScale::Full,
            seed,
            world: WorldConfig {
                seed,
                span,
                topology: TopologyConfig {
                    seed,
                    ..Default::default()
                },
                num_allocations: 400,
                initial_active_leases: 3000,
                bgp_visible_fraction: 0.05,
                num_intra_org: 150,
                ..Default::default()
            },
            visibility: VisibilityModel {
                num_monitors: 40,
                daily_flicker: 0.01,
                seed,
            },
            registry: SimulationConfig {
                seed,
                ..Default::default()
            },
            rpki: SnapshotSeriesConfig {
                seed,
                ..Default::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_sanely() {
        let q = StudyConfig::quick();
        let f = StudyConfig::full();
        assert_eq!(q.scale, StudyScale::Quick);
        assert_eq!(f.scale, StudyScale::Full);
        assert!(f.world.span.num_days() > q.world.span.num_days());
        assert!(f.world.num_allocations > q.world.num_allocations);
        // The full BGP window matches the paper.
        assert_eq!(f.world.span.start, date("2018-01-01"));
        assert_eq!(f.world.span.end, date("2020-06-01"));
    }

    #[test]
    fn seeds_propagate() {
        let a = StudyConfig::quick_seeded(1);
        let b = StudyConfig::quick_seeded(2);
        assert_ne!(a.world.seed, b.world.seed);
        assert_ne!(a.visibility.seed, b.visibility.seed);
        assert_ne!(a.registry.seed, b.registry.seed);
        assert_ne!(a.rpki.seed, b.rpki.seed);
    }
}
