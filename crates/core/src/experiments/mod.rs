//! One runner per paper table/figure.
//!
//! Every runner returns a typed result carrying both the raw data and
//! a `rendered` plain-text report whose rows mirror the paper's
//! artifact. The `bench` crate re-runs these under Criterion; the
//! `repro` binary prints them.

pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod s2_waitlists;
pub mod s4_coverage;
pub mod s5_prediction;
pub mod s6_amortization;
pub mod s6_behavior;
pub mod s7_combined;
pub mod sensitivity;
pub mod table1;

use crate::study::StudyConfig;
use bgpsim::observe::{render_day, ObservationDay, PathCache, VisibilityModel};
use bgpsim::scenario::LeaseWorld;
use delegation::as2org::As2OrgSeries;

/// The shared BGP-side study state: a world, its rendered observation
/// days, and the AS-to-Org series — inputs to Figures 5/6 and the §4
/// comparison.
pub struct BgpStudy {
    /// The ground-truth world.
    pub world: LeaseWorld,
    /// Daily monitor observations (index 0 = span start).
    pub days: Vec<ObservationDay>,
    /// Quarterly AS-to-Org snapshots.
    pub as2org: As2OrgSeries,
    /// The monitor-fleet parameters the days were rendered with.
    visibility: VisibilityModel,
}

impl BgpStudy {
    /// The monitor-fleet parameters the study was rendered with —
    /// needed to derive further views (e.g. MRT archives) that must
    /// agree with `days`.
    pub fn visibility_model(&self) -> &VisibilityModel {
        &self.visibility
    }
}

/// Generate the world and render every observation day.
pub fn build_bgp_study(config: &StudyConfig) -> BgpStudy {
    let world = LeaseWorld::generate(&config.world);
    let mut cache = PathCache::new();
    let days: Vec<ObservationDay> = world
        .span
        .iter()
        .map(|d| render_day(&world, &config.visibility, &mut cache, d))
        .collect();
    let as2org = As2OrgSeries::from_topology(
        &world.topology,
        world.span.start,
        world.span.end,
        90,
    );
    BgpStudy {
        world,
        days,
        as2org,
        visibility: config.visibility.clone(),
    }
}
