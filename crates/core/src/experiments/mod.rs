//! One runner per paper table/figure.
//!
//! Every runner returns a typed result carrying both the raw data and
//! a `rendered` plain-text report whose rows mirror the paper's
//! artifact. The `bench` crate re-runs these under Criterion; the
//! `repro` binary prints them.

pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod s2_waitlists;
pub mod s4_coverage;
pub mod s5_prediction;
pub mod s6_amortization;
pub mod s6_behavior;
pub mod s7_combined;
pub mod sensitivity;
pub mod table1;

use crate::study::StudyConfig;
use bgpsim::observe::{render_days, ObservationDay, VisibilityModel};
use bgpsim::scenario::LeaseWorld;
use delegation::as2org::As2OrgSeries;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The shared BGP-side study state: a world, its rendered observation
/// days, and the AS-to-Org series — inputs to Figures 5/6 and the §4
/// comparison.
pub struct BgpStudy {
    /// The ground-truth world.
    pub world: LeaseWorld,
    /// Daily monitor observations (index 0 = span start).
    pub days: Vec<ObservationDay>,
    /// Quarterly AS-to-Org snapshots.
    pub as2org: As2OrgSeries,
    /// The monitor-fleet parameters the days were rendered with.
    visibility: VisibilityModel,
}

impl BgpStudy {
    /// The monitor-fleet parameters the study was rendered with —
    /// needed to derive further views (e.g. MRT archives) that must
    /// agree with `days`.
    pub fn visibility_model(&self) -> &VisibilityModel {
        &self.visibility
    }
}

/// Generate the world and render every observation day (days fan out
/// across the worker pool; see [`bgpsim::par`]).
pub fn build_bgp_study(config: &StudyConfig) -> BgpStudy {
    let span = obs::span!("build_bgp_study", unit = "days");
    let world = LeaseWorld::generate(&config.world);
    span.add_items(world.span.num_days() as u64);
    let days: Vec<ObservationDay> = render_days(&world, &config.visibility, world.span);
    let as2org = As2OrgSeries::from_topology(
        &world.topology,
        world.span.start,
        world.span.end,
        90,
    );
    BgpStudy {
        world,
        days,
        as2org,
        visibility: config.visibility.clone(),
    }
}

/// The substrate fingerprint: everything that determines a
/// [`BgpStudy`]'s contents. `WorldConfig` and `VisibilityModel` are
/// plain data with derived `Debug`, so their debug rendering is a
/// faithful value key.
fn study_fingerprint(config: &StudyConfig) -> String {
    format!("{:?}|{:?}", config.world, config.visibility)
}

fn study_cache() -> &'static Mutex<HashMap<String, Arc<BgpStudy>>> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<BgpStudy>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// [`build_bgp_study`] with process-wide memoization.
///
/// Several experiments (fig6, §4 coverage, §7, the sensitivity sweeps)
/// share one substrate: the same world and the same rendered days.
/// This caches the built study per `(world config, visibility model)`
/// so a `repro all` run renders each substrate once instead of once
/// per experiment. The study is immutable and shared via `Arc`.
pub fn build_bgp_study_cached(config: &StudyConfig) -> Arc<BgpStudy> {
    let key = study_fingerprint(config);
    if let Some(hit) = study_cache().lock().expect("study cache poisoned").get(&key) {
        obs::metrics::counter("study_cache_hits_total").inc();
        obs::event!(obs::Level::Debug, "study_cache_hit");
        return Arc::clone(hit);
    }
    obs::metrics::counter("study_cache_misses_total").inc();
    obs::event!(obs::Level::Info, "study_cache_miss");
    // Build outside the lock: rendering takes seconds and other
    // substrates should not serialize behind it. A racing duplicate
    // build is harmless (both produce identical studies).
    // lint:allow(L3): build-time histogram only, never reaches artifacts
    let t0 = std::time::Instant::now();
    let built = Arc::new(build_bgp_study(config));
    obs::metrics::histogram("study_build").record(t0.elapsed());
    study_cache()
        .lock()
        .expect("study cache poisoned")
        .entry(key)
        .or_insert_with(|| Arc::clone(&built))
        .clone()
}
