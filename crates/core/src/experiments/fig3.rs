//! Figure 3: inter-RIR transactions by origin and destination,
//! 2012–2020.

use crate::report::TextTable;
use crate::study::StudyConfig;
use registry::rir::Rir;
use registry::simulate::simulate;
use registry::stats::{inter_rir_flows, inter_rir_net_by_rir, InterRirFlow};
use std::collections::BTreeMap;

/// Figure 3 output.
pub struct Fig3 {
    /// Per-year, per-(origin, destination) flows.
    pub flows: Vec<InterRirFlow>,
    /// Net address movement per RIR over the whole window.
    pub net: BTreeMap<Rir, i64>,
    /// Rendered report.
    pub rendered: String,
}

/// Regenerate Figure 3.
pub fn run(config: &StudyConfig) -> Fig3 {
    let history = simulate(&config.registry);
    let flows = inter_rir_flows(&history.log);
    let net = inter_rir_net_by_rir(&history.log);

    let mut table = TextTable::new(&["year", "from", "to", "transfers", "addresses", "median block"]);
    for f in &flows {
        table.row(vec![
            f.year.to_string(),
            f.from.name().to_string(),
            f.to.name().to_string(),
            f.count.to_string(),
            f.addresses.to_string(),
            f.median_block.to_string(),
        ]);
    }
    let mut rendered = table.render();
    rendered.push('\n');
    for (rir, delta) in &net {
        rendered.push_str(&format!(
            "{}: net {} addresses ({})\n",
            rir.name(),
            delta,
            if *delta >= 0 { "importer" } else { "exporter" }
        ));
    }
    Fig3 { flows, net, rendered }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_figure3_shape() {
        let r = run(&StudyConfig::quick());
        assert!(!r.flows.is_empty());
        // ARIN is the big exporter; APNIC and RIPE are importers.
        assert!(r.net[&Rir::Arin] < 0, "ARIN should export: {:?}", r.net);
        assert!(r.net[&Rir::RipeNcc] > 0);
        assert!(r.net[&Rir::Apnic] > 0);
        // Counts grow over time.
        let per_year = |y: i64| -> usize {
            r.flows.iter().filter(|f| f.year == y).map(|f| f.count).sum()
        };
        assert!(per_year(2019) > per_year(2015));
        // Transferred blocks shrink over time (median across flows).
        let med_block = |y: i64| -> f64 {
            let mut v: Vec<u64> = r
                .flows
                .iter()
                .filter(|f| f.year == y)
                .map(|f| f.median_block)
                .collect();
            if v.is_empty() {
                return 0.0;
            }
            v.sort_unstable();
            v[v.len() / 2] as f64
        };
        if med_block(2015) > 0.0 && med_block(2019) > 0.0 {
            assert!(med_block(2019) < med_block(2015));
        }
        // Only the big three participate.
        for f in &r.flows {
            assert!(Rir::MARKET_RIRS.contains(&f.from));
            assert!(Rir::MARKET_RIRS.contains(&f.to));
        }
        assert!(r.rendered.contains("exporter"));
    }
}
