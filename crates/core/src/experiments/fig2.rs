//! Figure 2: number of market transfers per region over time.

use crate::report::TextTable;
use crate::study::StudyConfig;
use registry::policy::AllocationPolicy;
use registry::simulate::{simulate, RegistryHistory};
use registry::stats::{market_start_dates, quarterly_counts, QuarterlyCount};

/// Figure 2 output.
pub struct Fig2 {
    /// The simulated registry history.
    pub history: RegistryHistory,
    /// Per-quarter, per-region transfer counts (M&A-filtered, as the
    /// paper's preprocessing does where labels allow).
    pub counts: Vec<QuarterlyCount>,
    /// Rendered report.
    pub rendered: String,
}

/// Regenerate Figure 2.
pub fn run(config: &StudyConfig) -> Fig2 {
    let history = simulate(&config.registry);
    // The analysis sees the *published* feeds and filters labelled M&A.
    let published = history.log.published().without_labelled_mna();
    let counts = quarterly_counts(&published);

    let mut table = TextTable::new(&["quarter", "region", "transfers", "addresses"]);
    for c in &counts {
        table.row(vec![
            c.quarter_label.clone(),
            c.rir.name().to_string(),
            c.count.to_string(),
            c.addresses.to_string(),
        ]);
    }
    let mut rendered = table.render();
    rendered.push('\n');
    for (rir, start) in market_start_dates(&published) {
        let policy = AllocationPolicy::for_rir(rir);
        rendered.push_str(&format!(
            "{}: first transfer {} (last /8 on {})\n",
            rir.name(),
            start,
            policy.last_slash8
        ));
    }
    Fig2 {
        history,
        counts,
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use registry::rir::Rir;

    #[test]
    fn reproduces_figure2_shape() {
        let r = run(&StudyConfig::quick());
        assert!(!r.counts.is_empty());
        // Markets start at (or shortly after) the last-/8 dates.
        let starts = market_start_dates(&r.history.log);
        for rir in [Rir::Apnic, Rir::Arin, Rir::RipeNcc] {
            let policy = AllocationPolicy::for_rir(rir);
            assert!(starts[&rir] >= policy.last_slash8);
        }
        // AFRINIC/LACNIC negligible.
        let total: usize = r.counts.iter().map(|c| c.count).sum();
        let marginal: usize = r
            .counts
            .iter()
            .filter(|c| matches!(c.rir, Rir::Afrinic | Rir::Lacnic))
            .map(|c| c.count)
            .sum();
        assert!((marginal as f64) < 0.03 * total as f64);
        assert!(r.rendered.contains("first transfer"));
    }
}
