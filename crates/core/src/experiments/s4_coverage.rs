//! §4 headline: BGP-delegations vs RDAP-delegations coverage.
//!
//! Paper (RIPE region, June 2020): BGP-delegations cover ~1.85 % of
//! the RDAP-delegated IPs; RDAP-delegations cover ~65.7 % of the
//! BGP-delegated IPs. Neither source alone sees the leasing market.

use crate::experiments::{build_bgp_study_cached, BgpStudy};
use crate::report::pct;
use crate::study::StudyConfig;
use delegation::compare::{coverage_report, CoverageReport};
use delegation::config::InferenceConfig;
use delegation::pipeline::{run_pipeline, PipelineInput};
use rdap::database::{DbBuildConfig, WhoisDb};
use rdap::pipeline::{extract_delegations, PipelineConfig, PipelineStats};
use rdap::server::RdapServer;

/// §4 comparison output.
pub struct S4Coverage {
    /// The two-way coverage numbers.
    pub coverage: CoverageReport,
    /// RDAP pipeline accounting (incl. the 91.4 % small-block skips).
    pub rdap_stats: PipelineStats,
    /// Ground-truth leasing-market size (active leases on the
    /// comparison date) — what neither source fully sees.
    pub true_active_leases: usize,
    /// Rendered report.
    pub rendered: String,
}

/// Run the comparison on a pre-built study.
pub fn run_with_study(study: &BgpStudy) -> S4Coverage {
    let span = study.world.span;
    let as_of = span.end;

    // BGP side: the extended pipeline; compare on the final day.
    let bgp = run_pipeline(
        PipelineInput::Days(&study.days),
        span,
        &InferenceConfig::extended(),
        Some(&study.as2org),
    );
    let bgp_today = bgp.on(as_of).unwrap_or(&[]);

    // RDAP side: snapshot + extraction at the same date.
    let db = WhoisDb::build_from_world(&study.world, as_of, &DbBuildConfig::default());
    let server = RdapServer::with_rate_limit(db.clone(), 1000);
    let (rdap_delegs, rdap_stats) =
        extract_delegations(&db, &server, &PipelineConfig::default());

    let coverage = coverage_report(bgp_today, &rdap_delegs);
    let true_active_leases = study.world.true_leases_on(as_of).len();

    let rendered = format!(
        "as of {as_of}:\n\
         BGP delegations:   {} prefixes, {} addresses\n\
         RDAP delegations:  {} objects,  {} addresses\n\
         BGP covers {} of RDAP-delegated IPs (paper: ~1.85%)\n\
         RDAP covers {} of BGP-delegated IPs (paper: ~65.7%)\n\
         small (<\u{2F}24) ASSIGNED PA objects skipped: {} of {} candidates ({})\n\
         ground truth: {} active leases — both sources underestimate\n",
        coverage.bgp_delegations,
        coverage.bgp_addresses,
        coverage.rdap_delegations,
        coverage.rdap_addresses,
        pct(coverage.bgp_coverage_of_rdap),
        pct(coverage.rdap_coverage_of_bgp),
        rdap_stats.skipped_small,
        rdap_stats.candidate_objects,
        pct(rdap_stats.skipped_small as f64 / rdap_stats.candidate_objects.max(1) as f64),
        true_active_leases,
    );
    S4Coverage {
        coverage,
        rdap_stats,
        true_active_leases,
        rendered,
    }
}

/// Run the comparison from a config.
pub fn run(config: &StudyConfig) -> S4Coverage {
    let study = build_bgp_study_cached(config);
    run_with_study(&study)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_coverage_asymmetry() {
        let r = run(&StudyConfig::quick());
        // BGP sees a tiny fraction of the RDAP-delegated space…
        assert!(
            r.coverage.bgp_coverage_of_rdap < 0.08,
            "BGP coverage of RDAP {} should be tiny",
            r.coverage.bgp_coverage_of_rdap
        );
        assert!(r.coverage.bgp_coverage_of_rdap > 0.0);
        // …while RDAP covers a large share of BGP-delegated space.
        // (The quick world announces only ~25 leases, so this ratio is
        // noisy: the registered fraction is 0.657 ± ~0.10 at this n.)
        assert!(
            (0.35..=0.90).contains(&r.coverage.rdap_coverage_of_bgp),
            "RDAP coverage of BGP {}",
            r.coverage.rdap_coverage_of_bgp
        );
        // The ~91.4 % small-object skip shows up.
        let skip_frac =
            r.rdap_stats.skipped_small as f64 / r.rdap_stats.candidate_objects as f64;
        assert!((0.85..=0.95).contains(&skip_frac), "skip fraction {skip_frac}");
        // Neither source reaches the true market size.
        assert!(r.coverage.rdap_delegations < r.true_active_leases);
        assert!(r.coverage.bgp_delegations < r.coverage.rdap_delegations);
        assert!(r.rendered.contains("paper: ~1.85%"));
    }
}
