//! Figure 5: validation of consistency-rule values on RPKI
//! delegations.

use crate::report::{pct, TextTable};
use crate::study::StudyConfig;
use bgpsim::scenario::LeaseWorld;
use rpki::consistency::{evaluate_rule, fail_rate_curves, ConsistencyReport};
use rpki::delegation::infer_series;
use rpki::snapshot::SnapshotSeries;

/// Figure 5 output.
pub struct Fig5 {
    /// One curve per N (allowed missing days).
    pub curves: Vec<ConsistencyReport>,
    /// The paper's chosen rule's fail rate: (M = 10, N = 0).
    pub chosen_rule_fail_rate: f64,
    /// Rendered report.
    pub rendered: String,
}

/// The M grid (days apart) and N grid (allowed missing days) of the
/// figure.
pub fn grids(scale_days: i64) -> (Vec<usize>, Vec<usize>) {
    let max_m = (scale_days as usize).saturating_sub(2).min(100);
    let ms: Vec<usize> = [2usize, 5, 10, 20, 30, 50, 70, 90, 100]
        .into_iter()
        .filter(|&m| m <= max_m)
        .collect();
    (ms, vec![0, 1, 2, 3])
}

/// Regenerate Figure 5.
pub fn run(config: &StudyConfig) -> Fig5 {
    let world = LeaseWorld::generate(&config.world);
    let series = SnapshotSeries::generate(&world, &config.rpki);
    let daily = infer_series(&series.days);
    let (ms, ns) = grids(world.span.num_days());
    let curves = fail_rate_curves(&daily, &ms, &ns);
    let chosen = evaluate_rule(&daily, 10, 0);

    let mut header: Vec<String> = vec!["M (days)".to_string()];
    header.extend(ns.iter().map(|n| format!("N={n}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);
    for (mi, &m) in ms.iter().enumerate() {
        let mut row = vec![m.to_string()];
        for c in &curves {
            row.push(pct(c.points[mi].1));
        }
        table.row(row);
    }
    let mut rendered = table.render();
    rendered.push_str(&format!(
        "\nchosen rule (M=10, N=0): fail rate {} over {} premises\n",
        pct(chosen.fail_rate()),
        chosen.premises
    ));
    Fig5 {
        curves,
        chosen_rule_fail_rate: chosen.fail_rate(),
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_appendix_a_claims() {
        let r = run(&StudyConfig::quick());
        // The chosen rule's fail rate is low (the paper reports ~5 %
        // at full scale; the quick world's ~1k premises put the
        // estimate within a few points of that).
        assert!(
            r.chosen_rule_fail_rate < 0.10,
            "(10, 0) fail rate {}",
            r.chosen_rule_fail_rate
        );
        // The fail rate never reaches 30 %, even at large M.
        for c in &r.curves {
            for (m, rate) in &c.points {
                assert!(
                    *rate < 0.30,
                    "fail rate {rate} at M={m}, N={} exceeds 30 %",
                    c.n
                );
            }
        }
        // Monotone: larger N never fails more at equal M.
        for w in r.curves.windows(2) {
            for (a, b) in w[0].points.iter().zip(&w[1].points) {
                assert!(b.1 <= a.1 + 1e-12);
            }
        }
        assert!(r.rendered.contains("chosen rule"));
    }
}
