//! §6: market engagement by business model.

use crate::report::{f, TextTable};
use crate::study::StudyConfig;
use market::behavior::{
    profile_by_kind, simulate_behaviors, BehaviorConfig, KindProfile, LeaseBackContract,
};
use nettypes::date::{date, DateRange};
use registry::org::OrgKind;

/// §6 behaviour output.
pub struct S6Behavior {
    /// Per-kind profiles.
    pub profiles: Vec<(OrgKind, KindProfile)>,
    /// The illustrative buy-and-lease-back contract.
    pub leaseback: LeaseBackContract,
    /// Rendered report.
    pub rendered: String,
}

/// Run the behaviour simulation and profile it.
pub fn run(config: &StudyConfig) -> S6Behavior {
    let trace = simulate_behaviors(&BehaviorConfig {
        seed: config.seed ^ 0x6EAB,
        span: DateRange::new(date("2019-01-01"), date("2020-06-01")),
        orgs_per_kind: 80,
    });
    let profiles = profile_by_kind(&trace);

    let mut table = TextTable::new(&[
        "business model", "buys", "mean bought IPs", "leases", "mean months",
        "rotations/lease", "terminations", "lease-backs",
    ]);
    for (kind, p) in &profiles {
        table.row(vec![
            format!("{kind:?}"),
            p.buys.to_string(),
            f(p.mean_buy_addresses, 0),
            p.leases.to_string(),
            f(p.mean_lease_months, 1),
            f(p.rotations_per_lease, 1),
            p.terminations.to_string(),
            p.leasebacks.to_string(),
        ]);
    }

    // The §6 illustrative contract: sell a /16 at market price, lease
    // back a /19.
    let leaseback = LeaseBackContract {
        sold_addresses: 65_536,
        price_per_ip: 22.50,
        commission: 0.06,
        leaseback_addresses: 8_192,
        lease_per_ip_month: 0.50,
    };
    let mut rendered = table.render();
    rendered.push_str(&format!(
        "\nbuy-and-lease-back example: selling a /16 at $22.50/IP nets ${:.0}k immediately;\n\
         leasing back a /19 at $0.50/IP/mo costs ${:.1}k/month — the proceeds fund it for {:.0} years.\n",
        leaseback.immediate_cash() / 1000.0,
        leaseback.monthly_cost() / 1000.0,
        leaseback.cash_horizon_months().unwrap_or(f64::INFINITY) / 12.0,
    ));
    S6Behavior {
        profiles,
        leaseback,
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_section6_profiles() {
        let r = run(&StudyConfig::quick());
        let get = |k: OrgKind| {
            r.profiles
                .iter()
                .find(|(kk, _)| *kk == k)
                .expect("kind present")
                .1
                .clone()
        };
        assert!(get(OrgKind::Isp).mean_buy_addresses > 4096.0);
        assert!(get(OrgKind::Enterprise).mean_buy_addresses < 4096.0);
        assert!(get(OrgKind::VpnProvider).rotations_per_lease > 3.0);
        assert!(get(OrgKind::Spammer).mean_lease_months <= 1.5);
        assert!(get(OrgKind::LeasingProvider).leasebacks > 0);
        assert!(r.rendered.contains("buy-and-lease-back"));
    }
}
