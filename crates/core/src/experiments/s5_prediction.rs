//! §5 related work: prediction models over-estimate the market.
//!
//! Livadariu et al. predicted ≈ $30/IP for end-2015 — ~200 % above
//! the actual price. We reproduce the *mechanism*: an exponential
//! extrapolation fitted on the trending era badly overshoots the
//! consolidated market, while being roughly calibrated in-sample.

use crate::report::{f, TextTable};
use crate::study::StudyConfig;
use market::prediction::{evaluate_extrapolation, ExponentialFit, PredictionScore};
use market::transactions::{generate_transactions, TransactionConfig};
use nettypes::date::date;

/// §5 output.
pub struct S5Prediction {
    /// The fitted growth model.
    pub fit: ExponentialFit,
    /// Out-of-sample score at the consolidated market.
    pub out_of_sample: PredictionScore,
    /// In-sample score during the trending era.
    pub in_sample: PredictionScore,
    /// Rendered report.
    pub rendered: String,
}

/// Run the prediction comparison.
pub fn run(config: &StudyConfig) -> Option<S5Prediction> {
    let txs = generate_transactions(&TransactionConfig {
        seed: config.seed.wrapping_add(0xF161),
        ..TransactionConfig::default()
    });
    let (fit, out_of_sample) =
        evaluate_extrapolation(&txs, date("2019-01-01"), date("2020-06-01"))?;
    let (_, in_sample) = evaluate_extrapolation(&txs, date("2018-01-01"), date("2018-06-01"))?;

    let mut table = TextTable::new(&["evaluation", "predicted $/IP", "actual $/IP", "error"]);
    for (label, s) in [("in-sample (2018-06)", &in_sample), ("out-of-sample (2020-06)", &out_of_sample)] {
        table.row(vec![
            label.to_string(),
            f(s.predicted, 2),
            f(s.actual, 2),
            format!("{:+.1}%", s.relative_error * 100.0),
        ]);
    }
    let mut rendered = table.render();
    rendered.push_str(&format!(
        "\nfitted annual growth: ×{:.2}; extrapolation misses the consolidation,\n\
         reproducing the §5 finding that prior models over-estimated prices\n\
         (Livadariu et al.: ~200 % over for end-2015).\n",
        fit.annual_growth()
    ));
    Some(S5Prediction {
        fit,
        out_of_sample,
        in_sample,
        rendered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overestimates_out_of_sample_only() {
        let r = run(&StudyConfig::quick()).expect("data available");
        assert!(r.out_of_sample.relative_error > 0.15, "{:?}", r.out_of_sample);
        assert!(r.in_sample.relative_error.abs() < 0.15, "{:?}", r.in_sample);
        assert!(r.fit.annual_growth() > 1.05);
        assert!(r.rendered.contains("over-estimated"));
    }
}
