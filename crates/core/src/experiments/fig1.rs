//! Figure 1: evolution of price per IP by prefix size and region.

use crate::report::{f, TextTable};
use crate::study::StudyConfig;
use market::analysis::boxplot::{boxplot_grid, PriceBox};
use market::analysis::consolidation::{detect_consolidation_default, ConsolidationFinding};
use market::analysis::significance::{regional_difference_test, RegionalComparison};
use market::transactions::{generate_transactions, PricedTransaction, TransactionConfig};

/// Figure 1 output.
pub struct Fig1 {
    /// The anonymized transaction data set.
    pub transactions: Vec<PricedTransaction>,
    /// The box-plot grid (quarter × region × size class).
    pub boxes: Vec<PriceBox>,
    /// Pairwise regional significance tests.
    pub regional: Vec<RegionalComparison>,
    /// Detected consolidation phase, if any.
    pub consolidation: Option<ConsolidationFinding>,
    /// Rendered report.
    pub rendered: String,
}

/// Regenerate Figure 1 (plus the §3 statistical claims attached to it).
pub fn run(config: &StudyConfig) -> Fig1 {
    let txs = generate_transactions(&TransactionConfig {
        seed: config.seed.wrapping_add(0xF161),
        ..TransactionConfig::default()
    });
    let boxes = boxplot_grid(&txs);
    let regional = regional_difference_test(&txs);
    let consolidation = detect_consolidation_default(&txs);

    let mut table = TextTable::new(&[
        "quarter", "region", "size", "n", "q1", "median", "q3",
    ]);
    for b in &boxes {
        table.row(vec![
            b.quarter_label.clone(),
            b.region.name().to_string(),
            b.size.label().to_string(),
            b.stats.count.to_string(),
            f(b.stats.q1, 2),
            f(b.stats.median, 2),
            f(b.stats.q3, 2),
        ]);
    }
    let mut rendered = table.render();
    rendered.push('\n');
    for c in &regional {
        rendered.push_str(&format!(
            "regional test {} vs {}: p = {:.3} ({} strata) — {}\n",
            c.a,
            c.b,
            c.p_value,
            c.strata,
            if c.p_value > 0.05 {
                "no significant difference"
            } else {
                "SIGNIFICANT DIFFERENCE"
            }
        ));
    }
    if let Some(cons) = &consolidation {
        rendered.push_str(&format!(
            "consolidation phase from {} (median ${:.2}/IP)\n",
            cons.start_quarter_label, cons.consolidated_median
        ));
    }
    Fig1 {
        transactions: txs,
        boxes,
        regional,
        consolidation,
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_section3_claims() {
        let r = run(&StudyConfig::quick());
        assert!(!r.boxes.is_empty());
        // No regional difference.
        assert!(r.regional.iter().all(|c| c.p_value > 0.05), "{}", r.rendered);
        // Consolidation detected in 2019.
        let cons = r.consolidation.as_ref().expect("consolidation");
        assert!(cons.start_quarter_label.starts_with("2019"));
        assert!((20.0..=25.0).contains(&cons.consolidated_median));
        assert!(r.rendered.contains("no significant difference"));
        assert!(r.rendered.contains("consolidation phase from 2019"));
    }
}
