//! Sensitivity studies behind the paper's robustness claims.
//!
//! * Footnote 2: "As long as the monitor threshold is chosen between
//!   10 % and 90 % the difference in inferred delegations is
//!   negligible" — the threshold sweep quantifies that.
//! * Appendix A picks (M = 10, N = 0) for extension (v); the
//!   fill-window sweep shows how recall and precision move as the
//!   window grows (larger windows fill more gaps but risk bridging
//!   real terminations).

use crate::experiments::{build_bgp_study_cached, BgpStudy};
use crate::report::{f, pct, TextTable};
use crate::study::StudyConfig;
use delegation::config::InferenceConfig;
use delegation::eval::{evaluate_against_truth, TruthEvaluation};
use delegation::pipeline::{run_pipeline, PipelineInput};
use serde::{Deserialize, Serialize};

/// One sweep point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub value: f64,
    /// Total inferred delegation-days.
    pub total_delegations: usize,
    /// Ground-truth scores.
    pub eval: TruthEvaluation,
}

/// Sensitivity output.
pub struct Sensitivity {
    /// Visibility-threshold sweep (fractions of the monitor fleet).
    pub threshold_sweep: Vec<SweepPoint>,
    /// Consistency-fill window sweep (days).
    pub fill_sweep: Vec<SweepPoint>,
    /// Max relative spread of totals across the 10–90 % thresholds.
    pub threshold_spread: f64,
    /// Rendered report.
    pub rendered: String,
}

/// Run both sweeps on a shared study.
pub fn run_with_study(study: &BgpStudy) -> Sensitivity {
    let span = study.world.span;

    let mut threshold_sweep = Vec::new();
    for threshold in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let cfg = InferenceConfig {
            visibility_threshold: threshold,
            ..InferenceConfig::baseline()
        };
        let result = run_pipeline(PipelineInput::Days(&study.days), span, &cfg, None);
        threshold_sweep.push(SweepPoint {
            value: threshold,
            total_delegations: result.days.iter().map(Vec::len).sum(),
            eval: evaluate_against_truth(&study.world, &result),
        });
    }
    let max = threshold_sweep
        .iter()
        .map(|p| p.total_delegations)
        .max()
        .unwrap_or(0) as f64;
    let min = threshold_sweep
        .iter()
        .map(|p| p.total_delegations)
        .min()
        .unwrap_or(0) as f64;
    let threshold_spread = if max > 0.0 { (max - min) / max } else { 0.0 };

    let mut fill_sweep = Vec::new();
    for window in [0usize, 3, 10, 30, 60] {
        let cfg = InferenceConfig {
            consistency_fill_days: (window > 0).then_some(window),
            filter_intra_org: true,
            ..InferenceConfig::baseline()
        };
        let result = run_pipeline(
            PipelineInput::Days(&study.days),
            span,
            &cfg,
            Some(&study.as2org),
        );
        fill_sweep.push(SweepPoint {
            value: window as f64,
            total_delegations: result.days.iter().map(Vec::len).sum(),
            eval: evaluate_against_truth(&study.world, &result),
        });
    }

    let mut rendered = String::from("visibility-threshold sweep (baseline algorithm):\n");
    let mut t = TextTable::new(&["threshold", "delegation-days", "precision", "recall"]);
    for p in &threshold_sweep {
        t.row(vec![
            f(p.value, 1),
            p.total_delegations.to_string(),
            pct(p.eval.precision()),
            pct(p.eval.recall()),
        ]);
    }
    rendered.push_str(&t.render());
    rendered.push_str(&format!(
        "spread across 10–90 %: {} (paper: negligible)\n\n",
        pct(threshold_spread)
    ));
    rendered.push_str("consistency-fill window sweep (with extension (iv)):\n");
    let mut t = TextTable::new(&["window (days)", "delegation-days", "precision", "recall"]);
    for p in &fill_sweep {
        t.row(vec![
            f(p.value, 0),
            p.total_delegations.to_string(),
            pct(p.eval.precision()),
            pct(p.eval.recall()),
        ]);
    }
    rendered.push_str(&t.render());

    Sensitivity {
        threshold_sweep,
        fill_sweep,
        threshold_spread,
        rendered,
    }
}

/// Run the sweeps from a config.
pub fn run(config: &StudyConfig) -> Sensitivity {
    let study = build_bgp_study_cached(config);
    run_with_study(&study)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_negligible_and_fill_monotone() {
        let r = run(&StudyConfig::quick());
        // Footnote 2.
        assert!(
            r.threshold_spread < 0.10,
            "threshold spread {}",
            r.threshold_spread
        );
        // Recall grows monotonically with the fill window…
        for w in r.fill_sweep.windows(2) {
            assert!(
                w[1].eval.recall() >= w[0].eval.recall() - 1e-9,
                "recall dropped from window {} to {}",
                w[0].value,
                w[1].value
            );
        }
        // …and the chosen window (10) recovers most of what 60 does.
        let at = |v: f64| {
            r.fill_sweep
                .iter()
                .find(|p| p.value == v)
                .expect("sweep point")
        };
        let gain_10 = at(10.0).eval.recall() - at(0.0).eval.recall();
        let gain_60 = at(60.0).eval.recall() - at(0.0).eval.recall();
        assert!(
            gain_10 > 0.6 * gain_60,
            "10-day window gains {gain_10:.3} vs 60-day {gain_60:.3}"
        );
        assert!(r.rendered.contains("visibility-threshold sweep"));
    }
}
