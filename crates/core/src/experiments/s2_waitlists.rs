//! §2: post-exhaustion waiting-list status.
//!
//! The paper reports: ARIN's list held up to 202 approved requests
//! with waits beyond 130 days; LACNIC's up to 275; RIPE's up to 110,
//! cleared with recovered space after November 2019; APNIC abolished
//! its list in July 2019.

use crate::report::TextTable;
use crate::study::StudyConfig;
use nettypes::date::date;
use registry::simulate::{simulate_waitlists, WaitlistReport};

/// §2 waiting-list output.
pub struct S2Waitlists {
    /// Per-RIR reports.
    pub reports: Vec<WaitlistReport>,
    /// Rendered report.
    pub rendered: String,
}

/// Simulate the waiting lists up to the paper's observation date for
/// these statistics (October 2020 — LACNIC's list only starts with its
/// 2020-08-19 depletion).
pub fn run(config: &StudyConfig) -> S2Waitlists {
    let reports = simulate_waitlists(config.seed, date("2020-10-25"));
    let mut table = TextTable::new(&[
        "RIR", "peak depth", "paper peak", "max wait (days)", "pending",
    ]);
    for r in &reports {
        let paper_peak = match r.rir {
            registry::rir::Rir::Arin => "202",
            registry::rir::Rir::Lacnic => "275",
            registry::rir::Rir::RipeNcc => "110",
            _ => "-",
        };
        table.row(vec![
            r.rir.name().to_string(),
            r.max_depth.to_string(),
            paper_peak.to_string(),
            r.max_waiting_days.map(|d| d.to_string()).unwrap_or_else(|| "-".into()),
            r.pending.to_string(),
        ]);
    }
    let mut rendered = table.render();
    rendered.push_str(
        "\nAPNIC abolished its waiting list on 2019-07-02; AFRINIC never operated one.\n",
    );
    S2Waitlists { reports, rendered }
}

#[cfg(test)]
mod tests {
    use super::*;
    use registry::rir::Rir;

    #[test]
    fn reproduces_section2_bands() {
        let r = run(&StudyConfig::quick());
        let get = |rir: Rir| r.reports.iter().find(|x| x.rir == rir).expect("report");
        // ARIN: deep backlog, >100-day waits.
        let arin = get(Rir::Arin);
        assert!(arin.max_depth > 100 && arin.max_depth <= 202);
        assert!(arin.max_waiting_days.unwrap_or(0) >= 100);
        // LACNIC: deepest backlog (recent depletion).
        let lacnic = get(Rir::Lacnic);
        assert!(lacnic.max_depth > arin.max_depth / 2);
        assert!(lacnic.max_depth <= 275);
        // RIPE: kept up via recovered space.
        let ripe = get(Rir::RipeNcc);
        assert!(ripe.max_depth <= 110);
        assert!(r.rendered.contains("APNIC abolished"));
    }
}
