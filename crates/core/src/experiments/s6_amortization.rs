//! §6: buy-vs-lease amortization times.
//!
//! In addition to the paper's headline scenario grid, the table
//! derives the maintenance input from the actual RIR fee schedules
//! (`registry::fees`): a /24-only RIPE LIR carries ≈ $0.50/IP/month in
//! membership fees — more than the cheapest lease rates — while a /16
//! holder's per-IP maintenance rounds to zero.

use crate::report::{f, TextTable};
use market::amortization::{amortization_months, section6_scenarios, AmortizationScenario};
use registry::fees::maintenance_per_ip_month;
use registry::rir::Rir;

/// §6 output.
pub struct S6Amortization {
    /// The scenario grid.
    pub scenarios: Vec<AmortizationScenario>,
    /// Rendered report.
    pub rendered: String,
}

/// Regenerate the §6 amortization table.
pub fn run() -> S6Amortization {
    let scenarios = section6_scenarios();
    let mut table = TextTable::new(&[
        "scenario", "buy $/IP", "lease $/IP/mo", "maint $/IP/mo", "months", "years",
    ]);
    for s in &scenarios {
        let (months, years) = match (s.months(), s.years()) {
            (Some(m), Some(y)) => (f(m, 1), f(y, 1)),
            _ => ("never".to_string(), "never".to_string()),
        };
        table.row(vec![
            s.label.clone(),
            f(s.buy_per_ip, 2),
            f(s.lease_per_ip_month, 2),
            f(s.maintenance_per_ip_month, 3),
            months,
            years,
        ]);
    }
    let mut rendered = table.render();

    // Fee-derived rows: the maintenance cost comes from the RIR
    // schedules instead of being assumed.
    let mut fee_table = TextTable::new(&[
        "holder", "RIR fee-derived maint $/IP/mo", "amortization at $0.50 lease",
    ]);
    for (label, rir, addresses) in [
        ("/24-only RIPE LIR", Rir::RipeNcc, 256u64),
        ("/22 ARIN holder", Rir::Arin, 1024),
        ("/16 RIPE holder", Rir::RipeNcc, 65_536),
    ] {
        let maint = maintenance_per_ip_month(rir, addresses);
        let amort = amortization_months(22.50, 0.50, maint)
            .map(|m| format!("{:.1} years", m / 12.0))
            .unwrap_or_else(|| "never (fees exceed the lease)".into());
        fee_table.row(vec![label.to_string(), f(maint, 3), amort]);
    }
    rendered.push('\n');
    rendered.push_str(&fee_table.render());
    rendered.push_str(
        "\npaper: amortization ranges from under a year to multiple tens of years;\n\
         brokers report customer averages of two to three years.\n",
    );
    S6Amortization {
        scenarios,
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_section6_range() {
        let r = run();
        let finite: Vec<f64> = r.scenarios.iter().filter_map(|s| s.months()).collect();
        let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let max = finite.iter().copied().fold(0.0, f64::max);
        assert!(min < 12.0, "fastest {min} months should be under a year");
        assert!(max > 300.0, "slowest {max} months should be tens of years");
        // The broker-reported 2–3 year band is covered by a scenario.
        assert!(r
            .scenarios
            .iter()
            .filter_map(AmortizationScenario::years)
            .any(|y| (2.0..=3.0).contains(&y)));
        assert!(r.rendered.contains("never"));
        assert!(r.rendered.contains("months"));
    }
}
