//! Figure 6: number of BGP delegations and delegated addresses,
//! baseline [Krenc-Feldmann] vs the paper's extended algorithm.

use crate::experiments::{build_bgp_study_cached, BgpStudy};
use crate::report::{f, pct, TextTable};
use crate::study::StudyConfig;
use delegation::config::InferenceConfig;
use delegation::eval::{evaluate_against_truth, TruthEvaluation};
use delegation::metrics::{daily_metrics, summarize, DailyMetrics, SeriesSummary};
use delegation::pipeline::{
    run_pipeline_with_mode, DailyDelegations, PipelineInput, PipelineMode,
};

/// Figure 6 output.
pub struct Fig6 {
    /// Baseline per-day metric series.
    pub baseline_metrics: Vec<DailyMetrics>,
    /// Extended per-day metric series.
    pub extended_metrics: Vec<DailyMetrics>,
    /// Baseline summary.
    pub baseline_summary: SeriesSummary,
    /// Extended summary.
    pub extended_summary: SeriesSummary,
    /// Ground-truth scores for both configs.
    pub baseline_eval: TruthEvaluation,
    /// Ground-truth scores for the extended config.
    pub extended_eval: TruthEvaluation,
    /// The raw pipeline outputs (baseline, extended).
    pub results: (DailyDelegations, DailyDelegations),
    /// Rendered report.
    pub rendered: String,
}

/// Regenerate Figure 6 using a pre-built study (lets callers reuse the
/// world across experiments).
pub fn run_with_study(study: &BgpStudy) -> Fig6 {
    run_with_inputs(study, || PipelineInput::Days(&study.days))
}

/// Regenerate Figure 6 with a caller-chosen pipeline input over the
/// study's span — `run_with_study` feeds the pre-rendered days, while
/// the profiler feeds a freshly encoded MRT archive so the faithful
/// decode path shows up in the stage tree. `make_input` is called once
/// per algorithm (the two pipeline runs each consume an input).
pub fn run_with_inputs<'a>(
    study: &BgpStudy,
    make_input: impl Fn() -> PipelineInput<'a>,
) -> Fig6 {
    run_with_inputs_mode(study, make_input, PipelineMode::Incremental)
}

/// [`run_with_inputs`] with an explicit [`PipelineMode`] — the
/// determinism suite forces [`PipelineMode::FullRecompute`] here to
/// prove the incremental archive path changes no figure byte.
pub fn run_with_inputs_mode<'a>(
    study: &BgpStudy,
    make_input: impl Fn() -> PipelineInput<'a>,
    mode: PipelineMode,
) -> Fig6 {
    let span = study.world.span;
    let baseline = {
        let _sp = obs::span!("fig6_baseline");
        run_pipeline_with_mode(make_input(), span, &InferenceConfig::baseline(), None, mode)
    };
    let extended = {
        let _sp = obs::span!("fig6_extended");
        run_pipeline_with_mode(
            make_input(),
            span,
            &InferenceConfig::extended(),
            Some(&study.as2org),
            mode,
        )
    };
    let _agg = obs::span!("study_aggregation");
    let baseline_metrics = daily_metrics(&baseline);
    let extended_metrics = daily_metrics(&extended);
    let edge = (span.num_days() / 8).clamp(7, 30) as usize;
    let baseline_summary = summarize(&baseline_metrics, edge);
    let extended_summary = summarize(&extended_metrics, edge);
    let baseline_eval = evaluate_against_truth(&study.world, &baseline);
    let extended_eval = evaluate_against_truth(&study.world, &extended);

    let mut table = TextTable::new(&[
        "algorithm", "mean delegations/day", "count std", "diff std", "growth",
        "mean delegated IPs", "/24 share end", "/20 share end",
        "precision", "recall",
    ]);
    for (label, s, e) in [
        ("baseline [48]", &baseline_summary, &baseline_eval),
        ("extended (ours)", &extended_summary, &extended_eval),
    ] {
        table.row(vec![
            label.to_string(),
            f(s.mean_delegations, 1),
            f(s.count_std, 2),
            f(s.count_diff_std, 2),
            pct(s.growth),
            f(s.mean_addresses, 0),
            pct(s.slash24_share_end),
            pct(s.slash20_share_end),
            pct(e.precision()),
            pct(e.recall()),
        ]);
    }
    let rendered = table.render();
    Fig6 {
        baseline_metrics,
        extended_metrics,
        baseline_summary,
        extended_summary,
        baseline_eval,
        extended_eval,
        results: (baseline, extended),
        rendered,
    }
}

/// Regenerate Figure 6 from a config.
pub fn run(config: &StudyConfig) -> Fig6 {
    let study = build_bgp_study_cached(config);
    run_with_study(&study)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_figure6_shape() {
        let r = run(&StudyConfig::quick());
        // Extensions reduce the daily count…
        assert!(
            r.extended_summary.mean_delegations < r.baseline_summary.mean_delegations,
            "baseline {} vs extended {}",
            r.baseline_summary.mean_delegations,
            r.extended_summary.mean_delegations
        );
        // …and eliminate the day-to-day jumpiness (the paper's
        // headline for the appendix figure). The first-difference std
        // isolates the high-frequency noise from the slow market
        // growth both series share.
        assert!(
            r.extended_summary.count_diff_std < 0.6 * r.baseline_summary.count_diff_std,
            "diff std: baseline {} vs extended {}",
            r.baseline_summary.count_diff_std,
            r.extended_summary.count_diff_std
        );
        // The extended algorithm scores strictly better against truth.
        assert!(r.extended_eval.f1() > r.baseline_eval.f1());
        assert!(r.rendered.contains("extended (ours)"));
    }
}
