//! Figure 4: advertised leasing prices, 2019-10-26 → 2020-06-01.

use crate::report::{f, TextTable};
use market::leasing::{leasing_catalog, prices_on, LeasingProvider};
use nettypes::date::{date, Date};

/// Figure 4 output.
pub struct Fig4 {
    /// The provider catalog.
    pub catalog: Vec<LeasingProvider>,
    /// Monthly sample dates across the scrape window.
    pub sample_dates: Vec<Date>,
    /// Rendered report.
    pub rendered: String,
}

/// Regenerate Figure 4. (Pure data — the advertised prices are
/// reproduced from the paper itself, so no config is needed.)
pub fn run() -> Fig4 {
    let catalog = leasing_catalog();
    // Monthly samples from the first scrape to the last.
    let mut sample_dates = Vec::new();
    let mut d = date("2019-10-26");
    while d <= date("2020-06-01") {
        sample_dates.push(d);
        // Advance roughly one month.
        d += 30;
    }
    if *sample_dates.last().expect("non-empty") != date("2020-06-01") {
        sample_dates.push(date("2020-06-01"));
    }

    let mut table = TextTable::new(&["date", "providers", "min $/IP/mo", "max $/IP/mo"]);
    for &day in &sample_dates {
        let visible = prices_on(&catalog, day);
        let min = visible.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        let max = visible.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
        table.row(vec![
            day.to_string(),
            visible.len().to_string(),
            f(min, 2),
            f(max, 2),
        ]);
    }
    let mut rendered = table.render();
    rendered.push('\n');
    for p in catalog.iter().filter(|p| p.changed_price()) {
        let first = p.prices.first().expect("non-empty").price;
        let last = p.prices.last().expect("non-empty").price;
        rendered.push_str(&format!("{}: ${:.2} → ${:.2}\n", p.name, first, last));
    }
    Fig4 {
        catalog,
        sample_dates,
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_figure4() {
        let r = run();
        assert_eq!(r.catalog.len(), 21);
        // Band $0.30–$2.33 on the final date.
        assert!(r.rendered.contains("2020-06-01 | 21"));
        assert!(r.rendered.contains("0.30"));
        assert!(r.rendered.contains("2.33"));
        // The three reported changers, with their exact moves.
        assert!(r.rendered.contains("Heficed: $0.65 → $0.40"));
        assert!(r.rendered.contains("IPv4Mall: $0.35 → $0.56"));
        assert!(r.rendered.contains("IP-AS: $1.17 → $2.33"));
        // The January spike shows in the max column.
        assert!(r.rendered.contains("3.90"));
    }
}
