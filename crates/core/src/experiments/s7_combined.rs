//! §7 future work: the combined BGP + RPKI + RDAP estimator.
//!
//! The paper closes by arguing that "future research efforts should
//! combine routing information, RPKI data, as well as the RDAP
//! databases to obtain a better picture of the leasing ecosystem".
//! With the simulator's ground truth we can run that experiment:
//! estimate the leasing market through each lens individually, then
//! through their union, and measure how much of the true market each
//! captures.

use crate::experiments::{build_bgp_study_cached, BgpStudy};
use crate::report::{pct, TextTable};
use crate::study::StudyConfig;
use delegation::combine::{market_coverage, CombinedEstimate, MarketCoverage};
use delegation::config::InferenceConfig;
use delegation::pipeline::{run_pipeline, PipelineInput};
use nettypes::set::PrefixSet;
use rdap::database::{DbBuildConfig, WhoisDb};
use rdap::pipeline::{extract_delegations, PipelineConfig};
use rdap::server::RdapServer;
use rpki::delegation::infer_rpki_delegations;
use rpki::snapshot::SnapshotSeries;

/// §7 output.
pub struct S7Combined {
    /// Per-source and combined market coverage.
    pub rows: Vec<(String, MarketCoverage)>,
    /// The combined estimate with per-source attribution.
    pub estimate: CombinedEstimate,
    /// Addresses only a single source contributes ([bgp, rpki, rdap]).
    pub exclusive: [u64; 3],
    /// Rendered report.
    pub rendered: String,
}

/// Run the combined-estimator experiment on a pre-built study.
pub fn run_with_study(study: &BgpStudy, config: &StudyConfig) -> S7Combined {
    let span = study.world.span;
    let as_of = span.end;

    // BGP lens.
    let bgp_result = run_pipeline(
        PipelineInput::Days(&study.days),
        span,
        &InferenceConfig::extended(),
        Some(&study.as2org),
    );
    let bgp_today = bgp_result.on(as_of).unwrap_or(&[]).to_vec();

    // RPKI lens.
    let series = SnapshotSeries::generate(&study.world, &config.rpki);
    let rpki_today = series
        .on(as_of)
        .map(infer_rpki_delegations)
        .unwrap_or_default();

    // RDAP lens.
    let db = WhoisDb::build_from_world(&study.world, as_of, &DbBuildConfig::default());
    let server = RdapServer::new(db.clone());
    let (rdap_today, _) = extract_delegations(&db, &server, &PipelineConfig::default());

    // Individual and combined estimates.
    let estimate = CombinedEstimate::build(&bgp_today, &rpki_today, &rdap_today);
    let bgp_set: PrefixSet = bgp_today.iter().map(|d| d.prefix).collect();
    let rpki_set: PrefixSet = rpki_today.iter().map(|d| d.prefix).collect();
    let rdap_set: PrefixSet = rdap_today
        .iter()
        .flat_map(|d| d.child.to_cidrs())
        .collect();
    let combined_set = estimate.address_set();

    let rows: Vec<(String, MarketCoverage)> = [
        ("BGP only", &bgp_set),
        ("RPKI only", &rpki_set),
        ("RDAP only", &rdap_set),
        ("combined (§7)", &combined_set),
    ]
    .into_iter()
    .map(|(label, set)| (label.to_string(), market_coverage(&study.world, as_of, set)))
    .collect();
    let exclusive = estimate.exclusive_addresses();

    let mut table = TextTable::new(&[
        "estimator", "addresses", "market recall", "address precision",
    ]);
    for (label, c) in &rows {
        table.row(vec![
            label.clone(),
            c.estimated_addresses.to_string(),
            pct(c.market_recall),
            pct(c.address_precision),
        ]);
    }
    let mut rendered = table.render();
    rendered.push_str(&format!(
        "\nexclusive contributions: BGP {} addresses, RPKI {}, RDAP {}\n\
         blocks seen by ≥2 sources: {} of {}\n\
         even the combined estimate undercounts the true market ({} addresses):\n\
         unregistered, unannounced leases are invisible to all three lenses — the\n\
         paper's core argument for why the leasing market defies measurement.\n",
        exclusive[0],
        exclusive[1],
        exclusive[2],
        estimate.blocks_with_agreement(2),
        estimate.blocks.len(),
        rows[0].1.true_addresses,
    ));
    S7Combined {
        rows,
        estimate,
        exclusive,
        rendered,
    }
}

/// Run from a config.
pub fn run(config: &StudyConfig) -> S7Combined {
    let study = build_bgp_study_cached(config);
    run_with_study(&study, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination_beats_every_single_source() {
        let r = run(&StudyConfig::quick());
        let get = |label: &str| {
            r.rows
                .iter()
                .find(|(l, _)| l.starts_with(label))
                .expect("row")
                .1
        };
        let combined = get("combined");
        for single in ["BGP only", "RPKI only", "RDAP only"] {
            assert!(
                combined.market_recall >= get(single).market_recall,
                "combined {:.3} < {single} {:.3}",
                combined.market_recall,
                get(single).market_recall
            );
        }
        // RDAP dominates but BGP still adds exclusive space (the
        // unregistered-but-announced leases).
        assert!(get("RDAP only").market_recall > get("BGP only").market_recall);
        assert!(r.exclusive[0] > 0, "BGP adds nothing exclusive");
        // And even combined, the market is undercounted.
        assert!(
            combined.market_recall < 1.0,
            "nothing should see the whole market"
        );
        // Precision stays high: the estimate is mostly real leases.
        assert!(combined.address_precision > 0.9, "{}", combined.address_precision);
        assert!(r.rendered.contains("combined (§7)"));
    }
}
