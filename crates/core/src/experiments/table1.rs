//! Table 1: the IPv4 exhaustion timeline for the five RIRs.

use registry::timeline::{exhaustion_timeline, render_table1, ExhaustionEvent};

/// Table 1 output.
pub struct Table1 {
    /// The ordered milestone events.
    pub events: Vec<ExhaustionEvent>,
    /// The rendered table.
    pub rendered: String,
}

/// Regenerate Table 1.
pub fn run() -> Table1 {
    Table1 {
        events: exhaustion_timeline(),
        rendered: render_table1(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use registry::rir::Rir;

    #[test]
    fn contains_all_rirs_and_key_dates() {
        let t = run();
        for rir in Rir::ALL {
            assert!(t.rendered.contains(rir.name()));
        }
        // Paper milestones, verbatim dates.
        for d in ["2011-04-15", "2012-09-14", "2014-04-23", "2017-02-15", "2017-03-31",
                  "2014-07-27", "2015-09-24", "2019-11-25", "2020-08-19"] {
            assert!(t.rendered.contains(d), "missing {d} in:\n{}", t.rendered);
        }
        assert_eq!(t.events.len(), 10);
    }
}
