//! CSV rendering of the experiment data series, for plotting the
//! figures with external tools.
//!
//! Each function returns the file contents; the `repro` binary's
//! `--csv <dir>` flag writes them to disk. Fields never contain
//! commas, so no quoting is needed.

use crate::experiments::{fig1, fig2, fig3, fig4, fig5, fig6, sensitivity};

/// Figure 1 boxes: one row per (quarter, region, size class).
pub fn fig1_csv(r: &fig1::Fig1) -> String {
    let mut out = String::from("quarter,region,size,count,min,q1,median,q3,max,mean\n");
    for b in &r.boxes {
        out.push_str(&format!(
            "{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            b.quarter_label,
            b.region.label(),
            b.size.label(),
            b.stats.count,
            b.stats.min,
            b.stats.q1,
            b.stats.median,
            b.stats.q3,
            b.stats.max,
            b.stats.mean,
        ));
    }
    out
}

/// Figure 2 counts: one row per (quarter, region).
pub fn fig2_csv(r: &fig2::Fig2) -> String {
    let mut out = String::from("quarter,region,transfers,addresses\n");
    for c in &r.counts {
        out.push_str(&format!(
            "{},{},{},{}\n",
            c.quarter_label,
            c.rir.label(),
            c.count,
            c.addresses
        ));
    }
    out
}

/// Figure 3 flows: one row per (year, from, to).
pub fn fig3_csv(r: &fig3::Fig3) -> String {
    let mut out = String::from("year,from,to,transfers,addresses,median_block\n");
    for f in &r.flows {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            f.year,
            f.from.label(),
            f.to.label(),
            f.count,
            f.addresses,
            f.median_block
        ));
    }
    out
}

/// Figure 4 prices: one row per (sample date, provider).
pub fn fig4_csv(r: &fig4::Fig4) -> String {
    let mut out = String::from("date,provider,kind,usd_per_ip_month\n");
    for &d in &r.sample_dates {
        for p in &r.catalog {
            if let Some(price) = p.price_on(d) {
                out.push_str(&format!("{},{},{:?},{:.2}\n", d, p.name, p.kind, price));
            }
        }
    }
    out
}

/// Figure 5 curves: one row per (N, M).
pub fn fig5_csv(r: &fig5::Fig5) -> String {
    let mut out = String::from("n,m,fail_rate\n");
    for c in &r.curves {
        for (m, rate) in &c.points {
            out.push_str(&format!("{},{},{:.6}\n", c.n, m, rate));
        }
    }
    out
}

/// Figure 6 series: one row per (day, algorithm).
pub fn fig6_csv(r: &fig6::Fig6) -> String {
    let mut out = String::from(
        "date,algorithm,delegations,delegated_addresses,slash24_share,slash20_share\n",
    );
    for (label, series) in [
        ("baseline", &r.baseline_metrics),
        ("extended", &r.extended_metrics),
    ] {
        for m in series {
            out.push_str(&format!(
                "{},{},{},{},{:.4},{:.4}\n",
                m.date, label, m.delegations, m.delegated_addresses, m.slash24_share,
                m.slash20_share
            ));
        }
    }
    out
}

/// Sensitivity sweeps: one row per point.
pub fn sensitivity_csv(r: &sensitivity::Sensitivity) -> String {
    let mut out = String::from("sweep,value,delegation_days,precision,recall\n");
    for (name, sweep) in [
        ("visibility_threshold", &r.threshold_sweep),
        ("fill_window_days", &r.fill_sweep),
    ] {
        for p in sweep {
            out.push_str(&format!(
                "{},{},{},{:.4},{:.4}\n",
                name,
                p.value,
                p.total_delegations,
                p.eval.precision(),
                p.eval.recall()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;

    fn lines(s: &str) -> usize {
        s.lines().count()
    }

    #[test]
    fn fig1_csv_shape() {
        let cfg = StudyConfig::quick();
        let r = fig1::run(&cfg);
        let csv = fig1_csv(&r);
        assert!(csv.starts_with("quarter,region,size,"));
        assert_eq!(lines(&csv), r.boxes.len() + 1);
        // No cell contains a comma-breaking value; every row has the
        // same arity.
        let arity = csv.lines().next().unwrap().split(',').count();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), arity, "{line}");
        }
    }

    #[test]
    fn fig5_csv_covers_grid() {
        let cfg = StudyConfig::quick();
        let r = fig5::run(&cfg);
        let csv = fig5_csv(&r);
        let expected: usize = r.curves.iter().map(|c| c.points.len()).sum();
        assert_eq!(lines(&csv), expected + 1);
    }

    #[test]
    fn fig6_csv_has_both_algorithms() {
        let cfg = StudyConfig::quick();
        let r = fig6::run(&cfg);
        let csv = fig6_csv(&r);
        assert_eq!(
            lines(&csv),
            r.baseline_metrics.len() + r.extended_metrics.len() + 1
        );
        assert!(csv.contains(",baseline,"));
        assert!(csv.contains(",extended,"));
    }

    #[test]
    fn fig4_csv_prices_match_catalog() {
        let r = fig4::run();
        let csv = fig4_csv(&r);
        assert!(csv.contains("Heficed"));
        assert!(csv.contains("0.30"));
        assert!(csv.contains("3.90"));
    }
}
