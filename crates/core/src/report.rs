//! Plain-text table rendering shared by the experiment runners.

/// A simple fixed-width text table builder.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect();
            padded.join(" | ").trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        let _ = cols;
        out
    }
}

/// Format a float with fixed decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Format a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("name        | value"));
        assert!(s.contains("longer-name | 22"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.0185), "1.85%");
        assert_eq!(pct(0.657), "65.70%");
    }
}
