//! JSONL trace validation (`repro trace-check`).
//!
//! The CI gate runs a traced pipeline, then feeds the trace through
//! [`check_trace`], which enforces the schema contract of
//! `obs::JsonlSubscriber`:
//!
//! * every line parses as a JSON object with a known `type`;
//! * span ids are unique, and spans nest per thread — `span_open`'s
//!   `parent` is the thread's innermost open span, `span_close`
//!   closes exactly that innermost span (LIFO);
//! * `event` records carry a known level and may only reference an
//!   open span on their thread;
//! * no `level":"error"` events occur;
//! * every span is closed by end of trace.

use std::collections::{HashMap, HashSet};

/// Summary of a valid trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// `span_open`/`span_close` pairs seen.
    pub spans: usize,
    /// `event` records seen.
    pub events: usize,
    /// Deepest nesting on any one thread.
    pub max_depth: usize,
}

/// Validate a JSONL trace. Returns the trace's stats, or every
/// violation found (line numbers are 1-based).
pub fn check_trace(text: &str) -> Result<TraceStats, Vec<String>> {
    let mut errors: Vec<String> = Vec::new();
    let mut stats = TraceStats::default();
    // Per-thread stack of open span ids.
    let mut stacks: HashMap<i64, Vec<i64>> = HashMap::new();
    let mut seen_ids: HashSet<i64> = HashSet::new();

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = match serde_json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                errors.push(format!("line {lineno}: not valid JSON ({e:?})"));
                continue;
            }
        };
        let Some(kind) = v.get("type").and_then(|t| t.as_str()) else {
            errors.push(format!("line {lineno}: missing \"type\""));
            continue;
        };
        let int = |key: &str| v.get(key).and_then(|x| x.as_i64());
        match kind {
            "span_open" => {
                let (Some(id), Some(thread)) = (int("id"), int("thread")) else {
                    errors.push(format!("line {lineno}: span_open missing id/thread"));
                    continue;
                };
                if v.get("name").and_then(|n| n.as_str()).is_none() {
                    errors.push(format!("line {lineno}: span_open missing name"));
                }
                if !seen_ids.insert(id) {
                    errors.push(format!("line {lineno}: duplicate span id {id}"));
                }
                let stack = stacks.entry(thread).or_default();
                let expected_parent = stack.last().copied();
                if int("parent") != expected_parent {
                    errors.push(format!(
                        "line {lineno}: span {id} parent {:?} does not match \
                         thread {thread}'s innermost open span {expected_parent:?}",
                        int("parent"),
                    ));
                }
                stack.push(id);
                stats.spans += 1;
                stats.max_depth = stats.max_depth.max(stack.len());
            }
            "span_close" => {
                let (Some(id), Some(thread)) = (int("id"), int("thread")) else {
                    errors.push(format!("line {lineno}: span_close missing id/thread"));
                    continue;
                };
                if int("wall_us").is_none() || int("items").is_none() {
                    errors.push(format!("line {lineno}: span_close missing wall_us/items"));
                }
                let stack = stacks.entry(thread).or_default();
                match stack.last() {
                    Some(&top) if top == id => {
                        stack.pop();
                    }
                    Some(&top) => errors.push(format!(
                        "line {lineno}: span_close {id} but thread {thread}'s \
                         innermost open span is {top} (closes must be LIFO)"
                    )),
                    None => errors.push(format!(
                        "line {lineno}: span_close {id} with no open span on thread {thread}"
                    )),
                }
            }
            "event" => {
                stats.events += 1;
                match v.get("level").and_then(|l| l.as_str()) {
                    Some("error") => {
                        errors.push(format!(
                            "line {lineno}: error event: {}",
                            v.get("message").and_then(|m| m.as_str()).unwrap_or("?")
                        ));
                    }
                    Some("warn" | "info" | "debug") => {}
                    other => errors.push(format!("line {lineno}: bad level {other:?}")),
                }
                if let (Some(span), Some(thread)) = (int("span"), int("thread")) {
                    let open = stacks.get(&thread).is_some_and(|s| s.contains(&span));
                    if !open {
                        errors.push(format!(
                            "line {lineno}: event references span {span} \
                             not open on thread {thread}"
                        ));
                    }
                }
            }
            other => errors.push(format!("line {lineno}: unknown type {other:?}")),
        }
    }
    for (thread, stack) in &stacks {
        if !stack.is_empty() {
            errors.push(format!(
                "end of trace: thread {thread} still has open spans {stack:?}"
            ));
        }
    }
    if errors.is_empty() {
        Ok(stats)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{"type":"span_open","id":1,"thread":0,"t_us":1,"name":"outer","fields":{}}
{"type":"span_open","id":2,"parent":1,"thread":0,"t_us":2,"name":"inner","fields":{"days":90}}
{"type":"event","level":"info","thread":0,"t_us":3,"span":2,"message":"midpoint","fields":{}}
{"type":"span_close","id":2,"thread":0,"t_us":4,"name":"inner","wall_us":2,"items":90}
{"type":"span_close","id":1,"thread":0,"t_us":5,"name":"outer","wall_us":4,"items":0}
"#;

    #[test]
    fn valid_trace_passes_with_stats() {
        let stats = check_trace(GOOD).expect("valid");
        assert_eq!(
            stats,
            TraceStats {
                spans: 2,
                events: 1,
                max_depth: 2
            }
        );
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(check_trace("").unwrap(), TraceStats::default());
    }

    #[test]
    fn unparsable_line_is_reported_with_line_number() {
        let bad = GOOD.replace(
            "{\"type\":\"event\",\"level\":\"info\"",
            "{\"type\":\"event\",\"level\":\"info\"oops",
        );
        let errs = check_trace(&bad).unwrap_err();
        assert!(errs.iter().any(|e| e.starts_with("line 3:")), "{errs:?}");
    }

    #[test]
    fn error_events_fail_validation() {
        let bad = GOOD.replace("\"level\":\"info\"", "\"level\":\"error\"");
        let errs = check_trace(&bad).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("error event")), "{errs:?}");
    }

    #[test]
    fn unclosed_span_fails_validation() {
        let bad: String = GOOD.lines().take(4).collect::<Vec<_>>().join("\n");
        let errs = check_trace(&bad).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("still has open spans")), "{errs:?}");
    }

    #[test]
    fn out_of_order_close_fails_validation() {
        let bad = r#"{"type":"span_open","id":1,"thread":0,"t_us":1,"name":"a","fields":{}}
{"type":"span_open","id":2,"parent":1,"thread":0,"t_us":2,"name":"b","fields":{}}
{"type":"span_close","id":1,"thread":0,"t_us":3,"name":"a","wall_us":2,"items":0}
{"type":"span_close","id":2,"thread":0,"t_us":4,"name":"b","wall_us":2,"items":0}
"#;
        let errs = check_trace(bad).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("LIFO")), "{errs:?}");
    }

    #[test]
    fn wrong_parent_and_duplicate_id_fail_validation() {
        let bad = r#"{"type":"span_open","id":1,"thread":0,"t_us":1,"name":"a","fields":{}}
{"type":"span_open","id":1,"parent":7,"thread":0,"t_us":2,"name":"b","fields":{}}
{"type":"span_close","id":1,"thread":0,"t_us":3,"name":"b","wall_us":1,"items":0}
{"type":"span_close","id":1,"thread":0,"t_us":4,"name":"a","wall_us":3,"items":0}
"#;
        let errs = check_trace(bad).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("duplicate span id")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("does not match")), "{errs:?}");
    }

    #[test]
    fn threads_have_independent_stacks() {
        let trace = r#"{"type":"span_open","id":1,"thread":0,"t_us":1,"name":"a","fields":{}}
{"type":"span_open","id":2,"thread":1,"t_us":2,"name":"b","fields":{}}
{"type":"span_close","id":1,"thread":0,"t_us":3,"name":"a","wall_us":2,"items":0}
{"type":"span_close","id":2,"thread":1,"t_us":4,"name":"b","wall_us":2,"items":0}
"#;
        let stats = check_trace(trace).expect("interleaved threads are fine");
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.max_depth, 1);
    }
}
