//! The five Regional Internet Registries.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One of the five Regional Internet Registries.
///
/// "Region" in all per-region analyses refers to the RIR that
/// allocated (and maintains) an address block; when a block is
/// transferred across RIRs, its region follows the transfer (footnote 1
/// of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum Rir {
    /// AFRINIC — African region.
    Afrinic,
    /// APNIC — Asia-Pacific region.
    Apnic,
    /// ARIN — American region.
    Arin,
    /// LACNIC — Latin American region.
    Lacnic,
    /// RIPE NCC — European and Middle Eastern region.
    RipeNcc,
}

impl Rir {
    /// All five RIRs in alphabetical order.
    pub const ALL: [Rir; 5] = [Rir::Afrinic, Rir::Apnic, Rir::Arin, Rir::Lacnic, Rir::RipeNcc];

    /// The RIRs with vibrant transfer markets that the paper's pricing
    /// analysis covers (AFRINIC and LACNIC are excluded: only 31
    /// transactions in the data set).
    pub const MARKET_RIRS: [Rir; 3] = [Rir::Apnic, Rir::Arin, Rir::RipeNcc];

    /// Canonical lower-case registry label as used in the published
    /// transfer-statistics feeds.
    pub fn label(&self) -> &'static str {
        match self {
            Rir::Afrinic => "afrinic",
            Rir::Apnic => "apnic",
            Rir::Arin => "arin",
            Rir::Lacnic => "lacnic",
            Rir::RipeNcc => "ripencc",
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Rir::Afrinic => "AFRINIC",
            Rir::Apnic => "APNIC",
            Rir::Arin => "ARIN",
            Rir::Lacnic => "LACNIC",
            Rir::RipeNcc => "RIPE NCC",
        }
    }

    /// Whether the published transfer feed labels M&A transfers
    /// separately from market transfers. AFRINIC, ARIN and the
    /// RIPE NCC label them; APNIC and LACNIC do not (§3).
    pub fn labels_mna_transfers(&self) -> bool {
        matches!(self, Rir::Afrinic | Rir::Arin | Rir::RipeNcc)
    }
}

impl fmt::Display for Rir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Rir {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "afrinic" => Ok(Rir::Afrinic),
            "apnic" => Ok(Rir::Apnic),
            "arin" => Ok(Rir::Arin),
            "lacnic" => Ok(Rir::Lacnic),
            "ripencc" | "ripe" | "ripe ncc" | "ripe-ncc" => Ok(Rir::RipeNcc),
            other => Err(format!("unknown RIR: {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for rir in Rir::ALL {
            assert_eq!(rir.label().parse::<Rir>().unwrap(), rir);
        }
        assert_eq!("RIPE".parse::<Rir>().unwrap(), Rir::RipeNcc);
        assert!("ietf".parse::<Rir>().is_err());
    }

    #[test]
    fn mna_labelling_matches_paper() {
        assert!(Rir::Afrinic.labels_mna_transfers());
        assert!(Rir::Arin.labels_mna_transfers());
        assert!(Rir::RipeNcc.labels_mna_transfers());
        assert!(!Rir::Apnic.labels_mna_transfers());
        assert!(!Rir::Lacnic.labels_mna_transfers());
    }

    #[test]
    fn market_rirs() {
        assert!(!Rir::MARKET_RIRS.contains(&Rir::Afrinic));
        assert!(!Rir::MARKET_RIRS.contains(&Rir::Lacnic));
        assert_eq!(Rir::MARKET_RIRS.len(), 3);
    }
}
