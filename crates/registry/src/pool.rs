//! RIR address-pool bookkeeping.
//!
//! A pool holds free CIDR blocks, allocates best-fit blocks to members,
//! accepts recovered space, and quarantines recovered blocks for a
//! configurable period (most RIRs: six months, §2) before they become
//! allocatable again.

use nettypes::date::Date;
use nettypes::prefix::Prefix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Errors from pool operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// No free block of the requested (or any less specific) size.
    Exhausted {
        /// The requested prefix length.
        requested_len: u8,
    },
    /// A block was returned that overlaps space the pool already holds.
    OverlappingReturn(Prefix),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Exhausted { requested_len } => {
                write!(f, "pool exhausted: no space for a /{requested_len}")
            }
            PoolError::OverlappingReturn(p) => {
                write!(f, "returned block {p} overlaps pool-held space")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// An RIR's IPv4 address pool with buddy-style free-block management
/// and a quarantine queue for recovered space.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AddressPool {
    /// Free blocks by prefix length; each bucket sorted ascending.
    free: BTreeMap<u8, Vec<Prefix>>,
    /// Recovered blocks queued until their release date.
    quarantine: Vec<(Date, Prefix)>,
}

impl AddressPool {
    /// An empty pool.
    pub fn new() -> Self {
        AddressPool::default()
    }

    /// A pool seeded with the given free blocks.
    pub fn with_blocks(blocks: impl IntoIterator<Item = Prefix>) -> Self {
        let mut pool = AddressPool::new();
        for b in blocks {
            pool.add_free(b);
        }
        pool
    }

    fn add_free(&mut self, block: Prefix) {
        let bucket = self.free.entry(block.len()).or_default();
        match bucket.binary_search(&block) {
            Ok(_) => {} // duplicate; ignore
            Err(pos) => bucket.insert(pos, block),
        }
        self.coalesce(block);
    }

    /// Merge freed buddies into parents greedily.
    fn coalesce(&mut self, mut block: Prefix) {
        while block.len() > 0 {
            let sibling = block.sibling().expect("len > 0");
            let Some(bucket) = self.free.get_mut(&block.len()) else {
                return;
            };
            let (Ok(i), Ok(j)) = (bucket.binary_search(&block), bucket.binary_search(&sibling))
            else {
                return;
            };
            let (lo, hi) = if i < j { (i, j) } else { (j, i) };
            bucket.remove(hi);
            bucket.remove(lo);
            if bucket.is_empty() {
                self.free.remove(&block.len());
            }
            let parent = block.parent().expect("len > 0");
            let pbucket = self.free.entry(parent.len()).or_default();
            if let Err(pos) = pbucket.binary_search(&parent) {
                pbucket.insert(pos, parent);
            }
            block = parent;
        }
    }

    /// Total free (non-quarantined) addresses.
    pub fn free_addresses(&self) -> u64 {
        self.free
            .values()
            .flatten()
            .map(|p| p.num_addresses())
            .sum()
    }

    /// Addresses currently held in quarantine.
    pub fn quarantined_addresses(&self) -> u64 {
        self.quarantine.iter().map(|(_, p)| p.num_addresses()).sum()
    }

    /// Whether the pool can currently satisfy an allocation of the
    /// given length.
    pub fn can_allocate(&self, len: u8) -> bool {
        self.free.keys().any(|&l| l <= len)
    }

    /// Allocate a block of exactly `len`, splitting a larger free block
    /// if necessary (buddy allocation). Returns the allocated prefix.
    pub fn allocate(&mut self, len: u8) -> Result<Prefix, PoolError> {
        // Find the most specific free bucket that can satisfy the request.
        let source_len = self
            .free
            .iter()
            .filter(|(l, blocks)| **l <= len && !blocks.is_empty())
            .map(|(l, _)| *l)
            .max()
            .ok_or(PoolError::Exhausted { requested_len: len })?;
        let bucket = self.free.get_mut(&source_len).expect("bucket exists");
        let mut block = bucket.remove(0);
        if bucket.is_empty() {
            self.free.remove(&source_len);
        }
        // Split down to the requested size, returning siblings to the pool.
        while block.len() < len {
            let (lo, hi) = block.children().expect("len < 32");
            let bucket = self.free.entry(hi.len()).or_default();
            match bucket.binary_search(&hi) {
                Ok(_) => {}
                Err(pos) => bucket.insert(pos, hi),
            }
            block = lo;
        }
        Ok(block)
    }

    /// Accept recovered address space; it becomes allocatable only
    /// after `release` (the quarantine end date).
    pub fn recover(&mut self, block: Prefix, release: Date) {
        self.quarantine.push((release, block));
    }

    /// Release all quarantined blocks whose quarantine ends on or
    /// before `today` into the free pool. Returns how many addresses
    /// were released.
    pub fn tick(&mut self, today: Date) -> u64 {
        let (release_now, keep): (Vec<_>, Vec<_>) = self
            .quarantine
            .drain(..)
            .partition(|(release, _)| *release <= today);
        self.quarantine = keep;
        let mut released = 0u64;
        for (_, block) in release_now {
            released += block.num_addresses();
            self.add_free(block);
        }
        released
    }

    /// Iterate free blocks (sorted by length then address).
    pub fn free_blocks(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.free.values().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettypes::date::date;
    use nettypes::prefix::pfx;
    use proptest::prelude::*;

    #[test]
    fn allocate_exact_fit() {
        let mut pool = AddressPool::with_blocks([pfx("193.0.0.0/8")]);
        let p = pool.allocate(8).unwrap();
        assert_eq!(p, pfx("193.0.0.0/8"));
        assert!(!pool.can_allocate(8));
        assert_eq!(pool.free_addresses(), 0);
    }

    #[test]
    fn allocate_splits() {
        let mut pool = AddressPool::with_blocks([pfx("193.0.0.0/8")]);
        let p = pool.allocate(24).unwrap();
        assert_eq!(p.len(), 24);
        assert!(pfx("193.0.0.0/8").covers(&p));
        assert_eq!(pool.free_addresses(), (1 << 24) - 256);
        // Allocations never overlap.
        let q = pool.allocate(24).unwrap();
        assert!(!p.overlaps(&q));
    }

    #[test]
    fn exhaustion_error() {
        let mut pool = AddressPool::with_blocks([pfx("193.0.0.0/24")]);
        assert!(pool.allocate(22).is_err());
        assert!(pool.allocate(24).is_ok());
        assert_eq!(
            pool.allocate(24),
            Err(PoolError::Exhausted { requested_len: 24 })
        );
    }

    #[test]
    fn quarantine_release() {
        let mut pool = AddressPool::new();
        pool.recover(pfx("10.0.0.0/22"), date("2020-06-01"));
        assert_eq!(pool.free_addresses(), 0);
        assert_eq!(pool.quarantined_addresses(), 1024);
        assert!(!pool.can_allocate(22));
        assert_eq!(pool.tick(date("2020-05-31")), 0);
        assert!(!pool.can_allocate(22));
        assert_eq!(pool.tick(date("2020-06-01")), 1024);
        assert!(pool.can_allocate(22));
        assert_eq!(pool.quarantined_addresses(), 0);
    }

    #[test]
    fn coalescing_rebuilds_parent() {
        let mut pool = AddressPool::with_blocks([pfx("10.0.0.0/8")]);
        let a = pool.allocate(9).unwrap();
        let b = pool.allocate(9).unwrap();
        assert_eq!(pool.free_addresses(), 0);
        pool.recover(a, date("2020-01-01"));
        pool.recover(b, date("2020-01-01"));
        pool.tick(date("2020-01-01"));
        // The two /9s coalesce back into the /8.
        assert_eq!(pool.free_blocks().collect::<Vec<_>>(), vec![pfx("10.0.0.0/8")]);
    }

    #[test]
    fn allocate_prefers_tightest_fit() {
        // With a /24 and a /8 free, a /24 request must come from the /24,
        // leaving the /8 intact.
        let mut pool = AddressPool::with_blocks([pfx("10.0.0.0/8"), pfx("192.0.2.0/24")]);
        let p = pool.allocate(24).unwrap();
        assert_eq!(p, pfx("192.0.2.0/24"));
        assert!(pool.free_blocks().any(|b| b == pfx("10.0.0.0/8")));
    }

    proptest! {
        #[test]
        fn prop_allocations_disjoint_and_conserving(lens in proptest::collection::vec(10u8..=24, 1..50)) {
            let base = pfx("20.0.0.0/8");
            let mut pool = AddressPool::with_blocks([base]);
            let initial = pool.free_addresses();
            let mut allocated: Vec<Prefix> = Vec::new();
            let mut alloc_total = 0u64;
            for len in lens {
                if let Ok(p) = pool.allocate(len) {
                    prop_assert_eq!(p.len(), len);
                    prop_assert!(base.covers(&p));
                    for q in &allocated {
                        prop_assert!(!p.overlaps(q), "{} overlaps {}", p, q);
                    }
                    alloc_total += p.num_addresses();
                    allocated.push(p);
                }
            }
            prop_assert_eq!(pool.free_addresses() + alloc_total, initial);
        }

        #[test]
        fn prop_recover_all_restores_pool(lens in proptest::collection::vec(10u8..=24, 1..30)) {
            let base = pfx("20.0.0.0/8");
            let mut pool = AddressPool::with_blocks([base]);
            let mut allocated = Vec::new();
            for len in lens {
                if let Ok(p) = pool.allocate(len) {
                    allocated.push(p);
                }
            }
            let release = date("2021-01-01");
            for p in allocated {
                pool.recover(p, release);
            }
            pool.tick(release);
            prop_assert_eq!(pool.free_blocks().collect::<Vec<_>>(), vec![base]);
        }
    }
}
