//! The IPv4 exhaustion timeline — Table 1 of the paper.

use crate::policy::AllocationPolicy;
use crate::rir::Rir;
use nettypes::date::{date, Date};
use serde::{Deserialize, Serialize};

/// What happened at a timeline milestone.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ExhaustionEventKind {
    /// The RIR reached its final /8 and entered soft landing.
    DownToLastSlash8,
    /// The RIR's pool fully depleted; recovery-only allocation starts.
    StartOfRecovery,
    /// AFRINIC's phase-2 milestone: down to its last /11.
    DownToLastSlash11,
}

/// One row-cell of Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ExhaustionEvent {
    /// The registry.
    pub rir: Rir,
    /// Milestone kind.
    pub kind: ExhaustionEventKind,
    /// Milestone date.
    pub date: Date,
}

/// The full exhaustion timeline, date-sorted — regenerates Table 1.
pub fn exhaustion_timeline() -> Vec<ExhaustionEvent> {
    let mut events = Vec::new();
    for rir in Rir::ALL {
        let p = AllocationPolicy::for_rir(rir);
        events.push(ExhaustionEvent {
            rir,
            kind: ExhaustionEventKind::DownToLastSlash8,
            date: p.last_slash8,
        });
        if let Some(r) = p.recovery_start {
            events.push(ExhaustionEvent {
                rir,
                kind: ExhaustionEventKind::StartOfRecovery,
                date: r,
            });
        }
    }
    // AFRINIC's special phase-2 milestone (Table 1 footnote).
    events.push(ExhaustionEvent {
        rir: Rir::Afrinic,
        kind: ExhaustionEventKind::DownToLastSlash11,
        date: date("2020-01-13"),
    });
    events.sort_by_key(|e| e.date);
    events
}

/// Render Table 1 as aligned text rows (RIR, last-/8 date, recovery
/// start) matching the paper's layout.
pub fn render_table1() -> String {
    let events = exhaustion_timeline();
    let mut out = String::from("RIR       | Down to last /8 | Start of Recovery\n");
    out.push_str("----------+-----------------+------------------\n");
    for rir in Rir::ALL {
        let last8 = events
            .iter()
            .find(|e| e.rir == rir && e.kind == ExhaustionEventKind::DownToLastSlash8)
            .expect("every RIR reached its last /8");
        let recovery = events
            .iter()
            .find(|e| e.rir == rir && e.kind == ExhaustionEventKind::StartOfRecovery);
        let recovery_txt = match (rir, recovery) {
            (Rir::Afrinic, None) => {
                let p2 = events
                    .iter()
                    .find(|e| e.kind == ExhaustionEventKind::DownToLastSlash11)
                    .expect("AFRINIC phase-2 event");
                format!("- (last /11, {})", p2.date)
            }
            (Rir::Apnic, Some(e)) => format!("{} (still /10 available)", e.date),
            (_, Some(e)) => e.date.to_string(),
            (_, None) => "-".to_string(),
        };
        out.push_str(&format!("{:<9} | {}      | {}\n", rir.name(), last8.date, recovery_txt));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_is_sorted_and_complete() {
        let t = exhaustion_timeline();
        assert!(t.windows(2).all(|w| w[0].date <= w[1].date));
        // 5 last-/8 events + 4 recovery events + 1 AFRINIC /11 event.
        assert_eq!(t.len(), 10);
        assert_eq!(
            t.iter()
                .filter(|e| e.kind == ExhaustionEventKind::DownToLastSlash8)
                .count(),
            5
        );
        assert_eq!(
            t.iter()
                .filter(|e| e.kind == ExhaustionEventKind::StartOfRecovery)
                .count(),
            4
        );
    }

    #[test]
    fn first_and_last_milestones() {
        let t = exhaustion_timeline();
        // APNIC was first to its last /8 (2011); LACNIC's recovery
        // start (2020-08-19) is the latest milestone.
        assert_eq!(t.first().unwrap().rir, Rir::Apnic);
        let last = t.last().unwrap();
        assert_eq!(last.rir, Rir::Lacnic);
        assert_eq!(last.kind, ExhaustionEventKind::StartOfRecovery);
    }

    #[test]
    fn table_renders_all_rirs() {
        let s = render_table1();
        for rir in Rir::ALL {
            assert!(s.contains(rir.name()), "missing {rir} in:\n{s}");
        }
        assert!(s.contains("2019-11-25")); // RIPE recovery start
        assert!(s.contains("last /11"));   // AFRINIC footnote
        assert!(s.contains("still /10 available")); // APNIC note
    }
}
