//! Organizations and LIR memberships.
//!
//! Internet resources are assigned to *organizations*; an organization
//! may operate several ASes (which is why the delegation-inference
//! extension (iv) needs an AS-to-Org mapping) and may be a member
//! (LIR) of one or more RIRs.

use crate::rir::Rir;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Opaque organization identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct OrgId(pub u32);

impl fmt::Display for OrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ORG-{:05}", self.0)
    }
}

/// The business model of an organization — §6 of the paper ties market
/// behaviour to these categories.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum OrgKind {
    /// Internet service provider; buys blocks larger than /20 and
    /// leases parts of them out.
    Isp,
    /// Hosting / cloud provider; leases bundled with infrastructure.
    Hoster,
    /// Established long-term business; buys blocks smaller than /20 to
    /// terminate leases.
    Enterprise,
    /// Young business; leases small blocks, buys once funded.
    Startup,
    /// VPN provider; continuously leases and rotates addresses.
    VpnProvider,
    /// Leasing provider / IP broker that delegates space to customers.
    LeasingProvider,
    /// Spammer; short-lived leases of varying sizes.
    Spammer,
}

impl OrgKind {
    /// All kinds, for enumeration in generators.
    pub const ALL: [OrgKind; 7] = [
        OrgKind::Isp,
        OrgKind::Hoster,
        OrgKind::Enterprise,
        OrgKind::Startup,
        OrgKind::VpnProvider,
        OrgKind::LeasingProvider,
        OrgKind::Spammer,
    ];
}

/// An organization record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Org {
    /// Stable identifier.
    pub id: OrgId,
    /// Display name.
    pub name: String,
    /// Business model.
    pub kind: OrgKind,
    /// Home RIR (region of incorporation).
    pub home_rir: Rir,
}

/// A registry of organizations with fast lookup.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OrgRegistry {
    orgs: Vec<Org>,
    #[serde(skip)]
    index: HashMap<OrgId, usize>,
}

impl OrgRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        OrgRegistry::default()
    }

    /// Register a new organization and return its id.
    pub fn register(&mut self, name: impl Into<String>, kind: OrgKind, home_rir: Rir) -> OrgId {
        let id = OrgId(self.orgs.len() as u32);
        self.index.insert(id, self.orgs.len());
        self.orgs.push(Org {
            id,
            name: name.into(),
            kind,
            home_rir,
        });
        id
    }

    /// Look up an organization by id.
    pub fn get(&self, id: OrgId) -> Option<&Org> {
        if let Some(&i) = self.index.get(&id) {
            return self.orgs.get(i);
        }
        // After deserialization the index is empty; fall back to scan
        // and note that ids are dense in practice.
        self.orgs.iter().find(|o| o.id == id)
    }

    /// Number of registered organizations.
    pub fn len(&self) -> usize {
        self.orgs.len()
    }

    /// Whether no organizations are registered.
    pub fn is_empty(&self) -> bool {
        self.orgs.is_empty()
    }

    /// Iterate all organizations.
    pub fn iter(&self) -> impl Iterator<Item = &Org> {
        self.orgs.iter()
    }

    /// All organizations of a given kind.
    pub fn of_kind(&self, kind: OrgKind) -> impl Iterator<Item = &Org> {
        self.orgs.iter().filter(move |o| o.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = OrgRegistry::new();
        let a = reg.register("Example ISP", OrgKind::Isp, Rir::RipeNcc);
        let b = reg.register("Example Hoster", OrgKind::Hoster, Rir::Arin);
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(a).unwrap().name, "Example ISP");
        assert_eq!(reg.get(b).unwrap().kind, OrgKind::Hoster);
        assert!(reg.get(OrgId(99)).is_none());
    }

    #[test]
    fn kind_filter() {
        let mut reg = OrgRegistry::new();
        reg.register("a", OrgKind::Isp, Rir::RipeNcc);
        reg.register("b", OrgKind::Isp, Rir::Arin);
        reg.register("c", OrgKind::Spammer, Rir::Apnic);
        assert_eq!(reg.of_kind(OrgKind::Isp).count(), 2);
        assert_eq!(reg.of_kind(OrgKind::Spammer).count(), 1);
        assert_eq!(reg.of_kind(OrgKind::VpnProvider).count(), 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(OrgId(7).to_string(), "ORG-00007");
    }
}
