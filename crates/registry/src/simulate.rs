//! End-to-end registry history generation.
//!
//! The real transfer-statistics feeds cover Oct 2009 → Jun 2020; this
//! module generates a synthetic history with the dynamics the paper
//! reports in §3:
//!
//! * a region's market starts once its RIR is down to the last /8
//!   (Figure 2 vs Table 1),
//! * AFRINIC and LACNIC volumes are negligible,
//! * the RIPE NCC shows a year-end seasonality; ARIN fluctuates
//!   without an identifiable pattern,
//! * inter-RIR transfers (APNIC/ARIN/RIPE only, from 2012) grow in
//!   count while the transferred blocks shrink, with most flows moving
//!   space away from ARIN towards APNIC and the RIPE NCC (Figure 3),
//! * a share of transfers are merger/acquisition consolidations,
//!   labelled only by AFRINIC/ARIN/RIPE in the published feeds.
//!
//! All randomness is driven by a seeded PCG so histories are
//! reproducible byte-for-byte.

use crate::org::{OrgId, OrgKind, OrgRegistry};
use crate::policy::AllocationPolicy;
use crate::pool::AddressPool;
use crate::rir::Rir;
use crate::transfer::{InterRirPolicy, Transfer, TransferKind, TransferLog};
use crate::waitlist::{WaitingList, WaitingRequest};
use nettypes::date::{date, Date};
use nettypes::prefix::Prefix;
use rand::prelude::*;
use rand_pcg::Pcg64Mcg;
use std::collections::BTreeMap;

/// Configuration for the registry history generator.
#[derive(Clone, Debug)]
pub struct SimulationConfig {
    /// RNG seed; equal seeds give identical histories.
    pub seed: u64,
    /// First simulated day (paper feed: 2009-10-01).
    pub start: Date,
    /// Last simulated day (paper feed: 2020-06-30).
    pub end: Date,
    /// Organizations registered per RIR.
    pub orgs_per_rir: usize,
    /// Multiplier on all transfer volumes (1.0 ≈ paper-scale counts).
    pub volume_scale: f64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            seed: 0xD124_3311,
            start: date("2009-10-01"),
            end: date("2020-06-30"),
            orgs_per_rir: 300,
            volume_scale: 1.0,
        }
    }
}

/// A generated registry history.
#[derive(Clone, Debug)]
pub struct RegistryHistory {
    /// All organizations.
    pub orgs: OrgRegistry,
    /// The complete (ground-truth-labelled) transfer log.
    pub log: TransferLog,
}

/// Sample a Poisson-distributed count (Knuth for small λ, normal
/// approximation above 30).
pub fn sample_poisson(rng: &mut impl Rng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // numerical guard
            }
        }
    } else {
        let g: f64 = {
            // Box-Muller
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        (lambda + lambda.sqrt() * g).round().max(0.0) as u64
    }
}

/// Transferable address space per RIR (space already allocated to
/// members that may change hands). The /8s are drawn from each RIR's
/// actual historical allocations.
fn seller_space(rir: Rir) -> Vec<Prefix> {
    let blocks: &[&str] = match rir {
        Rir::Afrinic => &["41.0.0.0/8", "102.0.0.0/8"],
        Rir::Apnic => &["1.0.0.0/8", "14.0.0.0/8", "27.0.0.0/8", "36.0.0.0/8", "42.0.0.0/8"],
        Rir::Arin => &[
            "3.0.0.0/8", "4.0.0.0/8", "6.0.0.0/8", "7.0.0.0/8", "8.0.0.0/8", "9.0.0.0/8",
            "13.0.0.0/8", "15.0.0.0/8",
        ],
        Rir::Lacnic => &["177.0.0.0/8", "179.0.0.0/8"],
        Rir::RipeNcc => &["5.0.0.0/8", "31.0.0.0/8", "37.0.0.0/8", "46.0.0.0/8", "62.0.0.0/8"],
    };
    blocks.iter().map(|s| s.parse().expect("static table")).collect()
}

/// Monthly market-transfer intensity cap per destination region — the
/// long-run plateau each market ramps towards.
fn monthly_cap(rir: Rir) -> f64 {
    match rir {
        Rir::RipeNcc => 160.0,
        Rir::Arin => 110.0,
        Rir::Apnic => 45.0,
        Rir::Afrinic => 1.0,
        Rir::Lacnic => 0.8,
    }
}

/// Transfer-block prefix-length distribution. Weight shifts towards
/// /24 in later years (blocks get smaller as scarcity bites).
fn sample_block_len(rng: &mut impl Rng, year: i64) -> u8 {
    // (len, base weight) — /24 dominates, heavier after 2016.
    let shift = ((year - 2012).max(0) as f64 * 0.012).min(0.12);
    let table: [(u8, f64); 9] = [
        (24, 0.50 + shift),
        (23, 0.14),
        (22, 0.12 - shift / 3.0),
        (21, 0.07 - shift / 6.0),
        (20, 0.055 - shift / 6.0),
        (19, 0.035 - shift / 6.0),
        (18, 0.02 - shift / 6.0),
        (17, 0.015 - shift / 12.0),
        (16, 0.015 - shift / 12.0),
    ];
    let total: f64 = table.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen::<f64>() * total;
    for (len, w) in table {
        if x < w {
            return len;
        }
        x -= w;
    }
    24
}

/// Annual inter-RIR flow-share matrix (from, to, share). Most flows
/// move space away from ARIN (Figure 3).
const INTER_RIR_SHARES: [(Rir, Rir, f64); 6] = [
    (Rir::Arin, Rir::RipeNcc, 0.40),
    (Rir::Arin, Rir::Apnic, 0.33),
    (Rir::Apnic, Rir::RipeNcc, 0.09),
    (Rir::RipeNcc, Rir::Apnic, 0.08),
    (Rir::Apnic, Rir::Arin, 0.05),
    (Rir::RipeNcc, Rir::Arin, 0.05),
];

/// Generate the registry history described in the module docs.
pub fn simulate(config: &SimulationConfig) -> RegistryHistory {
    let _span = obs::span!("registry_simulate", orgs_per_rir = config.orgs_per_rir);
    let mut rng = Pcg64Mcg::seed_from_u64(config.seed ^ 0x2E61_57F7_0000_0004);
    let mut orgs = OrgRegistry::new();
    let mut by_rir: BTreeMap<Rir, Vec<OrgId>> = BTreeMap::new();
    for rir in Rir::ALL {
        for i in 0..config.orgs_per_rir {
            let kind = *[
                OrgKind::Isp,
                OrgKind::Isp,
                OrgKind::Hoster,
                OrgKind::Enterprise,
                OrgKind::Enterprise,
                OrgKind::Startup,
                OrgKind::LeasingProvider,
                OrgKind::VpnProvider,
            ]
            .choose(&mut rng)
            .expect("non-empty");
            let id = orgs.register(format!("{}-org-{}", rir.label(), i), kind, rir);
            by_rir.entry(rir).or_default().push(id);
        }
    }

    let mut pools: BTreeMap<Rir, AddressPool> = Rir::ALL
        .iter()
        .map(|&r| (r, AddressPool::with_blocks(seller_space(r))))
        .collect();

    let policies: BTreeMap<Rir, AllocationPolicy> = Rir::ALL
        .iter()
        .map(|&r| (r, AllocationPolicy::for_rir(r)))
        .collect();
    let inter_policy = InterRirPolicy;

    let mut log = TransferLog::new();

    // Iterate month by month.
    let mut month_start = config.start;
    while month_start <= config.end {
        let year = month_start.year();
        let month = month_start.month();
        let next_month = if month == 12 {
            Date::ymd(year + 1, 1, 1).expect("valid")
        } else {
            Date::ymd(year, month + 1, 1).expect("valid")
        };
        let days_in_month = (next_month.min(config.end.succ())) - month_start;

        // --- Intra-RIR market + M&A transfers per destination region.
        for rir in Rir::ALL {
            let policy = &policies[&rir];
            if !policy.market_open_at(month_start) {
                continue;
            }
            let months_open =
                (month_start.month_index() - policy.last_slash8.month_index()).max(0) as f64;
            let mut lambda = monthly_cap(rir) * (1.0 - (-months_open / 24.0).exp());
            // RIPE year-end seasonality (§3: pattern aligns with the
            // end of each year).
            if rir == Rir::RipeNcc && (month == 11 || month == 12) {
                lambda *= 1.8;
            }
            // ARIN: unstructured fluctuation; others mild noise.
            let sigma = if rir == Rir::Arin { 0.35 } else { 0.15 };
            let noise: f64 = {
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            };
            lambda *= (sigma * noise).exp();
            lambda *= config.volume_scale;

            let n = sample_poisson(&mut rng, lambda);
            for _ in 0..n {
                let len = sample_block_len(&mut rng, year);
                let Ok(prefix) = pools.get_mut(&rir).expect("pool").allocate(len) else {
                    continue; // regional seller space exhausted
                };
                let members = &by_rir[&rir];
                let from_org = *members.choose(&mut rng).expect("orgs");
                let to_org = loop {
                    let o = *members.choose(&mut rng).expect("orgs");
                    if o != from_org {
                        break o;
                    }
                };
                // ~18 % of feed records are M&A consolidations.
                let kind = if rng.gen::<f64>() < 0.18 {
                    TransferKind::MergerAcquisition
                } else {
                    TransferKind::Market
                };
                let day_offset = rng.gen_range(0..days_in_month.max(1));
                log.push(Transfer {
                    date: month_start + day_offset,
                    prefix,
                    from_org,
                    to_org,
                    source_rir: rir,
                    dest_rir: rir,
                    kind: Some(kind),
                });
            }
        }

        // --- Inter-RIR transfers: permitted from late 2012, count grows,
        // sizes shrink.
        if year >= 2012 {
            let years_open = (year - 2011) as f64;
            let monthly = 0.6 * years_open.powf(1.6) * config.volume_scale;
            let n = sample_poisson(&mut rng, monthly);
            for _ in 0..n {
                let roll: f64 = rng.gen();
                let mut acc = 0.0;
                let mut pair = (Rir::Arin, Rir::RipeNcc);
                for (from, to, share) in INTER_RIR_SHARES {
                    acc += share;
                    if roll < acc {
                        pair = (from, to);
                        break;
                    }
                }
                let (from, to) = pair;
                debug_assert!(inter_policy.allows(from, to));
                // Inter-RIR transfers only make sense once both regions
                // are in scarcity (ARIN joined the market in 2014).
                if !policies[&from].market_open_at(month_start)
                    || !policies[&to].market_open_at(month_start)
                {
                    continue;
                }
                // Median block size shrinks with time: mean length 18 →
                // ~22.5 across the window.
                let mean_len = 18.0 + 0.55 * (year - 2012) as f64;
                let len = (mean_len + rng.gen_range(-2.0..2.0)).round().clamp(16.0, 24.0) as u8;
                let Ok(prefix) = pools.get_mut(&from).expect("pool").allocate(len) else {
                    continue;
                };
                let from_org = *by_rir[&from].choose(&mut rng).expect("orgs");
                let to_org = *by_rir[&to].choose(&mut rng).expect("orgs");
                let day_offset = rng.gen_range(0..days_in_month.max(1));
                log.push(Transfer {
                    date: month_start + day_offset,
                    prefix,
                    from_org,
                    to_org,
                    source_rir: from,
                    dest_rir: to,
                    kind: Some(TransferKind::Market),
                });
            }
        }

        month_start = next_month;
    }

    RegistryHistory { orgs, log }
}

/// Waiting-list status snapshot for §2 / the conclusion: queue depths
/// and maximum waiting times per RIR.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaitlistReport {
    /// The registry.
    pub rir: Rir,
    /// Peak queue depth observed.
    pub max_depth: usize,
    /// Maximum fulfilled waiting time in days (None if nothing
    /// fulfilled yet).
    pub max_waiting_days: Option<i64>,
    /// Requests still pending at the end of the window.
    pub pending: usize,
}

/// Simulate the post-exhaustion waiting lists of ARIN, LACNIC and the
/// RIPE NCC with arrival/recovery rates calibrated to the paper's
/// reported peaks (202, 275 and 110 approved requests) and ARIN's
/// 130-day waits. RIPE's list is cleared by recovered space (§2).
pub fn simulate_waitlists(seed: u64, until: Date) -> Vec<WaitlistReport> {
    let mut rng = Pcg64Mcg::seed_from_u64(seed ^ 0x57A17);
    let mut out = Vec::new();
    for rir in [Rir::Arin, Rir::Lacnic, Rir::RipeNcc] {
        let policy = AllocationPolicy::for_rir(rir);
        let Some(start) = policy.recovery_start else {
            continue;
        };
        // Calibrated daily arrival and fulfillment rates.
        let (arrivals_per_day, fulfil_per_day) = match rir {
            Rir::Arin => (1.9, 1.55),   // backlog grows to ~200, waits >130d
            Rir::Lacnic => (4.5, 0.25), // recent depletion: deep backlog
            Rir::RipeNcc => (1.4, 1.3), // recovered space keeps up
            _ => unreachable!(),
        };
        let depth_cap = match rir {
            Rir::Arin => 202,
            Rir::Lacnic => 275,
            Rir::RipeNcc => 110,
            _ => unreachable!(),
        };
        let mut wl = WaitingList::new();
        let mut org_counter = 0u32;
        let mut day = start;
        let mut fulfil_credit = 0.0f64;
        while day <= until {
            let arrivals = sample_poisson(&mut rng, arrivals_per_day);
            for _ in 0..arrivals {
                if wl.depth() < depth_cap {
                    wl.enqueue(WaitingRequest {
                        org: OrgId(1_000_000 + org_counter),
                        prefix_len: policy.max_allocation_len,
                        approved: day,
                    });
                    org_counter += 1;
                }
            }
            fulfil_credit += fulfil_per_day;
            let mut budget = fulfil_credit.floor() as usize;
            fulfil_credit -= budget as f64;
            wl.fulfill_while(day, |_| {
                if budget == 0 {
                    false
                } else {
                    budget -= 1;
                    true
                }
            });
            day = day.succ();
        }
        out.push(WaitlistReport {
            rir,
            max_depth: wl.max_depth_seen(),
            max_waiting_days: wl.max_waiting_days(),
            pending: wl.depth(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    fn small_history() -> RegistryHistory {
        simulate(&SimulationConfig {
            seed: 7,
            volume_scale: 0.25,
            orgs_per_rir: 50,
            ..Default::default()
        })
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = SimulationConfig {
            seed: 42,
            volume_scale: 0.1,
            orgs_per_rir: 20,
            ..Default::default()
        };
        let a = simulate(&cfg);
        let b = simulate(&cfg);
        assert_eq!(a.log.records(), b.log.records());
        let c = simulate(&SimulationConfig { seed: 43, ..cfg });
        assert_ne!(a.log.records(), c.log.records());
    }

    #[test]
    fn markets_start_at_last_slash8() {
        let h = small_history();
        let starts = stats::market_start_dates(&h.log);
        for rir in [Rir::Apnic, Rir::Arin, Rir::RipeNcc] {
            let policy = AllocationPolicy::for_rir(rir);
            let start = starts[&rir];
            assert!(
                start >= policy.last_slash8,
                "{rir}: market started {start} before last /8 {}",
                policy.last_slash8
            );
            // And not absurdly later (within a year of opening).
            assert!(start - policy.last_slash8 < 366, "{rir} started too late: {start}");
        }
    }

    #[test]
    fn afrinic_lacnic_negligible() {
        let h = small_history();
        let total = h.log.len() as f64;
        let small: usize = h.log.for_region(Rir::Afrinic).count() + h.log.for_region(Rir::Lacnic).count();
        assert!(
            (small as f64) < total * 0.03,
            "AFRINIC+LACNIC share too large: {small} of {total}"
        );
    }

    #[test]
    fn inter_rir_mostly_from_arin_and_growing() {
        let h = small_history();
        let flows = stats::inter_rir_flows(&h.log);
        let from_arin: usize = flows.iter().filter(|f| f.from == Rir::Arin).map(|f| f.count).sum();
        let total: usize = flows.iter().map(|f| f.count).sum();
        assert!(total > 0);
        assert!(
            from_arin * 2 > total,
            "ARIN should originate the majority of inter-RIR flows ({from_arin}/{total})"
        );
        // Counts grow over the years.
        let per_year = |y: i64| -> usize {
            flows.iter().filter(|f| f.year == y).map(|f| f.count).sum()
        };
        assert!(per_year(2019) > per_year(2013), "2019 {} vs 2013 {}", per_year(2019), per_year(2013));
        // Median blocks shrink (addresses per transfer go down).
        let median_sz = |y: i64| -> f64 {
            let mut v: Vec<u64> = flows.iter().filter(|f| f.year == y && f.count > 0).map(|f| f.median_block).collect();
            if v.is_empty() { return 0.0; }
            v.sort_unstable();
            v[v.len() / 2] as f64
        };
        if median_sz(2013) > 0.0 && median_sz(2019) > 0.0 {
            assert!(median_sz(2019) < median_sz(2013));
        }
    }

    #[test]
    fn inter_rir_only_between_big_three() {
        let h = small_history();
        for t in h.log.inter_rir() {
            assert!(Rir::MARKET_RIRS.contains(&t.source_rir));
            assert!(Rir::MARKET_RIRS.contains(&t.dest_rir));
        }
    }

    #[test]
    fn transfers_have_unique_space() {
        let h = small_history();
        let records = h.log.records();
        for (i, a) in records.iter().enumerate() {
            for b in &records[i + 1..] {
                assert!(
                    !a.prefix.overlaps(&b.prefix),
                    "{} overlaps {}",
                    a.prefix,
                    b.prefix
                );
            }
        }
    }

    #[test]
    fn ripe_year_end_seasonality() {
        // With full volume, RIPE Q4 counts should beat Q2/Q3 on average.
        let h = simulate(&SimulationConfig {
            seed: 11,
            volume_scale: 1.0,
            orgs_per_rir: 50,
            ..Default::default()
        });
        let mut q4 = 0usize;
        let mut q23 = 0usize;
        let mut q4_quarters = 0usize;
        let mut q23_quarters = 0usize;
        for c in stats::quarterly_counts(&h.log) {
            if c.rir != Rir::RipeNcc || c.quarter_label.as_str() < "2015" {
                continue;
            }
            if c.quarter_label.ends_with("Q4") {
                q4 += c.count;
                q4_quarters += 1;
            } else if c.quarter_label.ends_with("Q2") || c.quarter_label.ends_with("Q3") {
                q23 += c.count;
                q23_quarters += 1;
            }
        }
        let q4_avg = q4 as f64 / q4_quarters.max(1) as f64;
        let q23_avg = q23 as f64 / q23_quarters.max(1) as f64;
        assert!(
            q4_avg > q23_avg * 1.15,
            "expected Q4 seasonality: Q4 avg {q4_avg:.1} vs Q2/Q3 avg {q23_avg:.1}"
        );
    }

    #[test]
    fn waitlist_reports_match_paper_bands() {
        let reports = simulate_waitlists(1, date("2020-06-01"));
        let arin = reports.iter().find(|r| r.rir == Rir::Arin).unwrap();
        let lacnic = reports.iter().find(|r| r.rir == Rir::Lacnic).unwrap();
        let ripe = reports.iter().find(|r| r.rir == Rir::RipeNcc).unwrap();
        // Peaks bounded by the paper's reported maxima.
        assert!(arin.max_depth <= 202 && arin.max_depth > 100, "ARIN depth {}", arin.max_depth);
        assert!(lacnic.max_depth <= 275, "LACNIC depth {}", lacnic.max_depth);
        assert!(ripe.max_depth <= 110, "RIPE depth {}", ripe.max_depth);
        // ARIN waits exceed 100 days.
        assert!(arin.max_waiting_days.unwrap_or(0) >= 100);
        // RIPE keeps up with its queue (fulfilled everything recent).
        assert!(ripe.pending < 110);
    }
}
