//! Transfer records and the transfer-statistics log.
//!
//! Each RIR publishes daily transfer statistics; §3 of the paper works
//! from those feeds. Records carry the transferred block, the parties,
//! the source and destination RIR (equal for intra-RIR transfers), and
//! a kind. AFRINIC, ARIN and the RIPE NCC label merger/acquisition
//! transfers; APNIC and LACNIC do not — [`TransferLog::published`]
//! reproduces that information loss so downstream analyses must cope
//! with it exactly as the paper does.

use crate::org::OrgId;
use crate::rir::Rir;
use nettypes::date::Date;
use nettypes::prefix::Prefix;
use serde::{Deserialize, Serialize};

/// Why a transfer happened.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TransferKind {
    /// A market (policy) transfer between unrelated LIRs.
    Market,
    /// Consolidation following a merger or acquisition.
    MergerAcquisition,
}

/// A single IPv4 transfer record in the shape of the RIR feeds.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// Completion date.
    pub date: Date,
    /// The transferred block.
    pub prefix: Prefix,
    /// Selling organization.
    pub from_org: OrgId,
    /// Buying organization.
    pub to_org: OrgId,
    /// RIR the block belonged to before the transfer.
    pub source_rir: Rir,
    /// RIR maintaining the block after the transfer.
    pub dest_rir: Rir,
    /// Market or M&A. `None` models feeds that do not label the kind
    /// (APNIC, LACNIC) after publication filtering.
    pub kind: Option<TransferKind>,
}

impl Transfer {
    /// Whether this crosses RIR boundaries.
    pub fn is_inter_rir(&self) -> bool {
        self.source_rir != self.dest_rir
    }

    /// Number of transferred addresses.
    pub fn num_addresses(&self) -> u64 {
        self.prefix.num_addresses()
    }
}

impl serde_json::ToJson for Transfer {
    fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "transfer_date": self.date.to_string(),
            "prefix": self.prefix.to_string(),
            "from_org": self.from_org.0,
            "to_org": self.to_org.0,
            "source_rir": self.source_rir.label(),
            "dest_rir": self.dest_rir.label(),
            "type": self.kind.map(|k| match k {
                TransferKind::Market => "market",
                TransferKind::MergerAcquisition => "merger_acquisition",
            }),
        })
    }
}

impl serde_json::FromJson for Transfer {
    fn from_json(v: &serde_json::Value) -> Result<Self, serde_json::Error> {
        let field = |name: &str| -> Result<&str, serde_json::Error> {
            v[name]
                .as_str()
                .ok_or_else(|| serde_json::Error::msg(format!("missing field {name}")))
        };
        let org = |name: &str| -> Result<OrgId, serde_json::Error> {
            v[name]
                .as_i64()
                .map(|n| OrgId(n as u32))
                .ok_or_else(|| serde_json::Error::msg(format!("missing field {name}")))
        };
        let kind = match v["type"].as_str() {
            None => None,
            Some("market") => Some(TransferKind::Market),
            Some("merger_acquisition") => Some(TransferKind::MergerAcquisition),
            Some(other) => {
                return Err(serde_json::Error::msg(format!(
                    "unknown transfer type {other:?}"
                )))
            }
        };
        Ok(Transfer {
            date: field("transfer_date")?
                .parse::<Date>()
                .map_err(|e| serde_json::Error::msg(e.to_string()))?,
            prefix: field("prefix")?.parse::<Prefix>().map_err(|e| serde_json::Error::msg(e.to_string()))?,
            from_org: org("from_org")?,
            to_org: org("to_org")?,
            source_rir: field("source_rir")?
                .parse::<Rir>()
                .map_err(|e| serde_json::Error::msg(e.to_string()))?,
            dest_rir: field("dest_rir")?
                .parse::<Rir>()
                .map_err(|e| serde_json::Error::msg(e.to_string()))?,
            kind,
        })
    }
}

/// The inter-RIR transfer policy: transfers can only take place between
/// APNIC, ARIN and the RIPE NCC, which agreed on common policies (§3).
#[derive(Clone, Copy, Debug, Default)]
pub struct InterRirPolicy;

impl InterRirPolicy {
    /// Whether a transfer from `src` to `dst` is permitted.
    pub fn allows(&self, src: Rir, dst: Rir) -> bool {
        if src == dst {
            return true;
        }
        Rir::MARKET_RIRS.contains(&src) && Rir::MARKET_RIRS.contains(&dst)
    }
}

/// An append-only log of transfers with query and export helpers.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TransferLog {
    records: Vec<Transfer>,
}

impl TransferLog {
    /// Empty log.
    pub fn new() -> Self {
        TransferLog::default()
    }

    /// A log over an existing record vector (e.g. a per-RIR slice of
    /// a bigger log, about to become a published feed).
    pub fn from_records(records: Vec<Transfer>) -> Self {
        TransferLog { records }
    }

    /// Append a record (records need not arrive date-sorted).
    pub fn push(&mut self, t: Transfer) {
        self.records.push(t);
    }

    /// All records.
    pub fn records(&self) -> &[Transfer] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The *published* view of the log: what the RIR transfer feeds
    /// disclose. For RIRs that do not label M&A transfers the `kind`
    /// field is erased; nothing else changes.
    pub fn published(&self) -> TransferLog {
        let records = self
            .records
            .iter()
            .cloned()
            .map(|mut t| {
                if !t.dest_rir.labels_mna_transfers() {
                    t.kind = None;
                }
                t
            })
            .collect();
        TransferLog { records }
    }

    /// Remove M&A transfers where the label allows it — the paper's
    /// preprocessing step. Unlabelled records are kept (the paper
    /// declines to apply the Giotsas et al. heuristics).
    pub fn without_labelled_mna(&self) -> TransferLog {
        let records = self
            .records
            .iter()
            .filter(|t| t.kind != Some(TransferKind::MergerAcquisition))
            .cloned()
            .collect();
        TransferLog { records }
    }

    /// Records whose destination region matches `rir`.
    pub fn for_region(&self, rir: Rir) -> impl Iterator<Item = &Transfer> {
        self.records.iter().filter(move |t| t.dest_rir == rir)
    }

    /// Records within `[from, to]` inclusive.
    pub fn between(&self, from: Date, to: Date) -> impl Iterator<Item = &Transfer> {
        self.records
            .iter()
            .filter(move |t| t.date >= from && t.date <= to)
    }

    /// Only inter-RIR transfers.
    pub fn inter_rir(&self) -> impl Iterator<Item = &Transfer> {
        self.records.iter().filter(|t| t.is_inter_rir())
    }

    /// Serialize in the RIR transfer-feed JSON shape
    /// (`{"transfers": [...]}`).
    pub fn to_feed_json(&self) -> serde_json::Value {
        serde_json::json!({ "transfers": self.records })
    }

    /// Parse a feed produced by [`TransferLog::to_feed_json`].
    pub fn from_feed_json(v: &serde_json::Value) -> Result<Self, serde_json::Error> {
        let records: Vec<Transfer> = serde_json::from_value(v["transfers"].clone())?;
        Ok(TransferLog { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettypes::date::date;
    use nettypes::prefix::pfx;

    fn t(d: &str, p: &str, src: Rir, dst: Rir, kind: Option<TransferKind>) -> Transfer {
        Transfer {
            date: date(d),
            prefix: pfx(p),
            from_org: OrgId(1),
            to_org: OrgId(2),
            source_rir: src,
            dest_rir: dst,
            kind,
        }
    }

    #[test]
    fn inter_rir_policy_matrix() {
        let p = InterRirPolicy;
        assert!(p.allows(Rir::Arin, Rir::RipeNcc));
        assert!(p.allows(Rir::Arin, Rir::Apnic));
        assert!(p.allows(Rir::RipeNcc, Rir::Apnic));
        assert!(!p.allows(Rir::Arin, Rir::Afrinic));
        assert!(!p.allows(Rir::Lacnic, Rir::RipeNcc));
        // Intra-RIR always allowed, even outside the big three.
        assert!(p.allows(Rir::Lacnic, Rir::Lacnic));
    }

    #[test]
    fn published_erases_unlabelled_kinds() {
        let mut log = TransferLog::new();
        log.push(t("2020-01-01", "1.0.0.0/24", Rir::Apnic, Rir::Apnic, Some(TransferKind::MergerAcquisition)));
        log.push(t("2020-01-02", "2.0.0.0/24", Rir::RipeNcc, Rir::RipeNcc, Some(TransferKind::MergerAcquisition)));
        let pubd = log.published();
        assert_eq!(pubd.records()[0].kind, None); // APNIC does not label
        assert_eq!(
            pubd.records()[1].kind,
            Some(TransferKind::MergerAcquisition) // RIPE labels
        );
        // M&A filtering then removes only the labelled one.
        let filtered = pubd.without_labelled_mna();
        assert_eq!(filtered.len(), 1);
        assert_eq!(filtered.records()[0].dest_rir, Rir::Apnic);
    }

    #[test]
    fn queries() {
        let mut log = TransferLog::new();
        log.push(t("2019-01-01", "1.0.0.0/24", Rir::Arin, Rir::RipeNcc, Some(TransferKind::Market)));
        log.push(t("2019-06-01", "2.0.0.0/22", Rir::Arin, Rir::Arin, Some(TransferKind::Market)));
        log.push(t("2020-01-01", "3.0.0.0/23", Rir::Apnic, Rir::Apnic, None));
        assert_eq!(log.inter_rir().count(), 1);
        assert_eq!(log.for_region(Rir::Arin).count(), 1);
        assert_eq!(log.between(date("2019-01-01"), date("2019-12-31")).count(), 2);
        assert_eq!(log.records()[1].num_addresses(), 1024);
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        use serde_json::{FromJson, ToJson};
        let complete = t(
            "2020-01-01",
            "1.0.0.0/24",
            Rir::Arin,
            Rir::RipeNcc,
            Some(TransferKind::Market),
        );
        // Sanity: the full record round-trips.
        assert_eq!(Transfer::from_json(&complete.to_json()).unwrap(), complete);
        // Dropping any required field is an explicit error naming it.
        for field in [
            "transfer_date",
            "prefix",
            "from_org",
            "to_org",
            "source_rir",
            "dest_rir",
        ] {
            let mut v = complete.to_json();
            if let serde_json::Value::Object(map) = &mut v {
                map.remove(field);
            }
            let err = Transfer::from_json(&v).unwrap_err();
            assert!(
                err.to_string().contains(field),
                "error for missing {field} was {err}"
            );
        }
        // `type` is the one optional field: absent means unlabelled.
        let mut v = complete.to_json();
        if let serde_json::Value::Object(map) = &mut v {
            map.remove("type");
        }
        assert_eq!(Transfer::from_json(&v).unwrap().kind, None);
    }

    #[test]
    fn from_json_rejects_bad_org_handles() {
        use serde_json::{FromJson, ToJson};
        let good = t("2020-01-01", "1.0.0.0/24", Rir::Arin, Rir::Arin, None);
        // Org handles are numeric in the feeds; a string (or any
        // non-integer) must not silently become org 0.
        for bad in [
            serde_json::json!("ORG-EXAMPLE-1"),
            serde_json::json!(true),
            serde_json::Value::Null,
        ] {
            let mut v = good.to_json();
            if let serde_json::Value::Object(map) = &mut v {
                map.insert("from_org".into(), bad.clone());
            }
            assert!(Transfer::from_json(&v).is_err(), "accepted from_org {bad:?}");
        }
    }

    #[test]
    fn from_json_rejects_bad_dates_prefixes_rirs_and_kinds() {
        use serde_json::{FromJson, ToJson};
        let good = t("2020-01-01", "1.0.0.0/24", Rir::Arin, Rir::Arin, None);
        let mutate = |field: &str, value: serde_json::Value| {
            let mut v = good.to_json();
            if let serde_json::Value::Object(map) = &mut v {
                map.insert(field.into(), value);
            }
            Transfer::from_json(&v)
        };
        // Calendar-invalid and syntactically broken dates.
        assert!(mutate("transfer_date", serde_json::json!("2020-13-01")).is_err());
        assert!(mutate("transfer_date", serde_json::json!("2020-02-30")).is_err());
        assert!(mutate("transfer_date", serde_json::json!("yesterday")).is_err());
        // Broken prefixes.
        assert!(mutate("prefix", serde_json::json!("1.0.0.0")).is_err());
        assert!(mutate("prefix", serde_json::json!("1.0.0.0/33")).is_err());
        assert!(mutate("prefix", serde_json::json!("bananas/24")).is_err());
        // Unknown registry labels and transfer kinds.
        assert!(mutate("source_rir", serde_json::json!("internic")).is_err());
        assert!(mutate("type", serde_json::json!("gift")).is_err());
    }

    #[test]
    fn feed_json_roundtrip() {
        let mut log = TransferLog::new();
        log.push(t("2020-01-01", "1.0.0.0/24", Rir::Arin, Rir::RipeNcc, Some(TransferKind::Market)));
        log.push(t("2020-02-01", "9.0.0.0/16", Rir::Apnic, Rir::Apnic, None));
        let v = log.to_feed_json();
        let back = TransferLog::from_feed_json(&v).unwrap();
        assert_eq!(back.records(), log.records());
    }
}
