//! Aggregations over transfer logs feeding Figures 2 and 3.

use crate::rir::Rir;
use crate::transfer::TransferLog;
use nettypes::date::Date;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One bar of Figure 2: transfers into a region during one quarter.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarterlyCount {
    /// Quarter index since 1970Q1 (sortable key).
    pub quarter_index: i64,
    /// Human-readable label, e.g. `2019Q4`.
    pub quarter_label: String,
    /// Destination region.
    pub rir: Rir,
    /// Number of transfers.
    pub count: usize,
    /// Total addresses moved.
    pub addresses: u64,
}

/// Aggregate a transfer log into per-quarter, per-region counts
/// (Figure 2: "# of market transfers" in three-month bins).
pub fn quarterly_counts(log: &TransferLog) -> Vec<QuarterlyCount> {
    let mut map: BTreeMap<(i64, Rir), (usize, u64, String)> = BTreeMap::new();
    for t in log.records() {
        let e = map
            .entry((t.date.quarter_index(), t.dest_rir))
            .or_insert_with(|| (0, 0, t.date.quarter_label()));
        e.0 += 1;
        e.1 += t.num_addresses();
    }
    map.into_iter()
        .map(|((qi, rir), (count, addresses, label))| QuarterlyCount {
            quarter_index: qi,
            quarter_label: label,
            rir,
            count,
            addresses,
        })
        .collect()
}

/// One cell of Figure 3: inter-RIR flow volume for a year.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterRirFlow {
    /// Calendar year.
    pub year: i64,
    /// Origin RIR.
    pub from: Rir,
    /// Destination RIR.
    pub to: Rir,
    /// Number of transfers.
    pub count: usize,
    /// Total addresses moved.
    pub addresses: u64,
    /// Median transferred block size in addresses (0 when count is 0).
    pub median_block: u64,
}

/// Aggregate inter-RIR transfers per (year, origin, destination) —
/// Figure 3.
pub fn inter_rir_flows(log: &TransferLog) -> Vec<InterRirFlow> {
    let mut sizes: BTreeMap<(i64, Rir, Rir), Vec<u64>> = BTreeMap::new();
    for t in log.inter_rir() {
        sizes
            .entry((t.date.year(), t.source_rir, t.dest_rir))
            .or_default()
            .push(t.num_addresses());
    }
    sizes
        .into_iter()
        .map(|((year, from, to), mut s)| {
            s.sort_unstable();
            let median_block = if s.is_empty() { 0 } else { s[s.len() / 2] };
            InterRirFlow {
                year,
                from,
                to,
                count: s.len(),
                addresses: s.iter().sum(),
                median_block,
            }
        })
        .collect()
}

/// Net inter-RIR address movement per RIR over the whole log:
/// positive = net importer (APNIC, RIPE per the paper), negative =
/// net exporter (ARIN).
pub fn inter_rir_net_by_rir(log: &TransferLog) -> BTreeMap<Rir, i64> {
    let mut net: BTreeMap<Rir, i64> = BTreeMap::new();
    for t in log.inter_rir() {
        *net.entry(t.dest_rir).or_default() += t.num_addresses() as i64;
        *net.entry(t.source_rir).or_default() -= t.num_addresses() as i64;
    }
    net
}

/// The date of the first transfer into each region — the paper
/// observes regional markets start when the RIR hits its last /8.
pub fn market_start_dates(log: &TransferLog) -> BTreeMap<Rir, Date> {
    let mut out: BTreeMap<Rir, Date> = BTreeMap::new();
    for t in log.records() {
        out.entry(t.dest_rir)
            .and_modify(|d| {
                if t.date < *d {
                    *d = t.date;
                }
            })
            .or_insert(t.date);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::org::OrgId;
    use crate::transfer::{Transfer, TransferKind};
    use nettypes::date::date;
    use nettypes::prefix::pfx;

    fn t(d: &str, p: &str, src: Rir, dst: Rir) -> Transfer {
        Transfer {
            date: date(d),
            prefix: pfx(p),
            from_org: OrgId(1),
            to_org: OrgId(2),
            source_rir: src,
            dest_rir: dst,
            kind: Some(TransferKind::Market),
        }
    }

    #[test]
    fn quarterly_binning() {
        let mut log = TransferLog::new();
        log.push(t("2019-01-15", "1.0.0.0/24", Rir::Arin, Rir::Arin));
        log.push(t("2019-02-15", "1.0.1.0/24", Rir::Arin, Rir::Arin));
        log.push(t("2019-04-01", "1.0.2.0/24", Rir::Arin, Rir::Arin));
        log.push(t("2019-01-20", "2.0.0.0/23", Rir::RipeNcc, Rir::RipeNcc));
        let q = quarterly_counts(&log);
        assert_eq!(q.len(), 3);
        let arin_q1 = q
            .iter()
            .find(|c| c.rir == Rir::Arin && c.quarter_label == "2019Q1")
            .unwrap();
        assert_eq!(arin_q1.count, 2);
        assert_eq!(arin_q1.addresses, 512);
        let ripe_q1 = q
            .iter()
            .find(|c| c.rir == Rir::RipeNcc && c.quarter_label == "2019Q1")
            .unwrap();
        assert_eq!(ripe_q1.count, 1);
        assert_eq!(ripe_q1.addresses, 512);
    }

    #[test]
    fn inter_rir_aggregation() {
        let mut log = TransferLog::new();
        log.push(t("2018-03-01", "1.0.0.0/22", Rir::Arin, Rir::RipeNcc));
        log.push(t("2018-07-01", "1.0.4.0/24", Rir::Arin, Rir::RipeNcc));
        log.push(t("2018-09-01", "1.0.5.0/24", Rir::Arin, Rir::Apnic));
        log.push(t("2018-10-01", "9.0.0.0/24", Rir::Arin, Rir::Arin)); // intra, ignored
        let flows = inter_rir_flows(&log);
        assert_eq!(flows.len(), 2);
        let to_ripe = flows
            .iter()
            .find(|f| f.to == Rir::RipeNcc)
            .unwrap();
        assert_eq!(to_ripe.count, 2);
        assert_eq!(to_ripe.addresses, 1024 + 256);
        assert_eq!(to_ripe.median_block, 1024);

        let net = inter_rir_net_by_rir(&log);
        assert_eq!(net[&Rir::Arin], -(1024 + 256 + 256));
        assert_eq!(net[&Rir::RipeNcc], 1024 + 256);
        assert_eq!(net[&Rir::Apnic], 256);
    }

    #[test]
    fn market_start_detection() {
        let mut log = TransferLog::new();
        log.push(t("2012-10-05", "1.0.0.0/24", Rir::RipeNcc, Rir::RipeNcc));
        log.push(t("2011-05-01", "2.0.0.0/24", Rir::Apnic, Rir::Apnic));
        log.push(t("2013-01-01", "3.0.0.0/24", Rir::RipeNcc, Rir::RipeNcc));
        let starts = market_start_dates(&log);
        assert_eq!(starts[&Rir::Apnic], date("2011-05-01"));
        assert_eq!(starts[&Rir::RipeNcc], date("2012-10-05"));
    }
}
