//! # registry
//!
//! A simulator for the five Regional Internet Registries (RIRs) as
//! they appear in §2 and §3 of *When Wells Run Dry* (CoNEXT '20):
//!
//! * [`rir`] — the five registries and their service regions,
//! * [`policy`] — the per-RIR exhaustion timeline and soft-landing
//!   allocation policies (Table 1 of the paper),
//! * [`pool`] — address-pool bookkeeping: allocation, recovery, and
//!   the six-month quarantine for recovered space,
//! * [`org`] — organizations / LIR memberships,
//! * [`fees`] — per-RIR membership fee schedules and the derived
//!   per-IP maintenance cost used by the §6 amortization analysis,
//! * [`waitlist`] — the post-exhaustion waiting lists (ARIN ≤202,
//!   LACNIC ≤275, RIPE ≤110 approved requests; ARIN waits ≥130 days),
//! * [`transfer`] — transfer records in the RIRs' published
//!   transfer-statistics schema, with market / M&A labelling and
//!   inter-RIR transfer policy checks,
//! * [`timeline`] — the Table 1 event log,
//! * [`stats`] — quarterly aggregations feeding Figures 2 and 3,
//! * [`simulate`] — a seeded end-to-end registry history generator
//!   (2009-10 → 2020-06) reproducing the transfer-market dynamics the
//!   paper reports.
//!
//! The real RIRs publish daily JSON transfer feeds; [`transfer`]
//! serializes the simulated log in a compatible shape so that the
//! analysis code consumes the same record structure it would consume
//! from the real feeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fees;
pub mod org;
pub mod policy;
pub mod pool;
pub mod rir;
pub mod simulate;
pub mod stats;
pub mod timeline;
pub mod transfer;
pub mod waitlist;

pub use fees::{annual_fee, maintenance_per_ip_month, FeeQuote};
pub use org::{Org, OrgId, OrgKind, OrgRegistry};
pub use policy::{AllocationPolicy, PolicyPhase};
pub use pool::AddressPool;
pub use rir::Rir;
pub use timeline::{ExhaustionEvent, ExhaustionEventKind, exhaustion_timeline};
pub use transfer::{InterRirPolicy, Transfer, TransferKind, TransferLog};
pub use waitlist::{WaitingList, WaitingRequest};
