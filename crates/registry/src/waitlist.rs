//! Post-exhaustion waiting lists.
//!
//! Once a pool is in recovery-only mode, approved requests queue until
//! recovered space (after quarantine) can satisfy them. The paper
//! reports peak queue depths of 202 (ARIN), 275 (LACNIC) and 110
//! (RIPE NCC) and ARIN waiting times of up to 130 days; RIPE cleared
//! its list with recovered space after Nov 2019.

use crate::org::OrgId;
use nettypes::date::Date;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An approved-but-unfulfilled address request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitingRequest {
    /// Requesting organization.
    pub org: OrgId,
    /// Requested prefix length (e.g. 24 for a /24).
    pub prefix_len: u8,
    /// Date the request was approved and queued.
    pub approved: Date,
}

/// A fulfilled request with its waiting time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FulfilledRequest {
    /// The original request.
    pub request: WaitingRequest,
    /// Date it was fulfilled.
    pub fulfilled: Date,
}

impl FulfilledRequest {
    /// Days between approval and fulfillment.
    pub fn waiting_days(&self) -> i64 {
        self.fulfilled - self.request.approved
    }
}

/// A FIFO waiting list.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WaitingList {
    queue: VecDeque<WaitingRequest>,
    fulfilled: Vec<FulfilledRequest>,
    max_depth_seen: usize,
}

impl WaitingList {
    /// Empty list.
    pub fn new() -> Self {
        WaitingList::default()
    }

    /// Queue an approved request.
    pub fn enqueue(&mut self, req: WaitingRequest) {
        self.queue.push_back(req);
        self.max_depth_seen = self.max_depth_seen.max(self.queue.len());
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// The deepest the queue has ever been.
    pub fn max_depth_seen(&self) -> usize {
        self.max_depth_seen
    }

    /// Peek the head of the queue.
    pub fn head(&self) -> Option<&WaitingRequest> {
        self.queue.front()
    }

    /// Fulfill requests from the head of the queue while `can_satisfy`
    /// returns true for the head request (the pool decides). Returns
    /// the requests fulfilled in this pass.
    pub fn fulfill_while(
        &mut self,
        today: Date,
        mut can_satisfy: impl FnMut(&WaitingRequest) -> bool,
    ) -> Vec<FulfilledRequest> {
        let mut out = Vec::new();
        while let Some(head) = self.queue.front() {
            if !can_satisfy(head) {
                break;
            }
            let request = self.queue.pop_front().expect("non-empty");
            let f = FulfilledRequest {
                request,
                fulfilled: today,
            };
            self.fulfilled.push(f);
            out.push(f);
        }
        out
    }

    /// All requests ever fulfilled.
    pub fn fulfilled(&self) -> &[FulfilledRequest] {
        &self.fulfilled
    }

    /// The maximum waiting time (days) across fulfilled requests.
    pub fn max_waiting_days(&self) -> Option<i64> {
        self.fulfilled.iter().map(|f| f.waiting_days()).max()
    }

    /// Abolish the waiting list (APNIC, 2019-07-02), dropping pending
    /// requests. Returns the dropped requests.
    pub fn abolish(&mut self) -> Vec<WaitingRequest> {
        self.queue.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettypes::date::date;

    fn req(org: u32, len: u8, d: &str) -> WaitingRequest {
        WaitingRequest {
            org: OrgId(org),
            prefix_len: len,
            approved: date(d),
        }
    }

    #[test]
    fn fifo_order_and_depth() {
        let mut wl = WaitingList::new();
        wl.enqueue(req(1, 24, "2020-01-01"));
        wl.enqueue(req(2, 24, "2020-01-02"));
        wl.enqueue(req(3, 22, "2020-01-03"));
        assert_eq!(wl.depth(), 3);
        assert_eq!(wl.max_depth_seen(), 3);
        let done = wl.fulfill_while(date("2020-02-01"), |_| true);
        assert_eq!(done.len(), 3);
        assert_eq!(done[0].request.org, OrgId(1));
        assert_eq!(done[2].request.org, OrgId(3));
        assert_eq!(wl.depth(), 0);
        assert_eq!(wl.max_depth_seen(), 3);
    }

    #[test]
    fn partial_fulfillment_stops_at_head() {
        let mut wl = WaitingList::new();
        wl.enqueue(req(1, 22, "2020-01-01")); // big request blocks the head
        wl.enqueue(req(2, 24, "2020-01-02"));
        // Pool can only satisfy /24s — FIFO means nothing is fulfilled.
        let done = wl.fulfill_while(date("2020-02-01"), |r| r.prefix_len >= 24);
        assert!(done.is_empty());
        assert_eq!(wl.depth(), 2);
    }

    #[test]
    fn waiting_time_accounting() {
        let mut wl = WaitingList::new();
        wl.enqueue(req(1, 24, "2020-01-01"));
        wl.enqueue(req(2, 24, "2020-03-01"));
        let done = wl.fulfill_while(date("2020-05-10"), |_| true);
        assert_eq!(done.len(), 2);
        // ARIN-style long waits are representable.
        assert_eq!(wl.max_waiting_days(), Some(130));
    }

    #[test]
    fn abolition_drops_queue() {
        let mut wl = WaitingList::new();
        wl.enqueue(req(1, 24, "2019-06-01"));
        wl.enqueue(req(2, 24, "2019-06-15"));
        let dropped = wl.abolish();
        assert_eq!(dropped.len(), 2);
        assert_eq!(wl.depth(), 0);
        assert!(wl.fulfilled().is_empty());
    }
}
