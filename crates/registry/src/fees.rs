//! RIR membership and resource fees.
//!
//! §2: "To become and stay an LIR, an organization has to pay an
//! annual membership fee plus fees depending on the number of
//! requested resources. Yet all five RIRs differ in their exact
//! pricing model." The schedules below are simplified versions of the
//! 2020 models (RIPE: flat membership; ARIN/APNIC/LACNIC/AFRINIC:
//! size-tiered), converted to USD.
//!
//! The fee model is what turns "maintenance costs" from a hand-waved
//! constant into a derived quantity: §6's amortization analysis needs
//! the *per-IP monthly* carrying cost of owned space, which depends on
//! the RIR and on how much space amortizes the membership fee —
//! for a /24-only RIPE LIR it is ≈ $0.50/IP/month, for a /16 holder
//! it rounds to zero.

use crate::rir::Rir;
use serde::{Deserialize, Serialize};

/// An annual fee quote in USD.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FeeQuote {
    /// Annual membership/service fee.
    pub annual_usd: f64,
    /// One-time sign-up fee for new members.
    pub signup_usd: f64,
}

/// Size categories used by tiered schedules, by total held addresses:
/// ≤/24, ≤/22, ≤/20, ≤/18, ≤/16, ≤/14, larger.
fn size_category(addresses: u64) -> usize {
    const THRESHOLDS: [u64; 6] = [256, 1024, 4096, 16_384, 65_536, 262_144];
    THRESHOLDS.iter().filter(|&&t| addresses > t).count()
}

/// The annual fee for holding `addresses` IPv4 addresses at `rir`
/// (2020-era schedules).
pub fn annual_fee(rir: Rir, addresses: u64) -> FeeQuote {
    let tiered = |tiers: &[f64; 7], signup: f64| FeeQuote {
        annual_usd: tiers[size_category(addresses).min(6)],
        signup_usd: signup,
    };
    match rir {
        // RIPE NCC: flat membership fee regardless of holdings
        // (€1400 ≈ $1550 in 2020), €2000 sign-up.
        Rir::RipeNcc => FeeQuote {
            annual_usd: 1550.0,
            signup_usd: 2200.0,
        },
        // ARIN: registration-services-plan tiers.
        Rir::Arin => tiered(&[500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16_000.0, 32_000.0], 0.0),
        // APNIC: formula-based; approximated by tiers.
        Rir::Apnic => tiered(
            &[1180.0, 1680.0, 2560.0, 4160.0, 7040.0, 12_320.0, 22_400.0],
            500.0,
        ),
        Rir::Lacnic => tiered(&[440.0, 880.0, 1760.0, 3000.0, 5500.0, 8800.0, 14_000.0], 0.0),
        Rir::Afrinic => tiered(&[400.0, 800.0, 1600.0, 2800.0, 5200.0, 8400.0, 13_600.0], 0.0),
    }
}

/// The per-IP *monthly* maintenance cost of holding `addresses` at
/// `rir` — the membership fee amortized over the holdings. This is
/// the `maintenance_per_ip_month` input of the §6 amortization
/// analysis.
pub fn maintenance_per_ip_month(rir: Rir, addresses: u64) -> f64 {
    if addresses == 0 {
        return 0.0;
    }
    annual_fee(rir, addresses).annual_usd / addresses as f64 / 12.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ripe_fee_is_flat() {
        let small = annual_fee(Rir::RipeNcc, 256);
        let large = annual_fee(Rir::RipeNcc, 1 << 20);
        assert_eq!(small.annual_usd, large.annual_usd);
        assert!(small.signup_usd > 0.0);
    }

    #[test]
    fn tiered_fees_increase_with_holdings() {
        for rir in [Rir::Arin, Rir::Apnic, Rir::Lacnic, Rir::Afrinic] {
            let mut prev = 0.0;
            for addrs in [256u64, 1 << 12, 1 << 16, 1 << 20] {
                let fee = annual_fee(rir, addrs).annual_usd;
                assert!(fee >= prev, "{rir}: fee decreased at {addrs}");
                prev = fee;
            }
        }
    }

    #[test]
    fn size_categories() {
        assert_eq!(size_category(256), 0); // a /24
        assert_eq!(size_category(257), 1);
        assert_eq!(size_category(1024), 1); // a /22
        assert_eq!(size_category(65_536), 4); // a /16
        assert_eq!(size_category(1 << 24), 6); // a /8
    }

    #[test]
    fn per_ip_maintenance_matches_section6_band() {
        // A /24-only RIPE LIR: 1550 / 256 / 12 ≈ $0.50/IP/month —
        // above the cheapest lease rates, which is exactly why the
        // paper's slowest amortization cases stretch to decades.
        let small = maintenance_per_ip_month(Rir::RipeNcc, 256);
        assert!((0.4..=0.6).contains(&small), "{small}");
        // A /16 holder: effectively free per IP.
        let large = maintenance_per_ip_month(Rir::RipeNcc, 65_536);
        assert!(large < 0.01, "{large}");
        // Degenerate.
        assert_eq!(maintenance_per_ip_month(Rir::Arin, 0), 0.0);
    }

    #[test]
    fn arin_small_holder_is_cheapest_per_year() {
        // ARIN's bottom tier undercuts RIPE's flat fee.
        assert!(
            annual_fee(Rir::Arin, 256).annual_usd < annual_fee(Rir::RipeNcc, 256).annual_usd
        );
    }
}
