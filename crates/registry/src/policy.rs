//! Per-RIR IPv4 allocation policy over time.
//!
//! Encodes the exhaustion milestones of Table 1 and the soft-landing
//! assignment rules described in §2: once an RIR is down to its last
//! /8 it enters a restricted phase; once its pool is fully depleted it
//! can only allocate recovered space ("Recovery Only"), typically via a
//! waiting list.

use crate::rir::Rir;
use nettypes::date::{date, Date};
use serde::{Deserialize, Serialize};

/// The phase of an RIR's IPv4 lifecycle at a given date.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PolicyPhase {
    /// Regular needs-based allocation; pool not yet scarce.
    Normal,
    /// Soft landing: down to the last /8 (or /11), restricted sizes.
    SoftLanding,
    /// Pool depleted: allocation only from recovered space.
    RecoveryOnly,
}

/// Static policy knowledge for one RIR.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AllocationPolicy {
    /// The registry this policy belongs to.
    pub rir: Rir,
    /// Date the RIR reached its final /8 (or /11 for AFRINIC phase 2).
    pub last_slash8: Date,
    /// Date the pool fully depleted and recovery-only started, if it
    /// has happened (APNIC and AFRINIC still held space in mid-2020).
    pub recovery_start: Option<Date>,
    /// Maximum prefix length…: the *most specific* (smallest) block the
    /// RIR hands to a member under soft landing, e.g. 22 for a /22.
    pub max_allocation_len: u8,
    /// Whether the RIR operates a waiting list after depletion.
    pub has_waiting_list: bool,
    /// Quarantine period (days) applied to recovered space before it
    /// is redistributed. Most RIRs use six months (§2).
    pub quarantine_days: i64,
}

impl AllocationPolicy {
    /// The policy for a given RIR, with the milestone dates from
    /// Table 1 of the paper.
    pub fn for_rir(rir: Rir) -> AllocationPolicy {
        match rir {
            Rir::Afrinic => AllocationPolicy {
                rir,
                last_slash8: date("2017-03-31"),
                recovery_start: None, // last /11 reached 2020-01-13, not depleted
                max_allocation_len: 22,
                has_waiting_list: false,
                quarantine_days: 180,
            },
            Rir::Apnic => AllocationPolicy {
                rir,
                last_slash8: date("2011-04-15"),
                recovery_start: Some(date("2014-07-27")),
                max_allocation_len: 23,
                // APNIC abolished its waiting list on 2019-07-02 (§2);
                // modelled as not operating one in the study window.
                has_waiting_list: false,
                quarantine_days: 180,
            },
            Rir::Arin => AllocationPolicy {
                rir,
                last_slash8: date("2014-04-23"),
                recovery_start: Some(date("2015-09-24")),
                max_allocation_len: 22,
                has_waiting_list: true,
                quarantine_days: 180,
            },
            Rir::Lacnic => AllocationPolicy {
                rir,
                last_slash8: date("2017-02-15"),
                recovery_start: Some(date("2020-08-19")),
                max_allocation_len: 22,
                has_waiting_list: true,
                quarantine_days: 180,
            },
            Rir::RipeNcc => AllocationPolicy {
                rir,
                last_slash8: date("2012-09-14"),
                recovery_start: Some(date("2019-11-25")),
                max_allocation_len: 24,
                has_waiting_list: true,
                quarantine_days: 180,
            },
        }
    }

    /// The lifecycle phase at `when`.
    pub fn phase_at(&self, when: Date) -> PolicyPhase {
        if let Some(r) = self.recovery_start {
            if when >= r {
                return PolicyPhase::RecoveryOnly;
            }
        }
        if when >= self.last_slash8 {
            PolicyPhase::SoftLanding
        } else {
            PolicyPhase::Normal
        }
    }

    /// The largest block (as a prefix length; smaller number = bigger
    /// block) a new member can receive at `when`. Before soft landing
    /// we model the historic needs-based maximum as a /16.
    pub fn max_allocation_at(&self, when: Date) -> u8 {
        match self.phase_at(when) {
            PolicyPhase::Normal => 16,
            PolicyPhase::SoftLanding | PolicyPhase::RecoveryOnly => self.max_allocation_len,
        }
    }

    /// Whether the transfer market for this region is open at `when`.
    /// The paper observes regional transfer markets start once the RIR
    /// is down to its last /8 (§3, Figure 2 vs Table 1).
    pub fn market_open_at(&self, when: Date) -> bool {
        when >= self.last_slash8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettypes::date::date;

    #[test]
    fn table1_milestones() {
        assert_eq!(AllocationPolicy::for_rir(Rir::Afrinic).last_slash8, date("2017-03-31"));
        assert_eq!(AllocationPolicy::for_rir(Rir::Apnic).last_slash8, date("2011-04-15"));
        assert_eq!(AllocationPolicy::for_rir(Rir::Arin).last_slash8, date("2014-04-23"));
        assert_eq!(AllocationPolicy::for_rir(Rir::Lacnic).last_slash8, date("2017-02-15"));
        assert_eq!(AllocationPolicy::for_rir(Rir::RipeNcc).last_slash8, date("2012-09-14"));

        assert_eq!(
            AllocationPolicy::for_rir(Rir::RipeNcc).recovery_start,
            Some(date("2019-11-25"))
        );
        assert_eq!(AllocationPolicy::for_rir(Rir::Afrinic).recovery_start, None);
    }

    #[test]
    fn phases_progress() {
        let ripe = AllocationPolicy::for_rir(Rir::RipeNcc);
        assert_eq!(ripe.phase_at(date("2010-01-01")), PolicyPhase::Normal);
        assert_eq!(ripe.phase_at(date("2012-09-14")), PolicyPhase::SoftLanding);
        assert_eq!(ripe.phase_at(date("2019-11-24")), PolicyPhase::SoftLanding);
        assert_eq!(ripe.phase_at(date("2019-11-25")), PolicyPhase::RecoveryOnly);
        assert_eq!(ripe.phase_at(date("2020-06-01")), PolicyPhase::RecoveryOnly);
    }

    #[test]
    fn allocation_sizes_match_section2() {
        let when = date("2020-06-01");
        assert_eq!(AllocationPolicy::for_rir(Rir::Afrinic).max_allocation_at(when), 22);
        assert_eq!(AllocationPolicy::for_rir(Rir::Apnic).max_allocation_at(when), 23);
        assert_eq!(AllocationPolicy::for_rir(Rir::Arin).max_allocation_at(when), 22);
        assert_eq!(AllocationPolicy::for_rir(Rir::Lacnic).max_allocation_at(when), 22);
        assert_eq!(AllocationPolicy::for_rir(Rir::RipeNcc).max_allocation_at(when), 24);
        // Pre-scarcity allocations were much larger.
        assert_eq!(AllocationPolicy::for_rir(Rir::RipeNcc).max_allocation_at(date("2005-01-01")), 16);
    }

    #[test]
    fn market_opening_follows_last_slash8() {
        let apnic = AllocationPolicy::for_rir(Rir::Apnic);
        assert!(!apnic.market_open_at(date("2011-04-14")));
        assert!(apnic.market_open_at(date("2011-04-15")));
        let lacnic = AllocationPolicy::for_rir(Rir::Lacnic);
        assert!(!lacnic.market_open_at(date("2015-01-01")));
        assert!(lacnic.market_open_at(date("2018-01-01")));
    }

    #[test]
    fn waiting_lists_match_paper() {
        assert!(AllocationPolicy::for_rir(Rir::Arin).has_waiting_list);
        assert!(AllocationPolicy::for_rir(Rir::Lacnic).has_waiting_list);
        assert!(AllocationPolicy::for_rir(Rir::RipeNcc).has_waiting_list);
        assert!(!AllocationPolicy::for_rir(Rir::Apnic).has_waiting_list);
        assert!(!AllocationPolicy::for_rir(Rir::Afrinic).has_waiting_list);
    }
}
