//! The application behind the sockets: route dispatch and shared
//! state (WHOIS database, RDAP service, pre-serialized transfer
//! feeds, memoized experiment CSVs, metrics, rate limiter).
//!
//! Routes:
//!
//! | Route | Backed by |
//! |---|---|
//! | `GET /rdap/ip/{addr}` | [`rdap::server::RdapServer::query_ip`] |
//! | `GET /rdap/ip/{addr}/{len}` | [`rdap::server::RdapServer::query`] |
//! | `GET /feed/transfers/{rir}.json` | the registry transfer-stats export |
//! | `GET /experiments/{id}.csv` | the process-wide study cache |
//! | `GET /query?filter=…&format=…` | [`bgpsim::query`] over the study's MRT archive |
//! | `GET /healthz` | liveness |
//! | `GET /metrics` | [`crate::metrics::Metrics`] |
//!
//! Request targets are percent-decoded before dispatch; malformed
//! escapes answer 400 instead of silently routing the mangled path.

use crate::http::{Request, Response};
use crate::metrics::Metrics;
use crate::rate::{RateLimitConfig, RateLimiter};
use bgpsim::query::{self as bgpquery, QueryFile, QueryOptions};
use bgpsim::updates::{ArchiveV2Config, CollectorArchiveV2};
use drywells::{csv, experiments, StudyConfig};
use nettypes::prefix::Prefix;
use nettypes::range::IpRange;
use rdap::database::{DbBuildConfig, WhoisDb};
use rdap::server::{RdapError, RdapServer};
use rdap::whois::WhoisServer;
use registry::rir::Rir;
use registry::transfer::TransferLog;
use serde_json::ToJson;
use std::collections::{BTreeMap, HashMap};
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The experiment CSVs the `/experiments/{id}.csv` route can produce.
pub const EXPERIMENT_IDS: [&str; 7] = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "sensitivity",
];

/// Hard cap on rows a single `/query` request may return, applied on
/// top of any client-requested `limit`.
pub const MAX_QUERY_ROWS: usize = 10_000;

/// Worker-pool gauges the TCP layer keeps current so `/debug/pool`
/// can report them without reaching into [`crate::server`] internals.
/// All plain atomics: the server stores, the debug route loads.
#[derive(Default)]
pub struct PoolStats {
    /// Connections waiting in the bounded queue.
    pub queued: AtomicUsize,
    /// Connections currently held by workers.
    pub in_flight: AtomicUsize,
    /// Connections refused with 503 at the cap (monotonic).
    pub shed_total: AtomicU64,
    /// Worker threads in the pool (set once at startup).
    pub workers: AtomicUsize,
    /// The queued + in-flight cap (set once at startup).
    pub max_connections: AtomicUsize,
}

/// One row of the `/debug/requests` in-flight table.
struct InflightEntry {
    path: String,
    client: IpAddr,
    started: Instant,
}

/// Shared serving state. One instance is built at startup and shared
/// (via `Arc`) by every worker thread.
pub struct App {
    rdap: RdapServer,
    /// Transfer feeds, serialized **once** at construction — requests
    /// serve the cached bytes instead of re-encoding the log each time.
    feeds: BTreeMap<&'static str, Arc<String>>,
    /// Memoized experiment CSVs (computed on first request; the
    /// underlying BGP study additionally hits the process-wide
    /// `build_bgp_study_cached` memo).
    experiment_csvs: Mutex<HashMap<String, Arc<String>>>,
    /// Memoized MRT archive files for `/query` (generated from the
    /// study world on first request; `Bytes` clones are cheap).
    query_files: Mutex<Option<Arc<Vec<QueryFile>>>>,
    study: StudyConfig,
    limiter: Option<RateLimiter>,
    /// Counters and latency histogram, rendered by `/metrics`.
    pub metrics: Metrics,
    /// Worker-pool gauges kept current by the TCP layer.
    pub pool: PoolStats,
    /// Monotonic request-id source (first request gets id 1). The id
    /// goes out as `X-Request-Id` and into the flight recorder's
    /// access-log events.
    next_request_id: AtomicU64,
    /// Whether `/debug/*` introspection routes answer (off by
    /// default; `repro serve --debug` turns them on).
    debug_routes: bool,
    /// The in-flight request table behind `/debug/requests`. Only
    /// maintained when `debug_routes` is on, so the default hot path
    /// never takes this lock.
    inflight: Mutex<BTreeMap<u64, InflightEntry>>,
}

impl App {
    /// Build from explicit parts — used by tests and embedders that
    /// already have a database and a transfer log.
    pub fn from_parts(
        db: WhoisDb,
        log: &TransferLog,
        study: StudyConfig,
        rate_limit: Option<RateLimitConfig>,
    ) -> App {
        let feeds = Rir::ALL
            .iter()
            .map(|&rir| {
                let regional = TransferLog::from_records(
                    log.for_region(rir).cloned().collect(),
                );
                let text = serde_json::to_string_pretty(&regional.to_feed_json())
                    // lint:allow(L2): startup fail-fast — abort before serving begins
                    .expect("feed serializes");
                (rir.label(), Arc::new(text))
            })
            .collect();
        App {
            rdap: RdapServer::new(db),
            feeds,
            experiment_csvs: Mutex::new(HashMap::new()),
            query_files: Mutex::new(None),
            study,
            limiter: rate_limit.map(RateLimiter::new),
            metrics: Metrics::default(),
            pool: PoolStats::default(),
            next_request_id: AtomicU64::new(1),
            debug_routes: false,
            inflight: Mutex::new(BTreeMap::new()),
        }
    }

    /// Enable (or disable) the `/debug/*` introspection routes.
    pub fn with_debug_routes(mut self, on: bool) -> App {
        self.debug_routes = on;
        self
    }

    /// Whether `/debug/*` routes are enabled.
    pub fn debug_routes_enabled(&self) -> bool {
        self.debug_routes
    }

    /// Allocate the next request id (1, 2, 3, … per App).
    pub fn next_request_id(&self) -> u64 {
        self.next_request_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Register a request in the `/debug/requests` table. No-op
    /// unless debug routes are on (keeps the lock off the hot path).
    pub fn begin_request(&self, id: u64, path: &str, client: IpAddr) {
        if !self.debug_routes {
            return;
        }
        self.inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(
                id,
                InflightEntry {
                    path: path.to_string(),
                    client,
                    started: Instant::now(),
                },
            );
    }

    /// Remove a request from the `/debug/requests` table.
    pub fn end_request(&self, id: u64) {
        if !self.debug_routes {
            return;
        }
        self.inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&id);
    }

    /// Build the full serving state from a study config: generate the
    /// ground-truth world (through the process-wide study cache), turn
    /// it into a WHOIS database, and simulate the registry history for
    /// the transfer feeds.
    pub fn from_study(study: &StudyConfig, rate_limit: Option<RateLimitConfig>) -> App {
        let bgp = experiments::build_bgp_study_cached(study);
        let db = WhoisDb::build_from_world(
            &bgp.world,
            bgp.world.span.end,
            &DbBuildConfig::default(),
        );
        let history = registry::simulate::simulate(&study.registry);
        App::from_parts(db, &history.log.published(), study.clone(), rate_limit)
    }

    /// The WHOIS database the RDAP service wraps (the port-43
    /// responder queries it directly).
    pub fn whois_db(&self) -> &WhoisDb {
        self.rdap.db()
    }

    /// Answer one port-43 WHOIS query line.
    pub fn handle_whois_line(&self, line: &str) -> String {
        self.metrics.whois_queries.inc();
        obs::event!(obs::Level::Debug, "whois_query");
        WhoisServer::new(self.whois_db()).handle(line)
    }

    /// Dispatch one HTTP request. Never panics; unknown routes are
    /// 404, malformed targets 400, non-GET methods 405.
    pub fn handle(&self, req: &Request, client: IpAddr) -> Response {
        self.handle_labeled(req, client).0
    }

    /// Dispatch one HTTP request and also report which route label it
    /// matched, for the per-route labeled counters and histograms the
    /// TCP layer records.
    pub fn handle_labeled(&self, req: &Request, client: IpAddr) -> (Response, &'static str) {
        if req.method != "GET" {
            return (Response::error(405, "only GET is supported"), "other");
        }
        // Percent-decode before routing so `/rdap/ip/10%2E0%2E1%2E7`
        // works and a malformed escape is a clean 400, never a
        // mis-routed 404.
        let path = match req.decoded_path() {
            Ok(p) => p,
            Err(detail) => return (Response::error(400, &detail), "other"),
        };
        let path = path.as_str();
        obs::event!(obs::Level::Debug, "http_request", path = path);
        if path == "/query" {
            self.metrics.route_query.inc();
            return (self.handle_query(req), "query");
        }
        if path == "/healthz" {
            self.metrics.route_probe.inc();
            return (Response::ok("text/plain", "ok\n"), "probe");
        }
        if path == "/metrics" {
            self.metrics.route_probe.inc();
            return (Response::ok("text/plain", self.metrics.render()), "probe");
        }
        if let Some(rest) = path.strip_prefix("/rdap/ip/") {
            self.metrics.route_rdap.inc();
            return (self.handle_rdap(rest, client), "rdap");
        }
        if let Some(rest) = path.strip_prefix("/feed/transfers/") {
            self.metrics.route_feed.inc();
            return (self.handle_feed(rest), "feed");
        }
        if let Some(rest) = path.strip_prefix("/experiments/") {
            self.metrics.route_experiments.inc();
            return (self.handle_experiment(rest), "experiments");
        }
        if let Some(rest) = path.strip_prefix("/debug/") {
            return (self.handle_debug(rest), "debug");
        }
        (Response::error(404, "no such route"), "other")
    }

    /// `GET /debug/{flight,requests,pool}` — introspection, answered
    /// only when the server started with debug routes enabled.
    fn handle_debug(&self, rest: &str) -> Response {
        if !self.debug_routes {
            return Response::error(404, "debug routes are disabled");
        }
        match rest {
            "flight" => Response::ok(
                "application/x-ndjson",
                obs::flight::global().snapshot_jsonl(),
            ),
            "requests" => {
                let table = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
                let mut out = String::from("id path client age_us\n");
                for (id, entry) in table.iter() {
                    let age_us = entry.started.elapsed().as_micros();
                    out.push_str(&format!(
                        "{id:016x} {} {} {age_us}\n",
                        entry.path, entry.client
                    ));
                }
                Response::ok("text/plain", out)
            }
            "pool" => {
                let mut out = String::new();
                for (name, value) in [
                    ("pool_workers", self.pool.workers.load(Ordering::SeqCst) as u64),
                    (
                        "pool_max_connections",
                        self.pool.max_connections.load(Ordering::SeqCst) as u64,
                    ),
                    ("pool_queued", self.pool.queued.load(Ordering::SeqCst) as u64),
                    (
                        "pool_in_flight",
                        self.pool.in_flight.load(Ordering::SeqCst) as u64,
                    ),
                    ("pool_shed_total", self.pool.shed_total.load(Ordering::SeqCst)),
                    ("pool_requests_total", self.metrics.requests.get()),
                ] {
                    out.push_str(&format!("{name} {value}\n"));
                }
                Response::ok("text/plain", out)
            }
            _ => Response::error(404, "debug routes: flight, requests, pool"),
        }
    }

    /// `GET /query?filter=F&format=csv|jsonl&lossy=1&limit=N` — run a
    /// [`bgpsim::query`] scan over the study's MRT archive and stream
    /// the rows back (chunked for HTTP/1.1 peers). Row count is capped
    /// at [`MAX_QUERY_ROWS`] regardless of the requested limit. Bad
    /// filter syntax, unknown parameters and malformed escapes all
    /// answer 400.
    fn handle_query(&self, req: &Request) -> Response {
        let params = match req.query_params() {
            Ok(p) => p,
            Err(detail) => return Response::error(400, &detail),
        };
        let mut opts = QueryOptions::default();
        for (key, value) in &params {
            match key.as_str() {
                "filter" => match bgpquery::Filter::parse(value) {
                    Ok(f) => opts.filter = f,
                    Err(e) => return Response::error(400, &e.to_string()),
                },
                "format" => match value.parse() {
                    Ok(f) => opts.format = f,
                    Err(e) => {
                        let e: bgpquery::FilterError = e;
                        return Response::error(400, &e.to_string());
                    }
                },
                "lossy" => match value.as_str() {
                    "" | "1" | "true" => opts.lossy = true,
                    "0" | "false" => opts.lossy = false,
                    other => {
                        return Response::error(400, &format!("bad lossy value {other:?}"))
                    }
                },
                "limit" => match value.parse::<usize>() {
                    Ok(n) => opts.limit = Some(n),
                    Err(_) => {
                        return Response::error(400, &format!("bad limit value {value:?}"))
                    }
                },
                other => {
                    return Response::error(400, &format!("unknown query parameter {other:?}"))
                }
            }
        }
        // The server, not the client, owns the worst-case row budget.
        opts.limit = Some(opts.limit.map_or(MAX_QUERY_ROWS, |n| n.min(MAX_QUERY_ROWS)));
        let files = match self.query_archive() {
            Ok(f) => f,
            Err(detail) => return Response::error(500, &detail),
        };
        match bgpquery::run_query(&files, &opts) {
            Ok(out) => Response::ok(opts.format.content_type(), out.body).with_chunked(),
            Err(e) => Response::error(500, &e.to_string()),
        }
    }

    /// The memoized archive behind `/query`. Same memoize-outside-lock
    /// shape as the experiment CSVs: a multi-second first build never
    /// holds the lock, concurrent first requests race benignly and the
    /// first insert wins.
    fn query_archive(&self) -> Result<Arc<Vec<QueryFile>>, String> {
        if let Some(hit) = self
            .query_files
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
        {
            return Ok(hit);
        }
        let bgp = experiments::build_bgp_study_cached(&self.study);
        let archive = CollectorArchiveV2::generate(
            &bgp.world,
            bgp.visibility_model(),
            bgp.world.span,
            &ArchiveV2Config::default(),
        )
        .map_err(|e| format!("archive generation failed: {e}"))?;
        let files = Arc::new(bgpquery::files_from_archive_v2(&archive));
        let mut memo = self.query_files.lock().unwrap_or_else(|p| p.into_inner());
        Ok(Arc::clone(memo.get_or_insert_with(|| Arc::clone(&files))))
    }

    fn handle_rdap(&self, rest: &str, client: IpAddr) -> Response {
        if let Some(limiter) = &self.limiter {
            if let Err(retry_after) = limiter.check(client, Instant::now()) {
                return Response::error(429, "query budget exhausted")
                    .with_header("Retry-After", retry_after.to_string());
            }
        }
        let result = match rest.split('/').collect::<Vec<_>>()[..] {
            [addr] if !addr.is_empty() => match nettypes::parse_ipv4(addr) {
                Ok(a) => self.rdap.query_ip(a),
                Err(_) => return Response::error(400, "malformed IPv4 address"),
            },
            [addr, len] => {
                let prefix: Result<Prefix, _> = format!("{addr}/{len}").parse();
                match prefix {
                    Ok(p) => self.rdap.query(IpRange::from_prefix(p)),
                    Err(_) => return Response::error(400, "malformed CIDR prefix"),
                }
            }
            _ => return Response::error(400, "expected /rdap/ip/{addr}[/{len}]"),
        };
        match result {
            Ok(resp) => match serde_json::to_string_pretty(&resp.to_json()) {
                Ok(body) => Response::ok("application/rdap+json", body),
                Err(_) => Response::error(500, "response serialization failed"),
            },
            Err(RdapError::NotFound) => Response::error(404, "no matching ip network"),
            Err(RdapError::RateLimited) => {
                Response::error(429, "service window budget exhausted")
                    .with_header("Retry-After", "1".to_string())
            }
        }
    }

    fn handle_feed(&self, rest: &str) -> Response {
        let Some(rir) = rest.strip_suffix(".json") else {
            return Response::error(404, "feeds are served as {rir}.json");
        };
        match self.feeds.get(rir) {
            Some(feed) => Response::ok("application/json", feed.as_bytes().to_vec()),
            None => Response::error(404, "unknown RIR label"),
        }
    }

    fn handle_experiment(&self, rest: &str) -> Response {
        let Some(id) = rest.strip_suffix(".csv") else {
            return Response::error(404, "experiments are served as {id}.csv");
        };
        // Serve from the memo when warm; compute outside the lock
        // otherwise so a multi-second build never blocks other routes.
        // A poisoned memo (a panicking route) only loses cached CSVs,
        // so recover the lock instead of propagating the panic.
        if let Some(hit) = self
            .experiment_csvs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(id)
        {
            return Response::ok("text/csv", hit.as_bytes().to_vec());
        }
        let Some(text) = self.compute_experiment_csv(id) else {
            return Response::error(404, "unknown experiment id");
        };
        let text = Arc::new(text);
        self.experiment_csvs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry(id.to_string())
            .or_insert_with(|| Arc::clone(&text));
        Response::ok("text/csv", text.as_bytes().to_vec())
    }

    /// `None` for ids outside [`EXPERIMENT_IDS`] — the route answers 404.
    fn compute_experiment_csv(&self, id: &str) -> Option<String> {
        let c = &self.study;
        Some(match id {
            "fig1" => csv::fig1_csv(&experiments::fig1::run(c)),
            "fig2" => csv::fig2_csv(&experiments::fig2::run(c)),
            "fig3" => csv::fig3_csv(&experiments::fig3::run(c)),
            "fig4" => csv::fig4_csv(&experiments::fig4::run()),
            "fig5" => csv::fig5_csv(&experiments::fig5::run(c)),
            "fig6" => csv::fig6_csv(&experiments::fig6::run(c)),
            "sensitivity" => csv::sensitivity_csv(&experiments::sensitivity::run(c)),
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::read_request;
    use nettypes::date::date;
    use rdap::inetnum::{Inetnum, InetnumStatus};
    use registry::org::OrgId;
    use registry::transfer::{Transfer, TransferKind};
    use std::io::BufReader;

    fn test_db() -> WhoisDb {
        let mut db = WhoisDb::new();
        let mk = |r: &str, status, org: &str, name: &str| Inetnum {
            range: r.parse().unwrap(),
            netname: name.into(),
            status,
            org: org.into(),
            admin_c: format!("AC-{org}"),
            created: date("2018-01-01"),
        };
        db.insert(mk("10.0.0.0 - 10.0.255.255", InetnumStatus::AllocatedPa, "LIR1", "ALLOC"));
        db.insert(mk("10.0.1.0 - 10.0.1.255", InetnumStatus::AssignedPa, "CUST1", "LEASE"));
        db
    }

    fn test_log() -> TransferLog {
        let mut log = TransferLog::new();
        log.push(Transfer {
            date: date("2020-01-01"),
            prefix: "1.0.0.0/24".parse().unwrap(),
            from_org: OrgId(1),
            to_org: OrgId(2),
            source_rir: Rir::Arin,
            dest_rir: Rir::RipeNcc,
            kind: Some(TransferKind::Market),
        });
        log
    }

    pub(crate) fn test_app(rate_limit: Option<RateLimitConfig>) -> App {
        App::from_parts(test_db(), &test_log(), StudyConfig::quick(), rate_limit)
    }

    fn get(app: &App, path: &str) -> Response {
        let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
        let req = read_request(&mut BufReader::new(raw.as_bytes()))
            .unwrap()
            .unwrap();
        app.handle(&req, IpAddr::V4(std::net::Ipv4Addr::LOCALHOST))
    }

    #[test]
    fn healthz_and_metrics() {
        let app = test_app(None);
        assert_eq!(get(&app, "/healthz").status, 200);
        let m = get(&app, "/metrics");
        assert_eq!(m.status, 200);
        assert!(String::from_utf8(m.body).unwrap().contains("serve_requests_total"));
    }

    #[test]
    fn rdap_address_and_prefix_lookups() {
        let app = test_app(None);
        let r = get(&app, "/rdap/ip/10.0.1.77");
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type, "application/rdap+json");
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"name\": \"LEASE\""), "{body}");
        assert!(body.contains("parentHandle"), "{body}");

        let r = get(&app, "/rdap/ip/10.0.1.0/24");
        assert_eq!(r.status, 200);

        assert_eq!(get(&app, "/rdap/ip/192.0.2.1").status, 404);
        assert_eq!(get(&app, "/rdap/ip/not-an-ip").status, 400);
        assert_eq!(get(&app, "/rdap/ip/10.0.1.0/33").status, 400);
        assert_eq!(get(&app, "/rdap/ip/10.0.1.0/24/extra").status, 400);
    }

    #[test]
    fn rdap_rate_limit_answers_429_with_retry_after() {
        let app = test_app(Some(RateLimitConfig {
            burst: 2,
            per_second: 0.01,
        }));
        assert_eq!(get(&app, "/rdap/ip/10.0.1.1").status, 200);
        assert_eq!(get(&app, "/rdap/ip/10.0.1.2").status, 200);
        let limited = get(&app, "/rdap/ip/10.0.1.3");
        assert_eq!(limited.status, 429);
        let retry: u64 = limited
            .extra_headers
            .iter()
            .find(|(n, _)| *n == "Retry-After")
            .map(|(_, v)| v.parse().unwrap())
            .expect("Retry-After present");
        assert!(retry >= 1);
        // Non-RDAP routes are not budgeted.
        assert_eq!(get(&app, "/healthz").status, 200);
    }

    #[test]
    fn feed_routes_serve_cached_bytes() {
        let app = test_app(None);
        let r = get(&app, "/feed/transfers/ripencc.json");
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"transfers\""), "{body}");
        assert!(body.contains("1.0.0.0/24"));
        // The same Arc-cached bytes every time.
        let again = get(&app, "/feed/transfers/ripencc.json");
        assert_eq!(again.body, body.as_bytes());
        // ARIN saw no transfers land: an empty but valid feed.
        let empty = get(&app, "/feed/transfers/arin.json");
        assert_eq!(empty.status, 200);
        let back = registry::transfer::TransferLog::from_feed_json(
            &serde_json::parse(&String::from_utf8(empty.body).unwrap()).unwrap(),
        )
        .unwrap();
        assert!(back.is_empty());

        assert_eq!(get(&app, "/feed/transfers/ripencc").status, 404);
        assert_eq!(get(&app, "/feed/transfers/nosuchrir.json").status, 404);
    }

    #[test]
    fn query_route_streams_rows_and_respects_limit() {
        let app = test_app(None);
        let r = get(&app, "/query?limit=5");
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type, "text/csv");
        assert!(r.chunked, "query responses use chunked framing");
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.starts_with("day,kind,prefix,origin,peer,path\n"), "{body}");
        // Header plus at most 5 rows.
        assert!(body.lines().count() <= 6, "{body}");
        assert_eq!(app.metrics.route_query.get(), 1);

        let j = get(&app, "/query?format=jsonl&limit=1");
        assert_eq!(j.status, 200);
        assert_eq!(j.content_type, "application/x-ndjson");
        let body = String::from_utf8(j.body).unwrap();
        assert!(body.starts_with('{'), "{body}");

        // Percent-encoded filter syntax round-trips through the URL.
        let f = get(&app, "/query?filter=kind%3Dwithdraw&limit=3");
        assert_eq!(f.status, 200);
        let body = String::from_utf8(f.body).unwrap();
        for line in body.lines().skip(1) {
            assert!(line.contains(",withdraw,"), "{line}");
        }
    }

    #[test]
    fn query_route_rejects_bad_parameters_with_400() {
        let app = test_app(None);
        for path in [
            "/query?filter=bogus%3D1",     // unknown filter key
            "/query?filter=prefix%3Dnope", // unparseable prefix
            "/query?format=xml",
            "/query?limit=banana",
            "/query?lossy=maybe",
            "/query?unknown=1",
            "/query?filter=%zz", // malformed escape in a value
        ] {
            assert_eq!(get(&app, path).status, 400, "{path} should be 400");
        }
    }

    #[test]
    fn malformed_path_escapes_answer_400_not_404() {
        let app = test_app(None);
        assert_eq!(get(&app, "/rdap/ip/10%2").status, 400);
        // A well-formed escape in the path decodes before routing.
        assert_eq!(get(&app, "/health%7A").status, 200); // %7A = 'z'
    }

    #[test]
    fn debug_routes_answer_404_unless_enabled() {
        let app = test_app(None);
        assert_eq!(get(&app, "/debug/flight").status, 404);
        assert_eq!(get(&app, "/debug/requests").status, 404);
        assert_eq!(get(&app, "/debug/pool").status, 404);

        let app = test_app(None).with_debug_routes(true);
        let flight = get(&app, "/debug/flight");
        assert_eq!(flight.status, 200);
        assert_eq!(flight.content_type, "application/x-ndjson");

        let pool = get(&app, "/debug/pool");
        assert_eq!(pool.status, 200);
        let body = String::from_utf8(pool.body).unwrap();
        for name in [
            "pool_workers",
            "pool_max_connections",
            "pool_queued",
            "pool_in_flight",
            "pool_shed_total",
            "pool_requests_total",
        ] {
            assert!(body.lines().any(|l| l.starts_with(name)), "{name} in {body}");
        }

        assert_eq!(get(&app, "/debug/nope").status, 404);
    }

    #[test]
    fn debug_requests_lists_registered_inflight_entries() {
        let app = test_app(None).with_debug_routes(true);
        let client = IpAddr::V4(std::net::Ipv4Addr::LOCALHOST);
        app.begin_request(7, "/rdap/ip/10.0.1.1", client);
        let body = String::from_utf8(get(&app, "/debug/requests").body).unwrap();
        assert!(body.contains("0000000000000007 /rdap/ip/10.0.1.1 127.0.0.1"), "{body}");
        app.end_request(7);
        let body = String::from_utf8(get(&app, "/debug/requests").body).unwrap();
        assert!(!body.contains("0000000000000007"), "{body}");
    }

    #[test]
    fn request_ids_are_unique_and_start_at_one() {
        let app = test_app(None);
        assert_eq!(app.next_request_id(), 1);
        assert_eq!(app.next_request_id(), 2);
        assert_eq!(app.next_request_id(), 3);
    }

    #[test]
    fn handle_labeled_reports_route_labels() {
        let app = test_app(None);
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap().unwrap();
        let client = IpAddr::V4(std::net::Ipv4Addr::LOCALHOST);
        assert_eq!(app.handle_labeled(&req, client).1, "probe");
        let raw = b"GET /nope HTTP/1.1\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap().unwrap();
        assert_eq!(app.handle_labeled(&req, client).1, "other");
    }

    #[test]
    fn unknown_routes_and_methods() {
        let app = test_app(None);
        assert_eq!(get(&app, "/nope").status, 404);
        assert_eq!(get(&app, "/experiments/fig99.csv").status, 404);
        assert_eq!(get(&app, "/experiments/fig6.txt").status, 404);
        let raw = b"DELETE /healthz HTTP/1.1\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap().unwrap();
        let resp = app.handle(&req, IpAddr::V4(std::net::Ipv4Addr::LOCALHOST));
        assert_eq!(resp.status, 405);
    }
}
