//! The load generator: N concurrent clients, a fixed request mix, a
//! latency histogram, and a reproducible seed — serving throughput and
//! tail latency as a measurable artifact, Criterion-style.
//!
//! Protocol correctness is part of the measurement: every response
//! must be well-formed HTTP with an allowed status (2xx anywhere,
//! 404 on RDAP lookups whose random target legitimately misses, 429
//! when rate-limited, 503 when shed). Anything else — a 400, a 500, a
//! malformed response — is a protocol error and the run fails. The
//! run also snapshots `/metrics` before and after and fails if any
//! `*_total` counter moved backwards.

use crate::client::Client;
use crate::metrics::Histogram;
use rand::prelude::*;
use rand_pcg::Pcg64Mcg;
use std::collections::{BTreeMap, BTreeSet};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Load-generator parameters.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests issued per client.
    pub requests_per_client: usize,
    /// RNG seed; equal seeds issue the identical request sequence.
    pub seed: u64,
    /// Per-request socket timeout.
    pub timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            clients: 4,
            requests_per_client: 100,
            seed: 2020,
            timeout: Duration::from_secs(10),
        }
    }
}

/// What a run measured.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Requests that received a well-formed, allowed response.
    pub completed: u64,
    /// Responses per status code.
    pub status_counts: BTreeMap<u16, u64>,
    /// Protocol errors (first few, with detail).
    pub errors: Vec<String>,
    /// Wall-clock of the request phase.
    pub elapsed: Duration,
    /// Completed requests per second.
    pub requests_per_sec: f64,
    /// Median latency (µs, bucket upper bound).
    pub p50_us: u64,
    /// 99th-percentile latency (µs, bucket upper bound).
    pub p99_us: u64,
    /// Per-route latency rows, from the server's labeled
    /// `serve_route_latency_*{route="…"}` histograms (after-probe).
    pub route_latency: Vec<RouteLatency>,
}

/// One per-route row of the loadgen summary table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteLatency {
    /// The route label (`rdap`, `feed`, `probe`, …).
    pub route: String,
    /// Requests the server timed on this route.
    pub count: u64,
    /// Median service time (µs, bucket upper bound).
    pub p50_us: u64,
    /// 99th-percentile service time (µs, bucket upper bound).
    pub p99_us: u64,
}

impl LoadgenReport {
    /// Whether the run saw no protocol errors.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Human-readable summary (what `repro loadgen` prints).
    pub fn render(&self) -> String {
        let mut out = format!(
            "loadgen: {} requests in {:.2?} ({:.0} req/s), p50 {} µs, p99 {} µs\n",
            self.completed, self.elapsed, self.requests_per_sec, self.p50_us, self.p99_us
        );
        for (status, n) in &self.status_counts {
            out.push_str(&format!("  status {status}: {n}\n"));
        }
        let active: Vec<_> = self.route_latency.iter().filter(|r| r.count > 0).collect();
        if !active.is_empty() {
            out.push_str("  route           count     p50µs     p99µs\n");
            for r in active {
                out.push_str(&format!(
                    "  {:<12} {:>9} {:>9} {:>9}\n",
                    r.route, r.count, r.p50_us, r.p99_us
                ));
            }
        }
        if !self.errors.is_empty() {
            out.push_str(&format!("  PROTOCOL ERRORS: {}\n", self.errors.len()));
            for e in &self.errors {
                out.push_str(&format!("    {e}\n"));
            }
        }
        out
    }
}

/// The deterministic request mix: mostly RDAP lookups (the paper's
/// workload), plus feed, experiment-CSV and health/metrics traffic.
fn pick_path(rng: &mut Pcg64Mcg) -> String {
    match rng.gen_range(0..100u32) {
        // Random addresses inside 10/8 — where the synthetic worlds
        // allocate — so a realistic share of lookups hit.
        0..=49 => format!(
            "/rdap/ip/10.{}.{}.{}",
            rng.gen_range(0..32u32),
            rng.gen_range(0..256u32),
            rng.gen_range(0..256u32)
        ),
        50..=64 => format!(
            "/rdap/ip/10.{}.{}.0/24",
            rng.gen_range(0..32u32),
            rng.gen_range(0..256u32)
        ),
        65..=79 => {
            let rirs = ["afrinic", "apnic", "arin", "lacnic", "ripencc"];
            format!(
                "/feed/transfers/{}.json",
                rirs[rng.gen_range(0..rirs.len())]
            )
        }
        80..=89 => "/healthz".to_string(),
        _ => "/metrics".to_string(),
    }
}

/// Statuses that are protocol-correct for a given path.
fn allowed(path: &str, status: u16) -> bool {
    match status {
        200..=299 | 429 | 503 => true,
        // A random RDAP target may land between objects; the correct
        // answer to that is 404, not an error.
        404 => path.starts_with("/rdap/"),
        _ => false,
    }
}

/// Whether a metric name (label set stripped) is monotone: `_total`
/// counters, histogram `_count`/`_sum_us` accumulators, and `_max_us`
/// watermarks only ever grow. Quantiles (`_p50_us`/`_p99_us`) can
/// legitimately move either way and are excluded.
fn is_monotone(name: &str) -> bool {
    let base = name.split('{').next().unwrap_or(name);
    ["_total", "_count", "_sum_us", "_max_us"]
        .iter()
        .any(|s| base.ends_with(s))
}

/// Snapshot every monotone metric out of a `/metrics` body (labeled
/// lines included — label values never contain spaces).
fn parse_totals(text: &str) -> BTreeMap<String, u64> {
    text.lines()
        .filter_map(|l| {
            let (name, value) = l.split_once(' ')?;
            if !is_monotone(name) {
                return None;
            }
            Some((name.to_string(), value.trim().parse().ok()?))
        })
        .collect()
}

/// Extract the per-route latency table from a `/metrics` body: one
/// row per `route` label on the `serve_route_latency` histogram.
fn parse_route_latency(text: &str) -> Vec<RouteLatency> {
    let mut rows: BTreeMap<String, RouteLatency> = BTreeMap::new();
    for line in text.lines() {
        let Some((name, value)) = line.split_once(' ') else {
            continue;
        };
        let Ok(value) = value.trim().parse::<u64>() else {
            continue;
        };
        let Some((base, labels)) = name.split_once('{') else {
            continue;
        };
        let Some(route) = labels
            .strip_prefix("route=\"")
            .and_then(|r| r.strip_suffix("\"}"))
        else {
            continue;
        };
        let row = rows.entry(route.to_string()).or_insert_with(|| RouteLatency {
            route: route.to_string(),
            count: 0,
            p50_us: 0,
            p99_us: 0,
        });
        match base {
            "serve_route_latency_count" => row.count = value,
            "serve_route_latency_p50_us" => row.p50_us = value,
            "serve_route_latency_p99_us" => row.p99_us = value,
            _ => {}
        }
    }
    rows.into_values().collect()
}

/// Run the load generator against a live server. `Err` only for
/// setup failures (server unreachable); protocol errors during the
/// run land in the report.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let probe = |when: &str| {
        crate::client::get_once(config.addr, "/metrics", config.timeout)
            .map_err(|e| format!("cannot fetch /metrics {when} run: {e}"))
    };
    let before = parse_totals(&probe("before")?.text());

    let hist = Histogram::default();
    let completed = AtomicU64::new(0);
    let status_counts: Mutex<BTreeMap<u16, u64>> = Mutex::new(BTreeMap::new());
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let request_ids: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for client_idx in 0..config.clients {
            let hist = &hist;
            let completed = &completed;
            let status_counts = &status_counts;
            let errors = &errors;
            let request_ids = &request_ids;
            s.spawn(move || {
                let mut rng =
                    Pcg64Mcg::seed_from_u64(config.seed ^ (client_idx as u64).wrapping_mul(0x9E37));
                let mut client = Client::new(config.addr, config.timeout);
                for _ in 0..config.requests_per_client {
                    let path = pick_path(&mut rng);
                    let t = Instant::now();
                    match client.get(&path) {
                        Ok(resp) => {
                            hist.record(t.elapsed());
                            *status_counts
                                .lock()
                                .unwrap_or_else(|p| p.into_inner())
                                .entry(resp.status)
                                .or_insert(0) += 1;
                            // Every response (including shed 503s)
                            // must carry a never-repeated request id.
                            match resp.header("x-request-id") {
                                Some(id) => {
                                    let fresh = request_ids
                                        .lock()
                                        .unwrap_or_else(|p| p.into_inner())
                                        .insert(id.to_string());
                                    if !fresh {
                                        let mut errs = errors
                                            .lock()
                                            .unwrap_or_else(|p| p.into_inner());
                                        if errs.len() < 10 {
                                            errs.push(format!(
                                                "GET {path} → duplicate X-Request-Id {id}"
                                            ));
                                        }
                                    }
                                }
                                None => {
                                    let mut errs =
                                        errors.lock().unwrap_or_else(|p| p.into_inner());
                                    if errs.len() < 10 {
                                        errs.push(format!(
                                            "GET {path} → response without X-Request-Id"
                                        ));
                                    }
                                }
                            }
                            if allowed(&path, resp.status) {
                                completed.fetch_add(1, Ordering::Relaxed);
                            } else {
                                let mut errs =
                                    errors.lock().unwrap_or_else(|p| p.into_inner());
                                if errs.len() < 10 {
                                    errs.push(format!(
                                        "GET {path} → unexpected status {}",
                                        resp.status
                                    ));
                                }
                            }
                        }
                        Err(e) => {
                            let mut errs = errors.lock().unwrap_or_else(|p| p.into_inner());
                            if errs.len() < 10 {
                                errs.push(format!("GET {path} → {e}"));
                            }
                        }
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed();

    let after_text = probe("after")?.text();
    let after = parse_totals(&after_text);
    let route_latency = parse_route_latency(&after_text);
    let mut errors = errors.into_inner().unwrap_or_else(|p| p.into_inner());
    for (name, &was) in &before {
        match after.get(name) {
            Some(&now) if now >= was => {}
            Some(&now) => errors.push(format!(
                "metrics counter {name} went backwards: {was} → {now}"
            )),
            None => errors.push(format!("metrics counter {name} disappeared")),
        }
    }

    let completed = completed.into_inner();
    Ok(LoadgenReport {
        completed,
        status_counts: status_counts.into_inner().unwrap_or_else(|p| p.into_inner()),
        errors,
        elapsed,
        requests_per_sec: completed as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
        p50_us: hist.quantile_us(0.50),
        p99_us: hist.quantile_us(0.99),
        route_latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_mix_is_seed_deterministic() {
        let seq = |seed: u64| {
            let mut rng = Pcg64Mcg::seed_from_u64(seed);
            (0..50).map(|_| pick_path(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
        // The mix covers every route family.
        let paths = seq(1).join("\n");
        assert!(paths.contains("/rdap/ip/"));
        assert!(paths.contains("/feed/transfers/"));
        assert!(paths.contains("/healthz"));
        assert!(paths.contains("/metrics"));
    }

    #[test]
    fn allowed_statuses() {
        assert!(allowed("/healthz", 200));
        assert!(allowed("/rdap/ip/10.0.0.1", 404));
        assert!(!allowed("/healthz", 404));
        assert!(allowed("/rdap/ip/10.0.0.1", 429));
        assert!(allowed("/feed/transfers/arin.json", 503));
        assert!(!allowed("/rdap/ip/10.0.0.1", 400));
        assert!(!allowed("/metrics", 500));
    }

    #[test]
    fn metric_totals_parse() {
        let m = parse_totals(
            "serve_requests_total 10\nserve_active_connections 2\nserve_responses_200_total 9\nnot a metric\n",
        );
        assert_eq!(m.len(), 2);
        assert_eq!(m["serve_requests_total"], 10);
        assert!(!m.contains_key("serve_active_connections"));
    }

    #[test]
    fn monotone_suffixes_include_histogram_accumulators_and_labels() {
        let m = parse_totals(
            "serve_latency_count 5\nserve_latency_sum_us 900\nserve_latency_max_us 400\n\
             serve_latency_p50_us 100\nserve_latency_p99_us 400\n\
             serve_route_latency_count{route=\"rdap\"} 3\n\
             serve_route_latency_p99_us{route=\"rdap\"} 200\n",
        );
        assert_eq!(m["serve_latency_count"], 5);
        assert_eq!(m["serve_latency_sum_us"], 900);
        assert_eq!(m["serve_latency_max_us"], 400);
        assert_eq!(m["serve_route_latency_count{route=\"rdap\"}"], 3);
        // Quantiles can move down between probes: not monotone.
        assert!(!m.contains_key("serve_latency_p50_us"));
        assert!(!m.contains_key("serve_route_latency_p99_us{route=\"rdap\"}"));
    }

    #[test]
    fn route_latency_table_parses_labeled_histogram_lines() {
        let rows = parse_route_latency(
            "serve_route_latency_count{route=\"rdap\"} 7\n\
             serve_route_latency_p50_us{route=\"rdap\"} 100\n\
             serve_route_latency_p99_us{route=\"rdap\"} 500\n\
             serve_route_latency_count{route=\"probe\"} 2\n\
             serve_route_latency_p50_us{route=\"probe\"} 50\n\
             serve_route_latency_p99_us{route=\"probe\"} 50\n\
             serve_requests_total 9\n",
        );
        assert_eq!(rows.len(), 2);
        let rdap = rows.iter().find(|r| r.route == "rdap").unwrap();
        assert_eq!((rdap.count, rdap.p50_us, rdap.p99_us), (7, 100, 500));
    }
}
