//! A minimal-but-correct HTTP/1.1 codec on top of `std::io`.
//!
//! Supports exactly what the serving layer needs: request-line and
//! header parsing with hard size limits, `Content-Length` bodies,
//! keep-alive negotiation, and response serialization with a correct
//! `Content-Length` on every reply. Anything outside that subset
//! (chunked transfer encoding, continuation lines, HTTP/2 upgrades)
//! is rejected as `400 Bad Request` rather than mis-parsed.

use std::io::{self, BufRead, Read, Write};

/// Longest accepted request line or header line, in bytes.
pub const MAX_LINE_BYTES: u64 = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 100;
/// Largest accepted request body, in bytes.
pub const MAX_BODY_BYTES: u64 = 1024 * 1024;

/// Why reading a request failed.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes on the wire are not a well-formed HTTP/1.x request
    /// (or exceed a size limit). The peer should get a 400.
    BadRequest(String),
    /// The socket timed out mid-request (idle keep-alive connections
    /// end here); the connection is silently closed.
    Timeout,
    /// Any other transport error; the connection is closed.
    Io(io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
            _ => HttpError::Io(e),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::Timeout => write!(f, "timed out"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

/// A parsed HTTP/1.x request.
#[derive(Debug)]
pub struct Request {
    /// The request method, e.g. `GET`.
    pub method: String,
    /// The raw request target (path plus optional query string).
    pub target: String,
    /// `HTTP/1.0` or `HTTP/1.1`.
    pub version: String,
    /// Header `(name, value)` pairs; names are lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Decode `%XX` percent-escapes. `plus_is_space` additionally maps
/// `+` to a space (the form-urlencoded convention used in query
/// strings, but **not** in paths). A `%` not followed by two hex
/// digits is an error — routers answer it with a 400 rather than
/// passing the mangled text to a handler.
pub fn percent_decode(s: &str, plus_is_space: bool) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok());
                let Some(b) = hex else {
                    return Err(format!("malformed percent-escape in {s:?}"));
                };
                out.push(b);
                i += 3;
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("percent-escapes in {s:?} are not valid UTF-8"))
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The request path with any query string stripped (still
    /// percent-encoded; see [`Request::decoded_path`]).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or("")
    }

    /// The raw query string (the part after the first `?`), if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// The percent-decoded request path. `Err` means the target holds
    /// a malformed escape — answer with a 400.
    pub fn decoded_path(&self) -> Result<String, String> {
        percent_decode(self.path(), false)
    }

    /// The query string parsed as `key=value` pairs in order, both
    /// sides percent-decoded (`+` means space). A key without `=`
    /// gets an empty value. `Err` on malformed escapes.
    pub fn query_params(&self) -> Result<Vec<(String, String)>, String> {
        let Some(q) = self.query() else {
            return Ok(Vec::new());
        };
        let mut params = Vec::new();
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            params.push((percent_decode(k, true)?, percent_decode(v, true)?));
        }
        Ok(params)
    }

    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 defaults to close unless `Connection: keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        let conn = self
            .header("connection")
            .map(|v| v.to_ascii_lowercase())
            .unwrap_or_default();
        if self.version == "HTTP/1.0" {
            conn.contains("keep-alive")
        } else {
            !conn.contains("close")
        }
    }
}

/// Read one `\n`-terminated line with a length cap, returning it
/// without the trailing `\r\n`/`\n`. `Ok(None)` is clean EOF before
/// any byte of the line.
fn read_line_limited<R: BufRead>(r: &mut R) -> Result<Option<String>, HttpError> {
    let mut raw = Vec::new();
    let n = r.take(MAX_LINE_BYTES).read_until(b'\n', &mut raw)?;
    if n == 0 {
        return Ok(None);
    }
    if raw.last() != Some(&b'\n') {
        return Err(HttpError::BadRequest(format!(
            "line exceeds {MAX_LINE_BYTES} bytes or truncated"
        )));
    }
    raw.pop();
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw).map(Some).map_err(|_| {
        HttpError::BadRequest("request line or header is not valid UTF-8".into())
    })
}

/// Read one request off the connection. `Ok(None)` means the peer
/// closed cleanly at a request boundary (the normal end of a
/// keep-alive conversation).
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Option<Request>, HttpError> {
    let Some(start) = read_line_limited(r)? else {
        return Ok(None);
    };
    let mut parts = start.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => {
            (m.to_string(), t.to_string(), v.to_string())
        }
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {start:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!(
            "unsupported version {version:?}"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line_limited(r)?
            .ok_or_else(|| HttpError::BadRequest("EOF inside header block".into()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::BadRequest(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut req = Request {
        method,
        target,
        version,
        headers,
        body: Vec::new(),
    };
    if req.header("transfer-encoding").is_some() {
        return Err(HttpError::BadRequest(
            "transfer-encoding is not supported".into(),
        ));
    }
    if let Some(cl) = req.header("content-length") {
        let len: u64 = cl
            .parse()
            .map_err(|_| HttpError::BadRequest(format!("bad content-length {cl:?}")))?;
        if len > MAX_BODY_BYTES {
            return Err(HttpError::BadRequest(format!(
                "body of {len} bytes exceeds {MAX_BODY_BYTES}"
            )));
        }
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body).map_err(HttpError::from)?;
        req.body = body;
    }
    Ok(Some(req))
}

/// An HTTP response ready for serialization.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra headers, e.g. `Retry-After`.
    pub extra_headers: Vec<(&'static str, String)>,
    /// The response body.
    pub body: Vec<u8>,
    /// Prefer `Transfer-Encoding: chunked` framing (streamed bodies
    /// such as `/query`). The server honours this only for HTTP/1.1
    /// peers; HTTP/1.0 clients get the same bytes with a
    /// `Content-Length` instead (see [`Response::write_chunked_to`]).
    pub chunked: bool,
}

/// The canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

impl Response {
    /// A 200 with the given content type and body.
    pub fn ok(content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type,
            extra_headers: Vec::new(),
            body: body.into(),
            chunked: false,
        }
    }

    /// An error response with a one-line plain-text body.
    pub fn error(status: u16, detail: &str) -> Response {
        Response {
            status,
            content_type: "text/plain",
            extra_headers: Vec::new(),
            body: format!("{status} {}: {detail}\n", reason(status)).into_bytes(),
            chunked: false,
        }
    }

    /// Attach an extra header.
    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.extra_headers.push((name, value));
        self
    }

    /// Mark the body for chunked framing when the peer speaks HTTP/1.1.
    pub fn with_chunked(mut self) -> Response {
        self.chunked = true;
        self
    }

    /// Serialize onto the wire. `keep_alive` controls the
    /// `Connection` header the peer sees.
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        // One write for head + body: two segments would trip the
        // Nagle / delayed-ACK interaction and cost ~40 ms per
        // response on loopback.
        let mut wire = head.into_bytes();
        wire.extend_from_slice(&self.body);
        w.write_all(&wire)?;
        w.flush()
    }

    /// Serialize with `Transfer-Encoding: chunked` framing: the body
    /// goes out in [`CHUNK_BYTES`]-sized chunks, then the `0` chunk
    /// and the terminating blank line. Only valid for HTTP/1.1 peers —
    /// the caller (the server loop) falls back to [`Response::write_to`]
    /// for HTTP/1.0, which cannot parse chunked framing.
    pub fn write_chunked_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        // Frame into one buffer and write once, for the same
        // Nagle-avoidance reason as `write_to`.
        let mut wire = head.into_bytes();
        for chunk in self.body.chunks(CHUNK_BYTES) {
            wire.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
            wire.extend_from_slice(chunk);
            wire.extend_from_slice(b"\r\n");
        }
        wire.extend_from_slice(b"0\r\n\r\n");
        w.write_all(&wire)?;
        w.flush()
    }
}

/// Chunk payload size for [`Response::write_chunked_to`].
pub const CHUNK_BYTES: usize = 16 * 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_simple_get() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn query_string_is_stripped_from_path() {
        let req = parse(b"GET /metrics?x=1 HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.path(), "/metrics");
        assert_eq!(req.target, "/metrics?x=1");
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.wants_keep_alive());
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.wants_keep_alive());
        let req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn content_length_body_is_read() {
        let req = parse(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn eof_at_boundary_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for raw in [
            &b"NOT A VALID REQUEST\r\n\r\n"[..],
            b"GET /\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
            b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET no-leading-slash HTTP/1.1\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(HttpError::BadRequest(_))),
                "{:?} should be rejected",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn oversized_lines_and_bodies_are_rejected() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9000));
        assert!(matches!(
            parse(long.as_bytes()),
            Err(HttpError::BadRequest(_))
        ));
        let big = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 2 * 1024 * 1024);
        assert!(matches!(parse(big.as_bytes()), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn path_and_query_split_with_percent_decoding() {
        let req = parse(b"GET /query?filter=prefix%3D10.0.0.0%2F8+origin%3D64500&format=jsonl HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path(), "/query");
        assert_eq!(req.decoded_path().unwrap(), "/query");
        assert_eq!(
            req.query(),
            Some("filter=prefix%3D10.0.0.0%2F8+origin%3D64500&format=jsonl")
        );
        let params = req.query_params().unwrap();
        assert_eq!(
            params,
            vec![
                ("filter".to_string(), "prefix=10.0.0.0/8 origin=64500".to_string()),
                ("format".to_string(), "jsonl".to_string()),
            ]
        );

        // Escapes in the path decode too, but `+` stays literal there.
        let req = parse(b"GET /rdap/ip/10%2E0%2E1%2E7 HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.decoded_path().unwrap(), "/rdap/ip/10.0.1.7");
        let req = parse(b"GET /a+b HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.decoded_path().unwrap(), "/a+b");

        // No query string: empty params, not an error.
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.query(), None);
        assert!(req.query_params().unwrap().is_empty());

        // Value-less keys and empty pairs.
        let req = parse(b"GET /q?lossy&&x=1 HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(
            req.query_params().unwrap(),
            vec![("lossy".to_string(), String::new()), ("x".to_string(), "1".to_string())]
        );
    }

    #[test]
    fn malformed_percent_escapes_are_errors() {
        for target in ["/a%2", "/a%zz", "/q?x=%", "/q?x=%fg", "/q?%2=v"] {
            let raw = format!("GET {target} HTTP/1.1\r\n\r\n");
            let req = parse(raw.as_bytes()).unwrap().unwrap();
            let bad = req.decoded_path().is_err() || req.query_params().is_err();
            assert!(bad, "{target} should fail to decode");
        }
        // Escapes that decode to invalid UTF-8 are rejected, not mangled.
        let req = parse(b"GET /a%ff%fe HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert!(req.decoded_path().is_err());
    }

    #[test]
    fn chunked_response_frames_body_and_http10_fallback_keeps_content_length() {
        let body = "x".repeat(CHUNK_BYTES + 5);
        let resp = Response::ok("text/csv", body.clone()).with_chunked();
        assert!(resp.chunked);

        let mut buf = Vec::new();
        resp.write_chunked_to(&mut buf, true).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"), "{text}");
        assert!(!text.contains("Content-Length"), "{text}");
        // Two chunks: CHUNK_BYTES then 5 bytes, then the last-chunk marker.
        assert!(text.contains(&format!("{CHUNK_BYTES:x}\r\n")));
        assert!(text.contains("\r\n5\r\nxxxxx\r\n0\r\n\r\n"), "{text}");

        // The HTTP/1.0 downgrade path: same body, classic framing.
        let mut buf = Vec::new();
        resp.write_to(&mut buf, false).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains(&format!("Content-Length: {}\r\n", body.len())));
        assert!(!text.contains("Transfer-Encoding"));
        assert!(text.ends_with(&body));
    }

    #[test]
    fn response_serializes_with_content_length() {
        let mut buf = Vec::new();
        Response::ok("text/plain", "ok\n")
            .write_to(&mut buf, true)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));

        let mut buf = Vec::new();
        Response::error(429, "slow down")
            .with_header("Retry-After", "2".into())
            .write_to(&mut buf, false)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }
}
