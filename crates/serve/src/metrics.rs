//! Serving metrics: monotonic counters, an active-connection gauge,
//! and a fixed-bucket latency histogram for p50/p99 estimates.
//!
//! Everything is lock-free atomics so the hot path pays one
//! `fetch_add` per event. The `/metrics` endpoint renders the plain
//! `name value` text format; counter names end in `_total` so clients
//! (the load generator, the CI smoke gate) can check monotonicity
//! without a schema.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bucket bounds in microseconds; the last bucket is unbounded.
const BOUNDS_US: [u64; 16] = [
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    5_000_000,
    u64::MAX,
];

/// A fixed-bucket latency histogram (microsecond resolution).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BOUNDS_US.len()],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let idx = BOUNDS_US.iter().position(|&b| us <= b).unwrap_or(BOUNDS_US.len() - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The upper bound (µs) of the bucket containing quantile `q`
    /// (0 < q ≤ 1). Returns 0 with no observations.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return BOUNDS_US[i];
            }
        }
        BOUNDS_US[BOUNDS_US.len() - 1]
    }
}

/// All counters the serving layer maintains.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted (HTTP and WHOIS, including shed ones).
    pub accepted: AtomicU64,
    /// Connections currently queued or being handled (gauge).
    pub active: AtomicU64,
    /// HTTP requests answered (any status).
    pub requests: AtomicU64,
    /// 200 responses.
    pub ok_200: AtomicU64,
    /// 400 responses.
    pub bad_400: AtomicU64,
    /// 404 responses.
    pub missing_404: AtomicU64,
    /// 429 responses (rate-limited clients).
    pub limited_429: AtomicU64,
    /// 503 responses (connections shed at the cap).
    pub shed_503: AtomicU64,
    /// Port-43 WHOIS queries answered.
    pub whois_queries: AtomicU64,
    /// Per-request service time (parse end → response flushed).
    pub latency: Histogram,
}

impl Metrics {
    /// Count a response by status (also bumps `requests`).
    pub fn count_response(&self, status: u16) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let c = match status {
            200 => &self.ok_200,
            400 | 405 => &self.bad_400,
            404 => &self.missing_404,
            429 => &self.limited_429,
            503 => &self.shed_503,
            _ => return,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Render the `/metrics` plain-text exposition.
    pub fn render(&self) -> String {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        format!(
            "serve_accepted_total {}\n\
             serve_active_connections {}\n\
             serve_requests_total {}\n\
             serve_responses_200_total {}\n\
             serve_responses_400_total {}\n\
             serve_responses_404_total {}\n\
             serve_responses_429_total {}\n\
             serve_responses_503_total {}\n\
             serve_whois_queries_total {}\n\
             serve_latency_p50_us {}\n\
             serve_latency_p99_us {}\n",
            g(&self.accepted),
            g(&self.active),
            g(&self.requests),
            g(&self.ok_200),
            g(&self.bad_400),
            g(&self.missing_404),
            g(&self.limited_429),
            g(&self.shed_503),
            g(&self.whois_queries),
            self.latency.quantile_us(0.50),
            self.latency.quantile_us(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        // 99 fast observations, one slow outlier.
        for _ in 0..99 {
            h.record(Duration::from_micros(80));
        }
        h.record(Duration::from_millis(40));
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.50), 100); // bucket bound containing 80µs
        assert_eq!(h.quantile_us(0.99), 100);
        assert_eq!(h.quantile_us(1.0), 50_000); // the outlier's bucket
    }

    #[test]
    fn render_lists_monotonic_counters_with_total_suffix() {
        let m = Metrics::default();
        m.accepted.fetch_add(3, Ordering::Relaxed);
        m.count_response(200);
        m.count_response(429);
        m.count_response(405);
        let text = m.render();
        assert!(text.contains("serve_accepted_total 3\n"), "{text}");
        assert!(text.contains("serve_requests_total 3\n"));
        assert!(text.contains("serve_responses_200_total 1\n"));
        assert!(text.contains("serve_responses_400_total 1\n"));
        assert!(text.contains("serve_responses_429_total 1\n"));
        // Every line is `name value`.
        for line in text.lines() {
            let mut it = line.split_whitespace();
            assert!(it.next().is_some() && it.next().unwrap().parse::<u64>().is_ok());
            assert!(it.next().is_none());
        }
    }
}
