//! Serving metrics, now instruments on the shared [`obs::metrics`]
//! registry: monotonic counters, an active-connection gauge, and the
//! fixed-bucket latency histogram (which moved to `obs` and is
//! re-exported here for the load generator).
//!
//! Everything is lock-free atomics so the hot path pays one
//! `fetch_add` per event; the instrument `Arc`s are resolved once at
//! construction. The `/metrics` endpoint renders the plain
//! `name value` text format with the same counter names as before
//! (`serve_*_total`, `serve_active_connections`,
//! `serve_latency_p50_us`/`p99_us`) so the load generator's
//! monotonicity check and the CI smoke gate keep working, then appends
//! the process-global registry — pipeline counters like
//! `study_cache_hits_total` show up on the same endpoint.
//!
//! Each [`Metrics`] defaults to its **own** registry rather than the
//! global one so that several servers in one process (the integration
//! tests) keep independent exact counts; pass
//! [`obs::metrics::global()`] to [`Metrics::on`] to share.

use obs::metrics::{Counter, Gauge, Registry};
use std::sync::Arc;

pub use obs::metrics::Histogram;

/// The route labels the serving layer attaches to labeled metrics
/// (and reports in loadgen's per-route table). `other` covers 404s
/// and parse failures that never matched a route.
pub const ROUTE_LABELS: [&str; 8] = [
    "rdap",
    "feed",
    "experiments",
    "query",
    "probe",
    "debug",
    "whois",
    "other",
];

/// A static status label, so labeled-counter bumps never allocate for
/// the statuses this server actually emits.
fn status_label(status: u16) -> &'static str {
    match status {
        200 => "200",
        400 => "400",
        404 => "404",
        405 => "405",
        429 => "429",
        500 => "500",
        503 => "503",
        _ => "other",
    }
}

/// All instruments the serving layer maintains.
pub struct Metrics {
    registry: Arc<Registry>,
    /// Connections accepted (HTTP and WHOIS, including shed ones).
    pub accepted: Arc<Counter>,
    /// Connections currently queued or being handled (gauge).
    pub active: Arc<Gauge>,
    /// HTTP requests answered (any status).
    pub requests: Arc<Counter>,
    /// 200 responses.
    pub ok_200: Arc<Counter>,
    /// 400 responses.
    pub bad_400: Arc<Counter>,
    /// 404 responses.
    pub missing_404: Arc<Counter>,
    /// 429 responses (rate-limited clients).
    pub limited_429: Arc<Counter>,
    /// 503 responses (connections shed at the cap).
    pub shed_503: Arc<Counter>,
    /// Port-43 WHOIS queries answered.
    pub whois_queries: Arc<Counter>,
    /// RDAP route hits (`/rdap/ip/…`).
    pub route_rdap: Arc<Counter>,
    /// Transfer-feed route hits (`/feed/transfers/…`).
    pub route_feed: Arc<Counter>,
    /// Experiment-CSV route hits (`/experiments/…`).
    pub route_experiments: Arc<Counter>,
    /// BGP element query route hits (`/query`).
    pub route_query: Arc<Counter>,
    /// Health/metrics probe hits (`/healthz`, `/metrics`).
    pub route_probe: Arc<Counter>,
    /// Per-request service time (parse end → response flushed).
    pub latency: Arc<Histogram>,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::on(Arc::new(Registry::new()))
    }
}

impl Metrics {
    /// Build the serving instruments on `registry`. Every instrument
    /// is created eagerly so `/metrics` lists the full set (at zero)
    /// before any traffic arrives.
    pub fn on(registry: Arc<Registry>) -> Metrics {
        // Labeled latency histograms are eager too, so `/metrics`
        // (and loadgen's before-probe) sees every route at zero.
        for route in ROUTE_LABELS {
            registry.histogram_with("serve_route_latency", &[("route", route)]);
        }
        Metrics {
            accepted: registry.counter("serve_accepted_total"),
            active: registry.gauge("serve_active_connections"),
            requests: registry.counter("serve_requests_total"),
            ok_200: registry.counter("serve_responses_200_total"),
            bad_400: registry.counter("serve_responses_400_total"),
            missing_404: registry.counter("serve_responses_404_total"),
            limited_429: registry.counter("serve_responses_429_total"),
            shed_503: registry.counter("serve_responses_503_total"),
            whois_queries: registry.counter("serve_whois_queries_total"),
            route_rdap: registry.counter("serve_route_rdap_total"),
            route_feed: registry.counter("serve_route_feed_total"),
            route_experiments: registry.counter("serve_route_experiments_total"),
            route_query: registry.counter("serve_route_query_total"),
            route_probe: registry.counter("serve_route_probe_total"),
            latency: registry.histogram("serve_latency"),
            registry,
        }
    }

    /// Count a response by status (also bumps `requests`).
    pub fn count_response(&self, status: u16) {
        self.requests.inc();
        let c = match status {
            200 => &self.ok_200,
            400 | 405 => &self.bad_400,
            404 => &self.missing_404,
            429 => &self.limited_429,
            503 => &self.shed_503,
            _ => return,
        };
        c.inc();
    }

    /// Count a response by route and status: the flat per-status
    /// counters (unchanged names) plus one labeled
    /// `serve_requests_by_route_total{route=…,status=…}` bump.
    pub fn count_route_response(&self, route: &'static str, status: u16) {
        self.count_response(status);
        self.registry
            .counter_with(
                "serve_requests_by_route_total",
                &[("route", route), ("status", status_label(status))],
            )
            .inc();
    }

    /// The labeled latency histogram for `route`
    /// (`serve_route_latency_*{route="…"}` lines on `/metrics`).
    pub fn route_latency(&self, route: &'static str) -> Arc<Histogram> {
        self.registry
            .histogram_with("serve_route_latency", &[("route", route)])
    }

    /// Render the `/metrics` plain-text exposition: this server's
    /// registry, then (when distinct) the process-global registry so
    /// pipeline metrics share the endpoint.
    pub fn render(&self) -> String {
        let mut out = self.registry.render();
        let global = obs::metrics::global();
        if !Arc::ptr_eq(&self.registry, &global) {
            out.push_str(&global.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        // 99 fast observations, one slow outlier.
        for _ in 0..99 {
            h.record(Duration::from_micros(80));
        }
        h.record(Duration::from_millis(40));
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.50), 100); // bucket bound containing 80µs
        assert_eq!(h.quantile_us(0.99), 100);
        assert_eq!(h.quantile_us(1.0), 50_000); // the outlier's bucket
    }

    #[test]
    fn render_lists_monotonic_counters_with_total_suffix() {
        let m = Metrics::default();
        m.accepted.add(3);
        m.count_response(200);
        m.count_response(429);
        m.count_response(405);
        let text = m.render();
        assert!(text.contains("serve_accepted_total 3\n"), "{text}");
        assert!(text.contains("serve_requests_total 3\n"));
        assert!(text.contains("serve_responses_200_total 1\n"));
        assert!(text.contains("serve_responses_400_total 1\n"));
        assert!(text.contains("serve_responses_429_total 1\n"));
        // The latency summary keeps its pre-registry names.
        assert!(text.contains("serve_latency_p50_us 0\n"), "{text}");
        assert!(text.contains("serve_latency_p99_us 0\n"), "{text}");
        // Every line is `name value`.
        for line in text.lines() {
            let mut it = line.split_whitespace();
            assert!(it.next().is_some() && it.next().unwrap().parse::<i64>().is_ok());
            assert!(it.next().is_none());
        }
    }

    #[test]
    fn route_response_bumps_flat_and_labeled_counters() {
        let m = Metrics::default();
        m.count_route_response("rdap", 200);
        m.count_route_response("rdap", 200);
        m.count_route_response("other", 404);
        m.route_latency("rdap").record(Duration::from_micros(80));
        let text = m.render();
        assert!(text.contains("serve_requests_total 3\n"), "{text}");
        assert!(
            text.contains("serve_requests_by_route_total{route=\"rdap\",status=\"200\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("serve_requests_by_route_total{route=\"other\",status=\"404\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("serve_route_latency_count{route=\"rdap\"} 1\n"), "{text}");
        assert!(text.contains("serve_route_latency_sum_us{route=\"rdap\"} 80\n"), "{text}");
        // Every route's latency histogram exists eagerly, even untouched.
        assert!(text.contains("serve_route_latency_count{route=\"whois\"} 0\n"), "{text}");
    }

    #[test]
    fn default_metrics_are_isolated_per_instance() {
        let a = Metrics::default();
        let b = Metrics::default();
        a.count_response(200);
        assert_eq!(a.ok_200.get(), 1);
        assert_eq!(b.ok_200.get(), 0, "per-App registries must not share counts");
    }
}
