//! # drywells-serve
//!
//! The TCP serving layer of the reproduction: the in-process services
//! the paper's methodology depends on (RFC 7483 RDAP with rate
//! limits, RIPE-style port-43 WHOIS with hierarchy flags, the RIR
//! transfer-statistics feeds) exposed over real sockets with real
//! concurrency and real backpressure — `std::net` only, no async
//! runtime.
//!
//! * [`http`] — a minimal-but-correct HTTP/1.1 codec (request-line +
//!   header parsing with size limits, `Content-Length` bodies,
//!   keep-alive, 400/404/405/429/503).
//! * [`app`] — route dispatch over shared state: `/rdap/ip/…`,
//!   `/feed/transfers/{rir}.json`, `/experiments/{id}.csv`,
//!   `/healthz`, `/metrics`.
//! * [`server`] — accept loops + a bounded worker pool in the spirit
//!   of `bgpsim::par`: a connection cap that sheds load with 503
//!   instead of queueing unboundedly, per-connection timeouts, and
//!   graceful shutdown (stop accepting, drain, join).
//! * [`rate`] — per-client token buckets behind the RDAP routes
//!   (429 + `Retry-After`, the operational constraint §4 of the paper
//!   works around).
//! * [`metrics`] — lock-free counters and a fixed-bucket latency
//!   histogram rendered by `/metrics`.
//! * [`client`] / [`loadgen`] — a blocking HTTP client and a seeded
//!   multi-client load generator, so throughput and tail latency are
//!   tracked artifacts (`repro serve` / `repro loadgen`).
//!
//! ```no_run
//! use serve::{App, Server, ServerConfig};
//! use drywells::StudyConfig;
//!
//! let app = App::from_study(&StudyConfig::quick(), None);
//! let server = Server::start(app, ServerConfig::default()).unwrap();
//! println!("listening on http://{}", server.http_addr());
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod client;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod rate;
pub mod server;

pub use app::App;
pub use rate::RateLimitConfig;
pub use server::{Server, ServerConfig};
