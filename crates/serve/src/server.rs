//! The TCP layer: accept loops, the bounded worker pool, load
//! shedding, timeouts, and graceful shutdown.
//!
//! Concurrency model (in the spirit of `bgpsim::par`): a fixed pool of
//! worker threads pulls accepted connections from one bounded queue.
//! The accept threads never queue unboundedly — a connection arriving
//! while `queued + in-flight` is at the cap is answered `503 Service
//! Unavailable` and closed immediately (load shedding beats silent
//! queue growth: the client learns to back off instead of timing out).
//! Per-connection read/write timeouts bound how long a slow or silent
//! peer can hold a worker. Shutdown stops accepting, drains queued and
//! in-flight connections, and joins every thread.

use crate::app::App;
use crate::http::{read_request, HttpError, Response};
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address for the HTTP listener; port 0 binds an ephemeral port.
    pub http_addr: SocketAddr,
    /// Address for the port-43-style WHOIS listener; `None` disables
    /// it. (Binding literal port 43 needs privileges; tests and the
    /// CLI use an ephemeral port.)
    pub whois_addr: Option<SocketAddr>,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Cap on queued + in-flight connections; beyond it new
    /// connections are shed with 503.
    pub max_connections: usize,
    /// Per-connection read timeout (also bounds keep-alive idling).
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            http_addr: SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0),
            whois_addr: None,
            workers: 4,
            max_connections: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Which protocol a queued connection speaks.
#[derive(Clone, Copy, Debug)]
enum Proto {
    Http,
    Whois,
}

/// State shared by accept threads and workers.
struct Shared {
    app: Arc<App>,
    config: ServerConfig,
    queue: Mutex<VecDeque<(Proto, TcpStream)>>,
    wakeup: Condvar,
    shutdown: AtomicBool,
    /// Connections currently held by workers (the queue length is
    /// read under its own lock).
    in_flight: AtomicUsize,
}

/// A running server. Dropping it without calling [`Server::shutdown`]
/// leaks the listener threads until process exit; call `shutdown` for
/// a clean drain-and-join.
pub struct Server {
    shared: Arc<Shared>,
    http_addr: SocketAddr,
    whois_addr: Option<SocketAddr>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind the listeners and spawn the accept threads and worker
    /// pool. Returns once the sockets are live (requests may arrive
    /// immediately after).
    pub fn start(app: App, config: ServerConfig) -> io::Result<Server> {
        app.pool
            .workers
            .store(config.workers.max(1), Ordering::SeqCst);
        app.pool
            .max_connections
            .store(config.max_connections, Ordering::SeqCst);
        let http_listener = TcpListener::bind(config.http_addr)?;
        let http_addr = http_listener.local_addr()?;
        let whois = match config.whois_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                let a = l.local_addr()?;
                Some((l, a))
            }
            None => None,
        };
        let whois_addr = whois.as_ref().map(|(_, a)| *a);

        let shared = Arc::new(Shared {
            app: Arc::new(app),
            config: config.clone(),
            queue: Mutex::new(VecDeque::new()),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
        });

        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || {
                accept_loop(&shared, http_listener, Proto::Http)
            }));
        }
        if let Some((listener, _)) = whois {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || {
                accept_loop(&shared, listener, Proto::Whois)
            }));
        }
        for _ in 0..config.workers.max(1) {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || worker_loop(&shared)));
        }

        Ok(Server {
            shared,
            http_addr,
            whois_addr,
            threads,
        })
    }

    /// The bound HTTP address (resolves port 0 to the real port).
    pub fn http_addr(&self) -> SocketAddr {
        self.http_addr
    }

    /// The bound WHOIS address, if the listener was enabled.
    pub fn whois_addr(&self) -> Option<SocketAddr> {
        self.whois_addr
    }

    /// The shared application (metrics access for tests/diagnostics).
    pub fn app(&self) -> &App {
        &self.shared.app
    }

    /// Graceful shutdown: stop accepting, serve everything already
    /// queued or in flight, then join every thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept threads: a throwaway connection makes
        // `accept` return so the loop can observe the flag.
        let _ = TcpStream::connect(self.http_addr);
        if let Some(addr) = self.whois_addr {
            let _ = TcpStream::connect(addr);
        }
        self.shared.wakeup.notify_all();
        for t in self.threads.drain(..) {
            // A worker that panicked already poisoned nothing we read
            // after this point; surface it.
            // lint:allow(L2): propagating worker panics at shutdown is the point
            t.join().expect("server thread panicked");
        }
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener, proto: Proto) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // the wakeup connection (or a raced client) is dropped
        }
        shared.app.metrics.accepted.inc();

        // A worker panic poisons the queue lock but the queue itself
        // stays coherent; recover so accepting continues.
        let mut queue = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        let load = queue.len() + shared.in_flight.load(Ordering::SeqCst);
        if load >= shared.config.max_connections {
            drop(queue);
            shed(shared, stream, proto);
            continue;
        }
        queue.push_back((proto, stream));
        shared.app.pool.queued.store(queue.len(), Ordering::SeqCst);
        drop(queue);
        shared.app.metrics.active.add(1);
        shared.wakeup.notify_one();
    }
}

/// Refuse a connection over the cap: one best-effort 503 (HTTP) or
/// `%ERROR` line (WHOIS), then close. The write gets a short timeout
/// so a non-reading client cannot stall the accept thread.
fn shed(shared: &Shared, mut stream: TcpStream, proto: Proto) {
    shared.app.pool.shed_total.fetch_add(1, Ordering::SeqCst);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    match proto {
        Proto::Http => {
            // Shed responses still get an id: the access log and the
            // client agree on which request was refused.
            let req_id = shared.app.next_request_id();
            shared.app.metrics.count_route_response("other", 503);
            obs::flight_event!(
                obs::Level::Warn,
                "http_shed",
                id = req_id,
                status = 503u64
            );
            let _ = Response::error(503, "connection cap reached, try again")
                .with_header("Retry-After", "1".to_string())
                .with_header("X-Request-Id", format!("{req_id:016x}"))
                .write_to(&mut stream, false);
        }
        Proto::Whois => {
            shared.app.metrics.count_response(503);
            let _ = stream.write_all(b"%ERROR:306: connections exceeded\n");
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.app.pool.queued.store(queue.len(), Ordering::SeqCst);
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .wakeup
                    .wait(queue)
                    .unwrap_or_else(|p| p.into_inner());
            }
        };
        let Some((proto, stream)) = job else {
            return; // shutdown with an empty queue: fully drained
        };
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        shared.app.pool.in_flight.fetch_add(1, Ordering::SeqCst);
        let result = match proto {
            Proto::Http => handle_http_connection(shared, stream),
            Proto::Whois => handle_whois_connection(shared, stream),
        };
        let _ = result; // transport errors close the connection, nothing more
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        shared.app.pool.in_flight.fetch_sub(1, Ordering::SeqCst);
        shared.app.metrics.active.sub(1);
    }
}

fn handle_http_connection(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(shared.config.read_timeout))?;
    stream.set_write_timeout(Some(shared.config.write_timeout))?;
    let _ = stream.set_nodelay(true);
    let client = stream
        .peer_addr()
        .map(|a| a.ip())
        .unwrap_or(IpAddr::V4(Ipv4Addr::UNSPECIFIED));
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()), // clean close at a request boundary
            Err(HttpError::BadRequest(detail)) => {
                // Even unparseable requests get an id, so the access
                // log and the 400 the client sees can be correlated.
                let req_id = shared.app.next_request_id();
                shared.app.metrics.count_route_response("other", 400);
                obs::flight_event!(
                    obs::Level::Warn,
                    "http_bad_request",
                    id = req_id,
                    status = 400u64
                );
                let _ = Response::error(400, &detail)
                    .with_header("X-Request-Id", format!("{req_id:016x}"))
                    .write_to(&mut writer, false);
                return Ok(());
            }
            // Idle keep-alive timeout or transport error: just close.
            Err(HttpError::Timeout) | Err(HttpError::Io(_)) => return Ok(()),
        };
        let req_id = shared.app.next_request_id();
        let t0 = Instant::now();
        let (resp, route) = {
            let span = obs::span!("serve_request", id = req_id);
            let _guard = RequestGuard::begin(&shared.app, req_id, req.path(), client);
            let out = shared.app.handle_labeled(&req, client);
            span.add_items(1);
            out
        };
        let resp = resp.with_header("X-Request-Id", format!("{req_id:016x}"));
        // Shutdown drains in-flight requests but ends keep-alive:
        // the last response is still written, with Connection: close.
        let keep_alive =
            req.wants_keep_alive() && !shared.shutdown.load(Ordering::SeqCst);
        shared.app.metrics.count_route_response(route, resp.status);
        // Streamed bodies use chunked framing, but only for HTTP/1.1
        // peers — HTTP/1.0 predates chunked transfer, so those get the
        // same bytes with a Content-Length.
        if resp.chunked && req.version == "HTTP/1.1" {
            resp.write_chunked_to(&mut writer, keep_alive)?;
        } else {
            resp.write_to(&mut writer, keep_alive)?;
        }
        let wall = t0.elapsed();
        shared.app.metrics.latency.record(wall);
        shared.app.metrics.route_latency(route).record(wall);
        obs::flight_event!(
            obs::Level::Info,
            "http_access",
            id = req_id,
            route = route,
            status = resp.status as u64,
            us = wall.as_micros().min(u64::MAX as u128) as u64
        );
        if !keep_alive {
            return Ok(());
        }
    }
}

/// Removes a request from the `/debug/requests` table when the
/// dispatch scope ends — including by panic, so a crashed route never
/// leaves a ghost row.
struct RequestGuard<'a> {
    app: &'a App,
    id: u64,
}

impl<'a> RequestGuard<'a> {
    fn begin(app: &'a App, id: u64, path: &str, client: IpAddr) -> RequestGuard<'a> {
        app.begin_request(id, path, client);
        RequestGuard { app, id }
    }
}

impl Drop for RequestGuard<'_> {
    fn drop(&mut self) {
        self.app.end_request(self.id);
    }
}

/// Port-43 conversation: one query line in, one text response out,
/// close — exactly the classic WHOIS exchange.
fn handle_whois_connection(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(shared.config.read_timeout))?;
    stream.set_write_timeout(Some(shared.config.write_timeout))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let t0 = Instant::now();
    if reader.read_line(&mut line).is_err() {
        return Ok(()); // timeout or broken pipe: nothing to answer
    }
    let response = shared.app.handle_whois_line(line.trim_end_matches(['\r', '\n']));
    writer.write_all(response.as_bytes())?;
    writer.flush()?;
    shared.app.metrics.latency.record(t0.elapsed());
    Ok(())
}
