//! Per-client token-bucket rate limiting for the RDAP routes.
//!
//! The paper's measurement methodology is shaped by exactly this
//! operational constraint: RDAP services budget queries per client and
//! answer `429 Too Many Requests` with a `Retry-After` hint once the
//! budget is gone. Buckets are keyed by client IP; each holds up to
//! `burst` tokens and refills at `per_second` tokens per second.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Mutex;
use std::time::Instant;

/// Token-bucket parameters.
#[derive(Clone, Copy, Debug)]
pub struct RateLimitConfig {
    /// Bucket capacity: how many requests a silent client may burst.
    pub burst: u64,
    /// Refill rate in tokens per second.
    pub per_second: f64,
}

impl Default for RateLimitConfig {
    fn default() -> Self {
        RateLimitConfig {
            burst: 64,
            per_second: 16.0,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

/// The per-client limiter. One instance is shared by all workers.
#[derive(Debug)]
pub struct RateLimiter {
    config: RateLimitConfig,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

impl RateLimiter {
    /// A limiter with the given parameters.
    pub fn new(config: RateLimitConfig) -> RateLimiter {
        RateLimiter {
            config,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Try to spend one token for `client`. `Err(retry_after_secs)`
    /// means the bucket is exhausted; the client should back off at
    /// least that many (whole) seconds.
    pub fn check(&self, client: IpAddr, now: Instant) -> Result<(), u64> {
        // A panic elsewhere poisons the lock but the token state stays
        // coherent; recover rather than taking the limiter down.
        let mut buckets = self.buckets.lock().unwrap_or_else(|p| p.into_inner());
        let bucket = buckets.entry(client).or_insert(Bucket {
            tokens: self.config.burst as f64,
            last_refill: now,
        });
        let dt = now.saturating_duration_since(bucket.last_refill).as_secs_f64();
        bucket.tokens = (bucket.tokens + dt * self.config.per_second)
            .min(self.config.burst as f64);
        bucket.last_refill = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - bucket.tokens;
            let wait = (deficit / self.config.per_second.max(f64::MIN_POSITIVE)).ceil();
            Err((wait as u64).max(1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const CLIENT_A: IpAddr = IpAddr::V4(std::net::Ipv4Addr::new(198, 51, 100, 1));
    const CLIENT_B: IpAddr = IpAddr::V4(std::net::Ipv4Addr::new(198, 51, 100, 2));

    #[test]
    fn burst_then_429_then_refill() {
        let lim = RateLimiter::new(RateLimitConfig {
            burst: 3,
            per_second: 1.0,
        });
        let t0 = Instant::now();
        for _ in 0..3 {
            assert!(lim.check(CLIENT_A, t0).is_ok());
        }
        let wait = lim.check(CLIENT_A, t0).unwrap_err();
        assert!(wait >= 1, "retry-after must be at least a second");
        // 2 simulated seconds later two tokens are back.
        let t2 = t0 + Duration::from_secs(2);
        assert!(lim.check(CLIENT_A, t2).is_ok());
        assert!(lim.check(CLIENT_A, t2).is_ok());
        assert!(lim.check(CLIENT_A, t2).is_err());
    }

    #[test]
    fn buckets_are_per_client() {
        let lim = RateLimiter::new(RateLimitConfig {
            burst: 1,
            per_second: 0.001,
        });
        let t0 = Instant::now();
        assert!(lim.check(CLIENT_A, t0).is_ok());
        assert!(lim.check(CLIENT_A, t0).is_err());
        // A different client has its own untouched bucket.
        assert!(lim.check(CLIENT_B, t0).is_ok());
        // Slow refill reports a proportionally long wait.
        let wait = lim.check(CLIENT_A, t0).unwrap_err();
        assert!(wait >= 900, "0.001 tokens/s needs ~1000s, got {wait}");
    }

    #[test]
    fn tokens_never_exceed_burst() {
        let lim = RateLimiter::new(RateLimitConfig {
            burst: 2,
            per_second: 1000.0,
        });
        let t0 = Instant::now();
        assert!(lim.check(CLIENT_A, t0).is_ok());
        // A long quiet period refills to the cap, not beyond.
        let later = t0 + Duration::from_secs(3600);
        assert!(lim.check(CLIENT_A, later).is_ok());
        assert!(lim.check(CLIENT_A, later).is_ok());
        assert!(lim.check(CLIENT_A, later).is_err());
    }
}
