//! A minimal blocking HTTP/1.1 client, enough to drive the server
//! from the load generator, the integration tests, and the example.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to one server.
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    conn: Option<BufReader<TcpStream>>,
}

impl Client {
    /// A client for `addr` with one timeout for connect/read/write.
    pub fn new(addr: SocketAddr, timeout: Duration) -> Client {
        Client {
            addr,
            timeout,
            conn: None,
        }
    }

    fn connect(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            let _ = stream.set_nodelay(true);
            self.conn = Some(BufReader::new(stream));
        }
        self.conn
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "connection setup failed"))
    }

    /// Issue `GET path`, reusing the connection when the server keeps
    /// it open; reconnects once if a reused connection turns out dead.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        let had_conn = self.conn.is_some();
        match self.try_get(path) {
            Ok(resp) => Ok(resp),
            Err(e) if had_conn => {
                // The server may have closed the idle keep-alive
                // connection between requests; retry once fresh.
                let _ = e;
                self.conn = None;
                self.try_get(path)
            }
            Err(e) => Err(e),
        }
    }

    fn try_get(&mut self, path: &str) -> io::Result<ClientResponse> {
        let reader = self.connect()?;
        reader
            .get_mut()
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: drywells\r\n\r\n").as_bytes())?;
        let resp = read_response(reader);
        match &resp {
            Ok(r) => {
                let close = r
                    .header("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                if close {
                    self.conn = None;
                }
            }
            Err(_) => self.conn = None,
        }
        resp
    }
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Read one response (status line, headers, `Content-Length` body).
fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<ClientResponse> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before status line",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad_data(format!("malformed status line {status_line:?}")))?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside headers",
            ));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad_data(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let resp = ClientResponse {
        status,
        headers,
        body: Vec::new(),
    };
    if resp
        .header("transfer-encoding")
        .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"))
    {
        let body = read_chunked_body(reader)?;
        return Ok(ClientResponse { body, ..resp });
    }
    let len: usize = resp
        .header("content-length")
        .ok_or_else(|| bad_data("response without content-length".into()))?
        .parse()
        .map_err(|_| bad_data("unparseable content-length".into()))?;
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(ClientResponse { body, ..resp })
}

/// Decode a `Transfer-Encoding: chunked` body: hex-sized chunks each
/// followed by CRLF, a `0` chunk, then trailers up to a blank line.
fn read_chunked_body(reader: &mut BufReader<TcpStream>) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let mut size_line = String::new();
        if reader.read_line(&mut size_line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside chunked body",
            ));
        }
        // Chunk extensions (`;name=value`) are allowed after the size.
        let size_hex = size_line
            .trim_end_matches(['\r', '\n'])
            .split(';')
            .next()
            .unwrap_or("");
        let size = usize::from_str_radix(size_hex.trim(), 16)
            .map_err(|_| bad_data(format!("malformed chunk size {size_line:?}")))?;
        if size == 0 {
            break;
        }
        let start = body.len();
        body.resize(start + size, 0);
        reader.read_exact(&mut body[start..])?;
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(bad_data("chunk not terminated by CRLF".into()));
        }
    }
    // Trailers (we send none, but consume them for robustness).
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside chunked trailers",
            ));
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
    }
    Ok(body)
}

/// One-shot convenience: fresh connection, single GET.
pub fn get_once(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<ClientResponse> {
    Client::new(addr, timeout).get(path)
}
