//! IP reputation: blacklists, tainted vs. clean addresses, and the
//! protective practices §2 describes.
//!
//! "Once an IP address block appears on a blacklist, it can be hard to
//! remove it again — the IP address is tainted. IP address blocks
//! that never appeared on a blacklist … are known as 'clean IPs'."
//! Leasing providers vet customers and install SWIP-style records to
//! protect their remaining space; buyers check the reputation of
//! blocks before acquiring them.
//!
//! The model: a [`Blacklist`] accumulates dated listing events at
//! prefix granularity; blocks aggregate a [`Reputation`] from their
//! own and their covering blocks' history, with listings decaying
//! slowly (delisting is possible, forgetting is not — a previously
//! listed block never returns to pristine).

use nettypes::date::Date;
use nettypes::prefix::Prefix;
use nettypes::trie::PrefixTrie;
use serde::{Deserialize, Serialize};

/// Why a block was listed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ListingReason {
    /// E-mail spam sources.
    Spam,
    /// Flooding / DoS sources.
    Flooding,
    /// Malware / botnet command infrastructure.
    Malware,
}

/// One listing event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Listing {
    /// The listed block.
    pub prefix: Prefix,
    /// Listing date.
    pub listed: Date,
    /// Delisting date, if the operator cleaned up.
    pub delisted: Option<Date>,
    /// Category.
    pub reason: ListingReason,
}

impl Listing {
    /// Whether the listing is active on `d`.
    pub fn active_on(&self, d: Date) -> bool {
        d >= self.listed && self.delisted.map(|e| d < e).unwrap_or(true)
    }
}

/// The reputation classification the market acts on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Reputation {
    /// Never listed, no covering block listed: full market value.
    Clean,
    /// Previously listed (or inside a listed block) but currently
    /// delisted: reachable, discounted.
    Tainted,
    /// Actively listed: many networks drop its traffic.
    Listed,
}

impl Reputation {
    /// The market-price multiplier buyers apply (brokers report clean
    /// blocks command full price; tainted blocks trade at a discount;
    /// actively listed blocks are near-unsellable).
    pub fn price_multiplier(&self) -> f64 {
        match self {
            Reputation::Clean => 1.0,
            Reputation::Tainted => 0.8,
            Reputation::Listed => 0.35,
        }
    }
}

/// A blacklist service (Spamhaus-style), queryable by block and date.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Blacklist {
    listings: Vec<Listing>,
}

impl Blacklist {
    /// An empty blacklist.
    pub fn new() -> Self {
        Blacklist::default()
    }

    /// Record a listing event.
    pub fn list(&mut self, prefix: Prefix, listed: Date, reason: ListingReason) {
        self.listings.push(Listing {
            prefix,
            listed,
            delisted: None,
            reason,
        });
    }

    /// Delist every active listing of exactly `prefix` on `when`.
    /// Returns how many listings were closed.
    pub fn delist(&mut self, prefix: Prefix, when: Date) -> usize {
        let mut n = 0;
        for l in &mut self.listings {
            if l.prefix == prefix && l.active_on(when) {
                l.delisted = Some(when);
                n += 1;
            }
        }
        n
    }

    /// All listing events.
    pub fn listings(&self) -> &[Listing] {
        &self.listings
    }

    /// Listings relevant to `block` on `d`: its own, any covering
    /// block's, and any covered block's (a listed sub-block taints the
    /// parent too — the §2 rationale for SWIP-style delegation
    /// records, which contain the damage to the delegated block).
    fn relevant<'a>(
        &'a self,
        block: &'a Prefix,
    ) -> impl Iterator<Item = &'a Listing> + 'a {
        self.listings
            .iter()
            .filter(move |l| l.prefix.overlaps(block))
    }

    /// The reputation of `block` on `d`.
    pub fn reputation(&self, block: &Prefix, d: Date) -> Reputation {
        let mut saw_history = false;
        for l in self.relevant(block) {
            if l.listed > d {
                continue; // future event
            }
            if l.active_on(d) {
                return Reputation::Listed;
            }
            saw_history = true;
        }
        if saw_history {
            Reputation::Tainted
        } else {
            Reputation::Clean
        }
    }

    /// The §2 buyer's check: is the block clean enough to buy on `d`?
    pub fn passes_pre_purchase_check(&self, block: &Prefix, d: Date) -> bool {
        self.reputation(block, d) == Reputation::Clean
    }
}

/// The protective effect of delegation records: when a *delegated*
/// sub-block is listed, registries with SWIP-style records attribute
/// the abuse to the delegatee, so the provider's *remaining* space
/// keeps its reputation. Without records, the listing taints the
/// whole covering block.
///
/// Given the provider's block, its delegations (with/without records)
/// and a blacklist, classify the provider's residual space.
pub fn residual_reputation(
    provider_block: &Prefix,
    delegations_with_records: &[Prefix],
    blacklist: &Blacklist,
    d: Date,
) -> Reputation {
    // Index recorded delegations for fast covering checks.
    let recorded: PrefixTrie<()> = delegations_with_records
        .iter()
        .map(|p| (*p, ()))
        .collect();
    let mut worst = Reputation::Clean;
    for l in blacklist.listings() {
        if l.listed > d || !l.prefix.overlaps(provider_block) {
            continue;
        }
        // A listing fully inside a recorded delegation is attributed
        // to the delegatee: it does not touch the residual space.
        let contained_in_recorded = recorded
            .covering(&l.prefix)
            .into_iter()
            .next()
            .is_some()
            || recorded.contains(&l.prefix);
        if contained_in_recorded {
            continue;
        }
        if l.active_on(d) {
            return Reputation::Listed;
        }
        worst = Reputation::Tainted;
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettypes::date::date;
    use nettypes::prefix::pfx;

    #[test]
    fn clean_until_listed_then_tainted_forever() {
        let mut bl = Blacklist::new();
        let block = pfx("64.1.0.0/24");
        assert_eq!(bl.reputation(&block, date("2019-01-01")), Reputation::Clean);
        bl.list(block, date("2019-06-01"), ListingReason::Spam);
        assert_eq!(bl.reputation(&block, date("2019-05-31")), Reputation::Clean);
        assert_eq!(bl.reputation(&block, date("2019-06-01")), Reputation::Listed);
        assert_eq!(bl.delist(block, date("2019-09-01")), 1);
        assert_eq!(bl.reputation(&block, date("2019-08-31")), Reputation::Listed);
        // Delisted but never clean again.
        assert_eq!(bl.reputation(&block, date("2020-01-01")), Reputation::Tainted);
        assert!(!bl.passes_pre_purchase_check(&block, date("2020-01-01")));
    }

    #[test]
    fn listing_taints_covering_and_covered_blocks() {
        let mut bl = Blacklist::new();
        bl.list(pfx("64.1.0.0/24"), date("2019-01-01"), ListingReason::Flooding);
        // The covering /16 is affected…
        assert_eq!(
            bl.reputation(&pfx("64.1.0.0/16"), date("2019-02-01")),
            Reputation::Listed
        );
        // …and a sub-block of a listed /16 is too.
        let mut bl2 = Blacklist::new();
        bl2.list(pfx("64.2.0.0/16"), date("2019-01-01"), ListingReason::Malware);
        assert_eq!(
            bl2.reputation(&pfx("64.2.7.0/24"), date("2019-02-01")),
            Reputation::Listed
        );
        // Disjoint space is untouched.
        assert_eq!(
            bl.reputation(&pfx("64.9.0.0/24"), date("2019-02-01")),
            Reputation::Clean
        );
    }

    #[test]
    fn price_multipliers_ordered() {
        assert!(Reputation::Clean.price_multiplier() > Reputation::Tainted.price_multiplier());
        assert!(Reputation::Tainted.price_multiplier() > Reputation::Listed.price_multiplier());
        assert_eq!(Reputation::Clean.price_multiplier(), 1.0);
    }

    #[test]
    fn swip_records_protect_residual_space() {
        // A leasing provider delegates 64.1.2.0/24 with records; the
        // delegatee spams and gets listed.
        let provider = pfx("64.1.0.0/16");
        let delegated = pfx("64.1.2.0/24");
        let mut bl = Blacklist::new();
        bl.list(delegated, date("2020-01-15"), ListingReason::Spam);

        // With records: residual space stays clean.
        assert_eq!(
            residual_reputation(&provider, &[delegated], &bl, date("2020-02-01")),
            Reputation::Clean
        );
        // Without records: the whole block is compromised.
        assert_eq!(
            residual_reputation(&provider, &[], &bl, date("2020-02-01")),
            Reputation::Listed
        );
        // After cleanup, the unrecorded case stays tainted.
        bl.delist(delegated, date("2020-03-01"));
        assert_eq!(
            residual_reputation(&provider, &[], &bl, date("2020-04-01")),
            Reputation::Tainted
        );
        assert_eq!(
            residual_reputation(&provider, &[delegated], &bl, date("2020-04-01")),
            Reputation::Clean
        );
    }

    #[test]
    fn listing_inside_recorded_subdelegation_counts_via_covering() {
        // Listing of a /28 *inside* the recorded /24 delegation is also
        // attributed to the delegatee.
        let provider = pfx("64.1.0.0/16");
        let delegated = pfx("64.1.2.0/24");
        let mut bl = Blacklist::new();
        bl.list(pfx("64.1.2.16/28"), date("2020-01-15"), ListingReason::Spam);
        assert_eq!(
            residual_reputation(&provider, &[delegated], &bl, date("2020-02-01")),
            Reputation::Clean
        );
        assert_eq!(
            residual_reputation(&provider, &[], &bl, date("2020-02-01")),
            Reputation::Listed
        );
    }

    #[test]
    fn multiple_listings_worst_wins() {
        let mut bl = Blacklist::new();
        let block = pfx("64.3.0.0/24");
        bl.list(block, date("2019-01-01"), ListingReason::Spam);
        bl.delist(block, date("2019-02-01"));
        bl.list(block, date("2019-06-01"), ListingReason::Malware);
        // One delisted + one active ⇒ Listed.
        assert_eq!(bl.reputation(&block, date("2019-07-01")), Reputation::Listed);
        assert_eq!(bl.listings().len(), 2);
    }
}
