//! Price-prediction models from the related work (§5) and their
//! evaluation against the (simulated) market path.
//!
//! Livadariu et al. (2017) fitted the few publicly disclosed
//! transactions and predicted ≈ $30/IP for the end of 2015 —
//! overshooting the actual price "by about 200 %". Edelman & Schwarz
//! (2015) proposed an equilibrium model whose trends oppose the
//! observed evolution. This module implements both styles —
//! exponential extrapolation and a constant-growth equilibrium path —
//! fits them on an early window, and scores them against the later
//! market, reproducing the paper's "previous work significantly
//! over-estimated the price development" finding.

use crate::transactions::PricedTransaction;
use nettypes::date::Date;
use serde::{Deserialize, Serialize};

/// A fitted log-linear (exponential-growth) price model:
/// `price(t) = exp(a + b · t)` with `t` in days since the fit origin.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExponentialFit {
    /// Intercept (log USD).
    pub a: f64,
    /// Daily log-growth rate.
    pub b: f64,
    /// Fit origin.
    pub origin: Date,
    /// Number of samples fitted.
    pub n: usize,
}

impl ExponentialFit {
    /// Least-squares fit of `log(price)` on days, or `None` with fewer
    /// than two distinct dates.
    pub fn fit(samples: impl IntoIterator<Item = (Date, f64)>) -> Option<ExponentialFit> {
        let pts: Vec<(Date, f64)> = samples.into_iter().filter(|(_, p)| *p > 0.0).collect();
        if pts.len() < 2 {
            return None;
        }
        let origin = pts.iter().map(|(d, _)| *d).min().expect("non-empty");
        let xs: Vec<f64> = pts.iter().map(|(d, _)| (*d - origin) as f64).collect();
        let ys: Vec<f64> = pts.iter().map(|(_, p)| p.ln()).collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        if sxx == 0.0 {
            return None;
        }
        let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let b = sxy / sxx;
        let a = my - b * mx;
        Some(ExponentialFit {
            a,
            b,
            origin,
            n: pts.len(),
        })
    }

    /// The model's price prediction for a date.
    pub fn predict(&self, when: Date) -> f64 {
        (self.a + self.b * (when - self.origin) as f64).exp()
    }

    /// Implied annual growth factor.
    pub fn annual_growth(&self) -> f64 {
        (self.b * 365.25).exp()
    }
}

/// A prediction-model evaluation at a target date.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PredictionScore {
    /// The evaluation date.
    pub target: Date,
    /// Model prediction (USD/IP).
    pub predicted: f64,
    /// Actual market median at the target (USD/IP).
    pub actual: f64,
    /// `predicted / actual − 1`: positive = overestimate.
    pub relative_error: f64,
}

/// Median price of transactions within ±45 days of `target`.
pub fn market_median_near(txs: &[PricedTransaction], target: Date) -> Option<f64> {
    let mut v: Vec<f64> = txs
        .iter()
        .filter(|t| (t.date - target).abs() <= 45)
        .map(|t| t.price_per_ip)
        .collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    Some(v[v.len() / 2])
}

/// Fit an exponential model on the pre-`fit_until` transactions and
/// score it at `target` — the Livadariu-style experiment. Returns
/// `None` when either window lacks data.
pub fn evaluate_extrapolation(
    txs: &[PricedTransaction],
    fit_until: Date,
    target: Date,
) -> Option<(ExponentialFit, PredictionScore)> {
    let fit = ExponentialFit::fit(
        txs.iter()
            .filter(|t| t.date < fit_until)
            .map(|t| (t.date, t.price_per_ip)),
    )?;
    let actual = market_median_near(txs, target)?;
    let predicted = fit.predict(target);
    Some((
        fit,
        PredictionScore {
            target,
            predicted,
            actual,
            relative_error: predicted / actual - 1.0,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transactions::{generate_transactions, TransactionConfig};
    use nettypes::date::date;

    #[test]
    fn fit_recovers_exponential() {
        // price = 10 · exp(0.001 · t)
        let samples: Vec<(Date, f64)> = (0..200)
            .map(|i| {
                let d = date("2016-01-01") + i * 5;
                (d, 10.0 * (0.001 * (i * 5) as f64).exp())
            })
            .collect();
        let fit = ExponentialFit::fit(samples).unwrap();
        assert!((fit.b - 0.001).abs() < 1e-9, "b = {}", fit.b);
        assert!((fit.predict(date("2016-01-01")) - 10.0).abs() < 1e-6);
        assert!((fit.annual_growth() - (0.001f64 * 365.25).exp()).abs() < 1e-9);
    }

    #[test]
    fn degenerate_fits_rejected() {
        assert!(ExponentialFit::fit(Vec::<(Date, f64)>::new()).is_none());
        assert!(ExponentialFit::fit(vec![(date("2016-01-01"), 10.0)]).is_none());
        // Same-day samples: zero x-variance.
        assert!(ExponentialFit::fit(vec![
            (date("2016-01-01"), 10.0),
            (date("2016-01-01"), 12.0),
        ])
        .is_none());
        // Non-positive prices are filtered.
        assert!(ExponentialFit::fit(vec![
            (date("2016-01-01"), 0.0),
            (date("2016-06-01"), -3.0),
        ])
        .is_none());
    }

    #[test]
    fn extrapolation_overshoots_consolidated_market() {
        // The §5 finding: a growth model fitted on the pre-2019 ramp
        // overshoots the consolidated 2020 market.
        let txs = generate_transactions(&TransactionConfig::default());
        let (fit, score) =
            evaluate_extrapolation(&txs, date("2019-01-01"), date("2020-06-01")).unwrap();
        assert!(fit.b > 0.0, "the ramp must fit as growth");
        assert!(
            score.relative_error > 0.15,
            "expected a clear overestimate, got {:+.1} % (predicted {:.2} vs actual {:.2})",
            score.relative_error * 100.0,
            score.predicted,
            score.actual
        );
    }

    #[test]
    fn extrapolation_is_calibrated_in_sample() {
        // Within the trending era the same model is roughly unbiased —
        // the failure is specifically about missing the consolidation.
        let txs = generate_transactions(&TransactionConfig::default());
        let (_, score) =
            evaluate_extrapolation(&txs, date("2018-01-01"), date("2018-06-01")).unwrap();
        assert!(
            score.relative_error.abs() < 0.15,
            "in-sample error {:+.1} %",
            score.relative_error * 100.0
        );
    }

    #[test]
    fn median_window_boundaries() {
        let txs = generate_transactions(&TransactionConfig::default());
        assert!(market_median_near(&txs, date("2018-01-01")).is_some());
        assert!(market_median_near(&txs, date("2030-01-01")).is_none());
        assert!(market_median_near(&[], date("2018-01-01")).is_none());
    }
}
