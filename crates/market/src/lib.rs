//! # market
//!
//! The economics layer of *When Wells Run Dry* (§3, §4 "Leasing
//! prices", §6):
//!
//! * [`pricing`] — a calibrated per-IP transaction-price process:
//!   prices double from 2016 to 2020 towards ≈$22.50, small blocks
//!   (/24, /23) carry a premium, region has **no** effect, and the
//!   market enters a consolidation phase (flat price, low variance)
//!   in spring 2019,
//! * [`brokers`] — the broker/commission model (~5–10 % commissions,
//!   price alignment with the public IPv4.Global reference),
//! * [`transactions`] — generation of the anonymized priced-transfer
//!   data set (2.9 k transactions, 2016-01-01 → 2020-06-25, /16 or
//!   more specific, per-quarter region mix as reported in §3),
//! * [`leasing`] — the advertised-leasing-price catalog: the 21
//!   providers and the actual prices/price changes the paper reports
//!   (Figure 4),
//! * [`prediction`] — the §5 related-work price-prediction models
//!   (Livadariu-style extrapolation) and their over-estimation of the
//!   consolidated market,
//! * [`reputation`] — blacklists, tainted vs clean blocks, and the
//!   SWIP-record protection practices of §2,
//! * [`behavior`] — §6's business-model-driven market behaviours
//!   (ISP vs enterprise buy sizes, VPN rotation, spammer churn,
//!   buy-and-lease-back cash flows),
//! * [`amortization`] — buy-vs-lease amortization times (§6),
//! * [`analysis`] — box-plot statistics (Figure 1), a Mann-Whitney U
//!   regional-difference test, and consolidation-phase detection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amortization;
pub mod analysis;
pub mod behavior;
pub mod brokers;
pub mod leasing;
pub mod prediction;
pub mod pricing;
pub mod reputation;
pub mod transactions;

pub use amortization::{amortization_months, AmortizationScenario};
pub use behavior::{profile_by_kind, simulate_behaviors, BehaviorConfig, LeaseBackContract};
pub use brokers::{Broker, CommissionSide};
pub use leasing::{leasing_catalog, LeasingProvider, ProviderKind};
pub use prediction::{evaluate_extrapolation, ExponentialFit, PredictionScore};
pub use pricing::{PriceModel, SizeClass};
pub use reputation::{Blacklist, Listing, ListingReason, Reputation};
pub use transactions::{generate_transactions, PricedTransaction, TransactionConfig};
