//! The calibrated per-IP transaction-price process.
//!
//! Calibration targets, all from §3 / Figure 1 of the paper:
//!
//! * prices **double** between early 2016 and 2020,
//! * the 2020 market average is **≈ $22.50 per address** with little
//!   variance,
//! * /24 and /23 blocks are **more expensive** per IP than larger
//!   blocks (secondary costs of splitting), and very large blocks
//!   (less specific than /16) rise again because they are rare,
//! * the **region has no statistically significant effect**,
//! * from **spring 2019** the market is in a *consolidation phase*:
//!   the market price barely changes and variance collapses, because
//!   brokers align with the publicly disclosed IPv4.Global reference
//!   prices.

use nettypes::date::{date, Date};
use registry::rir::Rir;
use serde::{Deserialize, Serialize};

/// Price-relevant block-size classes (per-IP premia).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SizeClass {
    /// A /24 — the smallest transferable unit; highest premium.
    Slash24,
    /// A /23.
    Slash23,
    /// A /22.
    Slash22,
    /// /21 – /20.
    Slash21To20,
    /// /19 – /17.
    Slash19To17,
    /// A /16.
    Slash16,
    /// Less specific than /16 — rare, premium rises again. Not present
    /// in the anonymized data set (identifiable), but modelled for the
    /// broker-reported trend.
    LargerThan16,
}

impl SizeClass {
    /// Classify a prefix length.
    pub fn from_len(len: u8) -> SizeClass {
        match len {
            24.. => SizeClass::Slash24,
            23 => SizeClass::Slash23,
            22 => SizeClass::Slash22,
            20..=21 => SizeClass::Slash21To20,
            17..=19 => SizeClass::Slash19To17,
            16 => SizeClass::Slash16,
            _ => SizeClass::LargerThan16,
        }
    }

    /// Multiplicative per-IP premium relative to the base price.
    pub fn premium(&self) -> f64 {
        match self {
            SizeClass::Slash24 => 1.13,
            SizeClass::Slash23 => 1.08,
            SizeClass::Slash22 => 1.02,
            SizeClass::Slash21To20 => 0.98,
            SizeClass::Slash19To17 => 0.95,
            SizeClass::Slash16 => 0.93,
            SizeClass::LargerThan16 => 1.10,
        }
    }

    /// Display label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SizeClass::Slash24 => "/24",
            SizeClass::Slash23 => "/23",
            SizeClass::Slash22 => "/22",
            SizeClass::Slash21To20 => "/21-/20",
            SizeClass::Slash19To17 => "/19-/17",
            SizeClass::Slash16 => "/16",
            SizeClass::LargerThan16 => "</16",
        }
    }
}

/// The deterministic part of the price process plus its noise scale.
#[derive(Clone, Debug)]
pub struct PriceModel {
    /// Price level at the start of 2016 (USD per IP).
    pub base_2016: f64,
    /// Base price level during consolidation (USD per IP before the
    /// size premium; the paper's ≈$22.50 is the /24 price, i.e.
    /// `consolidated × premium(/24)`).
    pub consolidated: f64,
    /// Start of the consolidation phase (paper: spring 2019).
    pub consolidation_start: Date,
    /// Log-normal volatility before consolidation.
    pub sigma_pre: f64,
    /// Log-normal volatility during consolidation.
    pub sigma_post: f64,
}

impl Default for PriceModel {
    fn default() -> Self {
        PriceModel {
            base_2016: 9.95,
            consolidated: 19.91, // × the 1.13 /24 premium ⇒ $22.50 per /24 IP

            consolidation_start: date("2019-04-01"),
            sigma_pre: 0.16,
            sigma_post: 0.045,
        }
    }
}

impl PriceModel {
    /// The deterministic market base price (USD per IP) on `when`,
    /// before size premium and noise: a smooth ramp from `base_2016`
    /// to `consolidated`, flat afterwards.
    pub fn base_price(&self, when: Date) -> f64 {
        let t0 = date("2016-01-01");
        if when >= self.consolidation_start {
            return self.consolidated;
        }
        let total = (self.consolidation_start - t0) as f64;
        let progress = ((when - t0) as f64 / total).clamp(0.0, 1.0);
        // Slightly convex ramp: growth accelerates as exhaustion bites.
        let eased = progress.powf(1.25);
        self.base_2016 + (self.consolidated - self.base_2016) * eased
    }

    /// The expected price for a block of `len` on `when` (no noise).
    /// Region is accepted — and ignored — deliberately: the paper
    /// finds no statistically significant regional difference.
    pub fn expected_price(&self, when: Date, len: u8, _region: Rir) -> f64 {
        self.base_price(when) * SizeClass::from_len(len).premium()
    }

    /// The log-normal volatility applicable on `when`.
    pub fn sigma(&self, when: Date) -> f64 {
        if when >= self.consolidation_start {
            self.sigma_post
        } else {
            self.sigma_pre
        }
    }

    /// Whether the market is in its consolidation phase on `when`.
    pub fn in_consolidation(&self, when: Date) -> bool {
        when >= self.consolidation_start
    }

    /// A noisy sampled price: `expected × exp(σ·z)` for a standard
    /// normal `z` supplied by the caller (keeps this type RNG-free).
    pub fn sample_price(&self, when: Date, len: u8, region: Rir, z: f64) -> f64 {
        self.expected_price(when, len, region) * (self.sigma(when) * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prices_double_2016_to_2020() {
        let m = PriceModel::default();
        let early = m.base_price(date("2016-02-01"));
        let late = m.base_price(date("2020-06-01"));
        let ratio = late / early;
        assert!(
            (1.8..=2.2).contains(&ratio),
            "expected ~2x growth, got {ratio:.2} ({early:.2} → {late:.2})"
        );
        // The headline $22.50 is the /24 price.
        let p24 = m.expected_price(date("2020-06-01"), 24, Rir::Arin);
        assert!((p24 - 22.50).abs() < 0.01, "/24 price {p24:.2}");
    }

    #[test]
    fn ramp_is_monotone() {
        let m = PriceModel::default();
        let mut prev = 0.0;
        let mut d = date("2016-01-01");
        while d <= date("2020-06-01") {
            let p = m.base_price(d);
            assert!(p >= prev - 1e-9, "price decreased at {d}");
            prev = p;
            d += 30;
        }
    }

    #[test]
    fn flat_during_consolidation() {
        let m = PriceModel::default();
        assert_eq!(m.base_price(date("2019-04-01")), m.base_price(date("2020-06-25")));
        assert!(m.in_consolidation(date("2019-06-01")));
        assert!(!m.in_consolidation(date("2019-03-01")));
        assert!(m.sigma(date("2019-06-01")) < m.sigma(date("2018-06-01")));
    }

    #[test]
    fn small_blocks_cost_more_per_ip() {
        let m = PriceModel::default();
        let when = date("2020-01-01");
        let p24 = m.expected_price(when, 24, Rir::Arin);
        let p23 = m.expected_price(when, 23, Rir::Arin);
        let p20 = m.expected_price(when, 20, Rir::Arin);
        let p16 = m.expected_price(when, 16, Rir::Arin);
        assert!(p24 > p23 && p23 > p20 && p20 > p16);
        // Very large blocks rise again (broker-reported).
        let p12 = m.expected_price(when, 12, Rir::Arin);
        assert!(p12 > p16);
    }

    #[test]
    fn region_has_no_effect() {
        let m = PriceModel::default();
        let when = date("2019-01-01");
        let arin = m.expected_price(when, 24, Rir::Arin);
        let ripe = m.expected_price(when, 24, Rir::RipeNcc);
        let apnic = m.expected_price(when, 24, Rir::Apnic);
        assert_eq!(arin, ripe);
        assert_eq!(ripe, apnic);
    }

    #[test]
    fn size_classification() {
        assert_eq!(SizeClass::from_len(24), SizeClass::Slash24);
        assert_eq!(SizeClass::from_len(28), SizeClass::Slash24);
        assert_eq!(SizeClass::from_len(23), SizeClass::Slash23);
        assert_eq!(SizeClass::from_len(21), SizeClass::Slash21To20);
        assert_eq!(SizeClass::from_len(20), SizeClass::Slash21To20);
        assert_eq!(SizeClass::from_len(18), SizeClass::Slash19To17);
        assert_eq!(SizeClass::from_len(16), SizeClass::Slash16);
        assert_eq!(SizeClass::from_len(12), SizeClass::LargerThan16);
    }

    #[test]
    fn noise_scales_with_sigma() {
        let m = PriceModel::default();
        let pre = date("2017-01-01");
        let post = date("2020-01-01");
        // One-sigma relative moves.
        let pre_move = m.sample_price(pre, 24, Rir::Arin, 1.0) / m.expected_price(pre, 24, Rir::Arin);
        let post_move =
            m.sample_price(post, 24, Rir::Arin, 1.0) / m.expected_price(post, 24, Rir::Arin);
        assert!(pre_move > post_move);
        // z = 0 reproduces the expectation exactly.
        assert_eq!(
            m.sample_price(post, 24, Rir::Arin, 0.0),
            m.expected_price(post, 24, Rir::Arin)
        );
    }
}
