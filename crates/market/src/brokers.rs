//! Brokers and commissions.
//!
//! Certificated IPv4 brokers connect buying and selling LIRs, help
//! negotiate, and handle transfer formalities. From the paper's
//! discussions with 13 brokers: commissions range **~5 % to ~10 %**
//! and may be charged to either side or split; since IPv4.Global
//! discloses prior-sale prices, most brokers strictly align their
//! prices with that public reference.

use serde::{Deserialize, Serialize};

/// Who pays the commission.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CommissionSide {
    /// The buying LIR pays.
    Buyer,
    /// The selling LIR pays.
    Seller,
    /// Both pay a share (the split fraction is the buyer's share).
    Split(u8),
}

/// A broker participating in the transfer market.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Broker {
    /// Display name.
    pub name: String,
    /// Commission rate in `[0.05, 0.10]`.
    pub commission_rate: f64,
    /// Which side is charged.
    pub side: CommissionSide,
    /// Whether the broker publicly discloses sale prices (IPv4.Global
    /// does; it provides the market's reference point).
    pub discloses_prices: bool,
}

impl Broker {
    /// Create a broker; clamps the commission into the reported band.
    pub fn new(
        name: impl Into<String>,
        commission_rate: f64,
        side: CommissionSide,
        discloses_prices: bool,
    ) -> Broker {
        Broker {
            name: name.into(),
            commission_rate: commission_rate.clamp(0.05, 0.10),
            side,
            discloses_prices,
        }
    }

    /// Total cost to the buyer for a sale at `sale_price`.
    pub fn buyer_cost(&self, sale_price: f64) -> f64 {
        match self.side {
            CommissionSide::Buyer => sale_price * (1.0 + self.commission_rate),
            CommissionSide::Seller => sale_price,
            CommissionSide::Split(buyer_pct) => {
                sale_price * (1.0 + self.commission_rate * buyer_pct as f64 / 100.0)
            }
        }
    }

    /// Net proceeds to the seller for a sale at `sale_price`.
    pub fn seller_proceeds(&self, sale_price: f64) -> f64 {
        match self.side {
            CommissionSide::Buyer => sale_price,
            CommissionSide::Seller => sale_price * (1.0 - self.commission_rate),
            CommissionSide::Split(buyer_pct) => {
                sale_price * (1.0 - self.commission_rate * (100 - buyer_pct) as f64 / 100.0)
            }
        }
    }

    /// The broker's commission revenue on a sale.
    pub fn commission_revenue(&self, sale_price: f64) -> f64 {
        self.buyer_cost(sale_price) - self.seller_proceeds(sale_price)
    }
}

/// The four brokers whose pricing data the paper obtained. Only
/// IPv4.Global discloses prices publicly.
pub fn pricing_data_brokers() -> Vec<Broker> {
    vec![
        Broker::new("IPv4.Global", 0.08, CommissionSide::Seller, true),
        Broker::new("Brander Group", 0.06, CommissionSide::Split(50), false),
        Broker::new("IPTrading.com", 0.10, CommissionSide::Buyer, false),
        Broker::new("IPv4 Market Group", 0.07, CommissionSide::Seller, false),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commission_band_enforced() {
        assert_eq!(Broker::new("x", 0.5, CommissionSide::Buyer, false).commission_rate, 0.10);
        assert_eq!(Broker::new("x", 0.01, CommissionSide::Buyer, false).commission_rate, 0.05);
        assert_eq!(Broker::new("x", 0.07, CommissionSide::Buyer, false).commission_rate, 0.07);
    }

    #[test]
    fn buyer_side_commission() {
        let b = Broker::new("x", 0.10, CommissionSide::Buyer, false);
        assert!((b.buyer_cost(1000.0) - 1100.0).abs() < 1e-9);
        assert!((b.seller_proceeds(1000.0) - 1000.0).abs() < 1e-9);
        assert!((b.commission_revenue(1000.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn seller_side_commission() {
        let b = Broker::new("x", 0.08, CommissionSide::Seller, false);
        assert!((b.buyer_cost(1000.0) - 1000.0).abs() < 1e-9);
        assert!((b.seller_proceeds(1000.0) - 920.0).abs() < 1e-9);
        assert!((b.commission_revenue(1000.0) - 80.0).abs() < 1e-9);
    }

    #[test]
    fn split_commission_conserves_total() {
        let b = Broker::new("x", 0.06, CommissionSide::Split(50), false);
        let total = b.commission_revenue(1000.0);
        assert!((total - 60.0).abs() < 1e-9);
        assert!((b.buyer_cost(1000.0) - 1030.0).abs() < 1e-9);
        assert!((b.seller_proceeds(1000.0) - 970.0).abs() < 1e-9);
    }

    #[test]
    fn reference_broker_exists() {
        let brokers = pricing_data_brokers();
        assert_eq!(brokers.len(), 4);
        assert_eq!(
            brokers.iter().filter(|b| b.discloses_prices).count(),
            1,
            "only IPv4.Global discloses prices"
        );
        for b in &brokers {
            assert!((0.05..=0.10).contains(&b.commission_rate));
        }
    }
}
