//! Generation of the anonymized priced-transaction data set.
//!
//! The paper's data set: 2.9 k transactions between 2016-01-01 and
//! 2020-06-25 from four brokers, anonymized to (date, region, number
//! of addresses) plus the price; only /16-or-more-specific blocks are
//! included (less-specific blocks would be identifiable). Per
//! three-month interval the set contains 8–23 APNIC, 83–196 ARIN and
//! 12–19 RIPE transactions across all prefix sizes; 31 AFRINIC/LACNIC
//! records exist but are excluded from analysis.

use crate::brokers::pricing_data_brokers;
use crate::pricing::PriceModel;
use nettypes::date::{date, Date};
use rand::prelude::*;
use rand_pcg::Pcg64Mcg;
use registry::rir::Rir;
use serde::{Deserialize, Serialize};

/// One anonymized, priced transfer record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PricedTransaction {
    /// Transaction date.
    pub date: Date,
    /// The block's region (the RIR maintaining it).
    pub region: Rir,
    /// Prefix length of the transferred block (16..=24).
    pub prefix_len: u8,
    /// Number of transferred addresses.
    pub addresses: u64,
    /// Unit price in USD per address.
    pub price_per_ip: f64,
    /// Index into the broker list that reported the record.
    pub broker: usize,
}

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct TransactionConfig {
    /// RNG seed.
    pub seed: u64,
    /// First transaction date.
    pub start: Date,
    /// Last transaction date (paper: 2020-06-25).
    pub end: Date,
    /// The price process.
    pub model: PriceModel,
}

impl Default for TransactionConfig {
    fn default() -> Self {
        TransactionConfig {
            seed: 3,
            start: date("2016-01-01"),
            end: date("2020-06-25"),
            model: PriceModel::default(),
        }
    }
}

/// Per-quarter transaction count band for a region, per §3.
fn quarterly_band(region: Rir) -> (u32, u32) {
    match region {
        Rir::Apnic => (8, 23),
        Rir::Arin => (83, 196),
        Rir::RipeNcc => (12, 19),
        // AFRINIC + LACNIC: 31 records over the whole window ⇒ ~0–2
        // per quarter combined.
        Rir::Afrinic | Rir::Lacnic => (0, 2),
    }
}

/// Prefix-length mix of priced transfers (skewed to /24, bounded at
/// /16 by the anonymization rule).
fn sample_len(rng: &mut impl Rng) -> u8 {
    let table: [(u8, f64); 9] = [
        (24, 0.46),
        (23, 0.15),
        (22, 0.13),
        (21, 0.08),
        (20, 0.07),
        (19, 0.045),
        (18, 0.030),
        (17, 0.020),
        (16, 0.015),
    ];
    let total: f64 = table.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen::<f64>() * total;
    for (len, w) in table {
        if x < w {
            return len;
        }
        x -= w;
    }
    24
}

fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generate the full data set.
pub fn generate_transactions(config: &TransactionConfig) -> Vec<PricedTransaction> {
    let span = obs::span!("market_transactions", unit = "transactions");
    let mut rng = Pcg64Mcg::seed_from_u64(config.seed ^ 0x7A4B_1EE7_0000_0005);
    let n_brokers = pricing_data_brokers().len();
    let mut out = Vec::new();

    let mut quarter_start = config.start;
    while quarter_start <= config.end {
        let (qy, qm, _) = quarter_start.to_ymd();
        let next_quarter = if qm >= 10 {
            Date::ymd(qy + 1, 1, 1).expect("valid")
        } else {
            Date::ymd(qy, qm + 3, 1).expect("valid")
        };
        let quarter_days = (next_quarter.min(config.end.succ())) - quarter_start;

        for region in Rir::ALL {
            let (lo, hi) = quarterly_band(region);
            let n = rng.gen_range(lo..=hi);
            for _ in 0..n {
                let len = sample_len(&mut rng);
                let day = quarter_start + rng.gen_range(0..quarter_days.max(1));
                let z = standard_normal(&mut rng);
                let price = config.model.sample_price(day, len, region, z);
                out.push(PricedTransaction {
                    date: day,
                    region,
                    prefix_len: len,
                    addresses: 1u64 << (32 - len as u32),
                    price_per_ip: price,
                    broker: rng.gen_range(0..n_brokers),
                });
            }
        }
        quarter_start = next_quarter;
    }
    out.sort_by_key(|t| t.date);
    span.add_items(out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_matches_paper_scale() {
        let txs = generate_transactions(&TransactionConfig::default());
        // The paper's set has 2.9k records; our per-quarter bands give
        // the same order of magnitude.
        assert!(
            (2000..=4000).contains(&txs.len()),
            "unexpected volume {}",
            txs.len()
        );
    }

    #[test]
    fn quarterly_bands_respected() {
        let txs = generate_transactions(&TransactionConfig::default());
        use std::collections::BTreeMap;
        let mut per_quarter: BTreeMap<(i64, Rir), u32> = BTreeMap::new();
        for t in &txs {
            *per_quarter.entry((t.date.quarter_index(), t.region)).or_default() += 1;
        }
        for ((qi, region), count) in per_quarter {
            let (lo, hi) = quarterly_band(region);
            assert!(
                count >= lo && count <= hi,
                "{region} quarter {qi}: {count} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn afrinic_lacnic_marginal() {
        let txs = generate_transactions(&TransactionConfig::default());
        let marginal = txs
            .iter()
            .filter(|t| matches!(t.region, Rir::Afrinic | Rir::Lacnic))
            .count();
        assert!(marginal < 60, "too many AFRINIC/LACNIC records: {marginal}");
    }

    #[test]
    fn all_blocks_slash16_or_more_specific() {
        let txs = generate_transactions(&TransactionConfig::default());
        for t in &txs {
            assert!((16..=24).contains(&t.prefix_len));
            assert_eq!(t.addresses, 1u64 << (32 - t.prefix_len as u32));
            assert!(t.price_per_ip > 0.0);
            assert!(t.date >= date("2016-01-01") && t.date <= date("2020-06-25"));
        }
    }

    #[test]
    fn deterministic() {
        let cfg = TransactionConfig::default();
        assert_eq!(generate_transactions(&cfg), generate_transactions(&cfg));
        let other = TransactionConfig {
            seed: 9,
            ..TransactionConfig::default()
        };
        assert_ne!(generate_transactions(&cfg), generate_transactions(&other));
    }

    #[test]
    fn consolidation_era_prices_near_reference() {
        let txs = generate_transactions(&TransactionConfig::default());
        let late: Vec<f64> = txs
            .iter()
            .filter(|t| t.date >= date("2019-07-01") && t.prefix_len <= 22)
            .map(|t| t.price_per_ip)
            .collect();
        assert!(late.len() > 100);
        let mean = late.iter().sum::<f64>() / late.len() as f64;
        // ≤/22 blocks carry little premium, so their mean sits near the
        // consolidated base (the /24 price is the paper's $22.50).
        assert!(
            (18.0..=23.0).contains(&mean),
            "late-market mean {mean:.2} off the consolidated level"
        );
    }
}
