//! Regional price-difference testing.
//!
//! The paper reports "no statistical difference in pricing across the
//! regions". We implement the Mann-Whitney U test (two-sided, normal
//! approximation with tie correction) and apply it pairwise to the
//! per-region price samples, controlling for time and size by testing
//! within (quarter, size-class) strata and combining via the weighted
//! z-score (Stouffer) method.

use crate::pricing::SizeClass;
use crate::transactions::PricedTransaction;
use registry::rir::Rir;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The result of a Mann-Whitney U test.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MwuResult {
    /// The U statistic (for the first sample).
    pub u: f64,
    /// Standard-normal z approximation.
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Sample sizes.
    pub n1: usize,
    /// Sample sizes.
    pub n2: usize,
}

/// Standard normal CDF via the Abramowitz-Stegun erf approximation
/// (max error ≈ 1.5e-7 — ample for significance testing).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Two-sided Mann-Whitney U test with tie-corrected normal
/// approximation. Returns `None` when either sample is empty.
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Option<MwuResult> {
    let (n1, n2) = (a.len(), b.len());
    if n1 == 0 || n2 == 0 {
        return None;
    }
    // Rank the pooled sample with average ranks for ties.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&v| (v, 0usize))
        .chain(b.iter().map(|&v| (v, 1usize)))
        .collect();
    pooled.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("no NaN"));
    let n = pooled.len();
    let mut ranks = vec![0.0f64; n];
    let mut tie_term = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = avg_rank;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let r1: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, src), _)| *src == 0)
        .map(|(_, r)| *r)
        .sum();
    let u1 = r1 - (n1 * (n1 + 1)) as f64 / 2.0;
    let mean_u = (n1 * n2) as f64 / 2.0;
    let nf = n as f64;
    let var_u = (n1 * n2) as f64 / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)));
    if var_u <= 0.0 {
        // All values tied: no evidence of difference.
        return Some(MwuResult {
            u: u1,
            z: 0.0,
            p_value: 1.0,
            n1,
            n2,
        });
    }
    // Continuity correction.
    let z = (u1 - mean_u - 0.5 * (u1 - mean_u).signum()) / var_u.sqrt();
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    Some(MwuResult {
        u: u1,
        z,
        p_value: p.clamp(0.0, 1.0),
        n1,
        n2,
    })
}

/// A pairwise regional comparison combined across (quarter, size)
/// strata.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegionalComparison {
    /// First region.
    pub a: Rir,
    /// Second region.
    pub b: Rir,
    /// Stouffer-combined z across strata.
    pub combined_z: f64,
    /// Two-sided p-value of the combined z.
    pub p_value: f64,
    /// Number of strata with data for both regions.
    pub strata: usize,
}

/// Test all pairs among APNIC/ARIN/RIPE for regional price
/// differences, stratified by (quarter, size class).
pub fn regional_difference_test(txs: &[PricedTransaction]) -> Vec<RegionalComparison> {
    // region → (quarter, size) → prices
    let mut strata: BTreeMap<(i64, SizeClass), BTreeMap<Rir, Vec<f64>>> = BTreeMap::new();
    for t in txs {
        if !Rir::MARKET_RIRS.contains(&t.region) {
            continue;
        }
        strata
            .entry((t.date.quarter_index(), SizeClass::from_len(t.prefix_len)))
            .or_default()
            .entry(t.region)
            .or_default()
            .push(t.price_per_ip);
    }
    let pairs = [
        (Rir::Apnic, Rir::Arin),
        (Rir::Apnic, Rir::RipeNcc),
        (Rir::Arin, Rir::RipeNcc),
    ];
    pairs
        .iter()
        .map(|&(a, b)| {
            let mut weighted_z = 0.0f64;
            let mut weight_sq = 0.0f64;
            let mut n_strata = 0usize;
            for samples in strata.values() {
                let (Some(sa), Some(sb)) = (samples.get(&a), samples.get(&b)) else {
                    continue;
                };
                if sa.len() < 3 || sb.len() < 3 {
                    continue;
                }
                if let Some(r) = mann_whitney_u(sa, sb) {
                    let w = ((sa.len() + sb.len()) as f64).sqrt();
                    weighted_z += w * r.z;
                    weight_sq += w * w;
                    n_strata += 1;
                }
            }
            let combined_z = if weight_sq > 0.0 {
                weighted_z / weight_sq.sqrt()
            } else {
                0.0
            };
            let p_value = 2.0 * (1.0 - normal_cdf(combined_z.abs()));
            RegionalComparison {
                a,
                b,
                combined_z,
                p_value: p_value.clamp(0.0, 1.0),
                strata: n_strata,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transactions::{generate_transactions, TransactionConfig};

    #[test]
    fn cdf_sanity() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(6.0) > 0.999_999);
    }

    #[test]
    fn mwu_detects_shift() {
        let a: Vec<f64> = (0..60).map(|i| 10.0 + (i % 7) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..60).map(|i| 14.0 + (i % 7) as f64 * 0.1).collect();
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_value < 0.001, "p = {}", r.p_value);
    }

    #[test]
    fn mwu_accepts_identical_distributions() {
        let a: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 3.0 + 20.0).collect();
        let b: Vec<f64> = (0..100).map(|i| ((i + 50) as f64 * 0.37).sin() * 3.0 + 20.0).collect();
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_value > 0.05, "p = {}", r.p_value);
    }

    #[test]
    fn mwu_handles_ties_and_empties() {
        assert!(mann_whitney_u(&[], &[1.0]).is_none());
        assert!(mann_whitney_u(&[1.0], &[]).is_none());
        let all_tied = mann_whitney_u(&[5.0; 10], &[5.0; 10]).unwrap();
        assert_eq!(all_tied.p_value, 1.0);
    }

    #[test]
    fn mwu_symmetry() {
        let a = [1.0, 3.0, 5.0, 7.0, 9.0, 11.0];
        let b = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0];
        let r1 = mann_whitney_u(&a, &b).unwrap();
        let r2 = mann_whitney_u(&b, &a).unwrap();
        assert!((r1.p_value - r2.p_value).abs() < 1e-9);
        assert!((r1.z + r2.z).abs() < 1e-9);
    }

    #[test]
    fn no_regional_difference_in_generated_market() {
        // The paper's key negative result: region does not move prices.
        let txs = generate_transactions(&TransactionConfig::default());
        for cmp in regional_difference_test(&txs) {
            assert!(cmp.strata > 10, "{:?}-{:?}: too few strata", cmp.a, cmp.b);
            assert!(
                cmp.p_value > 0.05,
                "{:?} vs {:?}: spurious regional difference (p = {:.4}, z = {:.2})",
                cmp.a,
                cmp.b,
                cmp.p_value,
                cmp.combined_z
            );
        }
    }

    #[test]
    fn regional_difference_detected_when_injected() {
        // Sanity: the test *can* reject. Inflate ARIN prices by 30 %.
        let mut txs = generate_transactions(&TransactionConfig::default());
        for t in txs.iter_mut() {
            if t.region == Rir::Arin {
                t.price_per_ip *= 1.3;
            }
        }
        let cmps = regional_difference_test(&txs);
        let arin_ripe = cmps
            .iter()
            .find(|c| c.a == Rir::Arin && c.b == Rir::RipeNcc)
            .unwrap();
        assert!(
            arin_ripe.p_value < 0.01,
            "expected detection, p = {}",
            arin_ripe.p_value
        );
    }
}
