//! Consolidation-phase detection.
//!
//! Investopedia-style definition used by the paper: a consolidation
//! phase is "a state in which the market price barely changes" —
//! detectable as the first sustained window where both the quarterly
//! median drift and the relative dispersion drop below thresholds.

use crate::transactions::PricedTransaction;
use nettypes::date::Date;
use registry::rir::Rir;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Detection output.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConsolidationFinding {
    /// Index of the first consolidated quarter (since 1970Q1).
    pub start_quarter_index: i64,
    /// Label of that quarter, e.g. `2019Q2`.
    pub start_quarter_label: String,
    /// Median price during the consolidated window.
    pub consolidated_median: f64,
}

/// Per-quarter pooled median and relative IQR across the market RIRs.
fn quarterly_profile(txs: &[PricedTransaction]) -> BTreeMap<i64, (String, f64, f64)> {
    let mut groups: BTreeMap<i64, (String, Vec<f64>)> = BTreeMap::new();
    for t in txs {
        if !Rir::MARKET_RIRS.contains(&t.region) {
            continue;
        }
        let e = groups
            .entry(t.date.quarter_index())
            .or_insert_with(|| (t.date.quarter_label(), Vec::new()));
        e.1.push(t.price_per_ip);
    }
    groups
        .into_iter()
        .filter(|(_, (_, v))| v.len() >= 10)
        .map(|(qi, (label, mut v))| {
            v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let median = super::boxplot::quantile_sorted(&v, 0.5);
            let iqr = super::boxplot::quantile_sorted(&v, 0.75)
                - super::boxplot::quantile_sorted(&v, 0.25);
            (qi, (label, median, iqr / median))
        })
        .collect()
}

/// Detect the start of the consolidation phase: the first quarter
/// from which, for at least `min_quarters` consecutive quarters, the
/// quarter-over-quarter median drift stays below `max_drift`
/// (relative) and the relative IQR stays below `max_rel_iqr`.
pub fn detect_consolidation(
    txs: &[PricedTransaction],
    max_drift: f64,
    max_rel_iqr: f64,
    min_quarters: usize,
) -> Option<ConsolidationFinding> {
    let profile = quarterly_profile(txs);
    let quarters: Vec<(&i64, &(String, f64, f64))> = profile.iter().collect();
    if quarters.len() < min_quarters + 1 {
        return None;
    }
    for start in 1..quarters.len() {
        if quarters.len() - start < min_quarters {
            break;
        }
        let window_ok = (start..quarters.len()).take(min_quarters).all(|i| {
            let (_, (_, median, rel_iqr)) = quarters[i];
            let (_, (_, prev_median, _)) = quarters[i - 1];
            let drift = (median - prev_median).abs() / prev_median;
            drift <= max_drift && *rel_iqr <= max_rel_iqr
        });
        if window_ok {
            let (qi, (label, median, _)) = quarters[start];
            return Some(ConsolidationFinding {
                start_quarter_index: *qi,
                start_quarter_label: label.clone(),
                consolidated_median: *median,
            });
        }
    }
    None
}

/// Convenience wrapper with the thresholds used in the reproduction
/// (≤4 % drift — the quarterly-median sampling noise at ~120 records
/// per quarter is ~2.5 % — ≤15 % relative IQR, sustained for 4
/// quarters).
pub fn detect_consolidation_default(txs: &[PricedTransaction]) -> Option<ConsolidationFinding> {
    detect_consolidation(txs, 0.04, 0.15, 4)
}

/// Helper for reporting: the date a quarter index begins.
pub fn quarter_start_date(quarter_index: i64) -> Date {
    let year = 1970 + quarter_index.div_euclid(4);
    let month = (quarter_index.rem_euclid(4) * 3 + 1) as u8;
    Date::ymd(year, month, 1).expect("valid quarter start")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transactions::{generate_transactions, TransactionConfig};
    use nettypes::date::date;

    #[test]
    fn detects_spring_2019() {
        let txs = generate_transactions(&TransactionConfig::default());
        let f = detect_consolidation_default(&txs).expect("consolidation detected");
        // The model consolidates at 2019-04-01; detection may lag a
        // quarter but must land in 2019.
        let start = quarter_start_date(f.start_quarter_index);
        assert!(
            start >= date("2019-01-01") && start <= date("2019-10-01"),
            "detected {} ({})",
            f.start_quarter_label,
            start
        );
        assert!(
            (19.0..=24.0).contains(&f.consolidated_median),
            "median {}",
            f.consolidated_median
        );
    }

    #[test]
    fn no_detection_in_trending_market() {
        // Cut the data at 2018: the market is still trending.
        let txs: Vec<_> = generate_transactions(&TransactionConfig::default())
            .into_iter()
            .filter(|t| t.date < date("2018-07-01"))
            .collect();
        assert_eq!(detect_consolidation_default(&txs), None);
    }

    #[test]
    fn quarter_start_roundtrip() {
        let d = date("2019-04-01");
        assert_eq!(quarter_start_date(d.quarter_index()), d);
        let d2 = date("2020-01-01");
        assert_eq!(quarter_start_date(d2.quarter_index()), d2);
    }

    #[test]
    fn empty_input() {
        assert_eq!(detect_consolidation_default(&[]), None);
    }
}
