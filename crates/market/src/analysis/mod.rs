//! Statistical analyses over the transaction data set.

pub mod boxplot;
pub mod consolidation;
pub mod significance;

pub use boxplot::{boxplot_grid, BoxStats, PriceBox};
pub use consolidation::{detect_consolidation, ConsolidationFinding};
pub use significance::{mann_whitney_u, regional_difference_test, MwuResult};
