//! Box-plot statistics for Figure 1: price per IP grouped by prefix
//! size, region, and three-month interval.

use crate::pricing::SizeClass;
use crate::transactions::PricedTransaction;
use registry::rir::Rir;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Five-number summary (plus count and mean).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Sample size.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl BoxStats {
    /// Compute from an unsorted sample; `None` for an empty sample.
    pub fn compute(values: &[f64]) -> Option<BoxStats> {
        if values.is_empty() {
            return None;
        }
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN prices"));
        Some(BoxStats {
            count: v.len(),
            min: v[0],
            q1: quantile_sorted(&v, 0.25),
            median: quantile_sorted(&v, 0.5),
            q3: quantile_sorted(&v, 0.75),
            max: v[v.len() - 1],
            mean: v.iter().sum::<f64>() / v.len() as f64,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Linear-interpolated quantile of a sorted sample.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// One box of Figure 1.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PriceBox {
    /// Quarter index since 1970Q1.
    pub quarter_index: i64,
    /// Quarter label, e.g. `2019Q2`.
    pub quarter_label: String,
    /// Region.
    pub region: Rir,
    /// Size class.
    pub size: SizeClass,
    /// The statistics.
    pub stats: BoxStats,
}

/// Build the full Figure 1 grid from a transaction set. AFRINIC and
/// LACNIC are excluded, as in the paper.
pub fn boxplot_grid(txs: &[PricedTransaction]) -> Vec<PriceBox> {
    let mut groups: BTreeMap<(i64, Rir, SizeClass), (Vec<f64>, String)> = BTreeMap::new();
    for t in txs {
        if !Rir::MARKET_RIRS.contains(&t.region) {
            continue;
        }
        let e = groups
            .entry((
                t.date.quarter_index(),
                t.region,
                SizeClass::from_len(t.prefix_len),
            ))
            .or_insert_with(|| (Vec::new(), t.date.quarter_label()));
        e.0.push(t.price_per_ip);
    }
    groups
        .into_iter()
        .filter_map(|((qi, region, size), (values, label))| {
            BoxStats::compute(&values).map(|stats| PriceBox {
                quarter_index: qi,
                quarter_label: label,
                region,
                size,
                stats,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transactions::{generate_transactions, TransactionConfig};
    use nettypes::date::date;

    #[test]
    fn quantiles_match_hand_computed() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&v, 0.0), 1.0);
        assert_eq!(quantile_sorted(&v, 1.0), 4.0);
        assert_eq!(quantile_sorted(&v, 0.5), 2.5);
        assert_eq!(quantile_sorted(&v, 0.25), 1.75);
        let single = [7.0];
        assert_eq!(quantile_sorted(&single, 0.5), 7.0);
    }

    #[test]
    fn boxstats_basics() {
        assert!(BoxStats::compute(&[]).is_none());
        let s = BoxStats::compute(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 3.0);
        assert!(s.iqr() > 0.0);
    }

    #[test]
    fn grid_excludes_marginal_regions() {
        let txs = generate_transactions(&TransactionConfig::default());
        let grid = boxplot_grid(&txs);
        assert!(!grid.is_empty());
        assert!(grid
            .iter()
            .all(|b| Rir::MARKET_RIRS.contains(&b.region)));
    }

    #[test]
    fn grid_shows_doubling() {
        let txs = generate_transactions(&TransactionConfig::default());
        let grid = boxplot_grid(&txs);
        let median_in = |label: &str| {
            let boxes: Vec<&PriceBox> = grid.iter().filter(|b| b.quarter_label == label).collect();
            let total: usize = boxes.iter().map(|b| b.stats.count).sum();
            let weighted: f64 = boxes
                .iter()
                .map(|b| b.stats.median * b.stats.count as f64)
                .sum();
            weighted / total as f64
        };
        let early = median_in("2016Q1");
        let late = median_in("2020Q1");
        let ratio = late / early;
        assert!((1.6..=2.4).contains(&ratio), "growth ratio {ratio:.2}");
    }

    #[test]
    fn grid_shows_small_block_premium() {
        let txs = generate_transactions(&TransactionConfig::default());
        let grid = boxplot_grid(&txs);
        // Aggregate 2019-2020 medians per size class.
        let median_of = |size: SizeClass| {
            let vals: Vec<f64> = grid
                .iter()
                .filter(|b| b.size == size && b.quarter_label.as_str() >= "2019Q1")
                .map(|b| b.stats.median)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(median_of(SizeClass::Slash24) > median_of(SizeClass::Slash22));
        assert!(median_of(SizeClass::Slash23) > median_of(SizeClass::Slash16));
    }

    #[test]
    fn variance_collapses_in_consolidation() {
        let txs = generate_transactions(&TransactionConfig::default());
        let grid = boxplot_grid(&txs);
        let mean_iqr = |year_quarter: &str| {
            let v: Vec<f64> = grid
                .iter()
                .filter(|b| b.quarter_label == year_quarter && b.stats.count >= 5)
                .map(|b| b.stats.iqr() / b.stats.median)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        let pre = mean_iqr("2018Q2");
        let post = mean_iqr("2020Q1");
        assert!(
            post < pre * 0.6,
            "relative IQR should collapse: pre {pre:.3} post {post:.3}"
        );
        let _ = date("2019-04-01"); // marker used by consolidation tests
    }
}
