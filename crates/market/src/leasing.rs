//! The advertised-leasing-price catalog (Figure 4).
//!
//! The paper scraped advertised prices for leasing a /24 for one
//! month from 12 provider websites between 2019-10-26 and 2020-06-01,
//! adding 9 more on 2020-06-01. Prices ranged **$0.30 to $2.33 per IP
//! per month** with no structural difference between pure leasing
//! providers and leasing bundled with hosting. Only three providers
//! changed prices (Heficed $0.65 → $0.40; IPv4Mall $0.35 → $0.56;
//! IP-AS $1.17 → $2.33 with a $3.90 January spike). This module
//! encodes those observations as data, plus the multi-month/size
//! discount structure mentioned in §4.

use nettypes::date::{date, Date};
use serde::{Deserialize, Serialize};

/// Whether a provider leases IPs standalone or bundles them with
/// infrastructure hosting.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ProviderKind {
    /// Pure IP leasing.
    PureLeasing,
    /// IP leasing bundled with hosting / infrastructure.
    BundledHosting,
}

/// A dated advertised price (USD per IP per month for a /24,
/// single-month commitment).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PricePoint {
    /// Date the price became advertised.
    pub from: Date,
    /// USD per IP per month.
    pub price: f64,
}

/// One leasing provider's advertised-price history.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LeasingProvider {
    /// Provider name as cited in the paper.
    pub name: &'static str,
    /// Pure leasing or bundled with hosting.
    pub kind: ProviderKind,
    /// First date the paper observed the provider (12 sites from
    /// 2019-10-26, 9 more added 2020-06-01).
    pub observed_from: Date,
    /// Price history (sorted by `from`; first entry at or before
    /// `observed_from`).
    pub prices: Vec<PricePoint>,
    /// Maximum advertised discount for larger blocks or multi-month
    /// commitments (≤ 10 % per §4).
    pub max_discount: f64,
}

impl LeasingProvider {
    /// The advertised price on `when`, if the provider was already
    /// observed.
    pub fn price_on(&self, when: Date) -> Option<f64> {
        if when < self.observed_from {
            return None;
        }
        self.prices
            .iter()
            .rev()
            .find(|p| p.from <= when)
            .map(|p| p.price)
    }

    /// The discounted price for a commitment, clamped to the ≤10 %
    /// discount band.
    pub fn discounted_price(&self, when: Date, months: u32, slash24_blocks: u32) -> Option<f64> {
        let base = self.price_on(when)?;
        let mut discount: f64 = 0.0;
        if months >= 12 {
            discount += 0.06;
        } else if months >= 6 {
            discount += 0.03;
        }
        if slash24_blocks >= 16 {
            discount += 0.04;
        } else if slash24_blocks >= 4 {
            discount += 0.02;
        }
        Some(base * (1.0 - discount.min(self.max_discount)))
    }

    /// Whether the provider changed its advertised price during the
    /// observation window.
    pub fn changed_price(&self) -> bool {
        self.prices.len() > 1
    }
}

const W1: &str = "2019-10-26"; // first scrape wave
const W2: &str = "2020-06-01"; // second wave (9 additional sites)

fn p(name: &'static str, kind: ProviderKind, wave: &str, cents: &[(&str, f64)]) -> LeasingProvider {
    LeasingProvider {
        name,
        kind,
        observed_from: date(wave),
        prices: cents
            .iter()
            .map(|(d, v)| PricePoint {
                from: date(d),
                price: *v,
            })
            .collect(),
        max_discount: 0.10,
    }
}

/// The 21-provider catalog with the actual prices reported in the
/// paper. Prices for providers the paper does not quote individually
/// are placed inside the reported $0.30–$2.33 band.
pub fn leasing_catalog() -> Vec<LeasingProvider> {
    use ProviderKind::*;
    vec![
        // --- Wave 1 (observed from 2019-10-26): 12 providers.
        p("Heficed", BundledHosting, W1, &[(W1, 0.65), ("2020-03-01", 0.40)]),
        p("IPv4Mall", PureLeasing, W1, &[(W1, 0.35), ("2020-02-15", 0.56)]),
        p(
            "IP-AS",
            PureLeasing,
            W1,
            &[
                (W1, 1.17),
                ("2020-01-05", 3.90), // January market test, >10x the floor
                ("2020-02-01", 2.33),
            ],
        ),
        p("IPRoyal", PureLeasing, W1, &[(W1, 0.80)]),
        p("LogicWeb", BundledHosting, W1, &[(W1, 1.00)]),
        p("Logosnet", BundledHosting, W1, &[(W1, 0.75)]),
        p("DevelApp", PureLeasing, W1, &[(W1, 0.45)]),
        p("GetIPAddresses", PureLeasing, W1, &[(W1, 0.60)]),
        p("HostHoney", BundledHosting, W1, &[(W1, 0.55)]),
        p("IPV4Broker", PureLeasing, W1, &[(W1, 0.90)]),
        p("Fork Networking", BundledHosting, W1, &[(W1, 1.25)]),
        p("ProstoHost", BundledHosting, W1, &[(W1, 0.50)]),
        // --- Wave 2 (added 2020-06-01): 9 providers.
        p("AnyIP", PureLeasing, W2, &[(W2, 0.30)]),
        p("CH-CENTER", PureLeasing, W2, &[(W2, 0.70)]),
        p("Deploymentcode", BundledHosting, W2, &[(W2, 0.85)]),
        p("Hetzner", BundledHosting, W2, &[(W2, 1.10)]),
        p("LIR.SERVICES", PureLeasing, W2, &[(W2, 0.95)]),
        p("PrefixBroker", PureLeasing, W2, &[(W2, 1.40)]),
        p("RapidDedi", BundledHosting, W2, &[(W2, 0.65)]),
        p("RentIPv4", PureLeasing, W2, &[(W2, 1.75)]),
        p("Hostio Solutions", BundledHosting, W2, &[(W2, 2.10)]),
    ]
}

/// The advertised prices visible on `when` across the catalog.
pub fn prices_on(catalog: &[LeasingProvider], when: Date) -> Vec<(&'static str, f64)> {
    catalog
        .iter()
        .filter_map(|pr| pr.price_on(when).map(|v| (pr.name, v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_21_providers_in_two_waves() {
        let c = leasing_catalog();
        assert_eq!(c.len(), 21);
        let wave1 = c.iter().filter(|p| p.observed_from == date(W1)).count();
        let wave2 = c.iter().filter(|p| p.observed_from == date(W2)).count();
        assert_eq!(wave1, 12);
        assert_eq!(wave2, 9);
    }

    #[test]
    fn price_band_matches_paper() {
        let c = leasing_catalog();
        let final_prices = prices_on(&c, date("2020-06-01"));
        assert_eq!(final_prices.len(), 21);
        let min = final_prices.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        let max = final_prices.iter().map(|(_, v)| *v).fold(0.0, f64::max);
        assert!((min - 0.30).abs() < 1e-9, "floor {min}");
        assert!((max - 2.33).abs() < 1e-9, "ceiling {max}");
    }

    #[test]
    fn exactly_three_price_changers() {
        let c = leasing_catalog();
        let changers: Vec<&str> = c
            .iter()
            .filter(|p| p.changed_price())
            .map(|p| p.name)
            .collect();
        assert_eq!(changers, vec!["Heficed", "IPv4Mall", "IP-AS"]);
    }

    #[test]
    fn reported_price_changes() {
        let c = leasing_catalog();
        let heficed = c.iter().find(|p| p.name == "Heficed").unwrap();
        assert_eq!(heficed.price_on(date("2019-11-01")), Some(0.65));
        assert_eq!(heficed.price_on(date("2020-06-01")), Some(0.40));
        let mall = c.iter().find(|p| p.name == "IPv4Mall").unwrap();
        assert_eq!(mall.price_on(date("2019-11-01")), Some(0.35));
        assert_eq!(mall.price_on(date("2020-06-01")), Some(0.56));
        let ipas = c.iter().find(|p| p.name == "IP-AS").unwrap();
        assert_eq!(ipas.price_on(date("2019-11-01")), Some(1.17));
        assert_eq!(ipas.price_on(date("2020-01-15")), Some(3.90));
        assert_eq!(ipas.price_on(date("2020-06-01")), Some(2.33));
    }

    #[test]
    fn january_spike_is_over_10x_floor() {
        let c = leasing_catalog();
        let jan = date("2020-01-15");
        let visible = prices_on(&c, jan);
        let min = visible.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        let max = visible.iter().map(|(_, v)| *v).fold(0.0, f64::max);
        assert!(max / min > 10.0, "spike ratio {}", max / min);
    }

    #[test]
    fn wave2_invisible_before_june() {
        let c = leasing_catalog();
        let anyip = c.iter().find(|p| p.name == "AnyIP").unwrap();
        assert_eq!(anyip.price_on(date("2020-05-31")), None);
        assert_eq!(anyip.price_on(date("2020-06-01")), Some(0.30));
        assert_eq!(prices_on(&c, date("2020-05-31")).len(), 12);
    }

    #[test]
    fn no_structural_kind_difference() {
        // Means of the two kinds overlap broadly (no converged market):
        // the pure/bundled split should not separate the price range.
        let c = leasing_catalog();
        let when = date("2020-06-01");
        let pure: Vec<f64> = c
            .iter()
            .filter(|p| p.kind == ProviderKind::PureLeasing)
            .filter_map(|p| p.price_on(when))
            .collect();
        let bundled: Vec<f64> = c
            .iter()
            .filter(|p| p.kind == ProviderKind::BundledHosting)
            .filter_map(|p| p.price_on(when))
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (mp, mb) = (mean(&pure), mean(&bundled));
        assert!(
            (mp - mb).abs() / mp.max(mb) < 0.35,
            "kinds separated: pure {mp:.2} vs bundled {mb:.2}"
        );
    }

    #[test]
    fn discounts_capped_at_10_percent() {
        let c = leasing_catalog();
        let heficed = c.iter().find(|p| p.name == "Heficed").unwrap();
        let when = date("2020-06-01");
        let base = heficed.price_on(when).unwrap();
        let best = heficed.discounted_price(when, 24, 64).unwrap();
        assert!(best >= base * 0.90 - 1e-9);
        assert!(best < base);
        // No commitment, no discount.
        assert_eq!(heficed.discounted_price(when, 1, 1), Some(base));
    }
}
