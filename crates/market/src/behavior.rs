//! Business-model-driven market behaviour (§6).
//!
//! The paper's discussion ties how an organization engages with the
//! leasing and transfer markets to its business model:
//!
//! * **ISPs** buy blocks *larger* than /20 intending to lease parts
//!   out to customers,
//! * **long-term customers (enterprises)** buy blocks *smaller* than
//!   /20 and terminate their leases,
//! * **young businesses (startups)** lease small blocks, grow, and buy
//!   once funded,
//! * **VPN providers** continuously lease but *rotate* the actual IPs
//!   so blocking is harder,
//! * **spammers** use short-lived leases of varying sizes while
//!   keeping their own space clean,
//! * **buy and lease back**: space-rich organizations sell to a broker
//!   and lease back what they need, for immediate cash flow with a
//!   guaranteed supply.
//!
//! [`simulate_behaviors`] turns those rules into dated action traces;
//! the aggregate statistics reproduce §6's qualitative claims and the
//! buy-and-lease-back cash-flow model quantifies the contract.

use nettypes::date::{Date, DateRange};
use rand::prelude::*;
use rand_pcg::Pcg64Mcg;
use registry::org::{OrgId, OrgKind};
use serde::{Deserialize, Serialize};

/// One market action by one organization.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum MarketAction {
    /// Buy a block of the given prefix length.
    Buy {
        /// Prefix length bought.
        len: u8,
    },
    /// Start a lease of the given length for the given months.
    Lease {
        /// Prefix length leased.
        len: u8,
        /// Contract length in months.
        months: u32,
    },
    /// Terminate an existing lease (e.g. after buying).
    TerminateLease,
    /// Rotate the leased addresses (same size, different IPs).
    Rotate,
    /// Sell own space to a broker and lease part of it back.
    SellAndLeaseBack {
        /// Prefix length sold.
        sold_len: u8,
        /// Prefix length leased back.
        leaseback_len: u8,
    },
}

/// A dated action in an organization's trace.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TracedAction {
    /// When.
    pub date: Date,
    /// Who.
    pub org: OrgId,
    /// The org's business model.
    pub kind: OrgKind,
    /// What.
    pub action: MarketAction,
}

/// Configuration for the behaviour simulation.
#[derive(Clone, Debug)]
pub struct BehaviorConfig {
    /// RNG seed.
    pub seed: u64,
    /// Simulated window.
    pub span: DateRange,
    /// Organizations per kind.
    pub orgs_per_kind: usize,
}

/// Simulate per-kind behaviour traces.
pub fn simulate_behaviors(config: &BehaviorConfig) -> Vec<TracedAction> {
    let mut rng = Pcg64Mcg::seed_from_u64(config.seed ^ 0xBE4A_F10E_0000_0007);
    let mut out = Vec::new();
    let days = config.span.num_days();
    let mut org_counter = 0u32;

    for kind in OrgKind::ALL {
        for _ in 0..config.orgs_per_kind {
            let org = OrgId(5_000_000 + org_counter);
            org_counter += 1;
            let push = |date: Date, action: MarketAction, out: &mut Vec<TracedAction>| {
                out.push(TracedAction {
                    date,
                    org,
                    kind,
                    action,
                })
            };
            match kind {
                OrgKind::Isp => {
                    // Buys large (/17–/19), then leases parts out —
                    // the leasing-out side appears as the counterparty
                    // of startup/VPN leases; here we record the buys.
                    let d = config.span.start + rng.gen_range(0..days);
                    push(d, MarketAction::Buy { len: rng.gen_range(17..=19) }, &mut out);
                }
                OrgKind::Enterprise => {
                    // Buys small (/21–/24) and terminates its lease.
                    let d = config.span.start + rng.gen_range(0..days.max(31) - 30);
                    let len = rng.gen_range(21..=24);
                    push(d, MarketAction::Buy { len }, &mut out);
                    push(d + rng.gen_range(1..=30), MarketAction::TerminateLease, &mut out);
                }
                OrgKind::Startup => {
                    // Leases small, upgrades, eventually buys.
                    let mut d = config.span.start + rng.gen_range(0..days / 3);
                    let mut len = 24u8;
                    push(d, MarketAction::Lease { len, months: 3 }, &mut out);
                    while rng.gen::<f64>() < 0.7 && len > 22 && d < config.span.end - 120 {
                        d += rng.gen_range(60..=120);
                        len -= 1;
                        push(d, MarketAction::Lease { len, months: 6 }, &mut out);
                    }
                    if rng.gen::<f64>() < 0.6 && d < config.span.end - 30 {
                        let buy_day = (d + rng.gen_range(30..=60)).min(config.span.end);
                        push(buy_day, MarketAction::Buy { len: len.max(22) }, &mut out);
                        push(buy_day, MarketAction::TerminateLease, &mut out);
                    }
                }
                OrgKind::VpnProvider => {
                    // One long lease, rotated frequently.
                    let d0 = config.span.start + rng.gen_range(0..days / 4);
                    push(d0, MarketAction::Lease { len: 23, months: 12 }, &mut out);
                    let mut d = d0;
                    loop {
                        d += rng.gen_range(20..=40);
                        if d > config.span.end {
                            break;
                        }
                        push(d, MarketAction::Rotate, &mut out);
                    }
                }
                OrgKind::Spammer => {
                    // Many short leases of varying sizes.
                    let n = rng.gen_range(4..=10);
                    for _ in 0..n {
                        let d = config.span.start + rng.gen_range(0..days);
                        push(
                            d,
                            MarketAction::Lease {
                                len: rng.gen_range(22..=24),
                                months: 1,
                            },
                            &mut out,
                        );
                    }
                }
                OrgKind::Hoster => {
                    // Leases bundled with infrastructure; medium blocks.
                    let d = config.span.start + rng.gen_range(0..days);
                    push(d, MarketAction::Lease { len: rng.gen_range(20..=22), months: 12 }, &mut out);
                }
                OrgKind::LeasingProvider => {
                    // Space-rich: sells big and leases back a part.
                    if rng.gen::<f64>() < 0.5 {
                        let d = config.span.start + rng.gen_range(0..days);
                        push(
                            d,
                            MarketAction::SellAndLeaseBack {
                                sold_len: rng.gen_range(16..=18),
                                leaseback_len: rng.gen_range(19..=20),
                            },
                            &mut out,
                        );
                    }
                }
            }
        }
    }
    out.sort_by_key(|t| (t.date, t.org.0));
    out
}

/// Per-kind aggregate statistics.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct KindProfile {
    /// Mean bought block size in addresses (0 if the kind never buys).
    pub mean_buy_addresses: f64,
    /// Number of buys.
    pub buys: usize,
    /// Number of lease starts.
    pub leases: usize,
    /// Mean lease contract length in months.
    pub mean_lease_months: f64,
    /// Rotations per lease.
    pub rotations_per_lease: f64,
    /// Lease terminations.
    pub terminations: usize,
    /// Sell-and-lease-back contracts.
    pub leasebacks: usize,
}

/// Aggregate a trace into per-kind profiles.
pub fn profile_by_kind(trace: &[TracedAction]) -> Vec<(OrgKind, KindProfile)> {
    let mut out: Vec<(OrgKind, KindProfile)> = OrgKind::ALL
        .iter()
        .map(|&k| (k, KindProfile::default()))
        .collect();
    for t in trace {
        let profile = &mut out
            .iter_mut()
            .find(|(k, _)| *k == t.kind)
            .expect("all kinds present")
            .1;
        match t.action {
            MarketAction::Buy { len } => {
                profile.buys += 1;
                profile.mean_buy_addresses += (1u64 << (32 - len as u32)) as f64;
            }
            MarketAction::Lease { months, .. } => {
                profile.leases += 1;
                profile.mean_lease_months += months as f64;
            }
            MarketAction::Rotate => profile.rotations_per_lease += 1.0,
            MarketAction::TerminateLease => profile.terminations += 1,
            MarketAction::SellAndLeaseBack { .. } => profile.leasebacks += 1,
        }
    }
    for (_, p) in &mut out {
        if p.buys > 0 {
            p.mean_buy_addresses /= p.buys as f64;
        }
        if p.leases > 0 {
            p.mean_lease_months /= p.leases as f64;
            p.rotations_per_lease /= p.leases as f64;
        }
    }
    out
}

/// The buy-and-lease-back cash-flow model (§6): an organization sells
/// `sold_addresses` at `price_per_ip` through a broker taking
/// `commission` and leases back `leaseback_addresses` at
/// `lease_per_ip_month`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LeaseBackContract {
    /// Addresses sold.
    pub sold_addresses: u64,
    /// Sale price (USD/IP).
    pub price_per_ip: f64,
    /// Broker commission rate on the sale.
    pub commission: f64,
    /// Addresses leased back.
    pub leaseback_addresses: u64,
    /// Lease-back rate (USD/IP/month).
    pub lease_per_ip_month: f64,
}

impl LeaseBackContract {
    /// Immediate cash to the seller.
    pub fn immediate_cash(&self) -> f64 {
        self.sold_addresses as f64 * self.price_per_ip * (1.0 - self.commission)
    }

    /// Monthly lease-back cost.
    pub fn monthly_cost(&self) -> f64 {
        self.leaseback_addresses as f64 * self.lease_per_ip_month
    }

    /// Months until the lease-back payments consume the sale proceeds
    /// (`None` when the lease-back is free).
    pub fn cash_horizon_months(&self) -> Option<f64> {
        let m = self.monthly_cost();
        if m <= 0.0 {
            return None;
        }
        Some(self.immediate_cash() / m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettypes::date::date;

    fn trace() -> Vec<TracedAction> {
        simulate_behaviors(&BehaviorConfig {
            seed: 5,
            span: DateRange::new(date("2019-01-01"), date("2020-06-01")),
            orgs_per_kind: 60,
        })
    }

    #[test]
    fn section6_buy_size_split() {
        let profiles = profile_by_kind(&trace());
        let get = |k: OrgKind| profiles.iter().find(|(kk, _)| *kk == k).unwrap().1.clone();
        let isp = get(OrgKind::Isp);
        let ent = get(OrgKind::Enterprise);
        // ISPs buy blocks larger than /20 (> 4096 addresses)…
        assert!(isp.mean_buy_addresses > 4096.0, "{}", isp.mean_buy_addresses);
        // …long-term customers smaller than /20.
        assert!(ent.mean_buy_addresses < 4096.0, "{}", ent.mean_buy_addresses);
        assert!(isp.buys > 0 && ent.buys > 0);
        // Enterprises terminate leases when they buy.
        assert!(ent.terminations >= ent.buys);
    }

    #[test]
    fn vpn_rotation_and_spammer_churn() {
        let profiles = profile_by_kind(&trace());
        let get = |k: OrgKind| profiles.iter().find(|(kk, _)| *kk == k).unwrap().1.clone();
        let vpn = get(OrgKind::VpnProvider);
        assert!(
            vpn.rotations_per_lease > 3.0,
            "VPN rotations/lease {}",
            vpn.rotations_per_lease
        );
        let spam = get(OrgKind::Spammer);
        // Spammers: many short leases.
        assert!(spam.leases as f64 / 60.0 > 3.0, "spam leases {}", spam.leases);
        assert!(spam.mean_lease_months <= 1.5);
        // Startups lease first, a majority buy later.
        let startup = get(OrgKind::Startup);
        assert!(startup.leases > startup.buys);
        assert!(startup.buys > 0);
    }

    #[test]
    fn leaseback_contracts_exist_for_space_rich_orgs() {
        let profiles = profile_by_kind(&trace());
        let lp = profiles
            .iter()
            .find(|(k, _)| *k == OrgKind::LeasingProvider)
            .unwrap()
            .1
            .clone();
        assert!(lp.leasebacks > 10);
        // No other kind signs lease-backs.
        for (k, p) in &profiles {
            if *k != OrgKind::LeasingProvider {
                assert_eq!(p.leasebacks, 0, "{k:?}");
            }
        }
    }

    #[test]
    fn leaseback_cashflow() {
        // Sell a /16 at $22.50 with 6 % commission, lease back a /19.
        let c = LeaseBackContract {
            sold_addresses: 65_536,
            price_per_ip: 22.50,
            commission: 0.06,
            leaseback_addresses: 8_192,
            lease_per_ip_month: 0.50,
        };
        let cash = c.immediate_cash();
        assert!((cash - 65_536.0 * 22.50 * 0.94).abs() < 1e-6);
        assert!((c.monthly_cost() - 4096.0).abs() < 1e-6);
        let horizon = c.cash_horizon_months().unwrap();
        // The proceeds fund the lease-back for decades — the §6
        // rationale for the contract.
        assert!(horizon > 300.0, "horizon {horizon}");
        // Free lease-back edge case.
        let free = LeaseBackContract {
            lease_per_ip_month: 0.0,
            ..c
        };
        assert_eq!(free.cash_horizon_months(), None);
    }

    #[test]
    fn traces_sorted_and_in_window() {
        let t = trace();
        assert!(t.windows(2).all(|w| w[0].date <= w[1].date));
        let span = DateRange::new(date("2019-01-01"), date("2020-06-01"));
        assert!(t.iter().all(|a| span.contains(a.date)));
    }

    #[test]
    fn deterministic() {
        let cfg = BehaviorConfig {
            seed: 9,
            span: DateRange::new(date("2019-01-01"), date("2019-12-31")),
            orgs_per_kind: 20,
        };
        assert_eq!(simulate_behaviors(&cfg), simulate_behaviors(&cfg));
    }
}
