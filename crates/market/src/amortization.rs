//! Buy-vs-lease amortization (§6 / conclusion).
//!
//! Buying costs `buy` USD per IP up front plus `maintenance` per IP
//! per month thereafter (the RIR's annual resource fees, amortized per
//! address — dominant for small LIRs, negligible for large holders).
//! Leasing costs `lease` per IP per month. Buying amortizes after
//!
//! ```text
//! t = buy / (lease − maintenance)      [months]
//! ```
//!
//! With the 2020 prices (buy ≈ $22.50, lease $0.30–$2.40, maintenance
//! $0–$0.25) this spans **under a year to 36 years**, matching the
//! paper's headline; broker-reported customer averages are 2–3 years.

use serde::{Deserialize, Serialize};

/// Months needed for buying to beat leasing, or `None` when the lease
/// rate does not exceed the maintenance cost (buying never amortizes).
pub fn amortization_months(
    buy_per_ip: f64,
    lease_per_ip_month: f64,
    maintenance_per_ip_month: f64,
) -> Option<f64> {
    let net_saving = lease_per_ip_month - maintenance_per_ip_month;
    if net_saving <= 0.0 || buy_per_ip <= 0.0 {
        return None;
    }
    Some(buy_per_ip / net_saving)
}

/// A named amortization scenario for the §6 report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AmortizationScenario {
    /// Scenario label.
    pub label: String,
    /// Buy price (USD/IP).
    pub buy_per_ip: f64,
    /// Lease price (USD/IP/month).
    pub lease_per_ip_month: f64,
    /// Maintenance (USD/IP/month).
    pub maintenance_per_ip_month: f64,
}

impl AmortizationScenario {
    /// Amortization time in months.
    pub fn months(&self) -> Option<f64> {
        amortization_months(
            self.buy_per_ip,
            self.lease_per_ip_month,
            self.maintenance_per_ip_month,
        )
    }

    /// Amortization time in years.
    pub fn years(&self) -> Option<f64> {
        self.months().map(|m| m / 12.0)
    }
}

/// The §6 scenario grid: the fastest case (expensive lease, no
/// maintenance), the broker-reported average band, and the slowest
/// case (cheapest lease, small-LIR maintenance).
pub fn section6_scenarios() -> Vec<AmortizationScenario> {
    vec![
        AmortizationScenario {
            label: "fastest: $2.40 lease, large holder".into(),
            buy_per_ip: 22.50,
            lease_per_ip_month: 2.40,
            maintenance_per_ip_month: 0.0,
        },
        AmortizationScenario {
            label: "typical: $0.75 lease, modest fees".into(),
            buy_per_ip: 22.50,
            lease_per_ip_month: 0.75,
            maintenance_per_ip_month: 0.05,
        },
        AmortizationScenario {
            label: "slow: $0.40 lease, modest fees".into(),
            buy_per_ip: 25.40, // /24 premium price
            lease_per_ip_month: 0.40,
            maintenance_per_ip_month: 0.05,
        },
        AmortizationScenario {
            label: "slowest: $0.30 lease, small-LIR fees".into(),
            buy_per_ip: 22.50,
            lease_per_ip_month: 0.30,
            maintenance_per_ip_month: 0.248,
        },
        AmortizationScenario {
            label: "never: lease below maintenance".into(),
            buy_per_ip: 22.50,
            lease_per_ip_month: 0.20,
            maintenance_per_ip_month: 0.25,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_headline_range() {
        let s = section6_scenarios();
        let fastest = s[0].months().unwrap();
        assert!(
            (9.0..=12.0).contains(&fastest),
            "fastest case should be under a year: {fastest:.1} months"
        );
        let slowest = s[3].years().unwrap();
        assert!(
            (30.0..=40.0).contains(&slowest),
            "slowest case should be tens of years: {slowest:.1} years"
        );
        assert_eq!(s[4].months(), None, "sub-maintenance lease never amortizes");
    }

    #[test]
    fn broker_average_band_reachable() {
        // Brokers report 2–3 year averages; a ~$0.7–1.0 lease at $22.50
        // lands there.
        let t = amortization_months(22.50, 0.80, 0.05).unwrap() / 12.0;
        assert!((2.0..=3.0).contains(&t), "typical amortization {t:.2}y");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(amortization_months(22.5, 0.0, 0.0), None);
        assert_eq!(amortization_months(22.5, 0.1, 0.1), None);
        assert_eq!(amortization_months(0.0, 1.0, 0.0), None);
        assert_eq!(amortization_months(-5.0, 1.0, 0.0), None);
    }

    proptest! {
        #[test]
        fn prop_monotone_in_lease_price(
            buy in 1.0f64..100.0,
            lease_a in 0.1f64..5.0,
            delta in 0.01f64..5.0,
            maint in 0.0f64..0.05,
        ) {
            let lease_b = lease_a + delta;
            let ta = amortization_months(buy, lease_a, maint).unwrap();
            let tb = amortization_months(buy, lease_b, maint).unwrap();
            prop_assert!(tb < ta, "more expensive lease must amortize faster");
        }

        #[test]
        fn prop_monotone_in_buy_price(
            buy_a in 1.0f64..100.0,
            delta in 0.1f64..100.0,
            lease in 0.3f64..5.0,
        ) {
            let ta = amortization_months(buy_a, lease, 0.0).unwrap();
            let tb = amortization_months(buy_a + delta, lease, 0.0).unwrap();
            prop_assert!(tb > ta, "more expensive purchase must amortize slower");
        }

        #[test]
        fn prop_breakeven_identity(
            buy in 1.0f64..100.0,
            lease in 0.3f64..5.0,
            maint in 0.0f64..0.2,
        ) {
            prop_assume!(lease > maint + 0.01);
            let t = amortization_months(buy, lease, maint).unwrap();
            // At t months, cumulative lease cost equals buy + maintenance.
            let lease_cost = lease * t;
            let buy_cost = buy + maint * t;
            prop_assert!((lease_cost - buy_cost).abs() < 1e-6);
        }
    }
}
