//! Integration tests: each rule against its fixture (exact
//! `file:line:rule` assertions), the tricky negatives, the allow
//! directives, the manifest scan, the ratchet round-trip and JSON
//! report in a temp workspace, the real workspace lock graph, and the
//! real workspace gate.

use lint::{scan_manifest, scan_source, Rule};
use std::fs;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).expect("fixture readable")
}

/// Scan `fixture_name` as if it lived at `as_path`; return the exact
/// (line, rule) pairs, in report order.
fn hits(as_path: &str, fixture_name: &str) -> Vec<(usize, Rule)> {
    scan_source(as_path, &fixture(fixture_name))
        .into_iter()
        .inspect(|f| assert_eq!(f.path, as_path))
        .map(|f| (f.line, f.rule))
        .collect()
}

#[test]
fn l1_flags_the_bare_narrowing_cast() {
    assert_eq!(
        hits("crates/bgpsim/src/l1.rs", "l1_narrowing_cast.rs"),
        vec![(4, Rule::L1)]
    );
}

#[test]
fn l2_flags_every_panic_construct() {
    assert_eq!(
        hits("crates/delegation/src/l2.rs", "l2_panic_path.rs"),
        vec![(4, Rule::L2), (8, Rule::L2), (12, Rule::L2), (16, Rule::L2)]
    );
}

#[test]
fn l3_flags_clock_reads_outside_clock_crates() {
    assert_eq!(
        hits("crates/core/src/l3.rs", "l3_wall_clock.rs"),
        vec![(6, Rule::L3), (10, Rule::L3)]
    );
    // The clock crates are exempt.
    assert_eq!(hits("crates/obs/src/l3.rs", "l3_wall_clock.rs"), vec![]);
    assert_eq!(hits("crates/serve/src/l3.rs", "l3_wall_clock.rs"), vec![]);
}

#[test]
fn l5_flags_spawns_outside_the_pool_files() {
    assert_eq!(
        hits("crates/registry/src/l5.rs", "l5_stray_spawn.rs"),
        vec![(4, Rule::L5)]
    );
    // The sanctioned pool implementations are exempt.
    assert_eq!(hits("crates/bgpsim/src/par.rs", "l5_stray_spawn.rs"), vec![]);
    assert_eq!(
        hits("crates/serve/src/server.rs", "l5_stray_spawn.rs"),
        vec![]
    );
}

#[test]
fn l6_flags_shim_path_attributes_everywhere() {
    // L6 has no test-code or per-crate exemption.
    assert_eq!(
        hits("crates/market/src/l6.rs", "l6_shim_import.rs"),
        vec![(3, Rule::L6)]
    );
    assert_eq!(
        hits("tests/integration.rs", "l6_shim_import.rs"),
        vec![(3, Rule::L6)]
    );
}

#[test]
fn l7_flags_the_two_mutex_cycle_with_a_witness() {
    // The cycle anchors at the acquired-while-held site of its first
    // edge (App.queue held, App.stats acquired in `enqueue`).
    let found = scan_source("crates/serve/src/l7.rs", &fixture("l7_lock_cycle.rs"));
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!((found[0].line, found[0].rule), (15, Rule::L7));
    let msg = &found[0].message;
    assert!(msg.contains("lock-order cycle"), "{msg}");
    assert!(msg.contains("App.queue"), "{msg}");
    assert!(msg.contains("App.stats"), "{msg}");
    assert!(msg.contains("crates/serve/src/l7.rs:"), "{msg}");
    assert!(msg.contains("enqueue") && msg.contains("report"), "{msg}");
}

#[test]
fn l7_is_scoped_to_the_concurrent_subsystems() {
    // The identical cycle outside serve/obs/par is not analyzed: those
    // locks never interleave with the serving layer's at runtime.
    assert_eq!(hits("crates/market/src/l7.rs", "l7_lock_cycle.rs"), vec![]);
}

#[test]
fn l7_dropping_the_guard_breaks_the_cycle() {
    assert_eq!(
        hits("crates/serve/src/l7.rs", "l7_guard_dropped.rs"),
        vec![]
    );
}

#[test]
fn l8_flags_relaxed_publication_and_lone_seqcst_but_not_counters() {
    assert_eq!(
        hits("crates/obs/src/l8.rs", "l8_atomic_orderings.rs"),
        vec![(15, Rule::L8), (20, Rule::L8)]
    );
}

#[test]
fn l9_flags_hash_iteration_reaching_a_sink_in_deterministic_crates() {
    // Findings anchor at the import and the tainted symbol's mention.
    assert_eq!(
        hits("crates/market/src/l9.rs", "l9_hash_to_sink.rs"),
        vec![(5, Rule::L9), (7, Rule::L9)]
    );
    // Outside the deterministic-output crates the same flow is fine.
    assert_eq!(hits("crates/serve/src/l9.rs", "l9_hash_to_sink.rs"), vec![]);
}

#[test]
fn l9_keyed_hash_use_is_clean() {
    assert_eq!(
        hits("crates/market/src/cache.rs", "l9_keyed_cache.rs"),
        vec![]
    );
}

#[test]
fn l10_flags_swallowed_results_but_not_the_write_macro_idiom() {
    assert_eq!(
        hits("crates/nettypes/src/l10.rs", "l10_swallowed_results.rs"),
        vec![(7, Rule::L10), (11, Rule::L10)]
    );
}

#[test]
fn lexer_survives_raw_strings_nested_comments_and_char_escapes() {
    // Raw strings (with and without hashes), a nested block comment,
    // and every char-escape form precede one real violation; a lexer
    // desync would either hide it or leak the masked `panic!`/unwrap.
    assert_eq!(
        hits("crates/rpki/src/lexer.rs", "lexer_tricky.rs"),
        vec![(19, Rule::L2)]
    );
}

#[test]
fn negatives_produce_no_findings() {
    // Casts in string literals, panics in doc comments, clock names in
    // comments, and hash maps under #[cfg(test)] are all silent.
    assert_eq!(
        hits("crates/bgpsim/src/negatives.rs", "negatives.rs"),
        vec![]
    );
}

#[test]
fn test_paths_exempt_everything_but_clocks_and_shims() {
    // The same violating fixtures under a test path go quiet…
    assert_eq!(hits("tests/l1.rs", "l1_narrowing_cast.rs"), vec![]);
    assert_eq!(hits("crates/bgpsim/tests/l2.rs", "l2_panic_path.rs"), vec![]);
    assert_eq!(
        hits("crates/market/benches/l9.rs", "l9_hash_to_sink.rs"),
        vec![]
    );
    assert_eq!(hits("examples/l5.rs", "l5_stray_spawn.rs"), vec![]);
    // …except L3: a nondeterministic test is still a flaky test.
    assert_eq!(
        hits("tests/l3.rs", "l3_wall_clock.rs"),
        vec![(6, Rule::L3), (10, Rule::L3)]
    );
}

#[test]
fn allow_directives_silence_their_line() {
    assert_eq!(hits("crates/bgpsim/src/allows.rs", "allows.rs"), vec![]);
    // The directive is rule-specific: the L1 allow does not cover L2.
    let source = "pub fn f(v: Option<u8>) -> u8 {\n    v.unwrap() // lint:allow(L1): wrong rule\n}\n";
    let found = scan_source("crates/core/src/x.rs", source);
    assert_eq!(found.len(), 1);
    assert_eq!((found[0].line, found[0].rule), (2, Rule::L2));
}

#[test]
fn explain_covers_every_rule() {
    for rule in lint::ALL_RULES {
        let text = rule.explain();
        assert!(
            text.starts_with(rule.id()),
            "{} explain starts with {:?}",
            rule.id(),
            &text[..20.min(text.len())]
        );
        assert!(text.contains(rule.name()), "{} names itself", rule.id());
    }
    // The retired id and junk do not parse.
    assert!(Rule::parse("L4").is_none());
    assert!(Rule::parse("L11").is_none());
    assert!(Rule::parse("bogus").is_none());
}

#[test]
fn manifest_scan_flags_direct_shim_paths() {
    // lint:allow(L6): test input for the manifest scanner, not an import
    let manifest = "[package]\nname = \"demo\"\n\n[dependencies]\nserde_json = { path = \"../../shims/serde_json\" }\n";
    let found = scan_manifest("crates/demo/Cargo.toml", manifest);
    assert_eq!(found.len(), 1);
    assert_eq!((found[0].line, found[0].rule), (5, Rule::L6));
    // TOML comments are stripped before matching.
    // lint:allow(L6): test input for the manifest scanner, not an import
    let commented = "[dependencies]\n# shims/serde_json would be wrong\nserde_json = { workspace = true }\n";
    assert!(scan_manifest("crates/demo/Cargo.toml", commented).is_empty());
}

/// Build a throwaway one-crate workspace for ratchet tests.
fn temp_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("drywells-lint-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let src = root.join("crates/demo/src");
    fs::create_dir_all(&src).expect("mkdir");
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/demo\"]\n",
    )
    .expect("workspace manifest");
    fs::write(
        root.join("crates/demo/Cargo.toml"),
        "[package]\nname = \"demo\"\n",
    )
    .expect("crate manifest");
    root
}

/// The `(path, line, rule)` triples of a report's new findings.
fn new_findings(report: &lint::LintReport) -> Vec<(String, usize, Rule)> {
    report
        .rows
        .iter()
        .filter(|r| r.is_new)
        .map(|r| (r.finding.path.clone(), r.finding.line, r.finding.rule))
        .collect()
}

#[test]
fn ratchet_round_trip() {
    let root = temp_workspace("ratchet");
    let lib = root.join("crates/demo/src/lib.rs");
    let baseline = root.join("lint-baseline.txt");
    fs::write(&lib, "pub fn shrink(x: usize) -> u16 {\n    x as u16\n}\n").expect("write lib");

    // A violation with no baseline fails the gate.
    let report = lint::run(&root, &baseline, false).expect("lint runs");
    assert!(!report.ok);
    assert_eq!(
        new_findings(&report),
        vec![("crates/demo/src/lib.rs".to_string(), 2, Rule::L1)]
    );

    // --update-baseline grandfathers it; the gate then passes.
    assert!(lint::run(&root, &baseline, true).expect("update").ok);
    assert!(lint::run(&root, &baseline, false).expect("recheck").ok);

    // The fingerprint is line-content based: shifting the finding down
    // a line does not churn the baseline.
    fs::write(
        &lib,
        "// a new leading comment\npub fn shrink(x: usize) -> u16 {\n    x as u16\n}\n",
    )
    .expect("shift");
    assert!(lint::run(&root, &baseline, false).expect("shifted").ok);

    // Fixing the violation leaves a stale entry, which also fails —
    // the ratchet forces the baseline to shrink.
    fs::write(
        &lib,
        "pub fn shrink(x: usize) -> u16 {\n    u16::try_from(x).unwrap_or(u16::MAX)\n}\n",
    )
    .expect("fix");
    let report = lint::run(&root, &baseline, false).expect("stale check");
    assert!(!report.ok);
    assert_eq!(report.stale_entries.len(), 1);

    // Re-updating strikes the stale entry and the gate is clean again.
    assert!(lint::run(&root, &baseline, true).expect("strike").ok);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn injected_violation_fails_a_clean_tree() {
    let root = temp_workspace("inject");
    let lib = root.join("crates/demo/src/lib.rs");
    let baseline = root.join("lint-baseline.txt");
    fs::write(&lib, "pub fn ok() {}\n").expect("write lib");
    assert!(lint::run(&root, &baseline, true).expect("seed baseline").ok);

    // Injecting one violation of each rule flips the gate to failing.
    // L7/L9 are scoped rules, so their injections land in an in-scope
    // crate path; everything else goes into the demo crate itself.
    let cycle = "use std::sync::Mutex;\n\
                 pub struct A { x: Mutex<u8>, y: Mutex<u8> }\n\
                 impl A {\n\
                 pub fn f(&self) { let g = self.x.lock().unwrap(); let h = self.y.lock().unwrap(); drop(h); drop(g); }\n\
                 pub fn b(&self) { let h = self.y.lock().unwrap(); let g = self.x.lock().unwrap(); drop(g); drop(h); }\n\
                 }\n";
    let hash_sink = "use std::collections::HashMap;\n\
                     pub fn dump(m: &HashMap<u32, u64>, out: &mut String) {\n\
                     for (k, v) in m.iter() { out.push_str(&format!(\"{k},{v}\\n\")); }\n\
                     }\n";
    let relaxed_publish = "pub struct C { pub d: u64, pub r: std::sync::atomic::AtomicBool }\n\
                           impl C {\n\
                           pub fn p(&mut self, v: u64) {\n\
                           self.d = v;\n\
                           self.r.store(true, std::sync::atomic::Ordering::Relaxed);\n\
                           }\n\
                           }\n";
    for (rule, path, snippet) in [
        (
            Rule::L1,
            "crates/demo/src/lib.rs",
            "pub fn v(x: usize) -> u8 { x as u8 }\n",
        ),
        (
            Rule::L2,
            "crates/demo/src/lib.rs",
            "pub fn v(o: Option<u8>) -> u8 { o.unwrap() }\n",
        ),
        (
            Rule::L3,
            "crates/demo/src/lib.rs",
            "pub fn v() { let _t = std::time::Instant::now(); }\n",
        ),
        (
            Rule::L5,
            "crates/demo/src/lib.rs",
            "pub fn v() { std::thread::spawn(|| {}).join().expect(\"join\"); }\n",
        ),
        // lint:allow(L6): the injected violation under test, not an import
        (Rule::L6, "crates/demo/src/lib.rs", "#[path = \"../shims/x.rs\"]\nmod v;\n"),
        (Rule::L7, "crates/serve/src/lib.rs", cycle),
        (Rule::L8, "crates/demo/src/lib.rs", relaxed_publish),
        (Rule::L9, "crates/market/src/lib.rs", hash_sink),
        (
            Rule::L10,
            "crates/demo/src/lib.rs",
            "pub fn v(path: &str) { let _ = std::fs::read(path); }\n",
        ),
    ] {
        let target = root.join(path);
        fs::create_dir_all(target.parent().expect("parent")).expect("mkdir");
        let body = if path == "crates/demo/src/lib.rs" {
            format!("pub fn ok() {{}}\n{snippet}")
        } else {
            snippet.to_string()
        };
        fs::write(&target, body).expect("inject");
        let report = lint::run(&root, &baseline, false).expect("lint runs");
        assert!(!report.ok, "{rule:?} injection not caught");
        assert!(
            new_findings(&report).iter().any(|(_, _, r)| *r == rule),
            "{rule:?} missing from {:?}",
            new_findings(&report)
        );
        if path == "crates/demo/src/lib.rs" {
            fs::write(&target, "pub fn ok() {}\n").expect("restore");
        } else {
            fs::remove_file(&target).expect("remove injection");
        }
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn json_report_round_trips_through_the_shim_parser() {
    let root = temp_workspace("json");
    let lib = root.join("crates/demo/src/lib.rs");
    let baseline = root.join("lint-baseline.txt");
    fs::write(&lib, "pub fn shrink(x: usize) -> u16 {\n    x as u16\n}\n").expect("write lib");
    assert!(lint::run(&root, &baseline, true).expect("seed").ok);

    // One baselined L1 plus one new L2.
    fs::write(
        &lib,
        "pub fn shrink(x: usize) -> u16 {\n    x as u16\n}\npub fn v(o: Option<u8>) -> u8 { o.unwrap() }\n",
    )
    .expect("inject");
    let report = lint::run(&root, &baseline, false).expect("lint runs");
    assert!(!report.ok);

    let v = serde_json::parse(&report.to_json()).expect("lint JSON parses");
    assert_eq!(
        v.get("$schema").and_then(|s| s.as_str()),
        Some("drywells-lint-json-v1")
    );
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(false));
    let summary = v.get("summary").expect("summary block");
    assert_eq!(summary.get("baselined").and_then(|x| x.as_i64()), Some(1));
    assert_eq!(summary.get("new").and_then(|x| x.as_i64()), Some(1));
    assert_eq!(summary.get("stale").and_then(|x| x.as_i64()), Some(0));

    let results = v.get("results").and_then(|r| r.as_array()).expect("results");
    assert_eq!(results.len(), 2);
    let baselined = &results[0];
    assert_eq!(baselined.get("ruleId").and_then(|r| r.as_str()), Some("L1"));
    assert_eq!(
        baselined.get("level").and_then(|l| l.as_str()),
        Some("note")
    );
    let loc = baselined
        .get("locations")
        .and_then(|l| l.as_array())
        .and_then(|a| a.first())
        .and_then(|l| l.get("physicalLocation"))
        .expect("physicalLocation");
    assert_eq!(
        loc.get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(|u| u.as_str()),
        Some("crates/demo/src/lib.rs")
    );
    assert_eq!(
        loc.get("region")
            .and_then(|r| r.get("startLine"))
            .and_then(|l| l.as_i64()),
        Some(2)
    );
    let fp = baselined
        .get("partialFingerprints")
        .and_then(|p| p.get("excerptHash/v1"))
        .and_then(|f| f.as_str())
        .expect("fingerprint");
    assert!(fp.ends_with("#0"), "{fp}");

    let new_row = &results[1];
    assert_eq!(new_row.get("ruleId").and_then(|r| r.as_str()), Some("L2"));
    assert_eq!(new_row.get("level").and_then(|l| l.as_str()), Some("error"));
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn workspace_lock_graph_covers_the_lock_scope_and_is_acyclic() {
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = lint::find_workspace_root(&manifest_dir).expect("workspace root");
    let files = lint::collect_sources(&root).expect("sources readable");
    let scoped: Vec<(&str, lint::lexer::Lexed, lint::ast::ItemTree)> = files
        .iter()
        .filter(|(p, _)| {
            p.ends_with(".rs")
                && (p.starts_with("crates/serve/")
                    || p.starts_with("crates/obs/")
                    || p == "crates/bgpsim/src/par.rs")
        })
        .map(|(p, text)| {
            let lx = lint::lexer::lex(text);
            let tree = lint::ast::parse(&lx);
            (p.as_str(), lx, tree)
        })
        .collect();
    assert!(scoped.len() >= 3, "lock scope shrank to {} files", scoped.len());
    let refs: Vec<(&str, &lint::lexer::Lexed, &lint::ast::ItemTree)> =
        scoped.iter().map(|(p, lx, t)| (*p, lx, t)).collect();
    let g = lint::graph::build(&refs);
    // The real lock table is present…
    for node in ["Shared.queue", "ProfileCollector.state", "FlightRecorder.slots"] {
        assert!(
            g.nodes.contains(node),
            "missing lock node {node}: {:?}",
            g.nodes
        );
    }
    // …and the serving/observability layers stay deadlock-free.
    let cycles = g.cycles();
    assert!(
        cycles.is_empty(),
        "lock-order cycle in the workspace: {}",
        lint::graph::LockGraph::witness(&cycles[0])
    );
}

#[test]
fn workspace_gate_is_clean() {
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = lint::find_workspace_root(&manifest_dir).expect("workspace root");
    let report = lint::run(&root, &root.join(lint::BASELINE_FILE), false).expect("lint runs");
    assert!(report.ok, "workspace lint gate failed:\n{}", report.render());
}
