//! Integration tests: each rule against its fixture (exact
//! `file:line:rule` assertions), the tricky negatives, the allow
//! directives, the manifest scan, the ratchet round-trip in a temp
//! workspace, and the real workspace gate.

use lint::{scan_manifest, scan_source, Rule};
use std::fs;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).expect("fixture readable")
}

/// Scan `fixture_name` as if it lived at `as_path`; return the exact
/// (line, rule) pairs, in report order.
fn hits(as_path: &str, fixture_name: &str) -> Vec<(usize, Rule)> {
    scan_source(as_path, &fixture(fixture_name))
        .into_iter()
        .inspect(|f| assert_eq!(f.path, as_path))
        .map(|f| (f.line, f.rule))
        .collect()
}

#[test]
fn l1_flags_the_bare_narrowing_cast() {
    assert_eq!(
        hits("crates/bgpsim/src/l1.rs", "l1_narrowing_cast.rs"),
        vec![(4, Rule::L1)]
    );
}

#[test]
fn l2_flags_every_panic_construct() {
    assert_eq!(
        hits("crates/delegation/src/l2.rs", "l2_panic_path.rs"),
        vec![(4, Rule::L2), (8, Rule::L2), (12, Rule::L2), (16, Rule::L2)]
    );
}

#[test]
fn l3_flags_clock_reads_outside_clock_crates() {
    assert_eq!(
        hits("crates/core/src/l3.rs", "l3_wall_clock.rs"),
        vec![(6, Rule::L3), (10, Rule::L3)]
    );
    // The clock crates are exempt.
    assert_eq!(hits("crates/obs/src/l3.rs", "l3_wall_clock.rs"), vec![]);
    assert_eq!(hits("crates/serve/src/l3.rs", "l3_wall_clock.rs"), vec![]);
}

#[test]
fn l4_flags_hash_collections_in_deterministic_crates() {
    assert_eq!(
        hits("crates/market/src/l4.rs", "l4_hash_iteration.rs"),
        vec![
            (3, Rule::L4),
            (3, Rule::L4),
            (5, Rule::L4),
            (5, Rule::L4),
            (6, Rule::L4),
            (6, Rule::L4),
        ]
    );
    // A crate with no figure/CSV/MRT output may hash freely.
    assert_eq!(hits("crates/obs/src/l4.rs", "l4_hash_iteration.rs"), vec![]);
}

#[test]
fn l5_flags_spawns_outside_the_pool_files() {
    assert_eq!(
        hits("crates/registry/src/l5.rs", "l5_stray_spawn.rs"),
        vec![(4, Rule::L5)]
    );
    // The sanctioned pool implementations are exempt.
    assert_eq!(hits("crates/bgpsim/src/par.rs", "l5_stray_spawn.rs"), vec![]);
    assert_eq!(
        hits("crates/serve/src/server.rs", "l5_stray_spawn.rs"),
        vec![]
    );
}

#[test]
fn l6_flags_shim_path_attributes_everywhere() {
    // L6 has no test-code or per-crate exemption.
    assert_eq!(
        hits("crates/market/src/l6.rs", "l6_shim_import.rs"),
        vec![(3, Rule::L6)]
    );
    assert_eq!(
        hits("tests/integration.rs", "l6_shim_import.rs"),
        vec![(3, Rule::L6)]
    );
}

#[test]
fn negatives_produce_no_findings() {
    // Casts in string literals, panics in doc comments, clock names in
    // comments, and hash maps under #[cfg(test)] are all silent.
    assert_eq!(
        hits("crates/bgpsim/src/negatives.rs", "negatives.rs"),
        vec![]
    );
}

#[test]
fn test_paths_exempt_everything_but_clocks_and_shims() {
    // The same violating fixtures under a test path go quiet…
    assert_eq!(hits("tests/l1.rs", "l1_narrowing_cast.rs"), vec![]);
    assert_eq!(hits("crates/bgpsim/tests/l2.rs", "l2_panic_path.rs"), vec![]);
    assert_eq!(
        hits("crates/market/benches/l4.rs", "l4_hash_iteration.rs"),
        vec![]
    );
    assert_eq!(hits("examples/l5.rs", "l5_stray_spawn.rs"), vec![]);
    // …except L3: a nondeterministic test is still a flaky test.
    assert_eq!(
        hits("tests/l3.rs", "l3_wall_clock.rs"),
        vec![(6, Rule::L3), (10, Rule::L3)]
    );
}

#[test]
fn allow_directives_silence_their_line() {
    assert_eq!(hits("crates/bgpsim/src/allows.rs", "allows.rs"), vec![]);
    // The directive is rule-specific: the L1 allow does not cover L2.
    let source = "pub fn f(v: Option<u8>) -> u8 {\n    v.unwrap() // lint:allow(L1): wrong rule\n}\n";
    let found = scan_source("crates/core/src/x.rs", source);
    assert_eq!(found.len(), 1);
    assert_eq!((found[0].line, found[0].rule), (2, Rule::L2));
}

#[test]
fn manifest_scan_flags_direct_shim_paths() {
    // lint:allow(L6): test input for the manifest scanner, not an import
    let manifest = "[package]\nname = \"demo\"\n\n[dependencies]\nserde_json = { path = \"../../shims/serde_json\" }\n";
    let found = scan_manifest("crates/demo/Cargo.toml", manifest);
    assert_eq!(found.len(), 1);
    assert_eq!((found[0].line, found[0].rule), (5, Rule::L6));
    // TOML comments are stripped before matching.
    // lint:allow(L6): test input for the manifest scanner, not an import
    let commented = "[dependencies]\n# shims/serde_json would be wrong\nserde_json = { workspace = true }\n";
    assert!(scan_manifest("crates/demo/Cargo.toml", commented).is_empty());
}

/// Build a throwaway one-crate workspace for ratchet tests.
fn temp_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("drywells-lint-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let src = root.join("crates/demo/src");
    fs::create_dir_all(&src).expect("mkdir");
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/demo\"]\n",
    )
    .expect("workspace manifest");
    fs::write(
        root.join("crates/demo/Cargo.toml"),
        "[package]\nname = \"demo\"\n",
    )
    .expect("crate manifest");
    root
}

#[test]
fn ratchet_round_trip() {
    let root = temp_workspace("ratchet");
    let lib = root.join("crates/demo/src/lib.rs");
    let baseline = root.join("lint-baseline.txt");
    fs::write(&lib, "pub fn shrink(x: usize) -> u16 {\n    x as u16\n}\n").expect("write lib");

    // A violation with no baseline fails the gate.
    let report = lint::run(&root, &baseline, false).expect("lint runs");
    assert!(!report.ok);
    assert_eq!(report.new.len(), 1);
    assert!(report.new[0].contains("crates/demo/src/lib.rs:2: L1"), "{:?}", report.new);

    // --update-baseline grandfathers it; the gate then passes.
    assert!(lint::run(&root, &baseline, true).expect("update").ok);
    assert!(lint::run(&root, &baseline, false).expect("recheck").ok);

    // The fingerprint is line-content based: shifting the finding down
    // a line does not churn the baseline.
    fs::write(
        &lib,
        "// a new leading comment\npub fn shrink(x: usize) -> u16 {\n    x as u16\n}\n",
    )
    .expect("shift");
    assert!(lint::run(&root, &baseline, false).expect("shifted").ok);

    // Fixing the violation leaves a stale entry, which also fails —
    // the ratchet forces the baseline to shrink.
    fs::write(
        &lib,
        "pub fn shrink(x: usize) -> u16 {\n    u16::try_from(x).unwrap_or(u16::MAX)\n}\n",
    )
    .expect("fix");
    let report = lint::run(&root, &baseline, false).expect("stale check");
    assert!(!report.ok);
    assert_eq!(report.stale.len(), 1);

    // Re-updating strikes the stale entry and the gate is clean again.
    assert!(lint::run(&root, &baseline, true).expect("strike").ok);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn injected_violation_fails_a_clean_tree() {
    let root = temp_workspace("inject");
    let lib = root.join("crates/demo/src/lib.rs");
    let baseline = root.join("lint-baseline.txt");
    fs::write(&lib, "pub fn ok() {}\n").expect("write lib");
    assert!(lint::run(&root, &baseline, true).expect("seed baseline").ok);

    // Injecting one violation of each rule flips the gate to failing.
    for (rule, snippet) in [
        (Rule::L1, "pub fn v(x: usize) -> u8 { x as u8 }\n"),
        (Rule::L2, "pub fn v(o: Option<u8>) -> u8 { o.unwrap() }\n"),
        (Rule::L3, "pub fn v() { let _ = std::time::Instant::now(); }\n"),
        (
            Rule::L5,
            "pub fn v() { std::thread::spawn(|| {}).join().ok(); }\n",
        ),
        // lint:allow(L6): the injected violation under test, not an import
        (Rule::L6, "#[path = \"../shims/x.rs\"]\nmod v;\n"),
    ] {
        fs::write(&lib, format!("pub fn ok() {{}}\n{snippet}")).expect("inject");
        let report = lint::run(&root, &baseline, false).expect("lint runs");
        assert!(!report.ok, "{rule:?} injection not caught");
        assert!(
            report.new.iter().any(|d| d.contains(rule.id())),
            "{rule:?} missing from {:?}",
            report.new
        );
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn workspace_gate_is_clean() {
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = lint::find_workspace_root(&manifest_dir).expect("workspace root");
    let report = lint::run(&root, &root.join(lint::BASELINE_FILE), false).expect("lint runs");
    assert!(report.ok, "workspace lint gate failed:\n{}", report.render());
}
