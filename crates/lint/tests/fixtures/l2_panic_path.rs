//! L2 fixture: every panic construct the rule must catch.

pub fn first(v: &[u8]) -> u8 {
    *v.first().unwrap()
}

pub fn named(v: Option<u8>) -> u8 {
    v.expect("present")
}

pub fn boom() {
    panic!("boom");
}

pub fn never() {
    unreachable!();
}
