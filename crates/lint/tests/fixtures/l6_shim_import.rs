//! L6 fixture: a direct path import from the vendored shim tree.

#[path = "../../shims/serde_json/src/lib.rs"]
mod serde_json_shim;
