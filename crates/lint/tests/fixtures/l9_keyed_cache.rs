//! L9 negative: a HashMap used purely as a keyed store — lookups and
//! inserts only, no iteration — is fine even in a deterministic-output
//! crate.

use std::collections::HashMap;

pub struct Cache {
    entries: HashMap<u64, String>,
}

impl Cache {
    pub fn get(&self, key: u64) -> Option<&str> {
        self.entries.get(&key).map(String::as_str)
    }

    pub fn put(&mut self, key: u64, value: String) {
        self.entries.insert(key, value);
    }
}
