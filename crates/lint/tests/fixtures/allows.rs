//! Allow-directive fixture: each violation carries a justification,
//! once in trailing form and once in standalone (next-line) form.

pub fn bounded(x: usize) -> u16 {
    x as u16 // lint:allow(L1): the fixture promises x < 65536
}

// lint:allow(L2): standalone form applies to the next line
pub fn certain(v: Option<u8>) -> u8 { v.unwrap() }
