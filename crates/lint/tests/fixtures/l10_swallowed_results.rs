//! L10 fixture: `let _ = fallible()` and statement-level `.ok();`
//! fire; the `let _ = write!(…)` io-writer idiom does not.

use std::io::Write;

pub fn persist(path: &str, data: &[u8]) {
    let _ = std::fs::write(path, data);
}

pub fn flush_quietly(w: &mut impl Write) {
    w.flush().ok();
}

pub fn banner(out: &mut impl Write) {
    let _ = write!(out, "ok");
}
