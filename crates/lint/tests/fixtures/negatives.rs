//! Negatives: everything here is masked or exempt — the scanner must
//! report nothing. Mentioning `x as u16`, `.unwrap()`, or `HashMap`
//! in a doc comment is not a violation.

/// Doc comments may say `v as u32` or even `panic!` freely.
pub const CAST_IN_STRING: &str = "widths like x as u16 live in strings";

pub const CLOCK_IN_STRING: &str = "Instant::now belongs to strings too";

// thread::spawn and SystemTime::now in a line comment are inert.

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn exempt_test_code() {
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, 70_000usize as u32);
        assert_eq!(m.get(&1).copied().unwrap(), 70_000);
    }
}
