//! L8 fixture: a Relaxed store that publishes non-atomic data (fires),
//! a SeqCst store on a function's only atomic (fires), and a Relaxed
//! counter bump (clean).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Channel {
    pub data: u64,
    pub ready: AtomicBool,
}

impl Channel {
    pub fn publish(&mut self, v: u64) {
        self.data = v;
        self.ready.store(true, Ordering::Relaxed);
    }
}

pub fn shutdown(flag: &AtomicBool) {
    flag.store(true, Ordering::SeqCst);
}

pub fn bump(hits: &AtomicU64) {
    hits.fetch_add(1, Ordering::Relaxed);
}
