//! Lexer regression fixture: raw strings (with and without extra
//! hashes), nested block comments, and escaped char literals must not
//! desync the scanner — the only real violation is the final unwrap.

pub const QUERY: &str = r#"SELECT "x"; panic!("not code")"#;
pub const NESTED: &str = r##"quote "# inside: .unwrap() stays text"##;

/* outer /* nested block comment with .unwrap() */ still comment */
pub fn escapes() -> char {
    let backslash = '\\';
    let quote = '\'';
    let hex = '\x41';
    let uni = '\u{1F600}';
    let _count = [backslash, quote, hex, uni].len();
    backslash
}

pub fn real_violation(v: Option<u8>) -> u8 {
    v.unwrap()
}
