//! L3 fixture: wall-clock reads outside the clock crates.

use std::time::{Instant, SystemTime};

pub fn stamp() -> SystemTime {
    SystemTime::now()
}

pub fn tick() -> Instant {
    Instant::now()
}
