//! L5 fixture: a raw thread spawn outside the sanctioned pools.

pub fn background() {
    std::thread::spawn(|| {});
}
