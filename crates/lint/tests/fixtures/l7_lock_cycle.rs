//! L7 positive: two mutexes taken in opposite orders across two
//! methods — the canonical AB/BA deadlock. (L2 is allowed per line so
//! the fixture isolates the lock-order finding.)

use std::sync::Mutex;

pub struct App {
    queue: Mutex<Vec<u8>>,
    stats: Mutex<u64>,
}

impl App {
    pub fn enqueue(&self) {
        let q = self.queue.lock().unwrap(); // lint:allow(L2): fixture exercises L7
        let s = self.stats.lock().unwrap(); // lint:allow(L2): fixture exercises L7
        drop(s);
        drop(q);
    }

    pub fn report(&self) {
        let s = self.stats.lock().unwrap(); // lint:allow(L2): fixture exercises L7
        let q = self.queue.lock().unwrap(); // lint:allow(L2): fixture exercises L7
        drop(q);
        drop(s);
    }
}
