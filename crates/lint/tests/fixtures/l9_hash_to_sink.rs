//! L9 positive: a HashMap whose iteration order reaches a formatted
//! output sink. Findings anchor at the import and the symbol's
//! declaration mention.

use std::collections::HashMap;

pub fn export(counts: &HashMap<u32, u64>) -> String {
    let mut out = String::new();
    for (k, v) in counts.iter() {
        out.push_str(&format!("{k},{v}\n"));
    }
    out
}
