//! L7 negative: the same two mutexes, but each guard is dropped
//! before the other lock is taken — no acquired-while-held edges, so
//! no cycle.

use std::sync::Mutex;

pub struct App {
    queue: Mutex<Vec<u8>>,
    stats: Mutex<u64>,
}

impl App {
    pub fn enqueue(&self) {
        let q = self.queue.lock().unwrap(); // lint:allow(L2): fixture exercises L7
        drop(q);
        let s = self.stats.lock().unwrap(); // lint:allow(L2): fixture exercises L7
        drop(s);
    }

    pub fn report(&self) {
        let s = self.stats.lock().unwrap(); // lint:allow(L2): fixture exercises L7
        drop(s);
        let q = self.queue.lock().unwrap(); // lint:allow(L2): fixture exercises L7
        drop(q);
    }
}
