//! L1 fixture: a bare narrowing cast in library code.

pub fn shrink(x: usize) -> u16 {
    x as u16
}
