//! `drywells-lint` — the workspace invariant linter.
//!
//! Generic tools check generic properties; this crate checks the ones
//! the reproduction's credibility actually rests on (DESIGN.md §4e):
//!
//! | rule | invariant |
//! |---|---|
//! | `L1 narrowing-cast` | no silent integer truncation in codecs (`as u8/u16/u32`) |
//! | `L2 panic-path` | no `unwrap`/`expect`/`panic!`/`unreachable!` in non-test library code |
//! | `L3 wall-clock` | no `SystemTime::now`/`Instant::now` outside `obs` and `serve` |
//! | `L4 hash-iteration` | no `HashMap`/`HashSet` in deterministic-output crates |
//! | `L5 stray-spawn` | no `thread::spawn` outside `bgpsim::par` / `serve::server` |
//! | `L6 shim-import` | no direct imports from the vendored shim tree |
//!
//! Pre-existing findings live in a committed, fingerprinted baseline
//! ([`baseline`]); the gate fails on anything new **and** on stale
//! entries, so the totals ratchet monotonically toward zero. Run it as
//! `repro lint`, `just lint`, or the `drywells-lint` binary.

pub mod baseline;
pub mod context;
pub mod lexer;
pub mod rules;

pub use rules::{scan_manifest, scan_source, Finding, Rule, ALL_RULES};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the committed baseline file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.txt";

/// Directories under the workspace root that contain lintable source.
/// The vendored shim tree is deliberately absent: the shims mimic
/// external crates, so the workspace's invariants are not theirs.
const SCAN_ROOTS: [&str; 3] = ["crates", "tests", "examples"];

/// Directory names never descended into. `fixtures` holds the lint
/// crate's own deliberately-violating test inputs.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

/// Walk the workspace and lint every Rust source file plus every
/// per-crate manifest. Findings come back sorted by (path, line).
pub fn collect_findings(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut findings = Vec::new();
    for file in files {
        let rel = relative(root, &file);
        let source = fs::read_to_string(&file)?;
        if rel.ends_with(".rs") {
            findings.extend(scan_source(&rel, &source));
        } else {
            findings.extend(scan_manifest(&rel, &source));
        }
    }
    Ok(findings)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            out.push(path);
        }
    }
    Ok(())
}

/// `root`-relative path with `/` separators (stable across platforms,
/// so fingerprints match everywhere).
fn relative(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locate the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// The outcome of one full lint run, ready for rendering.
pub struct LintReport {
    /// Everything [`collect_findings`] saw.
    pub findings: Vec<Finding>,
    /// Diagnostics for findings not in the baseline (`path:line: RULE …`).
    pub new: Vec<String>,
    /// Diagnostics for stale baseline entries.
    pub stale: Vec<String>,
    /// Per-rule `(rule, baselined, new)` counts.
    pub per_rule: Vec<(Rule, usize, usize)>,
    /// Did the gate pass?
    pub ok: bool,
}

impl LintReport {
    /// Render the human report: new findings first, then stale
    /// entries, then the one-line-per-rule ratchet summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.new {
            out.push_str(d);
            out.push('\n');
        }
        for d in &self.stale {
            out.push_str(d);
            out.push('\n');
        }
        let baselined: usize = self.per_rule.iter().map(|(_, b, _)| b).sum();
        let new: usize = self.per_rule.iter().map(|(_, _, n)| n).sum();
        for (rule, b, n) in &self.per_rule {
            out.push_str(&format!(
                "{} {:<15} {:>4} baselined, {} new\n",
                rule.id(),
                format!("{}:", rule.name()),
                b,
                n
            ));
        }
        out.push_str(&if self.ok {
            format!("lint: clean ({baselined} baselined, 0 new, 0 stale)\n")
        } else {
            format!(
                "lint: FAILED ({} new, {} stale, {} baselined)\n",
                new,
                self.stale.len(),
                baselined
            )
        });
        out
    }
}

/// Run the full gate: scan, compare against the baseline at
/// `baseline_path`, and (in update mode) rewrite it. A missing
/// baseline file is an empty baseline.
pub fn run(root: &Path, baseline_path: &Path, update: bool) -> io::Result<LintReport> {
    let findings = collect_findings(root)?;
    if update {
        fs::write(baseline_path, baseline::render(&findings))?;
    }
    let baseline_text = match fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let entries = match baseline::parse(&baseline_text) {
        Ok(entries) => entries,
        Err(errors) => {
            return Ok(LintReport {
                findings,
                new: errors,
                stale: Vec::new(),
                per_rule: ALL_RULES.iter().map(|&r| (r, 0, 0)).collect(),
                ok: false,
            })
        }
    };
    let verdict = baseline::ratchet(&findings, &entries);
    let new: Vec<String> = verdict
        .new
        .iter()
        .map(|f| format!("{}:{}: {} {}", f.path, f.line, f.rule.id(), f.message))
        .collect();
    let stale: Vec<String> = verdict
        .stale
        .iter()
        .map(|e| {
            format!(
                "stale baseline entry (finding fixed? strike it via `repro lint \
                 --update-baseline`): {} {} {}#{}",
                e.rule.id(),
                e.path,
                e.hash,
                e.occurrence
            )
        })
        .collect();
    let ok = verdict.clean();
    let per_rule = verdict.per_rule;
    Ok(LintReport {
        findings,
        new,
        stale,
        per_rule,
        ok,
    })
}
