//! `drywells-lint` — the workspace invariant linter.
//!
//! Generic tools check generic properties; this crate checks the ones
//! the reproduction's credibility actually rests on (DESIGN.md §4e):
//!
//! | rule | invariant |
//! |---|---|
//! | `L1 narrowing-cast` | no silent integer truncation in codecs (`as u8/u16/u32`) |
//! | `L2 panic-path` | no `unwrap`/`expect`/`panic!`/`unreachable!` in non-test library code |
//! | `L3 wall-clock` | no `SystemTime::now`/`Instant::now` outside `obs` and `serve` |
//! | `L5 stray-spawn` | no `thread::spawn` outside `bgpsim::par` / `serve::server` |
//! | `L6 shim-import` | no direct imports from the vendored shim tree |
//! | `L7 lock-order` | no cycles in the acquired-while-held lock graph |
//! | `L8 atomic-ordering` | no Relaxed publication, no single-atomic SeqCst |
//! | `L9 determinism-flow` | no hash iteration order reaching an output sink |
//! | `L10 error-swallow` | no silently discarded `Result`s in library code |
//!
//! (`L4`, the per-line hash-collection ban, was retired in favour of
//! the flow-aware `L9`; the id is never reused.)
//!
//! The analyzer is a real token stream ([`lexer`]) under a
//! brace-matched item tree ([`ast`]); L7 builds a workspace-wide lock
//! graph ([`graph`]) and the other flow rules walk per-function token
//! ranges ([`flow`]). Pre-existing findings live in a committed,
//! fingerprinted baseline ([`baseline`]); the gate fails on anything
//! new **and** on stale entries, so the totals ratchet monotonically
//! toward zero. Run it as `repro lint`, `just lint`, or the
//! `drywells-lint` binary; `--format json` emits a SARIF-shaped
//! report for CI annotation.

pub mod ast;
pub mod baseline;
pub mod flow;
pub mod graph;
pub mod lexer;
pub mod rules;

pub use rules::{scan_manifest, scan_source, scan_workspace, Finding, Rule, ALL_RULES};

use baseline::BaselineEntry;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the committed baseline file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.txt";

/// Directories under the workspace root that contain lintable source.
/// The vendored shim tree is deliberately absent: the shims mimic
/// external crates, so the workspace's invariants are not theirs.
const SCAN_ROOTS: [&str; 3] = ["crates", "tests", "examples"];

/// Directory names never descended into. `fixtures` holds the lint
/// crate's own deliberately-violating test inputs.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

/// Read every lintable workspace file as `(relative path, contents)`.
pub fn collect_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for file in files {
        let rel = relative(root, &file);
        let source = fs::read_to_string(&file)?;
        out.push((rel, source));
    }
    Ok(out)
}

/// Walk the workspace and lint every Rust source file plus every
/// per-crate manifest. Findings come back sorted by (path, line).
pub fn collect_findings(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(scan_workspace(&collect_sources(root)?))
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            out.push(path);
        }
    }
    Ok(())
}

/// `root`-relative path with `/` separators (stable across platforms,
/// so fingerprints match everywhere).
fn relative(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locate the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// One finding with its ratchet disposition, ready for any renderer.
pub struct ReportRow {
    pub finding: Finding,
    /// FNV-1a fingerprint of the trimmed excerpt.
    pub hash: String,
    /// Index among same-(rule, path, hash) findings, for duplicates.
    pub occurrence: usize,
    /// Not covered by the baseline — fails the gate.
    pub is_new: bool,
}

/// The outcome of one full lint run, ready for rendering.
pub struct LintReport {
    /// Every finding, fingerprinted and classified.
    pub rows: Vec<ReportRow>,
    /// Baseline entries no current finding matches.
    pub stale_entries: Vec<BaselineEntry>,
    /// Unparseable baseline lines (fail the gate on their own).
    pub parse_errors: Vec<String>,
    /// Per-rule `(rule, baselined, new)` counts.
    pub per_rule: Vec<(Rule, usize, usize)>,
    /// Did the gate pass?
    pub ok: bool,
}

impl LintReport {
    /// Render the human report: new findings first, then stale
    /// entries, then the one-line-per-rule ratchet summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.parse_errors {
            out.push_str(e);
            out.push('\n');
        }
        for row in self.rows.iter().filter(|r| r.is_new) {
            let f = &row.finding;
            out.push_str(&format!(
                "{}:{}: {} {}\n",
                f.path,
                f.line,
                f.rule.id(),
                f.message
            ));
        }
        for e in &self.stale_entries {
            out.push_str(&format!(
                "stale baseline entry (finding fixed? strike it via `repro lint \
                 --update-baseline`): {} {} {}#{}\n",
                e.rule.id(),
                e.path,
                e.hash,
                e.occurrence
            ));
        }
        let baselined: usize = self.per_rule.iter().map(|(_, b, _)| b).sum();
        let new: usize = self.per_rule.iter().map(|(_, _, n)| n).sum();
        for (rule, b, n) in &self.per_rule {
            out.push_str(&format!(
                "{} {:<16} {:>4} baselined, {} new\n",
                rule.id(),
                format!("{}:", rule.name()),
                b,
                n
            ));
        }
        out.push_str(&if self.ok {
            format!("lint: clean ({baselined} baselined, 0 new, 0 stale)\n")
        } else {
            format!(
                "lint: FAILED ({} new, {} stale, {} baselined)\n",
                new,
                self.stale_entries.len(),
                baselined
            )
        });
        out
    }

    /// Render the report as a SARIF-shaped JSON document: a `results`
    /// array of `{ruleId, level, message.text, locations[0]
    /// .physicalLocation.{artifactLocation.uri, region.startLine},
    /// partialFingerprints}` objects, with new findings at `error`
    /// level and baselined ones at `note`. Consumed by the CI
    /// annotation step and round-trippable through the serde_json
    /// shim.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"$schema\": \"drywells-lint-json-v1\",\n");
        out.push_str("  \"tool\": {\"name\": \"drywells-lint\", \"rules\": [");
        for (i, r) in ALL_RULES.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"id\": {}, \"name\": {}}}",
                json_str(r.id()),
                json_str(r.name())
            ));
        }
        out.push_str("]},\n");
        let new: usize = self.rows.iter().filter(|r| r.is_new).count();
        out.push_str(&format!(
            "  \"ok\": {},\n  \"summary\": {{\"baselined\": {}, \"new\": {}, \"stale\": {}}},\n",
            self.ok,
            self.rows.len() - new,
            new,
            self.stale_entries.len()
        ));
        out.push_str("  \"results\": [");
        for (i, row) in self.rows.iter().enumerate() {
            let f = &row.finding;
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            out.push_str(&format!(
                "{{\"ruleId\": {rule}, \"level\": {level}, \"message\": {{\"text\": {msg}}}, \
                 \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
                 {{\"uri\": {uri}}}, \"region\": {{\"startLine\": {line}}}}}}}], \
                 \"partialFingerprints\": {{\"excerptHash/v1\": {fp}}}}}",
                rule = json_str(f.rule.id()),
                level = json_str(if row.is_new { "error" } else { "note" }),
                msg = json_str(&f.message),
                uri = json_str(&f.path),
                line = f.line,
                fp = json_str(&format!("{}#{}", row.hash, row.occurrence)),
            ));
        }
        out.push_str("\n  ],\n  \"staleEntries\": [");
        for (i, e) in self.stale_entries.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            out.push_str(&format!(
                "{{\"ruleId\": {}, \"uri\": {}, \"fingerprint\": {}}}",
                json_str(e.rule.id()),
                json_str(&e.path),
                json_str(&format!("{}#{}", e.hash, e.occurrence)),
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// JSON string literal with the escapes the report can actually
/// contain (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Run the full gate: scan, compare against the baseline at
/// `baseline_path`, and (in update mode) rewrite it. A missing
/// baseline file is an empty baseline.
pub fn run(root: &Path, baseline_path: &Path, update: bool) -> io::Result<LintReport> {
    let findings = collect_findings(root)?;
    if update {
        fs::write(baseline_path, baseline::render(&findings))?;
    }
    let baseline_text = match fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let entries = match baseline::parse(&baseline_text) {
        Ok(entries) => entries,
        Err(errors) => {
            return Ok(LintReport {
                rows: baseline::keyed(&findings)
                    .into_iter()
                    .map(|(entry, f)| ReportRow {
                        finding: f.clone(),
                        hash: entry.hash,
                        occurrence: entry.occurrence,
                        is_new: false,
                    })
                    .collect(),
                stale_entries: Vec::new(),
                parse_errors: errors,
                per_rule: ALL_RULES.iter().map(|&r| (r, 0, 0)).collect(),
                ok: false,
            })
        }
    };
    let verdict = baseline::ratchet(&findings, &entries);
    let rows: Vec<ReportRow> = baseline::keyed(&findings)
        .into_iter()
        .map(|(entry, f)| ReportRow {
            // `verdict.new` borrows from the same `findings` vec, so
            // identity comparison is exact even for same-line dupes.
            is_new: verdict.new.iter().any(|nf| std::ptr::eq(*nf, f)),
            finding: f.clone(),
            hash: entry.hash,
            occurrence: entry.occurrence,
        })
        .collect();
    let ok = verdict.clean();
    let per_rule = verdict.per_rule;
    Ok(LintReport {
        rows,
        stale_entries: verdict.stale,
        parse_errors: Vec::new(),
        per_rule,
        ok,
    })
}
