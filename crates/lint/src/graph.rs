//! The workspace lock-order graph behind rule L7.
//!
//! Nodes are lock *declarations*: `Mutex`/`RwLock` struct fields
//! (named `Type.field`), statics (named `NAME`), and function-local
//! `Mutex::new` bindings (named `func::name`). An edge A→B is
//! recorded when B is acquired at a point where a guard for A is
//! still live; a cycle in that graph means two code paths can take
//! the same locks in opposite orders — a potential deadlock — and the
//! finding prints the witness path (each hold site and acquisition
//! site by file:line).
//!
//! Guard liveness is tracked per function over the token stream:
//! a `let`-bound guard lives until its enclosing brace scope closes
//! or an explicit `drop(name)`; an unbound guard (expression
//! statement or `let _ =`) dies at the end of its statement.
//! `if let` / `while let` guards and guards returned out of the
//! function are *not* tracked — deliberately under-approximate:
//! the graph may miss edges but never fabricates one, so a reported
//! cycle is always backed by real acquisition sites.
//!
//! Receiver resolution is name-based: `self.field.lock()` resolves
//! through the surrounding `impl`'s self type; a bare `name.lock()`
//! resolves to a local lock binding, then to a struct field if the
//! field name is unique across the table, then to a static. Unknown
//! receivers (`stdout().lock()`, guards passed in as arguments) are
//! ignored. Only zero-argument `.lock()` / `.read()` / `.write()`
//! calls count, which keeps io `write(buf)` calls out of the table;
//! `try_*` variants never block and are excluded.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Item, ItemKind, ItemTree};
use crate::lexer::{matching, Lexed, TokenKind};

/// One acquired-while-held edge.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Node whose guard was live.
    pub held: String,
    /// Line where the held guard was acquired.
    pub held_line: usize,
    /// Node being acquired.
    pub acquired: String,
    /// Acquisition site.
    pub line: usize,
    pub path: String,
    pub func: String,
}

/// The assembled graph.
#[derive(Default)]
pub struct LockGraph {
    pub nodes: BTreeSet<String>,
    pub edges: Vec<Edge>,
}

/// Build the graph from already-lexed files: `(path, lexed, tree)`.
pub fn build(files: &[(&str, &Lexed<'_>, &ItemTree)]) -> LockGraph {
    let mut g = LockGraph::default();
    // Pass 1: the lock table — fields and statics across all files.
    let mut fields: BTreeMap<String, BTreeSet<String>> = BTreeMap::new(); // field → nodes
    let mut statics: BTreeSet<String> = BTreeSet::new();
    for (_, lx, tree) in files {
        collect_decls(lx, &tree.items, &mut g.nodes, &mut fields, &mut statics);
    }
    // Pass 2: walk every non-test function body.
    for (path, lx, tree) in files {
        for f in tree.functions() {
            if f.cfg_test {
                continue;
            }
            FnWalker {
                lx,
                path,
                func: f.name,
                self_ty: f.self_ty,
                fields: &fields,
                statics: &statics,
                graph: &mut g,
            }
            .walk(f.body.0 + 1, f.body.1);
        }
    }
    g
}

impl LockGraph {
    /// Enumerate distinct cycles; each is the edge path that closes
    /// it. Cycles are found by DFS from each node in sorted order,
    /// visiting only nodes ≥ the start, so each cycle is reported
    /// rooted at its smallest node; duplicates with the same node
    /// sequence are dropped.
    pub fn cycles(&self) -> Vec<Vec<&Edge>> {
        // One representative edge per (from, to).
        let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
        let mut seen_pair = BTreeSet::new();
        for e in &self.edges {
            if seen_pair.insert((e.held.as_str(), e.acquired.as_str())) {
                adj.entry(e.held.as_str()).or_default().push(e);
            }
        }
        let mut out: Vec<Vec<&Edge>> = Vec::new();
        let mut seen_cycle: BTreeSet<Vec<&str>> = BTreeSet::new();
        let starts: Vec<&str> = adj.keys().copied().collect();
        for &start in &starts {
            let mut path: Vec<&Edge> = Vec::new();
            let mut on_path: BTreeSet<&str> = BTreeSet::new();
            on_path.insert(start);
            dfs(start, start, &adj, &mut path, &mut on_path, &mut |cycle| {
                let key: Vec<&str> = cycle.iter().map(|e| e.held.as_str()).collect();
                if seen_cycle.insert(key) {
                    out.push(cycle.to_vec());
                }
            });
        }
        out
    }

    /// Render one cycle as a witness message.
    pub fn witness(cycle: &[&Edge]) -> String {
        let steps: Vec<String> = cycle
            .iter()
            .map(|e| {
                format!(
                    "lock `{}` held at {}:{} while acquiring `{}` at {}:{} (in {})",
                    e.held, e.path, e.held_line, e.acquired, e.path, e.line, e.func
                )
            })
            .collect();
        format!("lock-order cycle: {}", steps.join("; "))
    }
}

fn dfs<'g>(
    start: &str,
    at: &'g str,
    adj: &BTreeMap<&'g str, Vec<&'g Edge>>,
    path: &mut Vec<&'g Edge>,
    on_path: &mut BTreeSet<&'g str>,
    emit: &mut impl FnMut(&[&'g Edge]),
) {
    if path.len() > 16 {
        return; // cycle longer than any real lock chain; bail
    }
    let Some(edges) = adj.get(at) else { return };
    for &e in edges {
        let to = e.acquired.as_str();
        if to == start {
            path.push(e);
            emit(path);
            path.pop();
            continue;
        }
        // Root each cycle at its smallest node: never descend below start.
        if to < start || on_path.contains(to) {
            continue;
        }
        path.push(e);
        on_path.insert(to);
        dfs(start, to, adj, path, on_path, emit);
        on_path.remove(to);
        path.pop();
    }
}

/// Walk the item tree collecting lock declarations.
fn collect_decls(
    lx: &Lexed<'_>,
    items: &[Item],
    nodes: &mut BTreeSet<String>,
    fields: &mut BTreeMap<String, BTreeSet<String>>,
    statics: &mut BTreeSet<String>,
) {
    for it in items {
        if it.cfg_test {
            continue;
        }
        match it.kind {
            ItemKind::Struct => {
                if let Some((o, c)) = it.body {
                    for (field, node) in struct_lock_fields(lx, &it.name, o, c) {
                        nodes.insert(node.clone());
                        fields.entry(field).or_default().insert(node);
                    }
                }
            }
            ItemKind::Static => {
                if !it.name.is_empty() && static_is_lock(lx, it.line_range) {
                    nodes.insert(it.name.clone());
                    statics.insert(it.name.clone());
                }
            }
            _ => {}
        }
        collect_decls(lx, &it.children, nodes, fields, statics);
    }
}

/// Fields of `ty`'s body `{o..c}` whose type mentions Mutex/RwLock.
fn struct_lock_fields(lx: &Lexed<'_>, ty: &str, o: usize, c: usize) -> Vec<(String, String)> {
    let toks = &lx.tokens;
    let mut out = Vec::new();
    let mut i = o + 1;
    while i < c {
        // Skip field attributes and visibility.
        if lx.is_punct(i, b'#') {
            if let Some(close) = toks
                .get(i + 1)
                .filter(|t| t.kind == TokenKind::Punct(b'['))
                .and_then(|_| matching(toks, i + 1))
            {
                i = close + 1;
                continue;
            }
        }
        if lx.is_ident(i, "pub") {
            i += 1;
            if i < c && lx.is_punct(i, b'(') {
                i = match matching(toks, i) {
                    Some(cl) => cl + 1,
                    None => break,
                };
            }
            continue;
        }
        // `name :` then the type up to a top-level `,`.
        if toks[i].kind == TokenKind::Ident && i + 1 < c && lx.is_punct(i + 1, b':') {
            let field = lx.text(i).to_string();
            let mut j = i + 2;
            let mut angle = 0usize;
            let mut nest = 0usize;
            let mut is_lock = false;
            while j < c {
                match toks[j].kind {
                    TokenKind::Punct(b'<') => angle += 1,
                    TokenKind::Punct(b'>') => angle = angle.saturating_sub(1),
                    TokenKind::Punct(b'(') | TokenKind::Punct(b'[') => nest += 1,
                    TokenKind::Punct(b')') | TokenKind::Punct(b']') => {
                        nest = nest.saturating_sub(1)
                    }
                    TokenKind::Punct(b',') if angle == 0 && nest == 0 => break,
                    TokenKind::Ident => {
                        let w = lx.text(j);
                        if w == "Mutex" || w == "RwLock" {
                            is_lock = true;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if is_lock {
                out.push((field.clone(), format!("{ty}.{field}")));
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Does the static declared on `line_range` mention Mutex/RwLock? The
/// item tree doesn't keep token ranges for statics, so check by line.
fn static_is_lock(lx: &Lexed<'_>, line_range: (usize, usize)) -> bool {
    lx.tokens.iter().any(|t| {
        t.line >= line_range.0
            && t.line <= line_range.1
            && t.kind == TokenKind::Ident
            && matches!(&lx.src[t.start..t.end], "Mutex" | "RwLock")
    })
}

/// A live guard during the statement walk.
struct Guard {
    /// Binding name (`None` for an unbound temporary).
    name: Option<String>,
    node: String,
    line: usize,
    /// Brace depth the guard was created at; dies when it closes.
    depth: usize,
}

struct FnWalker<'a, 'src> {
    lx: &'a Lexed<'src>,
    path: &'a str,
    func: &'a str,
    self_ty: Option<&'a str>,
    fields: &'a BTreeMap<String, BTreeSet<String>>,
    statics: &'a BTreeSet<String>,
    graph: &'a mut LockGraph,
}

impl<'a, 'src> FnWalker<'a, 'src> {
    fn walk(&mut self, from: usize, to: usize) {
        let toks = &self.lx.tokens;
        let mut depth = 0usize;
        let mut live: Vec<Guard> = Vec::new();
        // Local `let x = Mutex::new(..)` locks, name → node.
        let mut locals: BTreeMap<String, String> = BTreeMap::new();
        // Binding of the statement currently being scanned, if it
        // started with a top-level `let`.
        let mut stmt_binding: Option<String> = None;
        let mut stmt_start = true;

        let mut i = from;
        while i < to {
            let t = &toks[i];
            match t.kind {
                TokenKind::Punct(b'{') => {
                    // Unbound temporaries (including `if let` / `match`
                    // scrutinee guards) are not tracked into blocks:
                    // under-approximate rather than keep a guard alive
                    // past its real extent.
                    live.retain(|g| g.name.is_some());
                    depth += 1;
                    stmt_start = true;
                    stmt_binding = None;
                    i += 1;
                }
                TokenKind::Punct(b'}') => {
                    live.retain(|g| g.depth < depth);
                    depth = depth.saturating_sub(1);
                    stmt_start = true;
                    stmt_binding = None;
                    i += 1;
                }
                TokenKind::Punct(b';') => {
                    live.retain(|g| g.name.is_some());
                    stmt_binding = None;
                    stmt_start = true;
                    i += 1;
                }
                TokenKind::Ident => {
                    let w = self.lx.text(i);
                    if w == "let" && stmt_start {
                        // `if let` never hits this arm: `if` cleared
                        // stmt_start one token earlier.
                        let (binding, next) = self.let_binding(i + 1, to);
                        // A `let x = Mutex::new(..)` declares a lock,
                        // not a guard.
                        if let Some(name) = &binding {
                            if self.is_lock_ctor(next, to) {
                                let node = format!("{}::{}", self.func, name);
                                self.graph.nodes.insert(node.clone());
                                locals.insert(name.clone(), node);
                                stmt_binding = None;
                            } else {
                                stmt_binding = binding.clone();
                            }
                        }
                        stmt_start = false;
                        i = next;
                        continue;
                    }
                    if w == "drop" && i + 3 < to && self.lx.is_punct(i + 1, b'(') {
                        if toks[i + 2].kind == TokenKind::Ident
                            && self.lx.is_punct(i + 3, b')')
                        {
                            let victim = self.lx.text(i + 2);
                            live.retain(|g| g.name.as_deref() != Some(victim));
                        }
                        stmt_start = false;
                        i += 1;
                        continue;
                    }
                    if matches!(w, "lock" | "read" | "write")
                        && i > from
                        && self.lx.is_punct(i - 1, b'.')
                        && i + 2 < to
                        && self.lx.is_punct(i + 1, b'(')
                        && self.lx.is_punct(i + 2, b')')
                    {
                        if let Some(node) = self.resolve(i - 1, from, &locals) {
                            for g in &live {
                                self.graph.edges.push(Edge {
                                    held: g.node.clone(),
                                    held_line: g.line,
                                    acquired: node.clone(),
                                    line: t.line,
                                    path: self.path.to_string(),
                                    func: self.func.to_string(),
                                });
                            }
                            self.graph.nodes.insert(node.clone());
                            // The `let` binding names this guard only
                            // when the call chain IS the RHS (modulo
                            // unwrap/expect/`?`): `let n = q.lock()
                            // .unwrap().len();` binds the length, not
                            // the guard, and that temporary dies at
                            // the semicolon.
                            let name = if self.ends_as_binding(i + 3, to) {
                                stmt_binding.clone()
                            } else {
                                None
                            };
                            live.push(Guard {
                                name,
                                node,
                                line: t.line,
                                depth,
                            });
                        }
                        i += 3;
                        stmt_start = false;
                        continue;
                    }
                    stmt_start = false;
                    i += 1;
                }
                _ => {
                    stmt_start = false;
                    i += 1;
                }
            }
        }
    }

    /// Extract the binding name of a `let` pattern starting at `i`:
    /// `mut x`, `x`, `_` (→ None), `(a, b)` / `Ok(g)` → first inner
    /// identifier. Returns (name, index past the pattern's first
    /// identifier) — scanning resumes there, which is enough because
    /// only the RHS can contain acquisitions.
    fn let_binding(&self, i: usize, to: usize) -> (Option<String>, usize) {
        let toks = &self.lx.tokens;
        let mut j = i;
        while j < to {
            match toks[j].kind {
                TokenKind::Ident => {
                    let w = self.lx.text(j);
                    if w == "mut" {
                        j += 1;
                        continue;
                    }
                    if w == "_" {
                        return (None, j + 1);
                    }
                    // `Ok(g)` / `Some(mut g)`: descend into the parens.
                    if j + 1 < to && self.lx.is_punct(j + 1, b'(') {
                        j += 2;
                        continue;
                    }
                    return (Some(w.to_string()), j + 1);
                }
                TokenKind::Punct(b'(') => {
                    j += 1; // tuple pattern: first element's binding
                }
                TokenKind::Punct(b'_') => return (None, j + 1),
                _ => return (None, j + 1),
            }
        }
        (None, to)
    }

    /// Is the RHS after the pattern a `Mutex::new(` / `RwLock::new(`
    /// constructor (searching up to the statement's `;`)?
    fn is_lock_ctor(&self, from: usize, to: usize) -> bool {
        let toks = &self.lx.tokens;
        let mut j = from;
        while j < to {
            match toks[j].kind {
                TokenKind::Punct(b';') => return false,
                TokenKind::Ident => {
                    let w = self.lx.text(j);
                    if (w == "Mutex" || w == "RwLock")
                        && j + 3 < to
                        && self.lx.is_punct(j + 1, b':')
                        && self.lx.is_punct(j + 2, b':')
                        && self.lx.is_ident(j + 3, "new")
                    {
                        return true;
                    }
                    j += 1;
                }
                _ => j += 1,
            }
        }
        false
    }

    /// Does the token stream from `j` (just past the lock call's `)`)
    /// run straight to the statement's `;`, modulo `.unwrap()`,
    /// `.expect(..)`, and `?`? If so, the statement's `let` binding
    /// holds the guard itself.
    fn ends_as_binding(&self, mut j: usize, to: usize) -> bool {
        let toks = &self.lx.tokens;
        loop {
            if j >= to {
                return false;
            }
            match toks[j].kind {
                TokenKind::Punct(b';') => return true,
                TokenKind::Punct(b'?') => j += 1,
                TokenKind::Punct(b'.') => {
                    if j + 2 >= to || toks[j + 1].kind != TokenKind::Ident {
                        return false;
                    }
                    let m = self.lx.text(j + 1);
                    if (m != "unwrap" && m != "expect") || !self.lx.is_punct(j + 2, b'(') {
                        return false;
                    }
                    match matching(toks, j + 2) {
                        Some(close) if close < to => j = close + 1,
                        _ => return false,
                    }
                }
                _ => return false,
            }
        }
    }

    /// Resolve the receiver chain ending at the `.` before a
    /// lock/read/write call into a lock node.
    fn resolve(
        &self,
        dot: usize,
        floor: usize,
        locals: &BTreeMap<String, String>,
    ) -> Option<String> {
        let toks = &self.lx.tokens;
        // Walk backwards over `ident`, trailing `[…]`/`(…)` groups,
        // and the `.`s joining them.
        let mut chain: Vec<&str> = Vec::new();
        let mut j = dot;
        loop {
            if j == floor {
                break;
            }
            let mut k = j - 1;
            // Skip index/call groups back to their opener.
            while matches!(
                toks[k].kind,
                TokenKind::Punct(b']') | TokenKind::Punct(b')')
            ) {
                let (open, close) = if toks[k].kind == TokenKind::Punct(b']') {
                    (b'[', b']')
                } else {
                    (b'(', b')')
                };
                let mut d = 0usize;
                loop {
                    match toks[k].kind {
                        TokenKind::Punct(b) if b == close => d += 1,
                        TokenKind::Punct(b) if b == open => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == floor {
                        return None;
                    }
                    k -= 1;
                }
                if k == floor {
                    break;
                }
                k -= 1;
            }
            if toks[k].kind != TokenKind::Ident {
                break;
            }
            chain.push(self.lx.text(k));
            j = k;
            // Another `.` continues the chain.
            if j > floor && toks[j - 1].kind == TokenKind::Punct(b'.') {
                j -= 1;
            } else {
                break;
            }
        }
        // chain[0] is the segment closest to the lock call.
        let leaf = *chain.first()?;
        let via_self = chain.iter().any(|&w| w == "self");
        if via_self {
            if let Some(ty) = self.self_ty {
                let node = format!("{ty}.{leaf}");
                if self.fields.get(leaf).is_some_and(|n| n.contains(&node)) {
                    return Some(node);
                }
            }
        }
        if let Some(node) = locals.get(leaf) {
            return Some(node.clone());
        }
        if let Some(nodes) = self.fields.get(leaf) {
            if nodes.len() == 1 {
                if let Some(node) = nodes.iter().next() {
                    return Some(node.clone());
                }
            }
        }
        if self.statics.contains(leaf) {
            return Some(leaf.to_string());
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;

    fn graph_of(src: &str) -> LockGraph {
        let lx = lex(src);
        let tree = parse(&lx);
        build(&[("crates/serve/src/x.rs", &lx, &tree)])
    }

    const CYCLE: &str = r#"
use std::sync::Mutex;
pub struct App { queue: Mutex<Vec<u8>>, stats: Mutex<u64> }
impl App {
    pub fn enqueue(&self) {
        let q = self.queue.lock().unwrap();
        let s = self.stats.lock().unwrap();
        drop(s); drop(q);
    }
    pub fn report(&self) {
        let s = self.stats.lock().unwrap();
        let q = self.queue.lock().unwrap();
        drop(q); drop(s);
    }
}
"#;

    #[test]
    fn two_mutex_cycle_is_found_with_witness() {
        let g = graph_of(CYCLE);
        assert_eq!(g.edges.len(), 2, "{:?}", g.edges);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        let msg = LockGraph::witness(&cycles[0]);
        assert!(msg.contains("App.queue"), "{msg}");
        assert!(msg.contains("App.stats"), "{msg}");
        assert!(msg.contains("crates/serve/src/x.rs:"), "{msg}");
    }

    #[test]
    fn guard_dropped_before_second_lock_is_clean() {
        let src = r#"
use std::sync::Mutex;
pub struct App { queue: Mutex<Vec<u8>>, stats: Mutex<u64> }
impl App {
    pub fn enqueue(&self) {
        let q = self.queue.lock().unwrap();
        drop(q);
        let _s = self.stats.lock().unwrap();
    }
    pub fn report(&self) {
        let s = self.stats.lock().unwrap();
        drop(s);
        let _q = self.queue.lock().unwrap();
    }
}
"#;
        let g = graph_of(src);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn scope_exit_releases_guards() {
        let src = r#"
use std::sync::Mutex;
pub struct App { a: Mutex<u8>, b: Mutex<u8> }
impl App {
    pub fn f(&self) {
        { let g = self.a.lock().unwrap(); let _ = *g; }
        let h = self.b.lock().unwrap();
        { let g = self.a.lock().unwrap(); let _ = *g; }
        drop(h);
    }
}
"#;
        let g = graph_of(src);
        // Only b→a (a's first guard died with its block).
        assert_eq!(g.edges.len(), 1, "{:?}", g.edges);
        assert_eq!(g.edges[0].held, "App.b");
        assert_eq!(g.edges[0].acquired, "App.a");
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = r#"
use std::sync::Mutex;
pub struct App { a: Mutex<Vec<u8>>, b: Mutex<u8> }
impl App {
    pub fn f(&self) {
        self.a.lock().unwrap().push(1);
        let _g = self.b.lock().unwrap();
    }
    pub fn g(&self) {
        self.b.lock().unwrap();
        self.a.lock().unwrap().push(2);
    }
}
"#;
        let g = graph_of(src);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn same_statement_nesting_makes_an_edge() {
        let src = r#"
use std::sync::Mutex;
pub struct App { a: Mutex<u8>, b: Mutex<u8> }
impl App {
    pub fn f(&self) {
        let x = *self.a.lock().unwrap() + *self.b.lock().unwrap();
        let _ = x;
    }
}
"#;
        let g = graph_of(src);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].held, "App.a");
        assert_eq!(g.edges[0].acquired, "App.b");
    }

    #[test]
    fn self_deadlock_is_a_one_node_cycle() {
        let src = r#"
use std::sync::Mutex;
static QUEUE: Mutex<Vec<u8>> = Mutex::new(Vec::new());
pub fn f() {
    let g = QUEUE.lock().unwrap();
    let h = QUEUE.lock().unwrap();
    drop(h); drop(g);
}
"#;
        let g = graph_of(src);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 1);
        assert!(LockGraph::witness(&cycles[0]).contains("QUEUE"));
    }

    #[test]
    fn rwlock_read_write_and_statics_resolve() {
        let src = r#"
use std::sync::RwLock;
static TABLE: RwLock<Vec<u8>> = RwLock::new(Vec::new());
pub struct S { cfg: RwLock<u8> }
impl S {
    pub fn f(&self) {
        let t = TABLE.read().unwrap();
        let _c = self.cfg.write().unwrap();
        drop(t);
    }
}
"#;
        let g = graph_of(src);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].held, "TABLE");
        assert_eq!(g.edges[0].acquired, "S.cfg");
    }

    #[test]
    fn io_write_with_args_is_not_a_lock() {
        let src = r#"
use std::sync::Mutex;
pub struct S { log: Mutex<Vec<u8>> }
impl S {
    pub fn f(&self, mut w: impl std::io::Write, buf: &[u8]) {
        let g = self.log.lock().unwrap();
        w.write(buf).unwrap();
        drop(g);
    }
}
"#;
        let g = graph_of(src);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn test_functions_are_exempt() {
        let src = r#"
use std::sync::Mutex;
pub struct App { a: Mutex<u8>, b: Mutex<u8> }
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let app = super::App { a: Mutex::new(0), b: Mutex::new(0) };
        let g = app.a.lock().unwrap();
        let h = app.b.lock().unwrap();
        drop(h); drop(g);
    }
}
"#;
        let g = graph_of(src);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn local_mutex_is_a_scoped_node() {
        let src = r#"
use std::sync::Mutex;
pub fn f() {
    let m = Mutex::new(0u8);
    let g = m.lock().unwrap();
    let h = m.lock().unwrap();
    drop(h); drop(g);
}
"#;
        let g = graph_of(src);
        assert_eq!(g.cycles().len(), 1);
        assert!(g.nodes.contains("f::m"));
    }

    #[test]
    fn indexed_slot_locks_resolve_through_the_index() {
        let src = r#"
use std::sync::Mutex;
pub struct Ring { slots: Box<[Mutex<u8>]>, head: Mutex<usize> }
impl Ring {
    pub fn put(&self, i: usize) {
        let h = self.head.lock().unwrap();
        let _s = self.slots[i].lock().unwrap();
        drop(h);
    }
}
"#;
        let g = graph_of(src);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].acquired, "Ring.slots");
    }
}
