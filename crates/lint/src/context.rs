//! Test-code detection: which lines of a file are `#[cfg(test)]`
//! modules/items or `#[test]` functions.
//!
//! The panic-freedom and narrowing-cast rules deliberately exempt test
//! code — an `unwrap()` in a unit test is idiomatic, and a cast there
//! cannot corrupt an artifact. Detection works on the *masked* code
//! view (comments and strings already blanked), so `#[cfg(test)]`
//! inside a doc example never creates a phantom span.

/// Inclusive 1-based line ranges that are test code.
pub struct TestSpans {
    spans: Vec<(usize, usize)>,
}

impl TestSpans {
    /// Is `line` inside any test span?
    pub fn contains(&self, line: usize) -> bool {
        self.spans.iter().any(|&(lo, hi)| lo <= line && line <= hi)
    }
}

/// Find the test spans of a masked source file.
pub fn test_spans(code: &str) -> TestSpans {
    let bytes = code.as_bytes();
    let mut spans = Vec::new();
    let mut i = 0usize;
    while let Some(off) = code[i..].find("#[") {
        let attr_start = i + off;
        let Some(attr_end) = matching_bracket(bytes, attr_start + 1) else {
            break;
        };
        let attr_body = &code[attr_start + 2..attr_end];
        let is_test_attr = {
            let t = attr_body.trim();
            t == "test" || t.contains("cfg(test")
        };
        if is_test_attr {
            if let Some((body_start, body_end)) = item_body(bytes, attr_end + 1) {
                let lo = line_of(bytes, attr_start);
                let hi = line_of(bytes, body_end);
                spans.push((lo, hi));
                i = body_start + 1; // nested test attrs extend no further
                continue;
            }
        }
        i = attr_end + 1;
    }
    TestSpans { spans }
}

/// 1-based line number of byte offset `at`.
fn line_of(bytes: &[u8], at: usize) -> usize {
    1 + bytes[..at.min(bytes.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

/// Given `[` at `open`, the offset of its matching `]`.
fn matching_bracket(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// From just past a test attribute, find the annotated item's extent:
/// skip further attributes, then scan (at paren/bracket depth 0) to
/// either the item's `{ … }` body or a terminating `;` (e.g.
/// `#[cfg(test)] use …;`). Returns `(start_of_body, end_of_item)`.
fn item_body(bytes: &[u8], mut i: usize) -> Option<(usize, usize)> {
    // Skip whitespace and any further attributes.
    loop {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if bytes.get(i) == Some(&b'#') && bytes.get(i + 1) == Some(&b'[') {
            i = matching_bracket(bytes, i + 1)? + 1;
        } else {
            break;
        }
    }
    let mut depth = 0usize; // () and [] nesting (generics carry no braces)
    let mut j = i;
    while j < bytes.len() {
        match bytes[j] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth = depth.saturating_sub(1),
            b';' if depth == 0 => return Some((j, j)),
            b'{' if depth == 0 => {
                let end = matching_brace(bytes, j)?;
                return Some((j, end));
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Given `{` at `open`, the offset of its matching `}`.
fn matching_brace(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_module_span() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let spans = test_spans(&lex(src).code);
        assert!(!spans.contains(1));
        assert!(spans.contains(2));
        assert!(spans.contains(4));
        assert!(spans.contains(5));
        assert!(!spans.contains(6));
    }

    #[test]
    fn test_fn_span_with_extra_attrs() {
        let src = "#[test]\n#[should_panic]\nfn boom() {\n    panic!(\"x\");\n}\nfn lib() {}\n";
        let spans = test_spans(&lex(src).code);
        assert!(spans.contains(4));
        assert!(!spans.contains(6));
    }

    #[test]
    fn cfg_test_use_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn lib() {}\n";
        let spans = test_spans(&lex(src).code);
        assert!(spans.contains(2));
        assert!(!spans.contains(3));
    }

    #[test]
    fn doc_comment_attr_text_is_not_a_span() {
        let src = "/// `#[cfg(test)]` is how you mark tests\nfn lib() { x.unwrap(); }\n";
        let spans = test_spans(&lex(src).code);
        assert!(!spans.contains(2));
    }
}
